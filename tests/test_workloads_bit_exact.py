"""End-to-end oracle: every workload kernel, bit-exact through the SRAM.

Each kernel runs unchanged on the :class:`EveFunctionalEngine` — every
arithmetic instruction executes its micro-program on the bit-level model —
and must match the pure-numpy reference exactly.  This validates the
paper's function/timing split across the whole ISA surface the workloads
touch (including strided/indexed memory, masks, and reductions).
"""

import numpy as np
import pytest

from repro.core import EveFunctionalEngine
from repro.workloads import get_workload

#: Oracle capacity must divide the tiny problem strip counts cleanly for
#: the accumulate-in-register kernels (mmult k=128, backprop n_in=128).
CAPACITY = 32

APPS = ["vvadd", "mmult", "k-means", "pathfinder", "jacobi-2d", "backprop", "sw"]


@pytest.mark.parametrize("name", APPS)
@pytest.mark.parametrize("factor", [8], ids=["n8"])
def test_kernel_bit_exact(name, factor):
    workload = get_workload(name)
    engine = EveFunctionalEngine(factor=factor, capacity=CAPACITY)
    outputs = workload.run_bit_exact(engine)
    expected = workload.reference(
        workload.make_inputs(dict(workload.tiny_params)),
        dict(workload.tiny_params))
    for key, want in expected.items():
        got = np.asarray(outputs[key], dtype=np.int64)
        assert np.array_equal(got, np.asarray(want, dtype=np.int64)), key
    assert engine.cycles > 0


@pytest.mark.parametrize("factor", [1, 4, 32], ids=["n1", "n4", "n32"])
def test_vvadd_bit_exact_across_factors(factor):
    workload = get_workload("vvadd")
    engine = EveFunctionalEngine(factor=factor, capacity=CAPACITY)
    outputs = workload.run_bit_exact(engine)
    expected = workload.reference(
        workload.make_inputs(dict(workload.tiny_params)),
        dict(workload.tiny_params))
    assert np.array_equal(outputs["c"], expected["c"])


def test_bit_serial_spends_more_sram_cycles_than_bit_parallel():
    workload = get_workload("vvadd")
    serial = EveFunctionalEngine(factor=1, capacity=CAPACITY)
    parallel = EveFunctionalEngine(factor=32, capacity=CAPACITY)
    workload.run_bit_exact(serial)
    workload.run_bit_exact(parallel)
    assert serial.cycles > parallel.cycles
