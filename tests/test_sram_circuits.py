"""Peripheral circuit-stack tests (Section III layers)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SramError
from repro.sram.array import BitLineResult
from repro.sram.circuits import (
    AddLogic,
    ConstantShifter,
    MaskLogic,
    SpareShifter,
    XorLayer,
    XRegister,
    group_view,
)


def bits(values):
    return np.asarray(values, dtype=np.uint8)


def blr(a, b):
    a, b = bits(a), bits(b)
    return BitLineResult(and_=a & b, nand=1 - (a & b), or_=a | b,
                         nor=1 - (a | b))


class TestGroupView:
    def test_reshape(self):
        v = group_view(bits(range(8)), 4)
        assert v.shape == (2, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(SramError):
            group_view(bits([0] * 10), 4)


class TestXorLayer:
    def test_truth_table(self):
        xor, xnor = XorLayer.compute(blr([0, 0, 1, 1], [0, 1, 0, 1]))
        assert list(xor) == [0, 1, 1, 0]
        assert list(xnor) == [1, 0, 0, 1]


class TestAddLogic:
    def encode(self, value, n):
        return bits([(value >> j) & 1 for j in range(n)])

    def decode(self, row):
        return sum(int(b) << j for j, b in enumerate(row))

    @settings(max_examples=60, deadline=None)
    @given(a=st.integers(0, 255), b=st.integers(0, 255),
           carry=st.integers(0, 1))
    def test_manchester_chain_adds(self, a, b, carry):
        logic = AddLogic(groups=1, factor=8)
        av, bv = self.encode(a, 8), self.encode(b, 8)
        result = blr(av, bv)
        xor, _ = XorLayer.compute(result)
        sums, carry_out = logic.compute(result.and_, xor,
                                        np.array([carry], dtype=np.uint8))
        total = a + b + carry
        assert self.decode(sums[0]) == total & 0xFF
        assert carry_out[0] == total >> 8

    def test_parallel_groups_independent(self):
        logic = AddLogic(groups=2, factor=4)
        a = np.concatenate([self.encode(0xF, 4), self.encode(0x1, 4)])
        b = np.concatenate([self.encode(0x1, 4), self.encode(0x2, 4)])
        result = blr(a, b)
        xor, _ = XorLayer.compute(result)
        sums, carry = logic.compute(result.and_, xor, bits([0, 0]))
        assert self.decode(sums[0]) == 0x0  # 0xF + 1 wraps
        assert self.decode(sums[1]) == 0x3
        assert list(carry) == [1, 0]

    def test_carry_shape_checked(self):
        logic = AddLogic(groups=2, factor=4)
        with pytest.raises(SramError):
            logic.compute(bits([0] * 8), bits([0] * 8), bits([0]))


class TestXRegister:
    def test_shift_right_walks_lsb_first(self):
        x = XRegister(groups=1, factor=4)
        x.load(bits([1, 0, 1, 1]))  # value 0b1101
        seen = [int(x.lsb[0])]
        for _ in range(3):
            x.shift_right()
            seen.append(int(x.lsb[0]))
        assert seen == [1, 0, 1, 1]

    def test_shift_left_walks_msb_first(self):
        x = XRegister(groups=1, factor=4)
        x.load(bits([1, 0, 1, 1]))
        seen = [int(x.msb[0])]
        for _ in range(3):
            x.shift_left()
            seen.append(int(x.msb[0]))
        assert seen == [1, 1, 0, 1]

    def test_zero_fill(self):
        x = XRegister(groups=1, factor=2)
        x.load(bits([1, 1]))
        x.shift_right()
        x.shift_right()
        assert x.bits.sum() == 0


class TestMaskLogic:
    def test_reset_all_active(self):
        mask = MaskLogic(cols=8, factor=4)
        assert mask.bits.sum() == 8

    def test_load_groups_replicates(self):
        mask = MaskLogic(cols=8, factor=4)
        mask.load_groups(bits([1, 0]))
        assert list(mask.bits) == [1, 1, 1, 1, 0, 0, 0, 0]
        assert list(mask.group_bits) == [1, 0]

    def test_width_checked(self):
        mask = MaskLogic(cols=8, factor=4)
        with pytest.raises(SramError):
            mask.load_columns(bits([1] * 4))
        with pytest.raises(SramError):
            mask.load_groups(bits([1] * 3))


class TestConstantShifter:
    def test_conditional_left_shift(self):
        shifter = ConstantShifter(groups=2, factor=4)
        shifter.load(bits([1, 0, 0, 0] * 2))  # both groups hold value 1
        out = shifter.shift_left(condition=np.array([True, False]),
                                 bit_in=bits([0, 0]))
        assert list(shifter.bits[0]) == [0, 1, 0, 0]  # shifted: value 2
        assert list(shifter.bits[1]) == [1, 0, 0, 0]  # untouched
        assert list(out) == [0, 0]

    def test_shift_right_returns_lsb(self):
        shifter = ConstantShifter(groups=1, factor=4)
        shifter.load(bits([1, 1, 0, 0]))
        out = shifter.shift_right(condition=np.array([True]), bit_in=bits([1]))
        assert out[0] == 1
        assert list(shifter.bits[0]) == [1, 0, 0, 1]

    def test_rotate_roundtrip(self):
        shifter = ConstantShifter(groups=1, factor=4)
        pattern = bits([1, 1, 0, 1])
        shifter.load(pattern)
        for _ in range(4):
            shifter.rotate_left(np.array([True]))
        assert np.array_equal(shifter.bits[0], pattern)


class TestSpareShifter:
    def test_exchange_ferries_bits(self):
        spare = SpareShifter(groups=1, factor=4)
        incoming = spare.exchange(bits([1]), np.array([True]))
        assert incoming[0] == 0  # link started clear
        incoming = spare.exchange(bits([0]), np.array([True]))
        assert incoming[0] == 1  # previous out-bit comes back

    def test_exchange_conditional(self):
        spare = SpareShifter(groups=2, factor=4)
        spare.exchange(bits([1, 1]), np.array([True, False]))
        assert list(spare.link) == [1, 0]

    def test_carry_storage(self):
        spare = SpareShifter(groups=2, factor=4)
        spare.set_carry(bits([1, 0]))
        assert list(spare.carry) == [1, 0]
        spare.clear_carry()
        assert spare.carry.sum() == 0

    def test_link_and_carry_independent(self):
        spare = SpareShifter(groups=1, factor=4)
        spare.set_carry(bits([1]))
        spare.clear_link()
        assert spare.carry[0] == 1
