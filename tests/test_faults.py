"""Fault-injection engine and campaign-runner tests."""

import pytest

from repro.errors import FaultInjectionError
from repro.faults.campaign import (OUTCOMES, CampaignReport, family_of,
                                   run_campaign)
from repro.faults.fuzz import generate_case, run_dut
from repro.faults.inject import (FAULT_MODELS, NULL_FAULTS, FaultInjector,
                                 FaultProbe, FaultSpec)
from repro.obs import MetricsRegistry


class TestFaultSpec:
    def test_rejects_unknown_model(self):
        with pytest.raises(FaultInjectionError, match="unknown fault model"):
            FaultSpec(model="cosmic_ray", seed=0)

    def test_rejects_non_positive_flips(self):
        with pytest.raises(FaultInjectionError, match="flip count"):
            FaultSpec(model="multi_bitflip", seed=0, flips=0)

    def test_null_injector_is_disabled(self):
        assert NULL_FAULTS.enabled is False


class TestProbe:
    def test_counts_events_on_a_real_program(self):
        case = generate_case(0, vlmax=8, num_ops=6)
        probe = FaultProbe()
        out = run_dut(case, 8, faults=probe)
        assert "crash" not in out
        assert probe.wb_events > 0
        assert probe.macro_ops > 0

    def test_narrow_segments_commit_carries(self):
        # At n=1 every 32-bit add walks 32 segment boundaries, so any
        # arithmetic program must produce carry-commit events.
        case = generate_case(0, vlmax=8, num_ops=6)
        probe = FaultProbe()
        run_dut(case, 1, faults=probe)
        assert probe.carry_events > 0


class TestInjectorAddressing:
    def _make(self, model, seed=5):
        return FaultInjector(FaultSpec(model=model, seed=seed),
                             wb_events=100, carry_events=40,
                             rows=256, cols=64, groups=8)

    @pytest.mark.parametrize("model", FAULT_MODELS)
    def test_same_seed_same_address(self, model):
        assert self._make(model).describe() == self._make(model).describe()

    def test_different_seeds_move_the_fault(self):
        descriptions = {str(self._make("bitflip", seed=s).describe())
                        for s in range(8)}
        assert len(descriptions) > 1

    def test_multi_bitflip_draws_flip_many_sites(self):
        injector = self._make("multi_bitflip")
        assert len(injector.flip_sites) == 4

    def test_unarmable_without_events(self):
        with pytest.raises(FaultInjectionError, match="stuck_carry"):
            FaultInjector(FaultSpec(model="stuck_carry", seed=0),
                          wb_events=10, carry_events=0,
                          rows=256, cols=64, groups=8)
        with pytest.raises(FaultInjectionError, match="write-back"):
            FaultInjector(FaultSpec(model="drop_wb", seed=0),
                          wb_events=0, carry_events=10,
                          rows=256, cols=64, groups=8)


class TestCampaign:
    def test_rejects_bad_arguments(self):
        with pytest.raises(FaultInjectionError, match="positive"):
            run_campaign(0)
        with pytest.raises(FaultInjectionError, match="unknown fault model"):
            run_campaign(1, models=["gamma_burst"])

    def test_deterministic_and_jobs_invariant(self):
        kwargs = {"seed": 3, "vlmax": 8, "num_ops": 6}
        first = run_campaign(6, jobs=1, **kwargs)
        again = run_campaign(6, jobs=1, **kwargs)
        pooled = run_campaign(6, jobs=2, **kwargs)
        as_json = [o.to_json_dict() for o in first.outcomes]
        assert as_json == [o.to_json_dict() for o in again.outcomes]
        assert as_json == [o.to_json_dict() for o in pooled.outcomes]

    def test_classifies_every_injection(self):
        report = run_campaign(5, seed=1, vlmax=8, num_ops=6)
        assert len(report.outcomes) == 5
        for out in report.outcomes:
            assert out.outcome in OUTCOMES
        counts = report.counts
        assert sum(counts.values()) == 5
        assert 0.0 <= report.sdc_rate <= 1.0

    def test_round_robins_models_and_factors(self):
        report = run_campaign(10, models=["bitflip", "drop_wb"],
                              factors=(1, 32), seed=2, vlmax=8, num_ops=6)
        assert {o.model for o in report.outcomes} == {"bitflip", "drop_wb"}
        assert {o.factor for o in report.outcomes} == {1, 32}

    def test_metrics_land_in_the_faults_namespace(self):
        metrics = MetricsRegistry()
        report = run_campaign(4, seed=4, vlmax=8, num_ops=6,
                              metrics=metrics)
        flat = metrics.flat()
        assert flat["faults.injections"] == 4
        assert flat["faults.sdc_rate.value"] == report.sdc_rate
        assert sum(flat[f"faults.{name}"] for name in OUTCOMES) == 4

    def test_report_json_shape(self):
        report = run_campaign(4, seed=6, vlmax=8, num_ops=6)
        doc = report.to_json_dict()
        assert doc["count"] == 4
        assert len(doc["outcomes"]) == 4
        for table in ("by_factor", "by_model", "by_family"):
            for bucket in doc[table].values():
                assert bucket["injections"] >= 1
                assert 0.0 <= bucket["sdc_rate"] <= 1.0


class TestFamilies:
    def test_known_macros_map_to_figure4_families(self):
        assert family_of("add") == "arith"
        assert family_of("logic") == "logical"
        assert family_of("shift_variable") == "shift"
        assert family_of("div") == "div"

    def test_unknown_and_missing_map_to_other(self):
        assert family_of(None) == "other"
        assert family_of("teleport") == "other"

    def test_empty_report_rates_are_zero(self):
        report = CampaignReport(seed=0, count=0, models=FAULT_MODELS,
                                factors=(8,))
        assert report.sdc_rate == 0.0
        assert report.detected_rate == 0.0
