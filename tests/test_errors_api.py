"""Error hierarchy and top-level public API surface."""

import pytest

import repro
from repro.errors import (
    ConfigError,
    IsaError,
    LayoutError,
    MemoryModelError,
    MicroExecutionError,
    MicroProgramError,
    ReproError,
    SimulationError,
    SramError,
    WorkloadError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigError, IsaError, LayoutError, MemoryModelError,
        MicroExecutionError, MicroProgramError, SimulationError, SramError,
        WorkloadError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_library_failure(self):
        from repro.config import make_system
        with pytest.raises(ReproError):
            make_system("nonsense")


class TestPublicApi:
    def test_exports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_system_list_is_figure6_axis(self):
        names = repro.all_system_names()
        assert names[0] == "IO"
        assert names[-1] == "O3+EVE-32"
        assert len(names) == 10

    def test_eve_hardware_vl_export(self):
        assert repro.eve_hardware_vl(8) == 1024

    def test_subpackages_importable(self):
        import repro.analytics
        import repro.circuits_model
        import repro.core
        import repro.cores
        import repro.experiments
        import repro.isa
        import repro.mem
        import repro.sram
        import repro.uops
        import repro.workloads

    def test_docstrings_on_public_modules(self):
        import repro.core.engine
        import repro.sram.eve_sram
        import repro.uops.rom
        for module in (repro, repro.core.engine, repro.sram.eve_sram,
                       repro.uops.rom):
            assert module.__doc__ and len(module.__doc__) > 50
