"""Memory-hierarchy integration tests (ports, inclusion, MSHR stalls)."""

import pytest

from repro.config import DramConfig, make_system, with_dram
from repro.errors import MemoryModelError
from repro.mem import MemorySystem
from repro.mem.reconfig import spawn_cost, teardown_cost


@pytest.fixture
def mem():
    return MemorySystem(make_system("O3"))


class TestScalarPort:
    def test_cold_miss_goes_to_dram(self, mem):
        completion = mem.access(0.0, 0x1000, False)
        assert completion.level == "dram"
        config = mem.config
        floor = (config.l1d.hit_latency + config.l2.hit_latency
                 + config.llc.hit_latency + config.dram.access_latency)
        assert completion.done >= floor

    def test_l1_hit_after_fill(self, mem):
        mem.access(0.0, 0x1000, False)
        completion = mem.access(100.0, 0x1000, False)
        assert completion.level == "l1"
        assert completion.done == 100.0 + mem.config.l1d.hit_latency

    def test_l2_hit_after_l1_eviction(self, mem):
        mem.access(0.0, 0x1000, False)
        # Thrash the L1 set: same L1 set, different lines (L1 has 128
        # sets x 64B = 8KB per way).
        for i in range(1, 5):
            mem.access(float(i), 0x1000 + i * 8192, False)
        completion = mem.access(1000.0, 0x1000, False)
        assert completion.level == "l2"

    def test_hierarchy_is_inclusive(self, mem):
        """An LLC victim's inner copies are invalidated."""
        mem.access(0.0, 0x1000, False)
        assert mem.l1d.lookup(0x1000)
        # Fill the 0x1000 LLC set until 0x1000 is evicted (16+1 ways,
        # same LLC set: set stride = 2048 sets * 64B = 128KB).
        for i in range(1, 20):
            mem.access(float(i * 10), 0x1000 + i * 2048 * 64, False)
        assert not mem.llc.lookup(0x1000) or not mem.l1d.lookup(0x1000)

    def test_store_marks_dirty_through_hierarchy(self, mem):
        mem.access(0.0, 0x1000, True)
        _, dirty = mem.l1d.resident_lines()
        assert dirty == 1


class TestVectorPort:
    def test_llc_port_skips_l2(self, mem):
        completion = mem.access(0.0, 0x2000, False, port="llc")
        assert completion.level == "dram"
        assert mem.l2.resident_lines() == (0, 0)
        assert mem.llc.lookup(0x2000)

    def test_llc_hit_latency(self, mem):
        mem.access(0.0, 0x2000, False, port="llc")
        completion = mem.access(500.0, 0x2000, False, port="llc")
        assert completion.level == "llc"
        assert completion.done == 500.0 + 12

    def test_l2_port_for_dv(self, mem):
        completion = mem.access(0.0, 0x3000, False, port="l2")
        assert completion.level == "dram"
        assert mem.l2.lookup(0x3000)
        assert mem.l1d.resident_lines() == (0, 0)

    def test_unknown_port(self, mem):
        with pytest.raises(MemoryModelError):
            mem.access(0.0, 0, False, port="l3")

    def test_vector_mshr_stall_accounting(self):
        """Saturating the 32 LLC MSHRs produces Figure 8 stalls."""
        config = with_dram(make_system("O3+EVE-8"),
                           DramConfig(access_latency=200.0, bytes_per_cycle=1e9))
        mem = MemorySystem(config)
        for i in range(200):
            mem.access(float(i), i * 64, False, port="llc")
        assert mem.vector_stalled_requests > 0
        assert mem.vector_mshr_stall > 0
        assert mem.vector_requests == 200

    def test_no_stalls_when_hitting(self, mem):
        for i in range(8):
            mem.access(float(i), i * 64, False, port="llc")
        mem.reset_stats()
        for i in range(8):
            mem.access(1000.0 + i, i * 64, False, port="llc")
        assert mem.vector_mshr_stall == 0.0

    def test_level_stats(self, mem):
        mem.access(0.0, 0, False)
        stats = mem.level_stats()
        assert stats["l1d"] == (0, 1)
        assert stats["llc"] == (0, 1)


class TestReconfig:
    def test_cold_spawn_is_free(self, mem):
        assert spawn_cost(mem.l2).cycles == 0

    def test_spawn_cost_scales_with_dirty_lines(self):
        # A full L2 (8192 lines reaches every way, including the carved-out
        # upper half); dirty lines in b only.
        mem_a = MemorySystem(make_system("O3"))
        mem_b = MemorySystem(make_system("O3"))
        for i in range(8192):
            mem_a.l2.fill(i * 64)
            mem_b.l2.fill(i * 64, dirty=True)
        cost_a = spawn_cost(mem_a.l2)
        cost_b = spawn_cost(mem_b.l2)
        assert cost_a.lines_walked == cost_b.lines_walked == 4096
        assert cost_b.cycles > cost_a.cycles
        assert cost_b.dirty_lines == 4096

    def test_spawn_flushes_the_ways(self, mem):
        for i in range(8192):
            mem.l2.fill(i * 64)
        before, _ = mem.l2.resident_lines()
        cost = spawn_cost(mem.l2)
        after, _ = mem.l2.resident_lines()
        assert cost.lines_walked == 4096
        assert after == before - cost.lines_walked

    def test_teardown_free(self):
        assert teardown_cost().is_free
