"""EVE machine-model tests (timing, overlap, stall attribution)."""

import pytest

from repro.config import make_system
from repro.core import EveMachine
from repro.core.units import DtuPool, VmuModel, VruModel
from repro.errors import SimulationError
from repro.isa import MemAccess, ScalarBlock, Trace, VectorInstr
from repro.mem.hierarchy import MemorySystem


def make_eve(factor=8):
    return EveMachine(make_system(f"O3+EVE-{factor}"))


def compute_trace(n=8, op="vadd", vl=256):
    trace = Trace("synthetic")
    trace.append(VectorInstr(op="vsetvl", vl=vl))
    for i in range(n):
        trace.append(VectorInstr(op=op, vl=vl, vd=(i % 8) + 1, vs1=10, vs2=20))
    return trace


class TestConstruction:
    def test_requires_eve_config(self):
        with pytest.raises(SimulationError):
            EveMachine(make_system("O3+DV"))

    @pytest.mark.parametrize("factor,vl", [(1, 2048), (8, 1024), (32, 256)])
    def test_hardware_vl_from_layout(self, factor, vl):
        machine = make_eve(factor)
        assert machine.config.vector.hardware_vl == vl

    def test_dtu_free_for_bit_parallel(self):
        machine = make_eve(32)
        machine.run(compute_trace(n=1))
        assert machine.dtu.cycles_per_line == 0.0


class TestComputeTiming:
    def test_busy_cycles_match_rom(self):
        machine = make_eve(8)
        result = machine.run(compute_trace(n=10, op="vadd"))
        per_add = machine.rom.cycles("add", masked=False)
        assert result.breakdown.busy == pytest.approx(10 * per_add)

    def test_mul_slower_than_add(self):
        adds = make_eve(8).run(compute_trace(n=10, op="vadd")).cycles
        muls = make_eve(8).run(compute_trace(n=10, op="vmul")).cycles
        assert muls > 10 * adds

    def test_compute_latency_independent_of_vl(self):
        """All in-situ ALUs run in lock-step: vl does not change cycles."""
        short = make_eve(8).run(compute_trace(n=10, vl=32)).cycles
        full = make_eve(8).run(compute_trace(n=10, vl=1024)).cycles
        assert short == pytest.approx(full)

    def test_breakdown_sums_to_total(self):
        machine = make_eve(8)
        result = machine.run(compute_trace(n=20, op="vmul"))
        assert result.breakdown.total() == pytest.approx(result.cycles, rel=0.01)


class TestMemoryOverlap:
    def load(self, base, vl=1024):
        return VectorInstr(op="vle32", vl=vl, vd=1,
                           mem=MemAccess(base=base, stride=4, count=vl))

    def test_load_then_dependent_compute_stalls(self):
        trace = Trace("ld-use")
        trace.append(VectorInstr(op="vsetvl", vl=1024))
        trace.append(self.load(0))
        trace.append(VectorInstr(op="vadd", vl=1024, vd=2, vs1=1, vs2=1))
        machine = make_eve(8)
        result = machine.run(trace)
        assert result.breakdown.ld_mem_stall > 0

    def test_independent_compute_overlaps_load(self):
        dependent = Trace("dep")
        independent = Trace("indep")
        for trace, src in ((dependent, 1), (independent, 9)):
            trace.append(VectorInstr(op="vsetvl", vl=1024))
            trace.append(self.load(0))
            for _ in range(3):
                trace.append(VectorInstr(op="vmul", vl=1024, vd=2,
                                         vs1=src, vs2=src))
        t_dep = make_eve(8).run(dependent).cycles
        t_indep = make_eve(8).run(independent).cycles
        assert t_indep < t_dep

    def test_store_drain_counts(self):
        trace = Trace("store")
        trace.append(VectorInstr(op="vsetvl", vl=1024))
        trace.append(VectorInstr(op="vse32", vl=1024, vd=1,
                                 mem=MemAccess(base=0, stride=4, count=1024,
                                               is_store=True)))
        result = make_eve(8).run(trace)
        assert result.breakdown.st_mem_stall > 0

    def test_vmfence_waits_for_stores(self):
        with_fence = Trace("fence")
        without = Trace("nofence")
        for trace in (with_fence, without):
            trace.append(VectorInstr(op="vsetvl", vl=1024))
            trace.append(VectorInstr(op="vse32", vl=1024, vd=1,
                                     mem=MemAccess(base=0, stride=4, count=1024,
                                                   is_store=True)))
        with_fence.append(VectorInstr(op="vmfence", vl=0))
        with_fence.append(ScalarBlock(n_instr=1000))
        without.append(ScalarBlock(n_instr=1000))
        assert make_eve(8).run(with_fence).cycles >= \
            make_eve(8).run(without).cycles

    def test_strided_load_hits_mshr_limit(self):
        """The backprop pathology: 64B stride, one line per element."""
        trace = Trace("strided")
        trace.append(VectorInstr(op="vsetvl", vl=1024))
        for i in range(4):
            trace.append(VectorInstr(op="vlse32", vl=1024, vd=i + 1,
                                     mem=MemAccess(base=i * 65536, stride=64,
                                                   count=1024)))
        result = make_eve(8).run(trace)
        assert result.vmu_llc_stall_frac > 0.1

    def test_unit_load_no_mshr_pressure_when_warm(self):
        trace = Trace("warm")
        trace.append(VectorInstr(op="vsetvl", vl=256))
        for _ in range(4):
            trace.append(self.load(0, vl=256))
        machine = make_eve(8)
        result = machine.run(trace)
        assert result.vmu_llc_stall_frac < 0.2


class TestVruPath:
    def test_reduction_uses_vru(self):
        trace = Trace("red")
        trace.append(VectorInstr(op="vsetvl", vl=1024))
        trace.append(VectorInstr(op="vredsum", vl=1024, vs1=1))
        machine = make_eve(8)
        machine.run(trace)
        assert machine.vru.busy_cycles > 0

    def test_back_to_back_reductions_stall(self):
        trace = Trace("reds")
        trace.append(VectorInstr(op="vsetvl", vl=1024))
        for _ in range(4):
            trace.append(VectorInstr(op="vredsum", vl=1024, vs1=1))
        result = make_eve(8).run(trace)
        assert result.breakdown.vru_stall >= 0  # attributed, never negative

    def test_gather_costs_more_than_reduction_stream(self):
        vru = VruModel(segments=4, ports=32)
        t_red = vru.reduce(0.0, active_arrays=32)
        vru.reset()
        t_gather = vru.cross_element(0.0, active_arrays=32)
        assert t_gather > t_red


class TestUnits:
    def test_vmu_stream_counts_lines(self):
        mem = MemorySystem(make_system("O3+EVE-8"))
        vmu = VmuModel(mem)
        result = vmu.stream(0.0, MemAccess(base=0, stride=4, count=256), False)
        assert result.n_lines == 16
        assert result.issue_end >= 16

    def test_dtu_pool_throughput(self):
        pool = DtuPool(num_dtus=8, segments=4, bit_parallel=False)
        done = pool.process(0.0, n_lines=64)
        assert done == pytest.approx(64 * 4 / 8 + 4)

    def test_dtu_bit_parallel_is_free(self):
        pool = DtuPool(num_dtus=8, segments=1, bit_parallel=True)
        assert pool.process(5.0, n_lines=64) == 5.0

    def test_vru_serialises(self):
        vru = VruModel(segments=4, ports=32)
        first = vru.reduce(0.0, 32)
        second = vru.reduce(0.0, 32)
        assert second > first


class TestScalarInteraction:
    def test_scalar_result_stalls_commit(self):
        trace = Trace("vmvxs")
        trace.append(VectorInstr(op="vsetvl", vl=256))
        trace.append(VectorInstr(op="vmul", vl=256, vd=1, vs1=2, vs2=3))
        trace.append(VectorInstr(op="vmv.x.s", vl=1, vs1=1))
        trace.append(ScalarBlock(n_instr=10))
        result = make_eve(8).run(trace)
        # The scalar block runs after the round trip: total must exceed
        # the multiply latency plus the round trip.
        assert result.cycles > make_eve(8).rom.cycles("mul")

    def test_empty_stall_when_starved(self):
        trace = Trace("starved")
        trace.append(ScalarBlock(n_instr=5000))
        trace.append(VectorInstr(op="vsetvl", vl=256))
        trace.append(VectorInstr(op="vadd", vl=256, vd=1, vs1=2, vs2=3))
        result = make_eve(8).run(trace)
        assert result.breakdown.empty_stall > 1000
