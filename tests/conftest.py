"""Shared fixtures: small SRAM geometries, ROMs, and a tiny-input runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import ExperimentRunner
from repro.sram import EveSram, RegisterLayout
from repro.uops import Binding, MacroOpRom, MicroEngine
from repro.workloads import REGISTRY

#: Geometry used by the bit-exact macro-op tests: tall enough that the full
#: register file fits one column group at every factor.
TEST_ROWS = 256
TEST_COLS = 64


def make_layout(factor: int, num_vregs: int | None = None) -> RegisterLayout:
    if num_vregs is None:
        num_vregs = min(8, max(1, TEST_ROWS // (32 // factor)))
    return RegisterLayout(rows=TEST_ROWS, cols=TEST_COLS, element_bits=32,
                          factor=factor, num_vregs=num_vregs)


def wrap32(values) -> np.ndarray:
    as64 = np.asarray(values, dtype=np.int64) & 0xFFFFFFFF
    return (((as64 + 0x8000_0000) % 0x1_0000_0000) - 0x8000_0000).astype(np.int64)


class MacroTester:
    """Runs one macro-op bit-exactly and returns the destination register."""

    def __init__(self, factor: int) -> None:
        self.factor = factor
        self.layout = make_layout(factor)
        self.sram = EveSram(TEST_ROWS, TEST_COLS, factor)
        self.rom = MacroOpRom(factor)
        self.engine = MicroEngine()
        self.n = self.layout.elements_per_array

    def run(self, macro: str, a=None, b=None, m=None, scalar: int = 0,
            **params):
        if a is not None:
            self.sram.write_vreg(self.layout, 1, np.resize(np.asarray(a, np.int64), self.n))
        if b is not None:
            self.sram.write_vreg(self.layout, 2, np.resize(np.asarray(b, np.int64), self.n))
        if m is not None:
            self.sram.write_vreg(self.layout, 4, np.resize(np.asarray(m, np.int64), self.n))
        binding = Binding(layout=self.layout,
                          regs={"vs1": 1, "vs2": 2, "vd": 3, "vm": 4},
                          scalar=scalar)
        cycles = self.engine.run(self.rom.program(macro, **params),
                                 self.sram, binding)
        return self.sram.read_vreg(self.layout, 3), cycles


@pytest.fixture(params=[1, 2, 4, 8, 16, 32], ids=lambda f: f"n{f}")
def macro_tester(request) -> MacroTester:
    return MacroTester(request.param)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(20230225)


#: Small problem sizes so machine-level integration tests stay fast.
TINY_PARAMS = {name: dict(wl.tiny_params) for name, wl in REGISTRY.items()}


@pytest.fixture(scope="session")
def tiny_runner() -> ExperimentRunner:
    return ExperimentRunner(params_override=TINY_PARAMS)
