"""EveSram micro-operation tests (the composed array + stacks)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SramError
from repro.sram import EveSram, RegisterLayout


def bits(values):
    return np.asarray(values, dtype=np.uint8)


@pytest.fixture
def sram():
    return EveSram(rows=32, cols=16, factor=4)


def layout_for(sram, regs=4):
    return RegisterLayout(rows=sram.rows, cols=sram.cols, element_bits=32,
                          factor=sram.factor, num_vregs=regs)


class TestBasicOps:
    def test_wr_rd_roundtrip(self, sram):
        pattern = bits([1, 0] * 8)
        sram.set_data_in(pattern)
        sram.u_wr(5)
        assert np.array_equal(sram.u_rd(5), pattern)

    def test_rd_loads_constant_shifter(self, sram):
        pattern = bits([1] + [0] * 15)
        sram.set_data_in(pattern)
        sram.u_wr(0)
        sram.u_rd(0)
        assert np.array_equal(sram.cshift.flat(), pattern)

    def test_masked_wr(self, sram):
        sram.set_data_in(bits([1] * 16))
        sram.u_wr(0)
        sram.mask.load_groups(bits([1, 0, 1, 0]))
        sram.set_data_in(bits([0] * 16))
        sram.u_wr(0, masked=True)
        row = sram.array.read(0)
        assert list(row) == [0] * 4 + [1] * 4 + [0] * 4 + [1] * 4

    def test_data_in_width_checked(self, sram):
        with pytest.raises(SramError):
            sram.set_data_in(bits([1] * 8))


class TestBlcAndWriteback:
    def setup_rows(self, sram):
        sram.set_data_in(bits([0, 0, 1, 1] * 4))
        sram.u_wr(0)
        sram.set_data_in(bits([0, 1, 0, 1] * 4))
        sram.u_wr(1)

    @pytest.mark.parametrize("src,expected", [
        ("and", [0, 0, 0, 1]), ("or", [0, 1, 1, 1]), ("xor", [0, 1, 1, 0]),
        ("nand", [1, 1, 1, 0]), ("nor", [1, 0, 0, 0]), ("xnor", [1, 0, 0, 1]),
    ])
    def test_logic_sources(self, sram, src, expected):
        self.setup_rows(sram)
        sram.u_blc(0, 1)
        sram.u_wb(2, src)
        assert list(sram.array.read(2)) == expected * 4

    def test_wb_unknown_source(self, sram):
        with pytest.raises(SramError):
            sram.u_wb(0, "sum")

    def test_wb_source_requires_blc(self, sram):
        with pytest.raises(SramError):
            sram.u_wb(0, "xor")

    def test_wb_add_requires_blc(self, sram):
        with pytest.raises(SramError):
            sram.u_wb(0, "add")

    def test_wb_unknown_dest(self, sram):
        self.setup_rows(sram)
        sram.u_blc(0, 1)
        with pytest.raises(SramError):
            sram.u_wb("nowhere", "and")

    def test_wb_to_mask_latches(self, sram):
        self.setup_rows(sram)
        sram.u_blc(0, 1)
        sram.u_wb("mask", "and")
        assert list(sram.mask.bits) == [0, 0, 0, 1] * 4

    def test_wb_mask_groups_uses_lsb_column(self, sram):
        sram.set_data_in(bits([1, 0, 0, 0, 0, 1, 1, 1] + [0] * 8))
        sram.u_wr(0)
        sram.u_blc(0, 0)
        sram.u_wb("mask_groups", "and")
        assert list(sram.mask.group_bits) == [1, 0, 0, 0]

    def test_wb_to_xreg(self, sram):
        self.setup_rows(sram)
        sram.u_blc(0, 0)
        sram.u_wb("xreg", "and")
        assert np.array_equal(sram.xreg.bits.reshape(-1),
                              bits([0, 0, 1, 1] * 4))

    def test_mask_as_source(self, sram):
        sram.mask.load_groups(bits([1, 0, 1, 0]))
        sram.u_wb(3, "mask")
        assert list(sram.array.read(3)) == [1] * 4 + [0] * 4 + [1] * 4 + [0] * 4


class TestCarryPath:
    def test_add_commits_carry(self, sram):
        sram.set_data_in(bits([1, 1, 1, 1] + [0] * 12))  # group 0 = 0xF
        sram.u_wr(0)
        sram.u_blc(0, 0)  # 0xF + 0xF = 0x1E
        sram.u_wb(1, "add")
        assert sram.spare.carry[0] == 1
        assert sram.spare.carry[1] == 0

    def test_carry_feeds_next_add(self, sram):
        sram.set_data_in(bits([1, 1, 1, 1] + [0] * 12))
        sram.u_wr(0)
        sram.set_data_in(bits([0] * 16))
        sram.u_wr(1)
        sram.u_blc(0, 0)
        sram.u_wb(2, "add")            # carry out = 1 in group 0
        sram.u_blc(1, 1)               # 0 + 0 + carry
        sram.u_wb(3, "add")
        assert list(sram.array.read(3)[:4]) == [1, 0, 0, 0]

    def test_set_carry_via_data_in(self, sram):
        sram.set_data_in(bits([1] * 16))
        sram.u_wb("carry", "data_in")
        assert sram.spare.carry.sum() == 4
        sram.clear_carry()
        assert sram.spare.carry.sum() == 0

    def test_bit_serial_carry_lives_in_xreg(self):
        serial = EveSram(rows=32, cols=4, factor=1)
        serial.set_data_in(bits([1, 1, 0, 0]))
        serial.u_wr(0)
        serial.u_blc(0, 0)  # 1+1 per column
        serial.u_wb(1, "add")
        assert list(serial.xreg.bits[:, 0]) == [1, 1, 0, 0]

    def test_mask_from_carry(self, sram):
        sram.spare.set_carry(bits([1, 0, 1, 0]))
        sram.u_mask_from_carry()
        assert list(sram.mask.group_bits) == [1, 0, 1, 0]
        sram.u_mask_from_carry(invert=True)
        assert list(sram.mask.group_bits) == [0, 1, 0, 1]

    def test_mask_from_carry_lsb_only(self, sram):
        sram.spare.set_carry(bits([1, 1, 0, 0]))
        sram.u_mask_from_carry(lsb_only=True)
        assert list(sram.mask.bits) == [1, 0, 0, 0, 1, 0, 0, 0] + [0] * 8


class TestMaskWalks:
    def test_mask_shft_lsb_walk(self, sram):
        sram.xreg.load(bits([1, 0, 1, 0] * 4))  # every group value 0b0101
        sram.u_mask_shft()
        assert list(sram.mask.group_bits) == [1, 1, 1, 1]
        sram.u_mask_shft()
        assert list(sram.mask.group_bits) == [0, 0, 0, 0]

    def test_mask_shftl_msb_walk(self, sram):
        sram.xreg.load(bits([0, 0, 0, 1] + [0, 0, 0, 0] * 3))
        sram.u_mask_shftl()
        assert list(sram.mask.group_bits) == [1, 0, 0, 0]
        sram.u_mask_shftl()
        assert list(sram.mask.group_bits) == [0, 0, 0, 0]


class TestVregAccess:
    @settings(max_examples=25, deadline=None)
    @given(factor=st.sampled_from([1, 2, 4, 8, 16, 32]),
           seed=st.integers(0, 1000))
    def test_roundtrip_property(self, factor, seed):
        rng = np.random.default_rng(seed)
        sram = EveSram(rows=256, cols=32, factor=factor)
        layout = RegisterLayout(rows=256, cols=32, element_bits=32,
                                factor=factor,
                                num_vregs=max(1, min(4, 256 // (32 // factor))))
        n = layout.elements_per_array
        values = rng.integers(-2 ** 31, 2 ** 31, n)
        sram.write_vreg(layout, 0, values)
        assert np.array_equal(sram.read_vreg(layout, 0), values)

    def test_write_read_roundtrip(self):
        rng = np.random.default_rng(3)
        for factor in (1, 2, 4, 8, 16, 32):
            sram = EveSram(rows=256, cols=64, factor=factor)
            layout = RegisterLayout(rows=256, cols=64, element_bits=32,
                                    factor=factor,
                                    num_vregs=max(1, 256 // (32 // factor)))
            n = layout.elements_per_array
            values = rng.integers(-2 ** 31, 2 ** 31, n)
            sram.write_vreg(layout, 0, values)
            assert np.array_equal(sram.read_vreg(layout, 0), values)

    def test_registers_do_not_interfere(self):
        sram = EveSram(rows=64, cols=16, factor=4)
        layout = layout_for(sram, regs=8)
        n = layout.elements_per_array
        sram.write_vreg(layout, 0, np.full(n, 111))
        sram.write_vreg(layout, 1, np.full(n, -222))
        assert (sram.read_vreg(layout, 0) == 111).all()
        assert (sram.read_vreg(layout, 1) == -222).all()

    def test_layout_mismatch_rejected(self, sram):
        wrong = RegisterLayout(rows=32, cols=32, element_bits=32, factor=4,
                               num_vregs=4)
        with pytest.raises(SramError):
            sram.write_vreg(wrong, 0, np.zeros(8))

    def test_multi_group_layout_rejected(self):
        sram = EveSram(rows=64, cols=64, factor=1)
        layout = RegisterLayout(rows=64, cols=64, element_bits=32, factor=1,
                                num_vregs=4)  # needs 128 rows per column
        with pytest.raises(SramError):
            sram.write_vreg(layout, 0, np.zeros(layout.elements_per_array))

    def test_wrong_length_rejected(self, sram):
        layout = layout_for(sram)
        with pytest.raises(SramError):
            sram.write_vreg(layout, 0, np.zeros(99))
