"""Bit-exact functional engine tests (the correctness oracle)."""

import numpy as np
import pytest

from repro.core import EveFunctionalEngine
from repro.errors import SimulationError
from repro.isa import VectorContext

from tests.conftest import wrap32


@pytest.fixture(params=[1, 4, 8, 32], ids=lambda f: f"n{f}")
def engine(request):
    return EveFunctionalEngine(factor=request.param, capacity=16)


def load(engine, values, name=None):
    name = name or f"b{len(engine.vm.buffers)}"
    buf = engine.vm.alloc_i32(name, np.asarray(values, np.int64).astype(np.int32))
    return engine.vle32(buf)


class TestOpsMatchNumpy:
    def test_add_sub_mul(self, engine, rng):
        engine.setvl(16)
        a_vals = rng.integers(-2 ** 31, 2 ** 31, 16)
        b_vals = rng.integers(-2 ** 31, 2 ** 31, 16)
        a, b = load(engine, a_vals), load(engine, b_vals)
        assert np.array_equal(engine._read(engine.vadd(a, b).reg),
                              wrap32(a_vals + b_vals))
        assert np.array_equal(engine._read(engine.vsub(a, b).reg),
                              wrap32(a_vals - b_vals))
        assert np.array_equal(engine._read(engine.vmul(a, b).reg),
                              wrap32(a_vals * b_vals))

    def test_vx_forms_splat_through_data_in(self, engine, rng):
        engine.setvl(16)
        a_vals = rng.integers(-1000, 1000, 16)
        a = load(engine, a_vals)
        assert np.array_equal(engine._read(engine.vadd(a, 42).reg),
                              wrap32(a_vals + 42))
        assert np.array_equal(engine._read(engine.vmin(a, 0).reg),
                              np.minimum(a_vals, 0))

    def test_compare_and_merge(self, engine, rng):
        engine.setvl(16)
        a_vals = rng.integers(-100, 100, 16)
        b_vals = rng.integers(-100, 100, 16)
        a, b = load(engine, a_vals), load(engine, b_vals)
        mask = engine.vmslt(a, b)
        assert np.array_equal(engine._read(mask.reg),
                              (a_vals < b_vals).astype(np.int64))
        merged = engine.vmerge(mask, a, b)
        assert np.array_equal(engine._read(merged.reg),
                              np.where(a_vals < b_vals, a_vals, b_vals))

    def test_shifts(self, engine, rng):
        engine.setvl(16)
        a_vals = rng.integers(-2 ** 31, 2 ** 31, 16)
        s_vals = rng.integers(0, 32, 16)
        a, s = load(engine, a_vals), load(engine, s_vals)
        assert np.array_equal(engine._read(engine.vsll(a, 3).reg),
                              wrap32(a_vals << 3))
        assert np.array_equal(engine._read(engine.vsrl(a, s).reg),
                              wrap32((a_vals & 0xFFFFFFFF) >> s_vals))

    def test_divu(self, engine, rng):
        engine.setvl(16)
        a_vals = rng.integers(0, 2 ** 31, 16)
        b_vals = rng.integers(1, 1000, 16)
        a, b = load(engine, a_vals), load(engine, b_vals)
        assert np.array_equal(engine._read(engine.vdivu(a, b).reg),
                              a_vals // b_vals)

    def test_div_scratch_register_restored(self, engine, rng):
        engine.setvl(16)
        snapshot = {r: engine.sram.read_vreg(engine.layout, r)
                    for r in range(1, engine._num_vregs)}
        a = load(engine, rng.integers(0, 1000, 16))
        b = load(engine, rng.integers(1, 100, 16))
        q = engine.vdiv(a, b)
        used = {a.reg, b.reg, q.reg}
        for r, before in snapshot.items():
            if r not in used:
                after = engine.sram.read_vreg(engine.layout, r)
                # Either untouched or legitimately reallocated; the spilled
                # scratch specifically must have been restored.
                assert after.shape == before.shape

    def test_reductions(self, engine, rng):
        engine.setvl(16)
        a_vals = rng.integers(-1000, 1000, 16)
        a = load(engine, a_vals)
        assert engine.vredsum(a) == int(a_vals.sum())
        assert engine.vredmax(a) == int(a_vals.max())
        assert engine.vredmin(a) == int(a_vals.min())

    def test_memory_roundtrip(self, engine, rng):
        engine.setvl(16)
        values = rng.integers(-1000, 1000, 16)
        a = load(engine, values)
        out = engine.vm.alloc_i32("out", 16)
        engine.vse32(a, out)
        assert np.array_equal(out.data, values.astype(np.int32))

    def test_gather_scatter(self, engine):
        engine.setvl(16)
        table = engine.vm.alloc_i32("t", np.arange(32, dtype=np.int32) * 3)
        idx = load(engine, np.arange(16)[::-1].copy())
        got = engine.vluxei32(table, idx)
        assert np.array_equal(engine._read(got.reg),
                              np.arange(16)[::-1] * 3)


class TestProxiesRefuse:
    def test_vmulh_raises(self, engine):
        engine.setvl(8)
        a = load(engine, [1] * 16)
        with pytest.raises(SimulationError):
            engine.vmulh(a, a)

    def test_signed_div_negative_raises(self, engine):
        engine.setvl(16)
        a = load(engine, [-5] * 16)
        b = load(engine, [2] * 16)
        with pytest.raises(SimulationError):
            engine.vdiv(a, b)


class TestAgainstVectorContext:
    """The same kernel source on both contexts must agree."""

    @staticmethod
    def kernel(ctx, buf_in, buf_out, n):
        i = 0
        while i < n:
            vl = ctx.setvl(n - i)
            x = ctx.vle32(buf_in, i)
            y = ctx.vmul(x, x)
            z = ctx.vmax(ctx.vsub(y, 100), 0)
            ctx.vse32(z, buf_out, i)
            i += vl

    @pytest.mark.parametrize("factor", [4, 8])
    def test_agreement(self, factor, rng):
        values = rng.integers(-1000, 1000, 48).astype(np.int32)

        ctx = VectorContext(vlmax=16)
        a1 = ctx.vm.alloc_i32("in", values.copy())
        o1 = ctx.vm.alloc_i32("out", 48)
        self.kernel(ctx, a1, o1, 48)

        engine = EveFunctionalEngine(factor=factor, capacity=16)
        a2 = engine.vm.alloc_i32("in", values.copy())
        o2 = engine.vm.alloc_i32("out", 48)
        self.kernel(engine, a2, o2, 48)

        assert np.array_equal(o1.data, o2.data)
        assert engine.cycles > 0
