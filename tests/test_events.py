"""Campaign telemetry: event schema, conservation, merge determinism,
watchdog, progress, trends, and the offline HTML report."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import EventLogError
from repro.experiments import ExperimentRunner, ParallelRunner
from repro.obs.events import (CAMPAIGN_UNIT, CampaignTelemetry, Event,
                              EventLog, LIVE_EVENTS, TERMINAL_EVENTS,
                              TelemetryMonitor, Watchdog,
                              campaign_summaries, check_conservation,
                              read_events)
from repro.obs.htmlreport import build_report, spark_svg, write_report
from repro.obs.progress import (ProgressRenderer, format_bar,
                                format_duration, make_progress)
from repro.obs.runstore import RunStore, make_record
from repro.obs.trend import (compute_trends, filter_history,
                             historical_cell_seconds, record_matches,
                             select_records, sparkline, trend_report)
from repro.workloads import REGISTRY

TINY_PARAMS = {name: dict(wl.tiny_params) for name, wl in REGISTRY.items()}

SYSTEMS = ("IO", "O3+EVE-4")
WORKLOADS = ("vvadd",)
PAIRS = [(s, w) for w in WORKLOADS for s in SYSTEMS]


def _telemetry(**kwargs):
    kwargs.setdefault("campaign_id", "test-campaign")
    return CampaignTelemetry("sweep", **kwargs)


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- schema --------------------------------------------------------------------


class TestEventSchema:
    def test_round_trip(self):
        event = Event(event="finished", unit="IO/vvadd", t=1.25,
                      campaign="c1", seq=3, worker="1234",
                      fingerprint="abc", detail={"cycles": 10.0})
        doc = event.to_json_dict()
        back = Event.from_json_dict(doc)
        assert back == event
        # And through actual JSON text, as the log stores it.
        assert Event.from_json_dict(json.loads(json.dumps(doc))) == event

    def test_rejects_wrong_schema_version(self):
        doc = Event(event="queued", unit="u", t=0.0,
                    campaign="c").to_json_dict()
        doc["v"] = 99
        with pytest.raises(EventLogError, match="version"):
            Event.from_json_dict(doc)

    def test_rejects_unknown_kind(self):
        doc = Event(event="queued", unit="u", t=0.0,
                    campaign="c").to_json_dict()
        doc["event"] = "teleported"
        with pytest.raises(EventLogError, match="unknown event kind"):
            Event.from_json_dict(doc)

    def test_rejects_non_object(self):
        with pytest.raises(EventLogError, match="object"):
            Event.from_json_dict(["not", "an", "event"])

    def test_emit_rejects_unknown_kind(self):
        with pytest.raises(EventLogError, match="unknown event kind"):
            _telemetry(clock=FakeClock()).emit("exploded", "u")


class TestEventLog:
    def test_append_and_read(self, tmp_path):
        log = EventLog(str(tmp_path / "events.jsonl"))
        events = [Event(event="queued", unit="u", t=0.0, campaign="c",
                        seq=0),
                  Event(event="finished", unit="u", t=1.0, campaign="c",
                        seq=1)]
        assert log.append(events) == 2
        assert log.append([]) == 0
        assert log.read() == events

    def test_campaign_and_tail_filters(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = EventLog(path)
        log.append([Event(event="queued", unit="u", t=0.0, campaign=c)
                    for c in ("a", "a", "b")])
        assert [e.campaign for e in read_events(path, campaign="b")] == ["b"]
        assert len(read_events(path, tail=2)) == 2

    def test_missing_log_raises(self, tmp_path):
        with pytest.raises(EventLogError, match="no event log"):
            read_events(str(tmp_path / "absent.jsonl"))

    def test_corrupt_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"bad json\n')
        with pytest.raises(EventLogError, match=":1:"):
            read_events(str(path))


# -- conservation --------------------------------------------------------------


def _lifecycle(campaign, unit, terminal="finished"):
    return [Event(event="queued", unit=unit, t=0.0, campaign=campaign),
            Event(event="started", unit=unit, t=0.1, campaign=campaign),
            Event(event=terminal, unit=unit, t=0.2, campaign=campaign)]


class TestConservation:
    def test_clean_log_conserves(self):
        events = _lifecycle("c", "a") + _lifecycle("c", "b", "cache_hit")
        assert check_conservation(events) == []

    def test_missing_terminal_is_flagged(self):
        events = _lifecycle("c", "a")[:-1]
        assert any("0 terminal" in v for v in check_conservation(events))

    def test_double_terminal_is_flagged(self):
        events = _lifecycle("c", "a") + [
            Event(event="failed", unit="a", t=0.3, campaign="c")]
        assert any("2 terminal" in v for v in check_conservation(events))

    def test_unqueued_terminal_is_flagged(self):
        events = [Event(event="finished", unit="ghost", t=0.0, campaign="c")]
        assert any("never queued" in v for v in check_conservation(events))

    def test_campaign_scope_events_are_exempt(self):
        events = [Event(event="campaign_started", unit=CAMPAIGN_UNIT,
                        t=0.0, campaign="c")] + _lifecycle("c", "a")
        assert check_conservation(events) == []


# -- the hub: determinism and lifecycle ----------------------------------------


class TestCampaignTelemetry:
    def test_unit_lifecycle_order(self):
        clock = FakeClock()
        hub = _telemetry(clock=clock)
        hub.begin(["a", "b"])
        # Finish out of input order; the merge must restore it.
        hub.unit_finished("b", ok=True)
        hub.unit_finished("a", ok=False, detail={"error": "X: boom"})
        summary = hub.finalize()
        kinds = [(e.unit, e.event) for e in hub.ordered_events()]
        assert kinds == [("*", "campaign_started"),
                         ("a", "queued"), ("a", "started"), ("a", "failed"),
                         ("b", "queued"), ("b", "started"), ("b", "finished"),
                         ("*", "campaign_finished")]
        assert summary["units"] == 2
        assert summary["counts"]["failed"] == 1

    def test_cached_unit_skips_started(self):
        hub = _telemetry(clock=FakeClock())
        hub.begin(["a"])
        hub.unit_finished("a", cached=True)
        kinds = [e.event for e in hub.ordered_events()
                 if e.unit == "a"]
        assert kinds == ["queued", "cache_hit"]

    def test_cache_corrupt_extra_event_is_counted(self):
        hub = _telemetry(clock=FakeClock())
        hub.begin(["a"])
        hub.unit_finished("a", events=[("cache_corrupt", {"path": "p"})])
        kinds = [e.event for e in hub.ordered_events() if e.unit == "a"]
        assert kinds == ["queued", "started", "cache_corrupt", "finished"]
        assert hub.finalize()["counts"]["cache_corrupt"] == 1

    def test_finalize_is_idempotent(self, tmp_path):
        log = EventLog(str(tmp_path / "events.jsonl"))
        hub = _telemetry(clock=FakeClock(), log=log)
        hub.begin(["a"])
        hub.unit_finished("a")
        first = hub.finalize()
        assert hub.finalize() is first
        assert len(log.read()) == first["written"]

    def test_sequence_numbers_are_dense(self, tmp_path):
        log = EventLog(str(tmp_path / "events.jsonl"))
        hub = _telemetry(clock=FakeClock(), log=log)
        hub.begin(["a", "b"])
        hub.unit_finished("b")
        hub.unit_finished("a")
        hub.finalize()
        assert [e.seq for e in log.read()] == list(range(8))

    def test_worker_timestamps_are_campaign_relative(self):
        clock = FakeClock(100.0)
        hub = _telemetry(clock=clock)
        hub.begin(["a"])
        clock.advance(2.0)
        hub.unit_finished("a", t_start=101.0, t_end=102.0, worker="777")
        events = {e.event: e for e in hub.ordered_events() if e.unit == "a"}
        assert events["started"].t == pytest.approx(1.0)
        assert events["finished"].t == pytest.approx(2.0)
        assert events["finished"].worker == "777"


class TestWatchdog:
    def test_requires_factor_above_one(self):
        with pytest.raises(EventLogError, match="factor"):
            Watchdog(factor=1.0)

    def test_cold_watchdog_never_fires(self):
        dog = Watchdog()
        assert dog.threshold() is None
        assert not dog.is_stalled(1e9)

    def test_hint_seeds_the_threshold(self):
        dog = Watchdog(factor=4.0, hint_seconds=2.0)
        assert dog.threshold() == pytest.approx(8.0)
        assert dog.is_stalled(8.1)
        assert not dog.is_stalled(7.9)

    def test_observed_durations_take_over(self):
        dog = Watchdog(factor=2.0, hint_seconds=100.0, min_history=3)
        for seconds in (1.0, 1.0, 1.0):
            dog.observe(seconds)
        assert dog.p95() == pytest.approx(1.0)
        assert dog.threshold() == pytest.approx(2.0)

    def test_min_seconds_floor(self):
        dog = Watchdog(factor=4.0, hint_seconds=0.001, min_seconds=0.5)
        assert dog.threshold() == pytest.approx(0.5)

    def test_stall_flagged_once_for_injected_slow_unit(self):
        clock = FakeClock()
        hub = _telemetry(clock=clock,
                         watchdog=Watchdog(factor=2.0, hint_seconds=1.0,
                                           min_seconds=0.0),
                         heartbeat_every=0.0)
        hub.begin(["slow", "fast"])
        # "slow" has been in flight since t=0; cross the 2s threshold.
        clock.advance(3.0)
        hub.heartbeat({"slow": 0.0, "fast": 2.9})
        hub.heartbeat({"slow": 0.0, "fast": 2.9})
        assert hub.stalled_units == ["slow"]
        stalls = [e for e in hub.ordered_events() if e.event == "stalled"]
        assert len(stalls) == 1
        assert stalls[0].unit == "slow"
        assert stalls[0].detail["threshold_seconds"] == pytest.approx(2.0)
        hub.unit_finished("slow")
        hub.unit_finished("fast")
        assert hub.finalize()["stalled"] == ["slow"]


class TestTelemetryMonitor:
    def test_in_flight_tracks_oldest_open_units(self):
        hub = _telemetry(clock=FakeClock())
        monitor = TelemetryMonitor(hub, ["a", "b", "c"], jobs=2)
        for i in range(3):
            monitor.on_dispatch(i)
        assert set(monitor.in_flight()) == {"a", "b"}
        monitor.on_complete(0, {"value": None, "error": None,
                                "t0": None, "t1": None, "pid": 1})
        assert set(monitor.in_flight()) == {"b", "c"}

    def test_error_becomes_failed_event(self):
        hub = _telemetry(clock=FakeClock())
        hub.begin(["a"])
        monitor = TelemetryMonitor(hub, ["a"])
        monitor.on_dispatch(0)
        monitor.on_complete(0, {"value": None, "error": ValueError("boom"),
                                "t0": None, "t1": None, "pid": 9})
        terminal = [e for e in hub.ordered_events()
                    if e.event in TERMINAL_EVENTS]
        assert [e.event for e in terminal] == ["failed"]
        assert "ValueError: boom" in terminal[0].detail["error"]


# -- end to end: serial vs parallel sweeps -------------------------------------


def _sweep_events(tmp_path, jobs, name):
    log = EventLog(str(tmp_path / f"{name}.jsonl"))
    hub = CampaignTelemetry("sweep", log=log, campaign_id=name)
    if jobs == 1:
        runner = ExperimentRunner(params_override=TINY_PARAMS, telemetry=hub)
    else:
        runner = ParallelRunner(params_override=TINY_PARAMS, jobs=jobs,
                                cache_root=str(tmp_path / f"cache-{name}"),
                                telemetry=hub)
    stats = runner.prefetch(PAIRS)
    hub.finalize()
    return stats, log.read()


class TestSweepTelemetry:
    def test_conservation_serial_vs_jobs2(self, tmp_path):
        for jobs, name in ((1, "serial"), (2, "pool")):
            _, events = _sweep_events(tmp_path, jobs, name)
            assert check_conservation(events) == []
            terminal = [e for e in events if e.event in TERMINAL_EVENTS]
            assert len(terminal) == len(PAIRS)

    def test_merge_order_is_deterministic(self, tmp_path):
        _, serial = _sweep_events(tmp_path, 1, "serial")
        _, pooled = _sweep_events(tmp_path, 2, "pool")

        def deterministic(events):
            return [(e.unit, e.event) for e in events
                    if e.event not in LIVE_EVENTS]

        assert deterministic(serial) == deterministic(pooled)

    def test_results_identical_with_and_without_telemetry(self, tmp_path):
        bare = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                              cache_root=str(tmp_path / "cache-bare"))
        bare.prefetch(PAIRS)
        _, _ = _sweep_events(tmp_path, 2, "pool")
        observed = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                                  cache_root=str(tmp_path / "cache-pool"))
        # Re-run over the observed run's cache: cycles must agree with
        # the never-instrumented sweep bit-for-bit.
        assert {(s, w): bare.run(s, w).cycles for s, w in PAIRS} == \
               {(s, w): observed.run(s, w).cycles for s, w in PAIRS}

    def test_cache_hits_emit_cache_hit_events(self, tmp_path):
        log = EventLog(str(tmp_path / "warm.jsonl"))
        root = str(tmp_path / "cache")
        ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                       cache_root=root).prefetch(PAIRS)
        hub = CampaignTelemetry("sweep", log=log, campaign_id="warm")
        runner = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                                cache_root=root, telemetry=hub)
        stats = runner.prefetch(PAIRS)
        hub.finalize()
        assert stats["cache_hits"] == len(PAIRS)
        assert stats["cache_corrupt"] == 0
        hits = [e for e in log.read() if e.event == "cache_hit"]
        assert len(hits) == len(PAIRS)
        assert check_conservation(log.read()) == []

    def test_corrupt_cache_entry_quarantined_and_reported(self, tmp_path):
        root = str(tmp_path / "cache")
        ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                       cache_root=root).prefetch(PAIRS)
        # Smash every cached cell result.
        corrupted = []
        for dirpath, _, names in os.walk(os.path.join(root, "results")):
            for name in names:
                path = os.path.join(dirpath, name)
                with open(path, "wb") as handle:
                    handle.write(b"garbage")
                corrupted.append(path)
        assert corrupted
        log = EventLog(str(tmp_path / "corrupt.jsonl"))
        hub = CampaignTelemetry("sweep", log=log, campaign_id="corrupt")
        runner = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                                cache_root=root, telemetry=hub)
        stats = runner.prefetch(PAIRS)
        hub.finalize()
        assert stats["cache_corrupt"] == len(corrupted)
        assert stats["simulated"] == len(PAIRS)
        events = log.read()
        assert len([e for e in events if e.event == "cache_corrupt"]) \
            == len(corrupted)
        assert check_conservation(events) == []
        # Quarantined, not deleted: the bad bytes survive for forensics
        # (the re-simulated cell re-populates the original path).
        for path in corrupted:
            assert os.path.exists(path + ".corrupt")
            with open(path + ".corrupt", "rb") as handle:
                assert handle.read() == b"garbage"


# -- summaries -----------------------------------------------------------------


class TestCampaignSummaries:
    def test_rollup_fields(self, tmp_path):
        _, events = _sweep_events(tmp_path, 2, "pool")
        (summary,) = campaign_summaries(events)
        assert summary["campaign"] == "pool"
        assert summary["kind"] == "sweep"
        assert summary["units"] == len(PAIRS)
        assert summary["conserved"] is True
        assert summary["counts"]["queued"] == len(PAIRS)

    def test_violation_marks_campaign(self):
        events = _lifecycle("c", "a")[:-1]
        (summary,) = campaign_summaries(events)
        assert summary["conserved"] is False


# -- progress ------------------------------------------------------------------


class TestProgress:
    def test_format_duration(self):
        assert format_duration(3.21) == "3.2s"
        assert format_duration(73.2) == "1m13s"
        assert format_duration(7321) == "2h02m"
        assert format_duration(-1) == "?"

    def test_format_bar(self):
        assert format_bar(0.5, width=4) == "##--"
        assert format_bar(2.0, width=4) == "####"

    def test_plain_mode_emits_lines(self):
        import io
        clock = FakeClock()
        stream = io.StringIO()
        bar = ProgressRenderer("sweep", mode="plain", stream=stream,
                               clock=clock, plain_every=5.0)
        bar.begin(4)
        clock.advance(6.0)
        bar.update(2)
        bar.update(4)
        bar.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0].startswith("sweep: [")
        assert any("2/4" in line for line in lines)
        assert any("4/4" in line for line in lines)

    def test_eta_prefers_observed_rate(self):
        clock = FakeClock()
        bar = ProgressRenderer(mode="off", clock=clock, hint_seconds=100.0)
        bar.begin(4)
        assert bar.eta_seconds() == pytest.approx(400.0)
        clock.advance(2.0)
        bar.update(2)
        assert bar.eta_seconds() == pytest.approx(2.0)

    def test_render_shows_failures_and_stalls(self):
        bar = ProgressRenderer(mode="off", clock=FakeClock())
        bar.begin(3)
        bar.update(1, cached=1)
        line = bar.render(cached=1, failed=1, stalled=1, active=["a", "b"])
        assert "1 cached" in line and "1 FAILED" in line
        assert "1 stalled" in line and "<a, b>" in line

    def test_make_progress_quiet_and_non_tty(self):
        import io
        assert make_progress("sweep", quiet=True) is None
        assert make_progress("sweep", stream=io.StringIO()) is None
        forced = make_progress("sweep", force=True, stream=io.StringIO())
        assert forced is not None and forced.mode == "plain"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            ProgressRenderer(mode="fancy")


# -- trends --------------------------------------------------------------------


def _trend_record(label, cycles, extra_sweep=None):
    record = make_record("sweep", label=label)
    record.add_result("IO", "vvadd", cycles=cycles, time_ns=cycles)
    record.add_result("O3+EVE-4", "vvadd", cycles=cycles / 10,
                      time_ns=cycles / 10)
    record.speedup_baseline = "IO"
    record.speedups = {"vvadd": {"O3+EVE-4": 10.0}}
    if extra_sweep:
        record.extra["sweep"] = extra_sweep
    return record


class TestTrends:
    def test_record_matches_filters(self):
        record = _trend_record("r", 100.0)
        assert record_matches(record, kind="sweep")
        assert not record_matches(record, kind="fuzz")
        assert record_matches(record, workload="vvadd")
        assert not record_matches(record, workload="sw")
        assert record_matches(record, system="O3+EVE-4")
        assert not record_matches(record, system="O3+DV")

    def test_select_records_keeps_order_and_truncates(self):
        records = [_trend_record(str(i), 100.0 + i) for i in range(5)]
        picked = select_records(records, kind="sweep", last=2)
        assert [r.label for r in picked] == ["3", "4"]

    def test_stable_metric_is_same(self):
        trends = compute_trends([_trend_record("a", 100.0),
                                 _trend_record("b", 100.0)])
        cycles = next(t for t in trends if t.name == "results.IO.vvadd.cycles")
        assert cycles.status == "same"
        assert not cycles.regressed

    def test_cycle_growth_regresses_under_the_diff_policy(self):
        trends = compute_trends([_trend_record("a", 100.0),
                                 _trend_record("b", 150.0)])
        cycles = next(t for t in trends if t.name == "results.IO.vvadd.cycles")
        assert cycles.status == "regressed"
        assert cycles.regressed
        assert cycles.rel_delta == pytest.approx(0.5)

    def test_single_point_is_new(self):
        trends = compute_trends([_trend_record("a", 100.0)])
        assert all(t.status == "new" for t in trends)

    def test_trend_report_collects_regressions(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(_trend_record("a", 100.0))
        store.append(_trend_record("b", 150.0))
        report = trend_report(store, kind="sweep")
        assert report.records == 2
        assert "results.IO.vvadd.cycles" in [t.name for t in report.regressions()]
        payload = report.to_json_dict()
        assert payload["records"] == 2
        assert "results.IO.vvadd.cycles" in payload["regressions"]

    def test_filter_history(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(_trend_record("a", 100.0))
        store.append(_trend_record("b", 110.0))
        rows = filter_history(store, workload="vvadd")
        assert [r["label"] for r in rows] == ["b", "a"]  # newest first
        assert filter_history(store, workload="sw") == []
        assert len(filter_history(store, workload="vvadd", limit=1)) == 1

    def test_historical_cell_seconds(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        assert historical_cell_seconds(store) is None
        store.append(_trend_record("a", 100.0,
                                   {"seconds": 8.0, "simulated": 4}))
        store.append(_trend_record("b", 100.0,
                                   {"seconds": 0.0, "simulated": 0}))
        assert historical_cell_seconds(store) == pytest.approx(2.0)

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 0.5, 1.0])
        assert line[0] == "▁" and line[-1] == "█"


# -- the HTML report -----------------------------------------------------------


class TestHtmlReport:
    def test_report_is_self_contained(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(_trend_record("a", 100.0))
        store.append(_trend_record("b", 150.0))
        _, events = _sweep_events(tmp_path, 1, "serial")
        html = build_report(store, events, generated="2026-01-01")
        assert html.startswith("<!DOCTYPE html>")
        for forbidden in ("http://", "https://", "<script", "@import"):
            assert forbidden not in html
        assert "results.IO.vvadd.cycles" in html
        assert "REGRESSED" in html
        assert "serial" in html  # the campaign rollup

    def test_empty_store_still_renders(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        html = build_report(store, [])
        assert "<!DOCTYPE html>" in html
        assert "no records" in html or "0 record" in html.lower() \
            or "empty" in html.lower()

    def test_write_report_returns_size(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        out = tmp_path / "report.html"
        size = write_report(str(out), store)
        assert size == out.stat().st_size > 0

    def test_spark_svg(self):
        assert spark_svg([]) == ""
        assert spark_svg([1.0]) == ""
        svg = spark_svg([1.0, 2.0, 3.0])
        assert svg.startswith("<svg") and "polyline" in svg

    def test_detail_strings_are_escaped(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        record = _trend_record("<script>alert(1)</script>", 100.0)
        store.append(record)
        html = build_report(store, [])
        assert "<script>alert" not in html
