"""Workload correctness, characterisation sanity, and determinism."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.isa.opcodes import Category
from repro.workloads import REGISTRY, get_workload, workload_names

ALL = sorted(REGISTRY)


class TestRegistry:
    def test_seven_table4_workloads(self):
        assert workload_names() == sorted(
            ["vvadd", "mmult", "k-means", "pathfinder", "jacobi-2d",
             "backprop", "sw"])

    def test_unknown_workload(self):
        with pytest.raises(WorkloadError):
            get_workload("linpack")

    def test_suites_assigned(self):
        suites = {wl.suite for wl in REGISTRY.values()}
        assert suites == {"kernel", "rodinia", "rivec", "genomics"}


@pytest.mark.parametrize("name", ALL)
class TestCorrectness:
    """vector_trace() self-verifies against the numpy reference; a passing
    build at several VLMAXes is the functional proof."""

    def test_verifies_at_vl64(self, name):
        trace = get_workload(name).vector_trace(64, get_workload(name).tiny_params)
        assert len(trace) > 0

    def test_verifies_at_long_vl(self, name):
        trace = get_workload(name).vector_trace(2048, get_workload(name).tiny_params)
        assert len(trace) > 0

    def test_longer_vl_means_fewer_instructions(self, name):
        wl = get_workload(name)
        short = wl.vector_trace(8, wl.tiny_params).stats().vector_instrs
        long_ = wl.vector_trace(2048, wl.tiny_params).stats().vector_instrs
        assert long_ <= short

    def test_inputs_deterministic(self, name):
        wl = get_workload(name)
        a = wl.make_inputs(wl.tiny_params)
        b = wl.make_inputs(wl.tiny_params)
        for key in a:
            assert np.array_equal(a[key], b[key])

    def test_scalar_trace_nonempty(self, name):
        wl = get_workload(name)
        trace = wl.scalar_trace(wl.tiny_params)
        stats = trace.stats()
        assert stats.scalar_instrs > 0
        assert stats.vector_instrs == 0


class TestCharacterisation:
    """Table IV's qualitative mix properties at the default sizes."""

    @pytest.fixture(scope="class")
    def stats(self):
        return {name: get_workload(name).vector_trace(
            64, get_workload(name).tiny_params).stats() for name in ALL}

    def test_vector_ops_dominate(self, stats):
        for name, s in stats.items():
            assert s.vo_pct > 90, name  # Table IV: VO% is 96-98

    def test_vvadd_is_memory_heavy(self, stats):
        s = stats["vvadd"]
        assert s.mix_pct(Category.MEM_UNIT) > 50
        assert s.arith_intensity < 0.5

    def test_mmult_backprop_have_multiplies(self, stats):
        assert stats["mmult"].mix_pct(Category.IMUL) > 10
        assert stats["backprop"].mix_pct(Category.IMUL) > 10

    def test_backprop_is_strided(self, stats):
        assert stats["backprop"].mix_pct(Category.MEM_STRIDE) > 10

    def test_kmeans_uses_gathers_and_strides(self, stats):
        s = stats["k-means"]
        assert s.mix_pct(Category.MEM_INDEX) > 0
        assert s.mix_pct(Category.MEM_STRIDE) > 0

    def test_pathfinder_is_predicated(self, stats):
        assert stats["pathfinder"].prd_pct > 10  # Table IV: 25%

    def test_sw_has_gathers_and_reductions(self, stats):
        s = stats["sw"]
        assert s.mix_pct(Category.MEM_INDEX) > 0
        assert s.mix_pct(Category.XELEM) > 0

    def test_jacobi_mix(self, stats):
        s = stats["jacobi-2d"]
        assert s.mix_pct(Category.MEM_UNIT) > 30
        assert 0 < s.mix_pct(Category.IMUL) < 15  # one multiply per strip


class TestStridePathology:
    def test_backprop_stride_is_line_sized(self):
        """Section VII-B: no two backprop elements share a cache line."""
        wl = get_workload("backprop")
        # Small input but the paper's 16 hidden units: 64-byte stride.
        trace = wl.vector_trace(64, {"n_in": 128, "n_hidden": 16})
        strided = [i for i in trace.vector_instrs() if i.op == "vlse32"]
        assert strided
        for instr in strided:
            assert instr.mem.stride == 64
            assert len(instr.mem.line_addresses()) == instr.vl

    def test_verification_failure_detected(self):
        """A corrupted kernel output must be caught by the self-check."""
        wl = get_workload("vvadd")
        original = wl.reference

        def broken(inputs, params):
            out = original(inputs, params)
            out["c"] = out["c"] + 1
            return out

        wl.reference = broken
        try:
            with pytest.raises(WorkloadError):
                wl.vector_trace(64, wl.tiny_params)
        finally:
            wl.reference = original
