"""Tests for the observability layer: metrics, tracer, self-profiler.

The trace-export tests are golden-property tests: a tiny vvadd run must
produce a valid Chrome trace-event document (sorted ``ts``, balanced B/E
per track, stable pid/tid naming) whose Machine span reconciles with the
reported cycle count.
"""

import collections
import json

import pytest

from repro.config import make_system
from repro.errors import MetricsSchemaError
from repro.experiments import ExperimentRunner
from repro.experiments.systems import build_machine
from repro.mem.mshr import MshrPool
from repro.obs import (
    CANONICAL_TRACKS,
    NULL_METRICS,
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SelfProfiler,
    SpanTracer,
    bucket_index,
)
from tests.conftest import TINY_PARAMS


# -- metrics registry ------------------------------------------------------

class TestBucketing:
    def test_values_below_one_land_in_bucket_zero(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(0.5) == 0
        assert bucket_index(0.999) == 0

    def test_power_of_two_boundaries(self):
        # Bucket i covers [2**(i-1), 2**i): 1 starts bucket 1, 2 bucket 2...
        assert bucket_index(1.0) == 1
        assert bucket_index(1.999) == 1
        assert bucket_index(2.0) == 2
        assert bucket_index(4.0) == 3
        assert bucket_index(1024.0) == 11

    def test_huge_values_clamp_to_last_bucket(self):
        assert bucket_index(2.0 ** 200) == 47

    def test_histogram_observe_and_quantile(self):
        h = Histogram("lat")
        for v in (1, 2, 3, 100):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 106
        assert h.max == 100
        assert h.mean == pytest.approx(26.5)
        # p50 falls in the bucket holding the 2nd observation.
        assert h.quantile(0.5) <= h.quantile(0.99)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert sum(snap["buckets"].values()) == 4


class TestGaugeHwm:
    def test_hwm_tracks_peak_not_current(self):
        g = Gauge("occ")
        g.set(3)
        g.set(10)
        g.set(2)
        assert g.value == 2
        assert g.hwm == 10

    def test_add_updates_hwm(self):
        g = Gauge("occ")
        g.add(4)
        g.add(-3)
        g.add(2)
        assert g.value == 3
        assert g.hwm == 4


class TestRegistry:
    def test_get_or_create_and_kind_mismatch(self):
        m = MetricsRegistry()
        c = m.counter("a.b")
        assert m.counter("a.b") is c
        with pytest.raises(TypeError):
            m.gauge("a.b")

    def test_empty_registry_is_falsy_but_not_replaced(self):
        # Regression guard: constructors must use `is not None`, not `or`,
        # because an empty registry is falsy (it defines __len__).
        m = MetricsRegistry()
        assert len(m) == 0
        machine = build_machine("O3+EVE-4", metrics=m)
        assert machine.metrics is m

    def test_null_registry_is_inert(self):
        NULL_METRICS.counter("x").inc(5)
        NULL_METRICS.gauge("y").set(3)
        NULL_METRICS.histogram("z").observe(1)
        assert not NULL_METRICS.enabled
        assert len(NULL_METRICS) == 0

    def test_flat_view(self):
        m = MetricsRegistry()
        m.counter("c").inc(2)
        m.gauge("g").set(7)
        m.histogram("h").observe(4)
        flat = m.flat()
        assert flat["c"] == 2
        assert flat["g.value"] == 7
        assert flat["g.hwm"] == 7
        assert flat["h.count"] == 1

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)


class TestMetricsSchema:
    def test_reserve_is_idempotent_per_owner(self):
        m = MetricsRegistry()
        m.reserve("sim", "CoreA")
        m.reserve("sim", "CoreA")   # same owner: fine

    def test_reserve_conflict_raises(self):
        m = MetricsRegistry()
        m.reserve("sim", "CoreA")
        with pytest.raises(MetricsSchemaError, match="CoreA"):
            m.reserve("sim", "CoreB")

    def test_reserve_detects_nested_prefix_overlap(self):
        m = MetricsRegistry()
        m.reserve("mem.l1", "CacheL1")
        with pytest.raises(MetricsSchemaError):
            m.reserve("mem", "MemorySystem")
        with pytest.raises(MetricsSchemaError):
            m.reserve("mem.l1.hits", "Probe")

    def test_disjoint_prefixes_coexist(self):
        m = MetricsRegistry()
        m.reserve("sim", "Core")
        m.reserve("mem", "MemorySystem")
        m.reserve("memx", "Other")  # sibling, not a dot-prefix of "mem"

    def test_reserve_rejects_illegal_prefix(self):
        with pytest.raises(MetricsSchemaError):
            MetricsRegistry().reserve("Bad Name", "X")

    def test_assert_schema_accepts_clean_registry(self):
        m = MetricsRegistry()
        m.counter("sim.instructions").inc()
        m.gauge("sim.cycles").set(10)
        m.histogram("mem.l1.latency").observe(3)
        m.assert_schema()

    def test_assert_schema_rejects_illegal_name(self):
        m = MetricsRegistry()
        m.counter("no spaces allowed")
        with pytest.raises(MetricsSchemaError, match="illegal"):
            m.assert_schema()

    def test_assert_schema_catches_gauge_flat_shadowing(self):
        # gauge "g" flattens to "g.value"/"g.hwm"; a counter named
        # "g.hwm" is ambiguous in the flat view.
        m = MetricsRegistry()
        m.gauge("g").set(1)
        m.counter("g.hwm").inc()
        with pytest.raises(MetricsSchemaError, match="g.hwm"):
            m.assert_schema()

    def test_assert_schema_catches_histogram_flat_shadowing(self):
        m = MetricsRegistry()
        m.histogram("h").observe(1)
        m.counter("h.mean").inc()
        with pytest.raises(MetricsSchemaError):
            m.assert_schema()

    def test_null_registry_schema_hooks_are_inert(self):
        NULL_METRICS.reserve("sim", "Anything")
        NULL_METRICS.reserve("sim", "SomethingElse")  # no conflict: no-op
        NULL_METRICS.assert_schema()

    def test_machines_reserve_disjoint_families(self):
        # Building a real machine with a live registry exercises every
        # constructor-time reserve() call; overlap would raise here.
        m = MetricsRegistry()
        build_machine("O3+EVE-4", metrics=m)
        m2 = MetricsRegistry()
        build_machine("O3+IV", metrics=m2)

    def test_instrumented_run_passes_assert_schema(self):
        m = MetricsRegistry()
        runner = ExperimentRunner(params_override=TINY_PARAMS)
        runner.run("O3+EVE-4", "vvadd", metrics=m)
        m.assert_schema()


# -- span tracer -----------------------------------------------------------

class TestSpanTracer:
    def test_begin_end_lifo_and_balance(self):
        t = SpanTracer()
        t.begin("VSU", "outer", 0.0)
        t.begin("VSU", "inner", 1.0)
        t.end("VSU", 2.0)
        t.end("VSU", 3.0)
        assert t.spans_on("VSU") == [("inner", 1.0, 2.0), ("outer", 0.0, 3.0)]

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError):
            SpanTracer().end("VSU", 1.0)

    def test_zero_length_span_becomes_instant(self):
        t = SpanTracer()
        t.span("VMU", "blip", 5.0, 5.0)
        phases = [e["ph"] for e in t.to_dict()["traceEvents"]
                  if e["ph"] != "M"]
        assert phases == ["i"]

    def test_declared_tracks_appear_even_when_idle(self):
        t = SpanTracer()
        t.declare("VRU", "DTU")
        assert t.track_names() == ["VRU", "DTU"]

    def test_canonical_tids_are_stable(self):
        # Same unit -> same tid regardless of touch order.
        t1 = SpanTracer()
        t1.span("VMU", "x", 0, 1)
        t1.span("VSU", "y", 0, 1)
        t2 = SpanTracer()
        t2.span("VSU", "y", 0, 1)
        t2.span("VMU", "x", 0, 1)

        def tid_of(tracer, track):
            for e in tracer.to_dict()["traceEvents"]:
                if (e.get("ph") == "M" and e["name"] == "thread_name"
                        and e["args"]["name"] == track):
                    return e["tid"]
            raise AssertionError(track)

        assert tid_of(t1, "VMU") == tid_of(t2, "VMU")
        assert tid_of(t1, "VSU") == tid_of(t2, "VSU")
        assert tid_of(t1, "VSU") == CANONICAL_TRACKS.index("VSU") + 1

    def test_null_tracer_records_nothing(self):
        NULL_TRACER.span("VSU", "x", 0, 1)
        NULL_TRACER.begin("VSU", "y", 0)
        NULL_TRACER.end("VSU", 1)
        NULL_TRACER.instant("VSU", "z", 0)
        NULL_TRACER.sample("MSHR", "occ", 0, 1)
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.num_events == 0


def _validate_chrome_trace(doc):
    """Golden properties every exported trace must satisfy."""
    events = doc["traceEvents"]
    body = [e for e in events if e.get("ph") != "M"]
    ts = [e["ts"] for e in body]
    assert ts == sorted(ts), "timestamps not monotonically sorted"
    depth = collections.Counter()
    for e in body:
        if e["ph"] == "B":
            depth[e["tid"]] += 1
        elif e["ph"] == "E":
            depth[e["tid"]] -= 1
            assert depth[e["tid"]] >= 0, "E before matching B"
    assert all(v == 0 for v in depth.values()), "unbalanced B/E"
    names = {e["tid"]: e["args"]["name"] for e in events
             if e.get("ph") == "M" and e["name"] == "thread_name"}
    return names


class TestTraceExportGolden:
    @pytest.fixture(scope="class")
    def traced_run(self):
        runner = ExperimentRunner(params_override=TINY_PARAMS)
        tracer = SpanTracer(process="test")
        result = runner.run("O3+EVE-4", "vvadd", tracer=tracer)
        return tracer, result

    def test_export_is_valid_chrome_trace(self, traced_run, tmp_path):
        tracer, _ = traced_run
        path = tmp_path / "trace.json"
        tracer.export(str(path))
        doc = json.loads(path.read_text())
        names = _validate_chrome_trace(doc)
        # The EVE unit tracks must all be present and named.
        assert {"Machine", "VSU", "VMU", "DTU", "VRU", "DRAM"} <= set(
            names.values())

    def test_machine_span_reconciles_with_cycles(self, traced_run):
        tracer, result = traced_run
        spans = tracer.spans_on("Machine")
        assert len(spans) == 1
        _, begin, end = spans[0]
        assert (end - begin) == pytest.approx(result.cycles, rel=0.01)

    def test_unit_busy_does_not_exceed_total(self, traced_run):
        tracer, result = traced_run
        for track in ("VMU", "DTU"):
            assert 0.0 < tracer.track_busy(track) <= result.cycles * 4

    def test_instrumented_run_matches_uninstrumented(self, tiny_runner):
        plain = tiny_runner.run("O3+EVE-4", "vvadd")
        traced = ExperimentRunner(params_override=TINY_PARAMS).run(
            "O3+EVE-4", "vvadd", tracer=SpanTracer())
        assert traced.cycles == pytest.approx(plain.cycles)


# -- mshr occupancy satellite ----------------------------------------------

class TestMshrStats:
    def test_occupancy_hwm_counts_concurrent_holders(self):
        pool = MshrPool(4, "l1")
        for i in range(3):
            grant, _ = pool.acquire(float(i))
            pool.release(grant + 100.0)
        stats = pool.stats()
        assert stats["occupancy_hwm"] == 3
        assert stats["stalled_acquires"] == 0

    def test_stalled_acquires_counted(self):
        pool = MshrPool(1, "l1")
        grant, _ = pool.acquire(0.0)
        pool.release(grant + 10.0)
        grant, stall = pool.acquire(1.0)
        pool.release(grant + 10.0)
        assert stall > 0
        stats = pool.stats()
        assert stats["stalled_acquires"] == 1
        assert stats["stall_cycles"] == pytest.approx(stall)
        assert stats["occupancy_hwm"] == 1

    def test_level_stats_exposes_mshr_and_dram(self, tiny_runner):
        result = ExperimentRunner(params_override=TINY_PARAMS).run(
            "O3+EVE-4", "vvadd", metrics=MetricsRegistry())
        for key in ("l1d_mshr", "l2_mshr", "llc_mshr", "dram"):
            assert key in result.mem_stats
        assert result.mem_stats["llc_mshr"]["occupancy_hwm"] >= 1
        assert "utilisation" in result.mem_stats["dram"]


# -- metrics wired through a run -------------------------------------------

class TestInstrumentedRun:
    def test_metrics_populated_for_eve(self):
        metrics = MetricsRegistry()
        result = ExperimentRunner(params_override=TINY_PARAMS).run(
            "O3+EVE-4", "vvadd", metrics=metrics)
        flat = metrics.flat()
        assert flat["sim.cycles.value"] == pytest.approx(result.cycles)
        assert flat["eve.vmu.busy_cycles"] > 0
        assert "mshr.llc.occupancy.hwm" in flat
        assert result.metrics is not None

    def test_metrics_populated_for_scalar(self):
        metrics = MetricsRegistry()
        result = ExperimentRunner(params_override=TINY_PARAMS).run(
            "O3", "vvadd", metrics=metrics)
        assert metrics.flat()["sim.cycles.value"] == pytest.approx(
            result.cycles)

    def test_result_to_json_dict_round_trips(self):
        result = ExperimentRunner(params_override=TINY_PARAMS).run(
            "O3+EVE-4", "vvadd", metrics=MetricsRegistry())
        payload = json.loads(json.dumps(result.to_json_dict()))
        assert payload["system"] == "O3+EVE-4"
        assert payload["breakdown"]["busy"] >= 0
        assert "metrics" in payload

    def test_disabled_instrumentation_attaches_nothing(self, tiny_runner):
        result = tiny_runner.run("O3+EVE-4", "vvadd")
        assert result.metrics is None


# -- self profiler ---------------------------------------------------------

class TestSelfProfiler:
    def test_phases_accumulate(self):
        prof = SelfProfiler()
        with prof.phase("a"):
            pass
        with prof.phase("a"):
            pass
        with prof.phase("b"):
            pass
        d = prof.as_dict()
        assert d["a"]["calls"] == 2
        assert d["b"]["calls"] == 1
        assert prof.total() >= 0.0

    def test_merged_collapses_prefixes(self):
        prof = SelfProfiler()
        with prof.phase("sim:O3"):
            pass
        with prof.phase("sim:IO"):
            pass
        merged = prof.merged()
        assert set(merged) == {"sim"}

    def test_runner_records_phases(self):
        runner = ExperimentRunner(params_override=TINY_PARAMS)
        runner.run("IO", "vvadd")
        phases = runner.profiler.as_dict()
        assert "trace_build" in phases
        assert "sim:IO" in phases


# -- machine construction with instrumentation ------------------------------

class TestBuildMachine:
    @pytest.mark.parametrize("system", ["IO", "O3", "O3+IV", "O3+DV",
                                        "O3+EVE-4"])
    def test_tracer_and_metrics_thread_through(self, system):
        tracer = SpanTracer()
        metrics = MetricsRegistry()
        machine = build_machine(system, tracer=tracer, metrics=metrics)
        assert machine.tracer is tracer
        assert machine.metrics is metrics
        assert machine.mem.tracer is tracer

    def test_default_is_null_instrumentation(self):
        machine = build_machine("O3+EVE-4")
        assert machine.tracer is NULL_TRACER
        assert machine.metrics is NULL_METRICS
        cfg = make_system("O3+EVE-4")
        assert cfg is not None
