"""Section II taxonomy model and Section VI circuit-evaluation numbers."""

import pytest

from repro.analytics import figure2_series, measured_design_point, modeled_design_point
from repro.circuits_model import AreaModel, cycle_time_ns, frequency_ghz, system_area_factor
from repro.circuits_model.area import circuit_family
from repro.circuits_model.timing import cycle_time_penalty
from repro.errors import ConfigError


class TestFigure2:
    """The paper's key taxonomy claims, from the real micro-programs."""

    @pytest.fixture(scope="class")
    def series(self):
        return figure2_series(measured=True)

    def test_alu_counts_match_paper_axis(self, series):
        assert [row["alus"] for row in series] == [64, 64, 64, 32, 16, 8]

    def test_latency_monotonically_decreases(self, series):
        for key in ("add_latency_rel", "mul_latency_rel"):
            values = [row[key] for row in series]
            assert values == sorted(values, reverse=True)

    def test_latency_sublinear_in_segments(self, series):
        """Halving segments does not halve latency (control overhead)."""
        by_factor = {row["factor"]: row for row in series}
        assert by_factor[2]["add_latency_rel"] > 0.5

    def test_throughput_peaks_at_factor_four(self, series):
        """Section II: balanced utilization at n = 4."""
        for key in ("add_throughput_rel", "mul_throughput_rel"):
            values = {row["factor"]: row[key] for row in series}
            assert max(values, key=values.get) == 4

    def test_throughput_falls_beyond_balance(self, series):
        values = {row["factor"]: row["add_throughput_rel"] for row in series}
        assert values[4] > values[8] > values[16] > values[32]

    def test_modeled_tracks_measured(self):
        """The closed-form model agrees with micro-program counts."""
        for factor in (1, 2, 4, 8, 16, 32):
            measured = measured_design_point(factor)
            modeled = modeled_design_point(factor)
            assert measured.add_latency == modeled.add_latency
            assert measured.mul_latency == pytest.approx(
                modeled.mul_latency, rel=0.20)

    def test_normalisation_baseline_is_one(self, series):
        first = series[0]
        assert first["add_latency_rel"] == 1.0
        assert first["add_throughput_rel"] == 1.0


class TestAreaModel:
    def test_eve8_l2_overhead_is_paper_value(self):
        """Section VII-B: EVE-8 incurs 11.7% total L2 area overhead."""
        assert AreaModel(8).l2_overhead == pytest.approx(0.117, abs=0.001)

    def test_per_subarray_stack_overheads(self):
        assert AreaModel(1).stack_overhead == pytest.approx(0.090)
        assert AreaModel(8).stack_overhead == pytest.approx(0.156)
        assert AreaModel(32).stack_overhead == pytest.approx(0.126)

    def test_banking_halves_overhead(self):
        assert AreaModel(8).eve_sram_overhead == pytest.approx(0.078)

    def test_dtus_and_rom_are_5_of_64_subarrays(self):
        assert AreaModel(8).extra_subarray_overhead == pytest.approx(5 / 64)

    @pytest.mark.parametrize("name,factor", [
        ("O3", 1.00), ("O3+IV", 1.10), ("O3+DV", 2.00),
    ])
    def test_baseline_factors(self, name, factor):
        assert system_area_factor(name) == pytest.approx(factor)

    @pytest.mark.parametrize("n,factor", [
        (1, 1.10), (2, 1.12), (4, 1.12), (8, 1.12), (16, 1.12), (32, 1.11),
    ])
    def test_eve_factors_round_to_paper(self, n, factor):
        assert round(system_area_factor(f"O3+EVE-{n}"), 2) == factor

    def test_circuit_families(self):
        assert circuit_family(1) == "serial"
        assert circuit_family(8) == "hybrid"
        assert circuit_family(32) == "parallel"
        with pytest.raises(ConfigError):
            circuit_family(3)

    def test_unknown_system(self):
        with pytest.raises(ConfigError):
            system_area_factor("O3+NPU")


class TestCycleTime:
    def test_paper_values(self):
        assert cycle_time_ns(8) == pytest.approx(1.025)
        assert cycle_time_ns(16) == pytest.approx(1.175)
        assert cycle_time_ns(32) == pytest.approx(1.550)

    def test_penalties(self):
        assert cycle_time_penalty(4) == pytest.approx(0.0)
        assert cycle_time_penalty(16) == pytest.approx(0.146, abs=0.01)
        assert cycle_time_penalty(32) == pytest.approx(0.512, abs=0.01)

    def test_frequency(self):
        assert frequency_ghz(8) == pytest.approx(1 / 1.025)

    def test_unknown_factor(self):
        with pytest.raises(ConfigError):
            cycle_time_ns(3)
