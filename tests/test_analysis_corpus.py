"""Corpus replay through the static analyzer.

Every case under ``tests/corpus/`` runs twice: functionally through the
oracle :class:`~repro.isa.intrinsics.VectorContext` (recording ``peek()``
observations), and through the trace-level
:class:`~repro.analysis.TraceReplayer` over the recorded trace.  The
contract:

* when the trace passes ``check`` clean, every live-out register and
  every buffer must match the functional execution bit-for-bit;
* when ``check`` reports errors, the case exercises a trace-level
  infidelity the checker is *supposed* to flag (``mask_merge`` uses a
  stale mask object the single-v0 trace IR cannot represent), and the
  error findings are the test's expected output.
"""

import glob
import os

import numpy as np
import pytest

from repro.analysis import TraceColumns, TraceReplayer, check_trace
from repro.faults import fuzz
from repro.isa.intrinsics import Vec, VectorContext

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CASES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

#: Cases whose trace legitimately fails ``check``: they use a stale
#: :class:`Mask` object (``mask_merge``) or compute a mask they never
#: consume (``strided``), both of which the trace-level single-v0 IR
#: reports as a dead v0 write.
EXPECTED_DIRTY = {"mask_merge", "strided"}


def run_functional(case, name):
    """Execute ``case`` on the oracle, keeping every slot object alive."""
    ctx = VectorContext(case.vlmax, name=name)
    bufs = {buf_name: ctx.vm.alloc_i32(
                buf_name, np.array(vals, dtype=np.int64).astype(np.int32))
            for buf_name, vals in case.inputs.items()}
    ctx.setvl(case.avl)
    slots = []
    for op in case.ops:
        slots.append(fuzz._apply(ctx, op, slots, bufs))
    return ctx, slots


def test_corpus_is_populated():
    assert len(CASES) >= 9


@pytest.mark.parametrize(
    "path", CASES, ids=[os.path.splitext(os.path.basename(p))[0]
                        for p in CASES])
def test_corpus_case_cross_checks_against_replay(path):
    name = os.path.splitext(os.path.basename(path))[0]
    case = fuzz.load_case(path)
    ctx, slots = run_functional(case, name)
    trace = ctx.finalize_trace()

    errors = [f for f in check_trace(trace) if f.severity == "error"]
    if name in EXPECTED_DIRTY:
        assert errors, "expected the checker to flag this case"
        assert {f.rule for f in errors} == {"dead-write"}
        return
    assert errors == [], [str(f) for f in errors]

    images = {buf.base: np.array(case.inputs[buf_name], dtype=np.int64)
              .astype(np.int32)
              for buf_name, buf in ctx.vm.buffers.items()}
    replay = TraceReplayer(trace, images).run()

    # Live-out registers: the trace replay must reproduce the functional
    # peek() observations (replayed values shorter than the functional
    # view are zero-tail definitions, e.g. vmv.s.x).
    live = TraceColumns(trace).live_out()
    checked = 0
    for result in slots:
        if isinstance(result, Vec) and result.reg in live:
            want = np.asarray(ctx.peek(result), dtype=np.int64)
            got = replay._read(result.reg, len(want)).astype(np.int64)
            assert np.array_equal(got, want), (
                f"live-out v{result.reg}: replay {got.tolist()} != "
                f"functional {want.tolist()}")
            checked += 1
    assert checked, "case has no live-out vector results to cross-check"

    # Final memory must match too.
    for buf_name, buf in ctx.vm.buffers.items():
        addrs = buf.base + 4 * np.arange(buf.data.size, dtype=np.int64)
        assert np.array_equal(replay.load(addrs), buf.data), (
            f"buffer {buf_name} diverged under trace replay")
