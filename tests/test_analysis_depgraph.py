"""Dependence-graph validation against execution ground truth.

The exported DepGraph claims that its edges capture *every* ordering
constraint in a trace.  The test executes 100 fuzzer-generated programs
through the trace replayer in three schedules — program order, the
earliest-first topological order, and the latest-first one (maximally
different from program order) — and requires bit-identical final state
(registers, mask, memory, scalar results) from all three.  A missing
edge would let the adversarial schedule reorder a genuine dependence and
diverge; a cycle would make ``topological_order`` raise.
"""

import numpy as np
import pytest

from repro.analysis import TraceReplayer, build_depgraph
from repro.faults.fuzz import generate_case, run_case
from repro.isa.intrinsics import VectorContext

N_PROGRAMS = 100


def build_trace_and_images(seed):
    case = generate_case(seed)
    ctx = VectorContext(case.vlmax, name=f"fuzz-{seed}")
    run_case(case, ctx)
    trace = ctx.finalize_trace()
    images = {buf.base: np.array(case.inputs[name], dtype=np.int64)
              .astype(np.int32)
              for name, buf in ctx.vm.buffers.items()}
    return trace, images


@pytest.mark.parametrize("seed", range(N_PROGRAMS))
def test_topological_orders_replay_bit_identical(seed):
    trace, images = build_trace_and_images(seed)
    graph = build_depgraph(trace)
    reference = TraceReplayer(trace, images).run().snapshot()
    for prefer_late in (False, True):
        order = graph.topological_order(prefer_late=prefer_late)
        assert sorted(order) == list(range(len(trace.events)))
        snapshot = TraceReplayer(trace, images).run(order).snapshot()
        assert snapshot == reference, (
            f"seed {seed}: topological order (prefer_late={prefer_late}) "
            "diverged from program order")


def test_late_order_actually_differs_from_program_order():
    # The adversarial schedule must be a real reordering for the suite to
    # mean anything; check it moves at least one instruction on a case
    # with independent chains.
    trace, _ = build_trace_and_images(0)
    graph = build_depgraph(trace)
    late = graph.topological_order(prefer_late=True)
    assert late != list(range(len(trace.events)))


def test_edges_are_forward_and_deduplicated():
    trace, _ = build_trace_and_images(3)
    graph = build_depgraph(trace)
    seen = set()
    for edge in graph.edges:
        assert edge.src < edge.dst
        assert (edge.src, edge.dst, edge.kind) not in seen
        seen.add((edge.src, edge.dst, edge.kind))
