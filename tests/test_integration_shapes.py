"""End-to-end shape checks at tiny scale (fast versions of the benchmark
assertions — the full-size versions live in benchmarks/)."""

import pytest

from repro.config import EVE_FACTORS
from repro.workloads import REGISTRY, get_workload

APPS = sorted(REGISTRY)


class TestCrossSystemOrderings:
    def test_every_vector_system_beats_io_on_vvadd(self, tiny_runner):
        for system in ("O3+IV", "O3+DV", "O3+EVE-8"):
            assert tiny_runner.speedup(system, "vvadd", baseline="IO") > 1.0

    def test_dv_beats_iv_on_streaming(self, tiny_runner):
        dv = tiny_runner.run("O3+DV", "vvadd")
        iv = tiny_runner.run("O3+IV", "vvadd")
        assert dv.time_ns < iv.time_ns

    def test_eve8_beats_eve1_on_compute(self, tiny_runner):
        """Multiply-heavy mmult: bit-serial loses to bit-hybrid."""
        e1 = tiny_runner.run("O3+EVE-1", "mmult")
        e8 = tiny_runner.run("O3+EVE-8", "mmult")
        assert e8.time_ns < e1.time_ns

    def test_eve32_pays_clock_penalty(self, tiny_runner):
        result = tiny_runner.run("O3+EVE-32", "vvadd")
        assert result.cycle_time_ns == pytest.approx(1.55)
        assert result.time_ns == pytest.approx(result.cycles * 1.55)

    def test_all_systems_complete_all_workloads(self, tiny_runner):
        """Smoke the full matrix at tiny scale (every pair simulates)."""
        for app in APPS:
            for system in ("IO", "O3", "O3+IV", "O3+DV", "O3+EVE-4",
                           "O3+EVE-16"):
                result = tiny_runner.run(system, app)
                assert result.cycles > 0


class TestEveResultInvariants:
    @pytest.mark.parametrize("factor", [1, 8, 32])
    def test_breakdown_accounts_for_cycles(self, tiny_runner, factor):
        for app in ("vvadd", "mmult"):
            result = tiny_runner.run(f"O3+EVE-{factor}", app)
            assert result.breakdown.total() == pytest.approx(result.cycles,
                                                             rel=0.02)

    def test_vmu_stall_fraction_bounded(self, tiny_runner):
        for factor in EVE_FACTORS:
            result = tiny_runner.run(f"O3+EVE-{factor}", "backprop")
            assert 0.0 <= result.vmu_llc_stall_frac <= 1.0

    def test_instruction_counts_decrease_with_hw_vl(self, tiny_runner):
        short = tiny_runner.run("O3+EVE-32", "vvadd").instructions
        long_ = tiny_runner.run("O3+EVE-1", "vvadd").instructions
        assert long_ <= short


class TestTraceFootprints:
    @pytest.mark.parametrize("name", APPS)
    def test_footprint_positive_and_bounded(self, name):
        wl = get_workload(name)
        trace = wl.vector_trace(64, wl.tiny_params)
        footprint = trace.memory_footprint_bytes()
        assert footprint > 0
        assert footprint < 512 * 1024 * 1024

    @pytest.mark.parametrize("name", APPS)
    def test_loads_and_stores_present(self, name):
        wl = get_workload(name)
        trace = wl.vector_trace(64, wl.tiny_params)
        has_load = any(i.info.is_load for i in trace.vector_instrs())
        assert has_load

    @pytest.mark.parametrize("name", APPS)
    def test_setvl_precedes_all_vector_work(self, name):
        wl = get_workload(name)
        trace = wl.vector_trace(64, wl.tiny_params)
        for event in trace.vector_instrs():
            assert event.op == "vsetvl"
            break
