"""Tests for the record differ: tolerance policies, classification, gating.

The acceptance scenario rides at the bottom: an injected speedup
regression beyond budget makes ``repro diff`` exit non-zero, while the
same regression within budget stays green.
"""

import json

import pytest

from repro.cli import main
from repro.obs.diff import (
    DEFAULT_SPEEDUP_BUDGET,
    TolerancePolicy,
    default_policies,
    diff_records,
    direction,
    exact,
    policy_for,
    relative,
)
from repro.obs.runstore import RunStore
from tests.test_runstore import sample_record


class TestTolerancePolicy:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            TolerancePolicy("fuzzy")

    def test_direction_requires_a_direction(self):
        with pytest.raises(ValueError):
            TolerancePolicy("direction")

    def test_rejects_negative_epsilon(self):
        with pytest.raises(ValueError):
            TolerancePolicy("relative", rel_eps=-0.1)

    def test_exact_lower_is_better(self):
        cycles = exact(higher_is_better=False)
        assert cycles.classify(100.0, 100.0) == "same"
        assert cycles.classify(100.0, 101.0) == "regressed"
        assert cycles.classify(100.0, 99.0) == "improved"

    def test_exact_without_direction_is_changed(self):
        instr = exact(higher_is_better=None)
        assert instr.classify(10.0, 11.0) == "changed"
        assert instr.classify(10.0, 9.0) == "changed"

    def test_relative_band_absorbs_noise(self):
        wallclock = relative(0.75, higher_is_better=False)
        assert wallclock.classify(1.0, 1.5) == "same"
        assert wallclock.classify(1.0, 2.0) == "regressed"
        assert wallclock.classify(1.0, 0.1) == "improved"

    def test_direction_only_gates_the_bad_way(self):
        speedup = direction(0.05, higher_is_better=True)
        assert speedup.classify(4.0, 3.9) == "same"       # within budget
        assert speedup.classify(4.0, 3.0) == "regressed"  # beyond budget
        assert speedup.classify(4.0, 8.0) == "improved"   # never fatal


class TestPolicyTable:
    def test_first_match_wins(self):
        policies = default_policies()
        assert policy_for("speedup.vvadd.O3+EVE-4", policies).kind == "direction"
        assert policy_for("results.IO.vvadd.cycles", policies).kind == "exact"
        assert policy_for("results.IO.vvadd.cycles", policies).gate is True
        assert policy_for("metrics.sim.cycles", policies).gate is False
        assert policy_for("self_profile.sim.seconds", policies).gate is False
        assert policy_for("bench.vvadd.seconds", policies).kind == "relative"

    def test_unmatched_names_fall_back_advisory(self):
        policy = policy_for("mystery.key", [])
        assert policy.gate is False

    def test_budget_is_tunable(self):
        policies = default_policies(speedup_budget=0.5)
        speedup = policy_for("speedup.vvadd.O3+EVE-4", policies)
        assert speedup.classify(4.0, 2.5) == "same"


class TestDiffRecords:
    def test_identical_records_all_same(self):
        a, b = sample_record(), sample_record()
        diff = diff_records(a, b)
        assert diff.counts()["same"] == len(diff.entries)
        assert diff.exit_code() == 0
        assert diff.interesting() == []

    def test_added_and_removed_keys(self):
        a, b = sample_record(), sample_record()
        b.metrics["new.counter"] = 1.0
        del b.self_profile["sim"]
        diff = diff_records(a, b)
        statuses = {e.name: e.status for e in diff.interesting()}
        assert statuses["metrics.new.counter"] == "added"
        assert statuses["self_profile.sim.seconds"] == "removed"
        assert diff.exit_code() == 0

    def test_cycle_change_is_gated(self):
        a, b = sample_record(), sample_record()
        b.results["IO"]["vvadd"]["cycles"] += 1
        diff = diff_records(a, b)
        assert [e.name for e in diff.regressions()] == [
            "results.IO.vvadd.cycles"]
        assert diff.exit_code() == 1

    def test_speedup_regression_beyond_budget_gates(self):
        a, b = sample_record(), sample_record()
        b.speedups["vvadd"]["O3+EVE-4"] = 4.32 * 0.9   # -10% > 5% budget
        assert diff_records(a, b).exit_code() == 1

    def test_speedup_within_budget_stays_green(self):
        a, b = sample_record(), sample_record()
        b.speedups["vvadd"]["O3+EVE-4"] = 4.32 * 0.97  # -3% < 5% budget
        assert diff_records(a, b).exit_code() == 0

    def test_speedup_improvement_never_fails(self):
        a, b = sample_record(), sample_record()
        b.speedups["vvadd"]["O3+EVE-4"] = 8.0
        diff = diff_records(a, b)
        assert diff.exit_code() == 0
        assert diff.exit_code(strict=True) == 0

    def test_strict_gates_instruction_changes(self):
        a, b = sample_record(), sample_record()
        b.results["IO"]["vvadd"]["instructions"] = 43
        diff = diff_records(a, b)
        assert diff.exit_code() == 0
        assert diff.exit_code(strict=True) == 1

    def test_wallclock_noise_is_advisory(self):
        a, b = sample_record(), sample_record()
        b.self_profile["sim"]["seconds"] = 2.5   # 10x, way past epsilon
        diff = diff_records(a, b)
        assert diff.exit_code() == 0
        entry = next(e for e in diff.interesting()
                     if e.name == "self_profile.sim.seconds")
        assert entry.status == "regressed" and not entry.gate

    def test_json_report_shape(self):
        a, b = sample_record(), sample_record()
        b.results["IO"]["vvadd"]["cycles"] += 1
        doc = diff_records(a, b).to_json_dict()
        assert doc["fingerprint_match"] is True
        assert doc["regressions"] == ["results.IO.vvadd.cycles"]
        assert doc["counts"]["regressed"] == 1
        assert doc["entries"][0]["name"] == "results.IO.vvadd.cycles"


class TestDiffCli:
    """Acceptance: ``repro diff`` exit codes on injected regressions."""

    def _store_with_pair(self, tmp_path, mutate):
        store = RunStore(str(tmp_path / "runs"))
        store.append(sample_record())
        worse = sample_record()
        mutate(worse)
        store.append(worse)
        return store

    def test_exits_nonzero_on_injected_speedup_regression(self, tmp_path,
                                                          capsys):
        def slow_down(record):
            record.speedups["vvadd"]["O3+EVE-4"] *= (
                1 - 2 * DEFAULT_SPEEDUP_BUDGET)
        store = self._store_with_pair(tmp_path, slow_down)
        code = main(["diff", "latest~1", "latest", "--store", store.root])
        assert code == 1
        out = capsys.readouterr().out
        assert "speedup.vvadd.O3+EVE-4" in out
        assert "regressed" in out

    def test_exits_zero_within_budget(self, tmp_path, capsys):
        def barely_slower(record):
            record.speedups["vvadd"]["O3+EVE-4"] *= (
                1 - DEFAULT_SPEEDUP_BUDGET / 2)
        store = self._store_with_pair(tmp_path, barely_slower)
        assert main(["diff", "latest~1", "latest",
                     "--store", store.root]) == 0

    def test_budget_flag_widens_the_gate(self, tmp_path):
        def slow_down(record):
            record.speedups["vvadd"]["O3+EVE-4"] *= 0.9
        store = self._store_with_pair(tmp_path, slow_down)
        assert main(["diff", "latest~1", "latest", "--store", store.root,
                     "--budget", "0.5"]) == 0

    def test_json_output_and_file(self, tmp_path, capsys):
        def slow_down(record):
            record.speedups["vvadd"]["O3+EVE-4"] *= 0.5
        store = self._store_with_pair(tmp_path, slow_down)
        out_file = tmp_path / "diff.json"
        code = main(["diff", "latest~1", "latest", "--store", store.root,
                     "--json", "--json-out", str(out_file)])
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["regressions"] == ["speedup.vvadd.O3+EVE-4"]
        assert json.loads(out_file.read_text()) == doc

    def test_unresolvable_ref_is_usage_error(self, tmp_path, capsys):
        assert main(["diff", "latest", "--store",
                     str(tmp_path / "empty")]) == 2

    def test_diff_against_baseline_file(self, tmp_path):
        record = sample_record()
        golden = tmp_path / "golden.json"
        golden.write_text(json.dumps(record.to_json_dict()))
        store = RunStore(str(tmp_path / "runs"))
        worse = sample_record()
        worse.speedups["vvadd"]["O3+EVE-4"] *= 0.5
        store.append(worse)
        assert main(["diff", str(golden), "latest",
                     "--store", store.root]) == 1
