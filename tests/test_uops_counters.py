"""Counter-file semantics (Section IV-A)."""

import pytest

from repro.errors import MicroExecutionError
from repro.uops import Counter, CounterFile


class TestCounter:
    def test_init_state(self):
        c = Counter("seg0")
        c.init(4)
        assert c.value == 4
        assert not c.zero_flag and not c.decade_flag
        assert c.index == 0

    def test_decr_auto_resets_on_zero(self):
        c = Counter("seg0")
        c.init(3)
        c.decr(); c.decr()
        assert c.value == 1 and not c.zero_flag
        c.decr()
        assert c.zero_flag
        assert c.value == 3  # hardware auto-reset

    def test_index_tracks_iterations(self):
        c = Counter("seg0")
        c.init(4)
        indices = []
        for _ in range(8):
            c.decr()
            indices.append(c.index)
        assert indices == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_consume_zero_clears(self):
        c = Counter("seg0")
        c.init(1)
        c.decr()
        assert c.consume_zero()
        assert not c.consume_zero()

    def test_decade_flag_on_powers_of_two(self):
        c = Counter("bit0")
        c.init(5)
        flags = []
        for _ in range(4):
            c.decr()
            flags.append(c.decade_flag)
            c.consume_decade()
        # values after decr: 4, 3, 2, 1 -> decades at 4, 2, 1
        assert flags == [True, False, True, True]

    def test_init_must_be_positive(self):
        with pytest.raises(MicroExecutionError):
            Counter("seg0").init(0)

    def test_incr_wraps(self):
        c = Counter("arr0")
        c.init(2)
        c.incr()
        assert not c.zero_flag
        c.incr()
        assert c.zero_flag and c.value == 0


class TestCounterFile:
    def test_twelve_counters_in_three_groups(self):
        counters = CounterFile()
        for group in ("seg", "bit", "arr"):
            for i in range(4):
                assert counters[f"{group}{i}"].name == f"{group}{i}"

    def test_unknown_counter(self):
        with pytest.raises(MicroExecutionError):
            CounterFile()["cnt13"]

    def test_reset(self):
        counters = CounterFile()
        counters["seg0"].init(5)
        counters["seg0"].decr()
        counters.reset()
        assert counters["seg0"].ticks == 0
