"""SimResult utilities and report-row flattening."""

import pytest

from repro.cores.result import BREAKDOWN_BUCKETS, SimResult, StallBreakdown, merge_fields


class TestMergeFields:
    def test_flattens_breakdown_and_mem_stats(self):
        result = SimResult(
            system="O3+EVE-8", workload="vvadd", cycles=100.0,
            cycle_time_ns=1.025, instructions=42,
            breakdown=StallBreakdown(busy=60, ld_mem_stall=40),
            mem_stats={"l1d": (1, 2)},
        )
        row = merge_fields(result)
        assert row["system"] == "O3+EVE-8"
        assert row["busy"] == 60
        assert row["mem_l1d"] == (1, 2)
        assert row["time_ns"] == pytest.approx(102.5)

    def test_without_breakdown(self):
        result = SimResult(system="IO", workload="w", cycles=10.0,
                           cycle_time_ns=1.0)
        row = merge_fields(result)
        assert "busy" not in row
        assert row["cycles"] == 10.0


class TestBucketOrder:
    def test_figure7_bucket_order(self):
        assert BREAKDOWN_BUCKETS[0] == "busy"
        assert BREAKDOWN_BUCKETS[-1] == "dep_stall"
        assert len(BREAKDOWN_BUCKETS) == 9  # the nine Figure 7 categories

    def test_buckets_are_breakdown_fields(self):
        b = StallBreakdown()
        for bucket in BREAKDOWN_BUCKETS:
            assert hasattr(b, bucket)
