"""Experiment harness: system building, runner caching, figure generators."""

import pytest

from repro.config import make_system
from repro.core import EveMachine
from repro.cores import DecoupledVectorMachine, IntegratedVectorMachine, ScalarCore
from repro.errors import ConfigError
from repro.experiments import build_machine, format_table, trace_vlmax
from repro.experiments.figures import (
    area_efficiency,
    area_table,
    figure2,
    figure7,
    figure8,
    geomean,
    table3,
    table4_characterization,
)


class TestSystems:
    def test_machine_types(self):
        assert isinstance(build_machine("IO"), ScalarCore)
        assert isinstance(build_machine("O3"), ScalarCore)
        assert isinstance(build_machine("O3+IV"), IntegratedVectorMachine)
        assert isinstance(build_machine("O3+DV"), DecoupledVectorMachine)
        assert isinstance(build_machine("O3+EVE-8"), EveMachine)

    def test_unknown_system(self):
        with pytest.raises(ConfigError):
            build_machine("TPU")

    def test_trace_vlmax(self):
        assert trace_vlmax(make_system("IO")) == 0
        assert trace_vlmax(make_system("O3+IV")) == 64
        assert trace_vlmax(make_system("O3+DV")) == 64
        assert trace_vlmax(make_system("O3+EVE-8")) == 1024
        assert trace_vlmax(make_system("O3+EVE-1")) == 2048


class TestRunner:
    def test_results_cached(self, tiny_runner):
        first = tiny_runner.run("IO", "vvadd")
        assert tiny_runner.run("IO", "vvadd") is first

    def test_traces_shared_across_same_vlmax(self, tiny_runner):
        tiny_runner.run("O3+EVE-1", "vvadd")
        tiny_runner.run("O3+EVE-2", "vvadd")
        assert ("vvadd", 2048) in tiny_runner._traces

    def test_speedup_positive(self, tiny_runner):
        assert tiny_runner.speedup("O3", "vvadd", baseline="IO") > 0

    def test_trace_for_returns_the_simulated_trace(self, tiny_runner):
        trace = tiny_runner.trace_for("o3+eve-4", "vvadd")
        assert trace.vlmax == 2048
        assert tiny_runner._traces[("vvadd", 2048)] is trace
        assert tiny_runner.trace_for("IO", "vvadd").vlmax is None

    def test_strict_check_env_switch(self, monkeypatch):
        from repro.experiments.runner import (ExperimentRunner,
                                              strict_check_enabled)
        monkeypatch.delenv("EVE_STRICT_CHECK", raising=False)
        assert not strict_check_enabled()
        assert not ExperimentRunner().strict_check
        monkeypatch.setenv("EVE_STRICT_CHECK", "1")
        assert strict_check_enabled()
        assert ExperimentRunner().strict_check
        assert not ExperimentRunner(strict_check=False).strict_check

    def test_strict_check_accepts_clean_workload_traces(self):
        from repro.experiments.runner import ExperimentRunner
        from repro.workloads import REGISTRY
        runner = ExperimentRunner(
            params_override={"vvadd": dict(REGISTRY["vvadd"].tiny_params)},
            verify=False, strict_check=True)
        assert runner.trace_for("O3+EVE-4", "vvadd").vlmax == 2048

    def test_eve_result_carries_breakdown(self, tiny_runner):
        result = tiny_runner.run("O3+EVE-8", "vvadd")
        assert result.breakdown is not None
        assert result.breakdown.total() == pytest.approx(result.cycles,
                                                         rel=0.02)


class TestStaticTables:
    def test_figure2_rows(self):
        rows = figure2(measured=True)
        assert [r["factor"] for r in rows] == [1, 2, 4, 8, 16, 32]
        peak = max(rows, key=lambda r: r["add_throughput_rel"])
        assert peak["factor"] == 4

    def test_table3_matches_paper(self):
        rows = {r["system"]: r for r in table3()}
        assert rows["O3"]["l2_kb"] == 512
        assert rows["O3+EVE-8"]["l2_kb"] == 256
        assert rows["O3+EVE-8"]["hardware_vl"] == 1024
        assert rows["O3+EVE-1"]["hardware_vl"] == 2048
        assert rows["O3+EVE-32"]["cycle_time_ns"] == pytest.approx(1.55)

    def test_table4_characterization_columns(self):
        rows = table4_characterization(apps=("vvadd",), vlmax=64)
        row = rows[0]
        assert row["vi_pct"] > 30
        assert row["vo_pct"] > 90
        assert row["arint"] == pytest.approx(1 / 3, abs=0.01)
        assert row["winf"] < 1.0  # vector version does less bookkeeping

    def test_area_table(self):
        rows = {r["system"]: r for r in area_table()}
        assert rows["O3+DV"]["area_factor"] == pytest.approx(2.0)
        assert rows["O3+EVE-8"]["l2_overhead"] == pytest.approx(0.117,
                                                               abs=0.001)


class TestDynamicFigures:
    """Shape assertions on tiny inputs (full sizes run in benchmarks/)."""

    def test_figure7_normalised_to_eve1(self, tiny_runner):
        rows = figure7(tiny_runner, apps=("vvadd",))
        eve1 = [r for r in rows if r["system"] == "O3+EVE-1"][0]
        assert eve1["total"] == pytest.approx(1.0)
        for row in rows:
            assert row["busy"] >= 0

    def test_figure8_fractions_in_range(self, tiny_runner):
        rows = figure8(tiny_runner, apps=("vvadd",))
        for row in rows:
            for system, value in row.items():
                if system != "workload":
                    assert 0.0 <= value <= 1.0

    def test_area_efficiency_favors_eve8_over_dv(self, tiny_runner):
        rows = {r["system"]: r for r in area_efficiency(
            tiny_runner, apps=("vvadd",))}
        assert rows["O3+EVE-8"]["area_factor"] < rows["O3+DV"]["area_factor"]

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["name", "value"], [["a", 1.5], ["bb", 20.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_numbers(self):
        out = format_table(["x"], [[0.1234], [123.4], [5.0]])
        assert "0.123" in out
        assert "123" in out
