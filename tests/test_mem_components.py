"""MSHR pool, cache array, and DRAM channel unit tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, DramConfig
from repro.errors import MemoryModelError
from repro.mem import CacheArray, DramChannel, MshrPool


class TestMshrPool:
    def test_grants_immediately_when_free(self):
        pool = MshrPool(2)
        grant, stall = pool.acquire(10.0)
        assert (grant, stall) == (10.0, 0.0)

    def test_stalls_when_full(self):
        pool = MshrPool(2)
        pool.acquire(0.0); pool.release(100.0)
        pool.acquire(0.0); pool.release(50.0)
        grant, stall = pool.acquire(10.0)
        assert grant == 50.0 and stall == 40.0

    def test_releases_free_entries(self):
        pool = MshrPool(1)
        pool.acquire(0.0)
        pool.release(5.0)
        grant, stall = pool.acquire(6.0)
        assert (grant, stall) == (6.0, 0.0)

    def test_stats_accumulate(self):
        pool = MshrPool(1)
        pool.acquire(0.0); pool.release(10.0)
        pool.acquire(0.0)
        assert pool.acquires == 2
        assert pool.stall_cycles == 10.0

    def test_zero_size_rejected(self):
        with pytest.raises(MemoryModelError):
            MshrPool(0)

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.floats(0, 100), min_size=1, max_size=20),
           st.integers(1, 4))
    def test_grants_never_before_request(self, times, size):
        pool = MshrPool(size)
        now = 0.0
        for dt in times:
            now += dt
            grant, stall = pool.acquire(now)
            assert grant >= now
            assert stall == grant - now
            pool.release(grant + 10.0)


class TestCacheArray:
    def config(self, sets=4, ways=2):
        return CacheConfig("t", sets * ways * 64, ways=ways, hit_latency=1,
                           mshrs=4)

    def test_miss_then_hit(self):
        cache = CacheArray(self.config())
        assert not cache.lookup(0x1000)
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        cache = CacheArray(self.config(sets=1, ways=2))
        cache.fill(0x0)
        cache.fill(0x40)
        cache.lookup(0x0)          # refresh line 0
        evicted = cache.fill(0x80)  # must evict 0x40
        assert evicted.line_addr == 0x40

    def test_dirty_tracked_on_store(self):
        cache = CacheArray(self.config(sets=1, ways=1))
        cache.fill(0x0)
        cache.lookup(0x0, is_store=True)
        evicted = cache.fill(0x40)
        assert evicted.dirty

    def test_fill_dirty(self):
        cache = CacheArray(self.config(sets=1, ways=1))
        cache.fill(0x0, dirty=True)
        assert cache.fill(0x40).dirty

    def test_racing_fill_refreshes(self):
        cache = CacheArray(self.config(sets=1, ways=1))
        cache.fill(0x0)
        assert cache.fill(0x0, dirty=True) is None
        assert cache.fill(0x40).dirty

    def test_invalidate(self):
        cache = CacheArray(self.config())
        cache.fill(0x0, dirty=True)
        assert cache.invalidate(0x0)      # was dirty
        assert not cache.lookup(0x0)
        assert not cache.invalidate(0x0)  # already gone

    def test_resident_and_flush_ways(self):
        cache = CacheArray(self.config(sets=2, ways=4))
        for i in range(8):  # four lines per set, filling every way
            cache.fill(i * 64, dirty=(i % 2 == 0))
        total, dirty = cache.resident_lines()
        assert total == 8 and dirty == 4
        walked, flushed_dirty = cache.flush_ways(slice(2, 4))
        assert walked == 4
        assert cache.resident_lines()[0] == 4

    def test_sets_mapping(self):
        cache = CacheArray(self.config(sets=4, ways=1))
        # Lines 0 and 4 map to the same set; 1 maps elsewhere.
        cache.fill(0 * 64)
        cache.fill(1 * 64)
        evicted = cache.fill(4 * 64)
        assert evicted.line_addr == 0
        assert cache.lookup(1 * 64)

    def test_bank_of(self):
        cache = CacheArray(CacheConfig("t", 8 * 64 * 4, ways=4, hit_latency=1,
                                       mshrs=4, banks=4))
        assert cache.bank_of(0) == 0
        assert cache.bank_of(64) == 1
        assert cache.bank_of(4 * 64) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 63), min_size=1, max_size=100))
    def test_fill_then_lookup_always_hits(self, lines):
        cache = CacheArray(self.config(sets=8, ways=4))
        for line in lines:
            addr = line * 64
            if not cache.lookup(addr):
                cache.fill(addr)
            assert cache.lookup(addr)


class TestDramChannel:
    def test_fixed_latency(self):
        dram = DramChannel(DramConfig(access_latency=80.0, bytes_per_cycle=16.0))
        start, done = dram.service(0.0)
        assert start == 0.0 and done == 80.0

    def test_bandwidth_serialises(self):
        dram = DramChannel(DramConfig(access_latency=80.0, bytes_per_cycle=16.0))
        dram.service(0.0)
        start, done = dram.service(0.0)
        assert start == 4.0  # 64B / 16 B-per-cycle occupancy
        assert done == 84.0

    def test_idle_gap_not_penalised(self):
        dram = DramChannel(DramConfig())
        dram.service(0.0)
        start, _ = dram.service(1000.0)
        assert start == 1000.0

    def test_writeback_occupies_only_bandwidth(self):
        dram = DramChannel(DramConfig(access_latency=80.0, bytes_per_cycle=16.0))
        done = dram.writeback(0.0)
        assert done == 4.0

    def test_utilisation(self):
        dram = DramChannel(DramConfig(bytes_per_cycle=16.0))
        dram.service(0.0)
        assert dram.utilisation(8.0) == pytest.approx(0.5)
        assert dram.requests == 1
