"""Trace container and Table IV characterisation statistics."""

import numpy as np
import pytest

from repro.isa import MemAccess, ScalarBlock, Trace, VectorContext, VectorInstr
from repro.isa.opcodes import Category


def build_sample_trace() -> Trace:
    ctx = VectorContext(vlmax=8, name="sample")
    a = ctx.vm.alloc_i32("a", np.arange(16, dtype=np.int32))
    b = ctx.vm.alloc_i32("b", np.arange(16, dtype=np.int32))
    out = ctx.vm.alloc_i32("c", 16)
    i = 0
    while i < 16:
        vl = ctx.setvl(16 - i)
        x = ctx.vle32(a, i)
        y = ctx.vle32(b, i)
        z = ctx.vadd(x, y)
        ctx.vse32(z, out, i)
        ctx.scalar(6)
        i += vl
    return ctx.trace


class TestTraceStats:
    def test_event_counts(self):
        trace = build_sample_trace()
        stats = trace.stats()
        # 2 strips x (vsetvl + 2 loads + add + store) = 10 vector instrs.
        assert stats.vector_instrs == 10
        assert stats.scalar_instrs == 12
        assert stats.dynamic_instrs == 22

    def test_vector_ops_count_active_lengths(self):
        stats = build_sample_trace().stats()
        # Each of the 10 vector instructions ran 8 active elements.
        assert stats.vector_ops == 80
        assert stats.total_ops == 80 + 12

    def test_mix_percentages(self):
        stats = build_sample_trace().stats()
        assert stats.mix_pct(Category.CTRL) == pytest.approx(20.0)
        assert stats.mix_pct(Category.IALU) == pytest.approx(20.0)
        assert stats.mix_pct(Category.MEM_UNIT) == pytest.approx(60.0)

    def test_vi_pct(self):
        stats = build_sample_trace().stats()
        assert stats.vi_pct == pytest.approx(100.0 * 10 / 22)

    def test_arith_intensity(self):
        stats = build_sample_trace().stats()
        # 16 adds vs 48 memory element-ops = 1/3 (vvadd's Table IV value).
        assert stats.arith_intensity == pytest.approx(1 / 3)

    def test_vpar(self):
        stats = build_sample_trace().stats()
        assert stats.vpar == pytest.approx(92 / 22)

    def test_prd_counts_masked(self):
        trace = Trace()
        trace.append(VectorInstr(op="vadd", vl=4, vd=1, vs1=2, vs2=3,
                                 masked=True))
        trace.append(VectorInstr(op="vadd", vl=4, vd=1, vs1=2, vs2=3))
        assert trace.stats().prd_pct == pytest.approx(50.0)

    def test_empty_trace(self):
        stats = Trace().stats()
        assert stats.dynamic_instrs == 0
        assert stats.vi_pct == 0.0
        assert stats.vpar == 0.0

    def test_memory_footprint(self):
        trace = Trace()
        trace.append(VectorInstr(op="vle32", vl=8, vd=1,
                                 mem=MemAccess(base=0, stride=4, count=8)))
        trace.append(ScalarBlock(n_instr=4, accesses=(
            MemAccess(base=0x100, stride=4, count=2, is_store=True),)))
        assert trace.memory_footprint_bytes() == 32 + 8

    def test_iterators(self):
        trace = build_sample_trace()
        assert len(list(trace.vector_instrs())) == 10
        assert len(list(trace.scalar_blocks())) == 2
        assert len(trace) == 12
