"""Cycle-attribution engine tests: conservation, critical path, exports.

The centrepiece is a conservation property sweep — every workload on the
scalar baseline and on EVE must attribute each unit's cycles bit-exactly
to the machine's own accounting, cover the achieved cycle count on the
timeline units, and leave the simulated cycle count untouched relative
to an uninstrumented run.
"""

import json

import pytest

from repro.analysis import build_depgraph
from repro.cli import main
from repro.errors import AttributionError
from repro.obs import (
    NULL_ATTRIBUTION,
    ROOT_NODE,
    AttributionCollector,
    attribution_record_payload,
    build_bottleneck_report,
    collect_nodes,
    counter_trace_dict,
    diff_records,
    flatten_record,
    folded_stacks,
    make_record,
    timed_critical_path,
)
from repro.workloads import REGISTRY

SWEEP_SYSTEMS = ("IO", "O3+EVE-4")
ALL_WORKLOADS = tuple(sorted(REGISTRY))


def _attributed_cell(tiny_runner, system, workload):
    attr = AttributionCollector()
    result = tiny_runner.run(system, workload, attribution=attr)
    return result, attr


class TestConservation:
    @pytest.mark.parametrize("system", SWEEP_SYSTEMS)
    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    def test_sweep_conserves_and_matches_baseline(self, tiny_runner,
                                                  system, workload):
        result, attr = _attributed_cell(tiny_runner, system, workload)
        attr.require_conserved(context=f"{system}/{workload}")

        # Bit-exact: the ledger equals the machine-reported unit totals.
        ledger = attr.unit_totals()
        assert result.unit_cycles is not None
        assert set(ledger) <= set(result.unit_cycles)
        for unit, buckets in result.unit_cycles.items():
            for bucket, reported in buckets.items():
                assert ledger.get(unit, {}).get(bucket, 0.0) == reported

        # Timeline coverage partitions the achieved cycles.
        covered, total = attr.coverage()
        assert total == result.cycles
        assert covered == pytest.approx(total, rel=1e-6)

        # Observation must not perturb the simulation.
        baseline = tiny_runner.run(system, workload)
        assert baseline.cycles == result.cycles

        # The timed critical path is a chain of node weights, which
        # partition the cycle count, so it can never exceed it.
        trace = tiny_runner.trace_for(system, workload)
        nodes = collect_nodes(attr, trace)
        graph = build_depgraph(trace) if trace.vlmax is not None else None
        report = build_bottleneck_report(attr, nodes, graph, system,
                                         workload)
        assert report.critical_path.cycles <= result.cycles + 1e-6

    @pytest.mark.parametrize("system", ("O3+IV", "O3+DV"))
    @pytest.mark.parametrize("workload", ("backprop", "vvadd"))
    def test_iv_dv_conserve(self, tiny_runner, system, workload):
        result, attr = _attributed_cell(tiny_runner, system, workload)
        attr.require_conserved(context=f"{system}/{workload}")
        assert tiny_runner.run(system, workload).cycles == result.cycles

    def test_unfinished_collector_fails_gate(self):
        attr = AttributionCollector()
        attr.charge("vsu", "busy", 10.0, node=0)
        with pytest.raises(AttributionError, match="never called finish"):
            attr.require_conserved()

    def test_tampered_ledger_fails_gate(self, tiny_runner):
        _result, attr = _attributed_cell(tiny_runner, "O3+EVE-4", "vvadd")
        attr.charge("vsu", "busy", 1.0, node=0)  # un-mirrored charge
        with pytest.raises(AttributionError, match="conservation violated"):
            attr.require_conserved()

    def test_null_attribution_is_inert(self):
        NULL_ATTRIBUTION.charge("vsu", "busy", 99.0)
        NULL_ATTRIBUTION.set_node(3)
        assert NULL_ATTRIBUTION.nodes() == []
        with pytest.raises(AttributionError, match="disabled"):
            NULL_ATTRIBUTION.require_conserved()


class TestCriticalPath:
    def test_slack_nonnegative_and_zero_on_path(self, tiny_runner):
        _result, attr = _attributed_cell(tiny_runner, "O3+EVE-4",
                                         "backprop")
        attr.require_conserved()
        trace = tiny_runner.trace_for("O3+EVE-4", "backprop")
        graph = build_depgraph(trace)
        weights = {n: attr.node_weight(n) for n in attr.nodes()
                   if n != ROOT_NODE}
        cp = timed_critical_path(graph, weights)
        assert cp.cycles > 0
        assert cp.path == sorted(cp.path)
        for node, slack in cp.slack.items():
            assert slack >= -1e-9
        for node in cp.path:
            assert cp.slack[node] == pytest.approx(0.0, abs=1e-9)

    def test_backprop_top10_covers_most_stall(self, tiny_runner):
        _result, attr = _attributed_cell(tiny_runner, "O3+EVE-4",
                                         "backprop")
        attr.require_conserved()
        trace = tiny_runner.trace_for("O3+EVE-4", "backprop")
        nodes = collect_nodes(attr, trace)
        report = build_bottleneck_report(
            attr, nodes, build_depgraph(trace), "O3+EVE-4", "backprop",
            top=10)
        assert report.instruction_coverage >= 0.8
        assert report.total_stall > 0
        ranked = [e.stall for e in report.instructions]
        assert ranked == sorted(ranked, reverse=True)

    def test_ranking_extends_to_coverage_target(self, tiny_runner):
        # With top=1 the ranking must keep extending until the ranked
        # rows cover the target share of total stall — paper-scale
        # traces spread stall over hundreds of instructions and a
        # fixed-size ranking would describe a sliver of the problem.
        _result, attr = _attributed_cell(tiny_runner, "O3+EVE-4",
                                         "backprop")
        attr.require_conserved()
        trace = tiny_runner.trace_for("O3+EVE-4", "backprop")
        nodes = collect_nodes(attr, trace)
        report = build_bottleneck_report(
            attr, nodes, build_depgraph(trace), "O3+EVE-4", "backprop",
            top=1, coverage_target=0.8)
        assert report.instruction_coverage >= 0.8
        # Ranks stay contiguous from 1 when the list extends.
        assert [e.rank for e in report.instructions] == list(
            range(1, len(report.instructions) + 1))

    def test_node_timeline_partitions_weight(self, tiny_runner):
        _result, attr = _attributed_cell(tiny_runner, "O3+EVE-4",
                                         "k-means")
        attr.require_conserved()
        trace = tiny_runner.trace_for("O3+EVE-4", "k-means")
        nodes = collect_nodes(attr, trace)
        covered, _total = attr.coverage()
        assert sum(n.weight for n in nodes) == pytest.approx(covered)
        for node in nodes:
            assert sum(node.timeline.values()) == pytest.approx(node.weight)
            assert node.stall == pytest.approx(node.weight - node.busy)


class TestExports:
    def test_folded_stacks_partition_cycles(self, tiny_runner):
        result, attr = _attributed_cell(tiny_runner, "O3+EVE-4", "vvadd")
        attr.require_conserved()
        trace = tiny_runner.trace_for("O3+EVE-4", "vvadd")
        nodes = collect_nodes(attr, trace)
        lines = folded_stacks(nodes, "vvadd")
        assert lines and all(line.startswith("vvadd;") for line in lines)
        total_samples = sum(int(line.rsplit(" ", 1)[1]) for line in lines)
        # Each leaf is independently rounded to integer samples.
        assert abs(total_samples - result.cycles) <= len(lines) + 1

    def test_counter_trace_is_valid_chrome_json(self, tiny_runner):
        _result, attr = _attributed_cell(tiny_runner, "O3+EVE-4", "vvadd")
        attr.require_conserved()
        trace = tiny_runner.trace_for("O3+EVE-4", "vvadd")
        doc = counter_trace_dict(collect_nodes(attr, trace))
        events = doc["traceEvents"]
        counters = [e for e in events if e["ph"] == "C"]
        assert counters
        # Cumulative counters never decrease within one series.
        last: dict = {}
        for event in counters:
            (bucket, value), = event["args"].items()
            assert value >= last.get(bucket, 0.0)
            last[bucket] = value
        json.dumps(doc)  # serialisable

    def test_record_payload_flattens_and_diffs(self, tiny_runner):
        _result, attr = _attributed_cell(tiny_runner, "O3+EVE-4", "vvadd")
        attr.require_conserved()
        trace = tiny_runner.trace_for("O3+EVE-4", "vvadd")
        nodes = collect_nodes(attr, trace)
        report = build_bottleneck_report(
            attr, nodes, build_depgraph(trace), "O3+EVE-4", "vvadd")
        payload = attribution_record_payload(attr, report)

        record = make_record("attribute", label="O3+EVE-4:vvadd")
        record.extra["attribution"] = payload
        flat = flatten_record(record)
        assert "attribution.bound_by.memory" in flat
        assert "attribution.vsu.busy" in flat
        assert "attribution.critical_path.share" in flat

        same = diff_records(record, record)
        assert same.exit_code(strict=True) == 0
        drifted = make_record("attribute", label="O3+EVE-4:vvadd")
        drifted_payload = json.loads(json.dumps(payload))
        drifted_payload["shares"]["bound_by.memory"] *= 1.5
        drifted.extra["attribution"] = drifted_payload
        diff = diff_records(record, drifted)
        assert diff.exit_code(strict=True) == 1
        assert diff.exit_code(strict=False) == 0  # advisory by default


class TestSatellites:
    def test_histogram_snapshot_quantiles(self):
        from repro.obs import Histogram
        hist = Histogram("mem.latency")
        for value in (1, 2, 4, 100):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"]
        assert snap["p99"] >= 100

    def test_stats_csv_scalar_cell_emits_na(self, capsys):
        assert main(["stats", "IO", "vvadd", "--tiny", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "trace.ops_per_vinstr,n/a" in out
        assert "analysis.ilp_width,n/a" in out
        assert "attribution.bound_by.memory," in out

    def test_stats_csv_vector_cell_has_ilp(self, capsys):
        assert main(["stats", "O3+EVE-4", "vvadd", "--tiny", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "trace.ops_per_vinstr,n/a" not in out
        assert "analysis.ilp_width,n/a" not in out

    def test_trace_emits_occupancy_counters(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "O3+EVE-4", "vvadd", "--tiny",
                     "-o", str(out_file)]) == 0
        capsys.readouterr()
        doc = json.loads(out_file.read_text())
        counter_names = {e["name"] for e in doc["traceEvents"]
                         if e.get("ph") == "C"}
        assert "dram_backlog" in counter_names
        assert any(name.endswith("_mshr_occupancy")
                   for name in counter_names)


class TestCli:
    def test_attribute_text_and_artifacts(self, tmp_path, capsys):
        flame = tmp_path / "flame.folded"
        perfetto = tmp_path / "counters.json"
        report = tmp_path / "report.json"
        assert main(["attribute", "O3+EVE-4", "backprop", "--tiny",
                     "--top", "5", "--flame-out", str(flame),
                     "--perfetto-out", str(perfetto),
                     "--json-out", str(report)]) == 0
        out = capsys.readouterr().out
        assert "conserved" in out and "bound by" in out
        assert flame.read_text().startswith("backprop;")
        payload = json.loads(report.read_text())
        assert payload["conservation"]["attributed_cycles"] == (
            pytest.approx(payload["conservation"]["total_cycles"]))
        assert payload["instructions"]
        assert payload["critical_path"]["cycles"] <= payload["cycles"] + 1e-6
        json.loads(perfetto.read_text())

    def test_attribute_json_scalar_system(self, capsys):
        assert main(["attribute", "IO", "vvadd", "--tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "IO"
        assert payload["bound_by"]["memory"] >= 0.0

    def test_bottleneck_grid(self, capsys):
        assert main(["bottleneck", "--tiny", "--systems", "IO", "O3+EVE-4",
                     "--workloads", "vvadd", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["cells"]["vvadd"]) == {"IO", "O3+EVE-4"}
        for cell in payload["cells"]["vvadd"].values():
            shares = sum(cell["bound_by"].values())
            assert shares == pytest.approx(1.0, rel=1e-6)

    def test_attribute_record_roundtrip(self, tmp_path, capsys):
        store = tmp_path / "runs"
        assert main(["attribute", "O3+EVE-4", "vvadd", "--tiny",
                     "--record", "--store", str(store)]) == 0
        capsys.readouterr()
        assert main(["attribute", "O3+EVE-4", "vvadd", "--tiny",
                     "--baseline", "latest", "--store", str(store)]) == 0
