"""Shared vector-machine machinery: memory streams and scalar blocks."""

import pytest

from repro.config import DramConfig, make_system, with_dram
from repro.cores.vector_base import VectorMachineBase
from repro.isa import MemAccess, ScalarBlock, VectorInstr


@pytest.fixture
def machine():
    return VectorMachineBase(make_system("O3"))


class TestScoreboard:
    def test_deps_default_zero(self, machine):
        instr = VectorInstr(op="vadd", vl=4, vd=1, vs1=2, vs2=3)
        assert machine.deps_ready(instr) == 0.0

    def test_deps_take_max(self, machine):
        machine.set_ready(2, 10.0)
        machine.set_ready(3, 25.0)
        instr = VectorInstr(op="vadd", vl=4, vd=1, vs1=2, vs2=3)
        assert machine.deps_ready(instr) == 25.0

    def test_negative_reg_ignored(self, machine):
        machine.set_ready(-1, 99.0)
        assert -1 not in machine.reg_ready

    def test_reset(self, machine):
        machine.set_ready(2, 10.0)
        machine.reset()
        assert machine.reg_ready == {}


class TestStreamLines:
    def test_line_mode_counts_distinct_lines(self, machine):
        pattern = MemAccess(base=0, stride=4, count=64)  # 4 lines
        first, last, _ = machine.stream_lines(0.0, pattern, "l2",
                                              per_element=False)
        assert machine.mem.l2.misses == 4
        assert last >= first > 0

    def test_per_element_mode_repeats_lines(self, machine):
        pattern = MemAccess(base=0, stride=8, count=64)  # 8 elems/line
        machine.stream_lines(0.0, pattern, "l2", per_element=True)
        stats = machine.mem.l2.hits + machine.mem.l2.misses
        assert stats == 64  # one request per element

    def test_empty_pattern(self, machine):
        pattern = MemAccess(base=0, stride=4, count=0)
        first, last, stall = machine.stream_lines(5.0, pattern, "l2",
                                                  per_element=False)
        assert (first, last, stall) == (5.0, 5.0, 0.0)

    def test_issue_interval_paces_stream(self, machine):
        pattern = MemAccess(base=0, stride=64, count=32)
        _, fast_last, _ = machine.stream_lines(0.0, pattern, "l2",
                                               per_element=False,
                                               issue_interval=1.0)
        slow_machine = VectorMachineBase(make_system("O3"))
        _, slow_last, _ = slow_machine.stream_lines(0.0, pattern, "l2",
                                                    per_element=False,
                                                    issue_interval=8.0)
        assert slow_last > fast_last

    def test_mshr_stall_total_reported(self):
        config = with_dram(make_system("O3"),
                           DramConfig(access_latency=500.0,
                                      bytes_per_cycle=1e9))
        machine = VectorMachineBase(config)
        pattern = MemAccess(base=0, stride=64, count=200)
        _, _, stall = machine.stream_lines(0.0, pattern, "llc",
                                           per_element=False)
        assert stall > 0  # 200 cold misses against 32 LLC MSHRs


class TestScalarBlocks:
    def test_pure_compute_cost(self, machine):
        end = machine.run_scalar_block(0.0, ScalarBlock(n_instr=1000))
        assert end == pytest.approx(1000 * machine.config.core.base_cpi)

    def test_memory_extends_block(self, machine):
        pattern = MemAccess(base=0, stride=64, count=50)
        busy = machine.run_scalar_block(
            0.0, ScalarBlock(n_instr=10, accesses=(pattern,)))
        assert busy > 10 * machine.config.core.base_cpi

    def test_warm_rerun_is_faster(self, machine):
        pattern = MemAccess(base=0, stride=64, count=50)
        block = ScalarBlock(n_instr=10, accesses=(pattern,))
        cold = machine.run_scalar_block(0.0, block)
        warm = machine.run_scalar_block(cold, block) - cold
        assert warm < cold
