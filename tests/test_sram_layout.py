"""Register-layout model tests (Figure 1 geometry, Table III lengths)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.sram import RegisterLayout


def layout(factor, rows=256, cols=256, bits=32, regs=32):
    return RegisterLayout(rows=rows, cols=cols, element_bits=bits,
                          factor=factor, num_vregs=regs)


class TestFigure1Example:
    """The paper's 16x16 array with 8-bit elements."""

    def test_one_register_half_utilized(self):
        lay = layout(1, rows=16, cols=16, bits=8, regs=1)
        assert lay.elements_per_array == 16
        assert lay.row_utilization == pytest.approx(0.5)

    def test_two_registers_balanced(self):
        lay = layout(1, rows=16, cols=16, bits=8, regs=2)
        assert lay.elements_per_array == 16
        assert lay.row_utilization == pytest.approx(1.0)

    def test_four_registers_column_underutilized(self):
        """Columns are repurposed for the extra registers — ALUs halve."""
        lay = layout(1, rows=16, cols=16, bits=8, regs=4)
        assert lay.groups_per_element == 2
        assert lay.elements_per_array == 8

    def test_higher_factor_restores_alus(self):
        lay = layout(2, rows=16, cols=16, bits=8, regs=4)
        assert lay.groups_per_element == 1
        assert lay.elements_per_array == 8  # 8 two-column groups


class TestTable3VectorLengths:
    @pytest.mark.parametrize("factor,per_array", [
        (1, 64), (2, 64), (4, 64), (8, 32), (16, 16), (32, 8),
    ])
    def test_elements_per_array(self, factor, per_array):
        assert layout(factor).elements_per_array == per_array

    def test_balanced_utilization_at_factor4(self):
        """32 regs x 8 segments exactly fill the 256 rows (Section II)."""
        lay = layout(4)
        assert lay.row_utilization == pytest.approx(1.0)
        assert lay.groups_per_element == 1

    def test_row_underutilization_beyond_4(self):
        assert layout(8).row_utilization == pytest.approx(0.5)
        assert layout(32).row_utilization == pytest.approx(0.125)

    def test_column_underutilization_below_4(self):
        assert layout(1).groups_per_element == 4
        assert layout(2).groups_per_element == 2


class TestAddressing:
    def test_row_of_lsb_segment_first(self):
        lay = layout(8)
        assert lay.row_of(0, 0) == 0
        assert lay.row_of(0, 3) == 3
        assert lay.row_of(1, 0) == 4

    def test_rows_distinct_within_group(self):
        lay = layout(8)
        rows = {lay.row_of(r, s) for r in range(32) for s in range(4)}
        assert len(rows) == 128

    def test_columns_of_element(self):
        lay = layout(8)
        assert lay.columns_of_element(0) == slice(0, 8)
        assert lay.columns_of_element(3) == slice(24, 32)

    def test_columns_follow_register_group(self):
        lay = layout(1)  # 4 groups per element
        assert lay.columns_of_element(0, vreg=0) == slice(0, 1)
        assert lay.columns_of_element(0, vreg=8) == slice(1, 2)
        assert lay.columns_of_element(1, vreg=0) == slice(4, 5)

    def test_same_group(self):
        lay = layout(1)
        assert lay.same_group(0, 7)
        assert not lay.same_group(0, 8)

    def test_bounds_checked(self):
        lay = layout(8)
        with pytest.raises(LayoutError):
            lay.row_of(32, 0)
        with pytest.raises(LayoutError):
            lay.row_of(0, 4)
        with pytest.raises(LayoutError):
            lay.columns_of_element(32)


class TestValidation:
    def test_factor_must_divide_width(self):
        with pytest.raises(LayoutError):
            layout(3)

    def test_factor_must_divide_columns(self):
        with pytest.raises(LayoutError):
            layout(32, cols=48)

    def test_register_must_fit_rows(self):
        with pytest.raises(LayoutError):
            layout(1, rows=16, bits=32, regs=1)

    def test_register_file_must_fit_array(self):
        with pytest.raises(LayoutError):
            layout(1, rows=32, cols=2, bits=32, regs=32).elements_per_array

    def test_needs_a_register(self):
        with pytest.raises(LayoutError):
            layout(8, regs=0)


class TestProperties:
    @settings(max_examples=60, deadline=None)
    @given(factor=st.sampled_from([1, 2, 4, 8, 16, 32]),
           regs=st.integers(1, 32),
           rows_log=st.integers(5, 9), cols_log=st.integers(5, 9))
    def test_utilization_and_capacity_invariants(self, factor, regs,
                                                 rows_log, cols_log):
        rows, cols = 2 ** rows_log, 2 ** cols_log
        if 32 // factor > rows or factor > cols:
            return
        try:
            lay = RegisterLayout(rows=rows, cols=cols, element_bits=32,
                                 factor=factor, num_vregs=regs)
            alus = lay.elements_per_array
        except LayoutError:
            return
        assert alus >= 1
        assert 0 < lay.storage_utilization <= 1.0
        assert 0 < lay.row_utilization <= 1.0
        # Total stored bits can never exceed the array.
        assert alus * regs * 32 <= rows * cols

    @settings(max_examples=30, deadline=None)
    @given(factor=st.sampled_from([4, 8, 16, 32]))
    def test_element_columns_disjoint(self, factor):
        lay = layout(factor)
        seen = set()
        for e in range(lay.elements_per_array):
            cols = lay.columns_of_element(e)
            span = set(range(cols.start, cols.stop))
            assert not span & seen
            seen |= span
