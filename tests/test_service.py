"""Tests for the simulation job service: spec/journal, the asyncio
scheduler (dedup, fairness, cancel, drain, recovery), the HTTP server
end-to-end over a real socket, and concurrent store appends."""

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ServiceError
from repro.experiments.parallel import WorkerPool
from repro.obs.events import (Event, EventLog, check_conservation,
                              read_events)
from repro.obs.runstore import RunStore, make_record
from repro.service.client import ServiceClient
from repro.service.jobs import (JOB_SCHEMA_VERSION, JobRecord, JobSpec,
                                JobStore, job_id_for, make_job_record)
from repro.service.scheduler import Scheduler
from repro.service.server import JobServer

SYSTEMS = ["IO", "O3+EVE-4"]
WORKLOAD = "vvadd"


# -- stub cells ------------------------------------------------------------------

class FakeResult:
    def __init__(self, system, workload):
        self.cycles = 1000.0 if system == "IO" else 250.0
        self.time_ns = self.cycles * 1.025
        self.instructions = 64

    def to_json_dict(self):
        return {"system": "?", "cycles": self.cycles,
                "time_ns": self.time_ns,
                "instructions": self.instructions, "metrics": {}}


def make_stub(delay=0.0, fail_system=None, trace=None):
    """An in-process simulate_cell stand-in (WorkerPool(jobs=1) never
    pickles it).  ``trace`` collects the systems it actually ran."""
    def stub(spec):
        system, workload = spec[0], spec[1]
        if trace is not None:
            trace.append(system)
        if delay:
            time.sleep(delay)
        if fail_system is not None and system == fail_system:
            raise RuntimeError(f"boom in {system}")
        return {"result": FakeResult(system, workload), "system": system,
                "workload": workload, "cached": False, "profile": {},
                "cache": {"result": "miss", "trace": "miss",
                          "corrupt_paths": []}}
    return stub


def sweep_spec(client="tester", systems=SYSTEMS, workloads=(WORKLOAD,),
               **kw):
    return JobSpec(kind="sweep", systems=list(systems),
                   workloads=list(workloads), tiny=True, client=client,
                   **kw)


def run_async(coro, timeout=60.0):
    return asyncio.run(asyncio.wait_for(coro, timeout))


# -- the spec --------------------------------------------------------------------

class TestJobSpec:
    def test_validate_canonicalizes_names(self):
        spec = JobSpec(kind="sweep", systems=["io"], workloads=["VVADD"])
        spec.validate()
        assert spec.systems == ["IO"]
        assert spec.workloads == ["vvadd"]

    @pytest.mark.parametrize("field,value,match", [
        ("kind", "bogus", "unknown job kind"),
        ("priority", "urgent", "unknown priority"),
        ("client", "", "non-empty"),
        ("client", "x" * 65, "exceeds"),
        ("seed", "seven", "seed must be an integer"),
        ("tiny", 1, "tiny must be a boolean"),
    ])
    def test_validate_rejects_bad_fields(self, field, value, match):
        spec = sweep_spec()
        setattr(spec, field, value)
        with pytest.raises(ServiceError, match=match):
            spec.validate()

    def test_validate_rejects_unknown_names(self):
        with pytest.raises(ServiceError, match="unknown system"):
            JobSpec(kind="sweep", systems=["Cray-1"]).validate()
        with pytest.raises(ServiceError, match="unknown workload"):
            JobSpec(kind="sweep", workloads=["minesweeper"]).validate()

    def test_compare_needs_exactly_one_workload(self):
        with pytest.raises(ServiceError, match="exactly one workload"):
            JobSpec(kind="compare", workloads=[]).validate()

    def test_unit_kinds_default_and_cap_count(self):
        fuzz = JobSpec(kind="fuzz").validate()
        assert fuzz.count == 50
        faults = JobSpec(kind="faults").validate()
        assert faults.count == 100
        with pytest.raises(ServiceError, match="cap"):
            JobSpec(kind="fuzz", count=10**9).validate()

    def test_cells_canonical_and_deduplicated(self):
        spec = JobSpec(kind="sweep", systems=["io", "IO", "O3+EVE-4"],
                       workloads=["vvadd"]).validate()
        assert spec.cells() == [("IO", "vvadd"), ("O3+EVE-4", "vvadd")]

    def test_fingerprint_tracks_the_experiment(self):
        base = sweep_spec().fingerprint()
        assert base == sweep_spec().fingerprint()
        assert sweep_spec(seed=7).fingerprint() != base
        assert sweep_spec(workloads=["pathfinder"]).fingerprint() != base
        # client/priority are scheduling metadata, not experiment identity
        assert sweep_spec(client="other").fingerprint() == base
        assert sweep_spec(priority="high").fingerprint() == base

    def test_round_trip_rejects_unknown_fields(self):
        doc = sweep_spec().to_json_dict()
        assert JobSpec.from_json_dict(doc) == sweep_spec()
        doc["surprise"] = 1
        with pytest.raises(ServiceError, match="surprise"):
            JobSpec.from_json_dict(doc)


# -- the journal -----------------------------------------------------------------

class TestJobStore:
    def test_latest_snapshot_wins(self, tmp_path):
        store = JobStore(str(tmp_path))
        record = make_job_record(job_id_for(1), sweep_spec())
        store.append(record)
        record.touch("running")
        record.attempts = 1
        store.append(record)
        loaded = store.load()
        assert list(loaded) == ["job-000001"]
        assert loaded["job-000001"].state == "running"
        assert loaded["job-000001"].attempts == 1
        assert store.next_seq() == 2

    def test_record_round_trip_is_strict(self):
        record = make_job_record(job_id_for(3), sweep_spec())
        doc = json.loads(json.dumps(record.to_json_dict()))
        assert JobRecord.from_json_dict(doc) == record
        doc["schema_version"] = JOB_SCHEMA_VERSION + 1
        with pytest.raises(ServiceError, match="schema version"):
            JobRecord.from_json_dict(doc)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append(make_job_record(job_id_for(1), sweep_spec()))
        with open(store.path, "a") as handle:
            handle.write('{"job_id": "job-0000')  # crashed writer
        assert list(store.load()) == ["job-000001"]

    def test_interior_corruption_raises(self, tmp_path):
        store = JobStore(str(tmp_path))
        store.append(make_job_record(job_id_for(1), sweep_spec()))
        with open(store.path, "a") as handle:
            handle.write("{not json\n")
        store.append(make_job_record(job_id_for(2), sweep_spec()))
        with pytest.raises(ServiceError, match="corrupt"):
            store.load()


# -- the scheduler ----------------------------------------------------------------

def make_scheduler(tmp_path, cell_func, max_active_jobs=4, jobs=1):
    return Scheduler(WorkerPool(jobs=jobs), store_root=str(tmp_path),
                     cache_root=None, max_active_jobs=max_active_jobs,
                     cell_func=cell_func)


class TestScheduler:
    def test_overlapping_jobs_dedup_cells(self, tmp_path):
        trace = []

        async def scenario():
            sched = make_scheduler(tmp_path, make_stub(delay=0.1,
                                                       trace=trace))
            await sched.start()
            a = await sched.submit(sweep_spec(client="alice"))
            b = await sched.submit(sweep_spec(client="bob"))
            ra = await sched.wait(a.job_id, timeout=30)
            rb = await sched.wait(b.job_id, timeout=30)
            assert (ra.state, rb.state) == ("done", "done")
            assert sched.result(a.job_id) == sched.result(b.job_id)
            counters = dict(sched.counters)
            await sched.drain()
            return counters

        counters = run_async(scenario())
        assert counters["cells_total"] == 4
        assert counters["cells_unique"] == 2
        assert counters["cells_deduped"] == 2
        assert counters["cells_simulated"] == 2
        assert trace.count("IO") == 1  # each unique cell ran exactly once
        assert trace.count("O3+EVE-4") == 1

    def test_priority_lanes_beat_fifo(self, tmp_path):
        trace = []

        async def scenario():
            sched = make_scheduler(tmp_path, make_stub(delay=0.05,
                                                       trace=trace),
                                   max_active_jobs=1)
            await sched.start()
            blocker = await sched.submit(sweep_spec(systems=["IO"]))
            low = await sched.submit(sweep_spec(systems=["O3"],
                                                priority="low"))
            high = await sched.submit(sweep_spec(systems=["O3+EVE-4"],
                                                 priority="high"))
            for job in (blocker, low, high):
                await sched.wait(job.job_id, timeout=30)
            await sched.drain()

        run_async(scenario())
        assert trace == ["IO", "O3+EVE-4", "O3"]

    def test_clients_round_robin_within_a_lane(self, tmp_path):
        trace = []

        async def scenario():
            sched = make_scheduler(tmp_path, make_stub(delay=0.05,
                                                       trace=trace),
                                   max_active_jobs=1)
            await sched.start()
            blocker = await sched.submit(sweep_spec(systems=["IO"],
                                                    client="alice"))
            jobs = [await sched.submit(sweep_spec(systems=[s], client=c))
                    for s, c in (("O3", "alice"), ("O3+EVE-1", "alice"),
                                 ("O3+EVE-4", "bob"))]
            for job in [blocker] + jobs:
                await sched.wait(job.job_id, timeout=30)
            await sched.drain()

        run_async(scenario())
        # alice queued two before bob queued one; fairness interleaves
        assert trace == ["IO", "O3", "O3+EVE-4", "O3+EVE-1"]

    def test_cancel_queued_and_running(self, tmp_path):
        async def scenario():
            sched = make_scheduler(tmp_path, make_stub(delay=0.1),
                                   max_active_jobs=1)
            await sched.start()
            running = await sched.submit(sweep_spec())
            queued = await sched.submit(sweep_spec(client="later"))
            await sched.cancel(queued.job_id)
            rec = await sched.wait(queued.job_id, timeout=10)
            assert rec.state == "cancelled"
            await sched.cancel(running.job_id)
            rec = await sched.wait(running.job_id, timeout=30)
            assert rec.state == "cancelled"
            with pytest.raises(ServiceError, match="already cancelled"):
                await sched.cancel(running.job_id)
            with pytest.raises(ServiceError, match="unknown job"):
                await sched.cancel("job-999999")
            # conservation: every queued unit got exactly one terminal
            problems = check_conservation(read_events(sched.events_path))
            assert problems == []
            await sched.drain()

        run_async(scenario())

    def test_cell_failure_fails_fast_and_conserves(self, tmp_path):
        async def scenario():
            sched = make_scheduler(
                tmp_path, make_stub(delay=0.02, fail_system="IO"))
            await sched.start()
            job = await sched.submit(sweep_spec())
            rec = await sched.wait(job.job_id, timeout=30)
            assert rec.state == "failed"
            assert "boom" in rec.error
            with pytest.raises(ServiceError, match="not done"):
                sched.result(job.job_id)
            problems = check_conservation(read_events(sched.events_path))
            assert problems == []
            await sched.drain()

        run_async(scenario())

    def test_drain_checkpoints_queue_and_recovery_requeues(self, tmp_path):
        async def part_one():
            sched = make_scheduler(tmp_path, make_stub(delay=0.2),
                                   max_active_jobs=1)
            await sched.start()
            running = await sched.submit(sweep_spec())
            waiting = await sched.submit(sweep_spec(client="later"))
            await asyncio.sleep(0.1)  # let the first cell start
            summary = await sched.drain()
            assert summary["checkpointed"] == 2
            problems = check_conservation(read_events(sched.events_path))
            assert problems == []
            return running.job_id, waiting.job_id

        ids = run_async(part_one())
        journal = JobStore(str(tmp_path)).load()
        assert [journal[i].state for i in ids] == ["queued", "queued"]

        async def part_two():
            sched = make_scheduler(tmp_path, make_stub())
            recovered = await sched.start()
            assert recovered == 2
            for job_id in ids:
                rec = await sched.wait(job_id, timeout=30)
                assert rec.state == "done"
            assert sched.counters["jobs_recovered"] == 2
            await sched.drain()

        run_async(part_two())

    def test_submit_while_draining_is_rejected(self, tmp_path):
        async def scenario():
            sched = make_scheduler(tmp_path, make_stub())
            await sched.start()
            await sched.drain()
            with pytest.raises(ServiceError, match="draining"):
                await sched.submit(sweep_spec())

        run_async(scenario())

    def test_done_job_archives_a_run_record(self, tmp_path):
        async def scenario():
            sched = make_scheduler(tmp_path, make_stub())
            await sched.start()
            job = await sched.submit(sweep_spec())
            rec = await sched.wait(job.job_id, timeout=30)
            await sched.drain()
            return rec

        rec = run_async(scenario())
        assert rec.result_record_id
        run = RunStore(str(tmp_path)).load(rec.result_record_id)
        assert run.kind == "sweep"
        assert run.extra["service"]["job_id"] == rec.job_id
        assert run.results["IO"]["vvadd"]["cycles"] == 1000.0
        assert run.speedups["vvadd"]["O3+EVE-4"] == pytest.approx(4.0)

    def test_status_reports_queues_and_counters(self, tmp_path):
        async def scenario():
            sched = make_scheduler(tmp_path, make_stub())
            await sched.start()
            job = await sched.submit(sweep_spec())
            await sched.wait(job.job_id, timeout=30)
            status = sched.status()
            await sched.drain()
            return status

        status = run_async(scenario())
        assert status["jobs"] == {"done": 1}
        assert status["queue"] == {"high": 0, "normal": 0, "low": 0}
        assert status["counters"]["jobs_done"] == 1
        assert not status["draining"]


# -- the server, end to end over a real socket -------------------------------------

class ServiceHarness:
    """Scheduler + server on a private event loop in a daemon thread,
    driven from the test thread with the blocking ServiceClient."""

    def __init__(self, tmp_path, cell_func=None, cache_root=None,
                 jobs=1, max_active_jobs=4, rate=1000.0, burst=1000):
        from repro.experiments.parallel import simulate_cell
        self.tmp_path = tmp_path
        self.cell_func = cell_func or simulate_cell
        self.cache_root = cache_root
        self.jobs = jobs
        self.max_active_jobs = max_active_jobs
        self.rate = rate
        self.burst = burst
        self._ready = threading.Event()
        self._stop = None
        self.loop = None
        self.scheduler = None
        self.server = None
        self.drain_summary = None

    async def _main(self):
        self._stop = asyncio.Event()
        pool = WorkerPool(jobs=self.jobs)
        self.scheduler = Scheduler(
            pool, store_root=str(self.tmp_path),
            cache_root=self.cache_root,
            max_active_jobs=self.max_active_jobs,
            cell_func=self.cell_func)
        await self.scheduler.start()
        self.server = JobServer(self.scheduler, port=0,
                                rate=self.rate, burst=self.burst)
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()
        self.drain_summary = await self.scheduler.drain()

    def _run(self):
        self.loop = asyncio.new_event_loop()
        try:
            self.loop.run_until_complete(self._main())
        finally:
            self.loop.close()

    def __enter__(self):
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        assert self._ready.wait(timeout=30), "server never came up"
        return self

    def __exit__(self, *exc):
        self.loop.call_soon_threadsafe(self._stop.set)
        self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "server thread leaked"

    def client(self, name="tester"):
        return ServiceClient(port=self.server.port, client=name)


class TestServerEndToEnd:
    def test_submit_wait_result_and_listing(self, tmp_path):
        with ServiceHarness(tmp_path, cell_func=make_stub()) as svc:
            client = svc.client()
            record = client.submit({"kind": "sweep", "systems": SYSTEMS,
                                    "workloads": [WORKLOAD], "tiny": True})
            assert record["state"] == "queued"
            assert record["spec"]["client"] == "tester"
            final = client.wait(record["job_id"], timeout=30)
            assert final["state"] == "done"
            payload = client.result(record["job_id"])
            assert payload["baseline"] == "IO"
            assert payload["cells"][WORKLOAD]["IO"]["cycles"] == 1000.0
            jobs = client.jobs()
            assert [j["job_id"] for j in jobs] == [record["job_id"]]
            status = client.status()
            assert status["counters"]["jobs_done"] == 1
            assert status["server"]["requests"] >= 4

    def test_result_waits_server_side(self, tmp_path):
        with ServiceHarness(tmp_path,
                            cell_func=make_stub(delay=0.1)) as svc:
            client = svc.client()
            record = client.submit({"kind": "sweep", "systems": SYSTEMS,
                                    "workloads": [WORKLOAD], "tiny": True})
            payload = client.result(record["job_id"], timeout=30)
            assert payload["cells"][WORKLOAD]["IO"]["cycles"] == 1000.0

    def test_events_stream_ends_with_terminal_state(self, tmp_path):
        with ServiceHarness(tmp_path,
                            cell_func=make_stub(delay=0.05)) as svc:
            client = svc.client()
            record = client.submit({"kind": "sweep", "systems": SYSTEMS,
                                    "workloads": [WORKLOAD], "tiny": True})
            docs = list(client.events(record["job_id"]))
            kinds = [d.get("kind") or d.get("event") for d in docs]
            assert kinds[0] == "job_state"
            assert "campaign_finished" in kinds
            states = [d["state"] for d in docs if d.get("kind") == "job_state"]
            assert states[-1] == "done"

    def test_cancel_roundtrip(self, tmp_path):
        with ServiceHarness(tmp_path, cell_func=make_stub(delay=0.2),
                            max_active_jobs=1) as svc:
            client = svc.client()
            running = client.submit({"kind": "sweep", "systems": SYSTEMS,
                                     "workloads": [WORKLOAD],
                                     "tiny": True})
            queued = client.submit({"kind": "sweep", "systems": SYSTEMS,
                                    "workloads": [WORKLOAD], "tiny": True,
                                    "priority": "low"})
            client.cancel(queued["job_id"])
            final = client.wait(queued["job_id"], timeout=30)
            assert final["state"] == "cancelled"
            client.wait(running["job_id"], timeout=30)

    def test_validation_and_routing_errors(self, tmp_path):
        with ServiceHarness(tmp_path, cell_func=make_stub()) as svc:
            client = svc.client()
            with pytest.raises(ServiceError, match="unknown job kind") \
                    as err:
                client.submit({"kind": "bogus"})
            assert err.value.status == 400
            with pytest.raises(ServiceError, match="unknown job") as err:
                client.job("job-424242")
            assert err.value.status == 404
            with pytest.raises(ServiceError, match="unknown fields"):
                client.submit({"kind": "sweep", "sudo": True})
            with pytest.raises(ServiceError, match="unknown path") as err:
                client._request("GET", "/v2/everything")
            assert err.value.status == 404

    def test_oversized_body_is_rejected(self, tmp_path):
        with ServiceHarness(tmp_path, cell_func=make_stub()) as svc:
            client = svc.client()
            with pytest.raises(ServiceError, match="exceeds") as err:
                client.submit({"kind": "sweep",
                               "workloads": ["x" * 100_000]})
            assert err.value.status == 413

    def test_rate_limit_kicks_in(self, tmp_path):
        with ServiceHarness(tmp_path, cell_func=make_stub(),
                            rate=0.001, burst=3) as svc:
            client = svc.client("greedy")
            for _ in range(3):
                client.status()
            with pytest.raises(ServiceError, match="rate limit") as err:
                client.status()
            assert err.value.status == 429
            # another client has its own bucket
            svc.client("patient").status()

    def test_concurrent_clients_share_cells(self, tmp_path):
        trace = []
        with ServiceHarness(tmp_path,
                            cell_func=make_stub(delay=0.1,
                                                trace=trace)) as svc:
            spec = {"kind": "sweep", "systems": SYSTEMS,
                    "workloads": [WORKLOAD], "tiny": True}
            with ThreadPoolExecutor(max_workers=2) as tpe:
                futs = [tpe.submit(
                    lambda name: svc.client(name).submit(spec), name)
                    for name in ("alice", "bob")]
                records = [f.result() for f in futs]
            client = svc.client()
            payloads = [
                client.result(r["job_id"], timeout=30) for r in records]
            assert payloads[0] == payloads[1]
            counters = client.status()["counters"]
            assert counters["cells_deduped"] == 2
            assert counters["cells_simulated"] == 2
        assert len(trace) == 2  # each unique cell simulated exactly once

    def test_real_sweep_matches_direct_payload(self, tmp_path):
        """End-to-end with the REAL simulator: the service's sweep result
        equals the payload the CLI's --json path builds directly."""
        from repro.experiments import ParallelRunner, sweep_result_payload
        from repro.workloads import tiny_overrides
        cache = str(tmp_path / "cells")
        with ServiceHarness(tmp_path / "store", cell_func=None,
                            cache_root=cache) as svc:
            client = svc.client()
            record = client.submit({"kind": "sweep",
                                    "systems": ["IO", "O3+EVE-1"],
                                    "workloads": [WORKLOAD],
                                    "tiny": True})
            service_payload = client.result(record["job_id"], timeout=120)
        runner = ParallelRunner(params_override=tiny_overrides(),
                                jobs=1, cache_root=cache)
        direct = sweep_result_payload(runner, ["IO", "O3+EVE-1"],
                                      [WORKLOAD])
        assert json.dumps(service_payload, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)


# -- concurrent appends (asyncio tasks + threads + pool workers) --------------------

def _append_events(args):
    """Pool-worker side of the EventLog contention test (picklable)."""
    path, campaign, count = args
    log = EventLog(path)
    log.append([Event(event="queued", unit=f"{campaign}/{i}", t=float(i),
                      campaign=campaign, seq=i) for i in range(count)])
    return campaign


class TestConcurrentAppends:
    def test_threaded_runstore_appends_assign_unique_ids(self, tmp_path):
        store = RunStore(str(tmp_path))

        def append_one(i):
            record = make_record("run", label=f"t{i}", command="test")
            record.add_result("IO", "vvadd", cycles=float(i), time_ns=1.0)
            return store.append(record)

        with ThreadPoolExecutor(max_workers=8) as tpe:
            ids = list(tpe.map(append_one, range(24)))
        assert len(set(ids)) == 24
        assert sorted(ids) == [f"{i:06d}-run" for i in range(1, 25)]
        assert len(list(store.records())) == 24

    def test_asyncio_tasks_share_one_store_via_executor(self, tmp_path):
        store = RunStore(str(tmp_path))

        async def scenario():
            loop = asyncio.get_event_loop()

            def append_one(i):
                return store.append(make_record("run", label=f"a{i}"))

            with ThreadPoolExecutor(max_workers=4) as tpe:
                ids = await asyncio.gather(*[
                    loop.run_in_executor(tpe, append_one, i)
                    for i in range(12)])
            return ids

        ids = run_async(scenario())
        assert len(set(ids)) == 12
        # the index survived the contention and still matches the JSONL
        assert len(store.history()) == 12

    def test_append_all_is_atomic_under_contention(self, tmp_path):
        store = RunStore(str(tmp_path))

        def append_batch(tag):
            return store.append_all(
                [make_record("run", label=f"{tag}-{i}") for i in range(5)])

        with ThreadPoolExecutor(max_workers=4) as tpe:
            batches = list(tpe.map(append_batch, "abcd"))
        for ids in batches:  # each batch's ids are consecutive
            seqs = [int(i.split("-")[0]) for i in ids]
            assert seqs == list(range(seqs[0], seqs[0] + 5))
        all_ids = [i for ids in batches for i in ids]
        assert len(set(all_ids)) == 20

    def test_pool_workers_append_events_without_interleaving(self,
                                                             tmp_path):
        import multiprocessing
        from repro.experiments.parallel import START_METHOD
        path = str(tmp_path / "events.jsonl")
        ctx = multiprocessing.get_context(START_METHOD)
        with ctx.Pool(processes=4) as pool:
            done = pool.map(_append_events,
                            [(path, f"c{i}", 20) for i in range(8)])
        assert sorted(done) == [f"c{i}" for i in range(8)]
        events = read_events(path)
        assert len(events) == 160  # no torn or interleaved lines
        by_campaign = {}
        for event in events:
            by_campaign.setdefault(event.campaign, []).append(event.seq)
        assert all(seqs == list(range(20))
                   for seqs in by_campaign.values())

    def test_jobstore_contention_keeps_latest_snapshots(self, tmp_path):
        store = JobStore(str(tmp_path))

        def lifecycle(i):
            record = make_job_record(job_id_for(i), sweep_spec())
            store.append(record)
            record.touch("running")
            store.append(record)
            record.touch("done")
            store.append(record)

        with ThreadPoolExecutor(max_workers=8) as tpe:
            list(tpe.map(lifecycle, range(1, 17)))
        loaded = store.load()
        assert len(loaded) == 16
        assert all(r.state == "done" for r in loaded.values())
