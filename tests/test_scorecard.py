"""Tests for the paper-fidelity scorecard and its paper-target data.

The simulations run at tiny scale, so these tests assert the scorecard's
*machinery* (grading rubric, shape-check plumbing, JSON shape, CLI exit
codes), never the tiny-input grades themselves.
"""

import json
import math

import pytest

from repro.cli import main
from repro.experiments import paper_targets as targets
from repro.experiments.figures import ALL_APPS, GEOMEAN_APPS
from repro.obs.runstore import RunStore
from repro.obs.scorecard import (
    FIGURES,
    Scorecard,
    grade_datapoint,
    ratio_error,
)


class TestRatioError:
    def test_perfect_is_one(self):
        assert ratio_error(3.0, 3.0) == 1.0

    def test_symmetric(self):
        assert ratio_error(2.0, 4.0) == ratio_error(4.0, 2.0) == 2.0

    def test_sign_miss_is_infinite(self):
        assert math.isinf(ratio_error(3.0, -1.0))
        assert math.isinf(ratio_error(3.0, 0.0))


class TestGradeRubric:
    def test_tight_band_is_a(self):
        error, grade = grade_datapoint("table4", 4.0, 4.0 * 1.10)
        assert grade == "A"

    def test_figure_budget_is_b(self):
        error, grade = grade_datapoint("table4", 4.0, 4.0 * 1.40)
        assert grade == "B"

    def test_same_side_of_pivot_is_c(self):
        # Off by 3x but both sides agree "faster than the baseline".
        error, grade = grade_datapoint("table4", 4.0, 4.0 / 3.0, pivot=1.0)
        assert grade == "C"

    def test_crossing_the_pivot_caps_the_grade(self):
        # The paper says speedup, we measured a slowdown: direction miss.
        # Numerically close still caps at C; beyond budget it is an F.
        _, near = grade_datapoint("table4", 1.2, 0.9, pivot=1.0)
        _, far = grade_datapoint("table4", 2.0, 0.9, pivot=1.0)
        assert near == "C"
        assert far == "F"

    def test_without_pivot_triple_budget_is_c_then_f(self):
        budget = targets.ERROR_BUDGETS["fig8"]["budget"]
        _, grade_c = grade_datapoint("fig8", 1.0, 1.0 + 2 * budget)
        _, grade_f = grade_datapoint("fig8", 1.0, 1.0 + 4 * budget)
        assert grade_c == "C"
        assert grade_f == "F"


class TestPaperTargets:
    def test_table4_covers_every_kernel(self):
        assert set(targets.TABLE4_SPEEDUP_VS_IV) == set(ALL_APPS)
        for row in targets.TABLE4_SPEEDUP_VS_IV.values():
            assert set(row) == {"DV", "E-1", "E-8", "E-32"}
            assert all(v > 0 for v in row.values())

    def test_table4_geomean_matches_the_paper_headline(self):
        assert targets.TABLE4_GEOMEAN_VS_IV["E-8"] == 4.59

    def test_fig6_derived_targets_are_flagged(self):
        assert set(targets.FIG6_DERIVED) < set(targets.FIG6_GEOMEAN_VS_IO)

    def test_known_deviations_lookup(self):
        assert targets.is_known_deviation("fig8", "k-means")
        assert targets.deviation_note("fig8", "k-means")
        assert not targets.is_known_deviation("table4", "vvadd")
        assert targets.deviation_note("table4", "vvadd") == ""

    def test_error_budgets_cover_every_graded_figure(self):
        assert set(targets.ERROR_BUDGETS) >= {"fig6", "table4", "fig8"}
        for budgets in targets.ERROR_BUDGETS.values():
            assert 0 < budgets["tight"] < budgets["budget"]


class TestScorecardAggregation:
    def test_geomean_and_grade_counts(self):
        card = Scorecard(figures=("table4",), apps=("vvadd",))
        card.add_datapoint("table4", "vvadd", "DV", 4.0, 4.0)
        card.add_datapoint("table4", "vvadd", "E-8", 2.0, 4.0)
        assert card.geomean_error() == pytest.approx(math.sqrt(2.0))
        counts = card.grade_counts()
        assert counts["A"] == 1
        assert sum(counts.values()) == 2

    def test_known_deviation_excluded_from_core_geomean(self):
        card = Scorecard(figures=("fig8",), apps=("k-means",))
        card.add_datapoint("fig8", "k-means", "stall", 0.45, 0.045)
        card.add_datapoint("fig8", "backprop", "stall", 0.93, 0.93)
        assert card.entries[0].known_deviation
        assert card.geomean_error() > card.geomean_error(core_only=True)

    def test_failed_gating_check_fails_the_verdict(self):
        card = Scorecard(figures=("fig6",), apps=())
        card.add_check("fig6", "always true", True)
        assert card.passed
        card.add_check("fig6", "advisory miss", False, gate=False)
        assert card.passed
        card.add_check("fig6", "gating miss", False)
        assert not card.passed

    def test_geomean_over_budget_fails_the_verdict(self):
        card = Scorecard(figures=("table4",), apps=("vvadd",))
        bad = targets.GEOMEAN_ERROR_BUDGET * 2
        card.add_datapoint("table4", "vvadd", "DV", 1.0, bad)
        assert not card.passed

    def test_kernel_summary_groups(self):
        card = Scorecard(figures=("table4",), apps=("vvadd",))
        card.add_datapoint("table4", "vvadd", "DV", 4.0, 4.0)
        card.add_datapoint("table4", "vvadd", "E-8", 4.0, 4.0)
        rows = card.kernel_summary()
        assert len(rows) == 1
        assert rows[0]["grades"] == "AA"
        assert rows[0]["geomean_error"] == pytest.approx(1.0)

    def test_json_shape(self):
        card = Scorecard(figures=("table4",), apps=("vvadd",), tiny=True)
        card.add_datapoint("table4", "vvadd", "DV", 4.0, 4.1)
        card.add_check("table4", "shape", True)
        doc = card.to_json_dict()
        assert doc["tiny"] is True
        assert set(doc) >= {"entries", "checks", "kernel_summary", "grades",
                            "geomean_error", "geomean_error_core",
                            "failed_checks", "passed"}
        assert doc["entries"][0]["grade"] in "ABCF"


class TestScorecardCli:
    """``repro scorecard`` end-to-end at tiny scale (machinery only)."""

    def test_json_output_shape(self, capsys):
        code = main(["scorecard", "--tiny", "--json",
                     "--apps", "vvadd", "--figures", "table4"])
        assert code == 0    # no --gate: tiny grades never fail the build
        doc = json.loads(capsys.readouterr().out)
        assert doc["figures"] == ["table4"]
        assert doc["apps"] == ["vvadd"]
        assert doc["tiny"] is True
        kernels = {e["kernel"] for e in doc["entries"]}
        assert "vvadd" in kernels
        assert isinstance(doc["passed"], bool)

    def test_table_output_mentions_verdict(self, capsys):
        assert main(["scorecard", "--tiny",
                     "--apps", "vvadd", "--figures", "table4"]) == 0
        out = capsys.readouterr().out
        assert "fidelity verdict" in out
        assert "geomean error" in out
        assert "tiny inputs" in out

    def test_figures_outside_requested_apps_are_skipped(self, capsys):
        # vvadd is not a Figure 7 kernel, so restricting to it leaves
        # fig7 with nothing to run (and nothing in the report).
        assert "vvadd" not in GEOMEAN_APPS
        code = main(["scorecard", "--tiny", "--json",
                     "--apps", "vvadd", "--figures", "fig7"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["entries"] == [] and doc["checks"] == []

    def test_record_appends_to_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "runs")
        code = main(["scorecard", "--tiny", "--apps", "vvadd",
                     "--figures", "table4", "--record",
                     "--store", store_dir])
        assert code == 0
        record = RunStore(store_dir).latest(kind="scorecard")
        assert record.tiny
        assert record.extra["scorecard"]["figures"] == ["table4"]

    def test_json_out_writes_file(self, tmp_path, capsys):
        out_file = tmp_path / "scorecard.json"
        assert main(["scorecard", "--tiny", "--apps", "vvadd",
                     "--figures", "table4",
                     "--json-out", str(out_file)]) == 0
        doc = json.loads(out_file.read_text())
        assert doc["figures"] == ["table4"]

    def test_all_figures_are_valid_choices(self):
        assert set(FIGURES) == {"fig6", "table4", "fig7", "fig8"}
