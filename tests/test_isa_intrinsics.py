"""Functional semantics of the vector intrinsics layer."""

import numpy as np
import pytest

from repro.errors import IsaError, MemoryModelError
from repro.isa import VectorContext
from repro.isa.intrinsics import wrap32

I32MIN, I32MAX = -(2 ** 31), 2 ** 31 - 1


@pytest.fixture
def ctx():
    context = VectorContext(vlmax=16, name="t")
    context.setvl(16)
    return context


def vec(ctx, values, name=None):
    name = name or f"buf{len(ctx.vm.buffers)}"
    buf = ctx.vm.alloc_i32(name, np.asarray(values, dtype=np.int64).astype(np.int32))
    return ctx.vle32(buf)


class TestWrap32:
    def test_identity_in_range(self):
        vals = np.array([0, 1, -1, I32MAX, I32MIN])
        assert np.array_equal(wrap32(vals), vals)

    def test_overflow_wraps(self):
        assert wrap32(np.array([2 ** 31]))[0] == I32MIN
        assert wrap32(np.array([-2 ** 31 - 1]))[0] == I32MAX

    def test_multiplication_wrap(self):
        assert wrap32(np.array([3 * 10 ** 9]))[0] == 3 * 10 ** 9 - 2 ** 32


class TestControl:
    def test_setvl_grants_min(self):
        ctx = VectorContext(vlmax=16)
        assert ctx.setvl(100) == 16
        assert ctx.setvl(5) == 5
        assert ctx.setvl(0) == 0

    def test_negative_avl(self):
        ctx = VectorContext(vlmax=16)
        with pytest.raises(IsaError):
            ctx.setvl(-1)

    def test_zero_vlmax_rejected(self):
        with pytest.raises(IsaError):
            VectorContext(vlmax=0)

    def test_ops_before_setvl_rejected(self):
        ctx = VectorContext(vlmax=8)
        buf = ctx.vm.alloc_i32("a", 8)
        with pytest.raises(IsaError):
            ctx.vle32(buf)


class TestArithmetic:
    def test_add_wraps(self, ctx):
        a = vec(ctx, [I32MAX] * 16)
        r = ctx.vadd(a, 1)
        assert (r.values == I32MIN).all()

    def test_sub(self, ctx):
        a = vec(ctx, range(16))
        r = ctx.vsub(a, 20)
        assert list(r.values) == [i - 20 for i in range(16)]

    def test_rsub(self, ctx):
        a = vec(ctx, range(16))
        r = ctx.vrsub(a, 100)
        assert list(r.values) == [100 - i for i in range(16)]

    def test_mul_wraps(self, ctx):
        a = vec(ctx, [65536] * 16)
        r = ctx.vmul(a, 65536)
        assert (r.values == 0).all()

    def test_mulh(self, ctx):
        a = vec(ctx, [1 << 20] * 16)
        r = ctx.vmulh(a, 1 << 20)
        assert (r.values == 1 << 8).all()

    def test_logic_ops(self, ctx):
        a = vec(ctx, [0b1100] * 16)
        b = vec(ctx, [0b1010] * 16)
        assert (ctx.vand(a, b).values == 0b1000).all()
        assert (ctx.vor(a, b).values == 0b1110).all()
        assert (ctx.vxor(a, b).values == 0b0110).all()
        assert (ctx.vnot(a).values == ~0b1100).all()

    def test_min_max_signed(self, ctx):
        a = vec(ctx, [-5] * 16)
        b = vec(ctx, [3] * 16)
        assert (ctx.vmin(a, b).values == -5).all()
        assert (ctx.vmax(a, b).values == 3).all()

    def test_minu_maxu_unsigned(self, ctx):
        a = vec(ctx, [-1] * 16)  # 0xFFFFFFFF unsigned
        b = vec(ctx, [1] * 16)
        assert (ctx.vminu(a, b).values == 1).all()
        assert (ctx.vmaxu(a, b).values == -1).all()


class TestShifts:
    def test_sll_masks_amount(self, ctx):
        a = vec(ctx, [1] * 16)
        assert (ctx.vsll(a, 33).values == 2).all()  # 33 & 31 == 1

    def test_srl_logical(self, ctx):
        a = vec(ctx, [-1] * 16)
        assert (ctx.vsrl(a, 28).values == 0xF).all()

    def test_sra_arithmetic(self, ctx):
        a = vec(ctx, [-16] * 16)
        assert (ctx.vsra(a, 2).values == -4).all()

    def test_variable_shift(self, ctx):
        a = vec(ctx, [1] * 16)
        amounts = vec(ctx, range(16))
        r = ctx.vsll(a, amounts)
        assert list(r.values) == [1 << i for i in range(16)]


class TestDivision:
    def test_div_truncates_toward_zero(self, ctx):
        a = vec(ctx, [-7] * 16)
        assert (ctx.vdiv(a, 2).values == -3).all()

    def test_div_by_zero_is_minus_one(self, ctx):
        a = vec(ctx, [42] * 16)
        assert (ctx.vdiv(a, 0).values == -1).all()

    def test_rem_sign_follows_dividend(self, ctx):
        a = vec(ctx, [-7] * 16)
        assert (ctx.vrem(a, 2).values == -1).all()

    def test_rem_by_zero_is_dividend(self, ctx):
        a = vec(ctx, [42] * 16)
        assert (ctx.vrem(a, 0).values == 42).all()

    def test_divu_by_zero_is_all_ones(self, ctx):
        a = vec(ctx, [42] * 16)
        assert (ctx.vdivu(a, 0).values == -1).all()

    def test_divu_treats_operands_unsigned(self, ctx):
        a = vec(ctx, [-2] * 16)  # 0xFFFFFFFE
        r = ctx.vdivu(a, 2)
        assert (r.values == 0x7FFFFFFF).all()


class TestComparesAndSelect:
    def test_compare_family(self, ctx):
        a = vec(ctx, range(16))
        assert ctx.vmslt(a, 8).count() == 8
        assert ctx.vmsle(a, 8).count() == 9
        assert ctx.vmsgt(a, 8).count() == 7
        assert ctx.vmsge(a, 8).count() == 8
        assert ctx.vmseq(a, 3).count() == 1
        assert ctx.vmsne(a, 3).count() == 15

    def test_merge(self, ctx):
        a = vec(ctx, range(16))
        b = vec(ctx, [100] * 16)
        m = ctx.vmslt(a, 4)
        r = ctx.vmerge(m, a, b)
        assert list(r.values) == [0, 1, 2, 3] + [100] * 12

    def test_masked_add_keeps_old(self, ctx):
        a = vec(ctx, [1] * 16)
        old = vec(ctx, [7] * 16)
        m = ctx.vmslt(vec(ctx, range(16)), 8)
        r = ctx.vadd(a, 10, mask=m, old=old)
        assert list(r.values) == [11] * 8 + [7] * 8


class TestMemoryOps:
    def test_store_load_roundtrip(self, ctx):
        buf = ctx.vm.alloc_i32("out", 16)
        a = vec(ctx, range(16))
        ctx.vse32(a, buf)
        assert list(buf.data) == list(range(16))

    def test_masked_store(self, ctx):
        buf = ctx.vm.alloc_i32("out", np.full(16, -1, dtype=np.int32))
        a = vec(ctx, range(16))
        m = ctx.vmsge(a, 8)
        ctx.vse32(a, buf, mask=m)
        assert list(buf.data) == [-1] * 8 + list(range(8, 16))

    def test_strided_load(self, ctx):
        buf = ctx.vm.alloc_i32("m", np.arange(64, dtype=np.int32))
        r = ctx.vlse32(buf, offset=1, stride_elems=4)
        assert list(r.values) == [1 + 4 * i for i in range(16)]

    def test_strided_store(self, ctx):
        buf = ctx.vm.alloc_i32("m", 64)
        ctx.vsse32(vec(ctx, range(16)), buf, offset=0, stride_elems=4)
        assert buf.data[0::4].tolist() == list(range(16))
        assert buf.data[1::4].tolist() == [0] * 16

    def test_gather(self, ctx):
        table = ctx.vm.alloc_i32("t", np.arange(100, dtype=np.int32) * 10)
        idx = vec(ctx, [5] * 16)
        assert (ctx.vluxei32(table, idx).values == 50).all()

    def test_scatter(self, ctx):
        table = ctx.vm.alloc_i32("t", 100)
        idx = vec(ctx, range(16))
        ctx.vsuxei32(vec(ctx, [9] * 16), table, idx)
        assert (table.data[:16] == 9).all()

    def test_gather_out_of_range(self, ctx):
        table = ctx.vm.alloc_i32("t", 4)
        idx = vec(ctx, [100] * 16)
        with pytest.raises(IsaError):
            ctx.vluxei32(table, idx)

    def test_load_overrun(self, ctx):
        buf = ctx.vm.alloc_i32("small", 4)
        with pytest.raises(IsaError):
            ctx.vle32(buf)

    def test_trace_emits_memory_pattern(self, ctx):
        buf = ctx.vm.alloc_i32("a", 16)
        ctx.vle32(buf)
        instr = list(ctx.trace.vector_instrs())[-1]
        assert instr.op == "vle32"
        assert instr.mem.base == buf.base
        assert instr.mem.count == 16


class TestCrossElement:
    def test_slidedown(self, ctx):
        a = vec(ctx, range(16))
        r = ctx.vslidedown(a, 3)
        assert list(r.values) == list(range(3, 16)) + [0, 0, 0]

    def test_slideup_with_old(self, ctx):
        a = vec(ctx, range(16))
        old = vec(ctx, [-1] * 16)
        r = ctx.vslideup(a, 2, old=old)
        assert list(r.values) == [-1, -1] + list(range(14))

    def test_rgather(self, ctx):
        a = vec(ctx, [v * 2 for v in range(16)])
        idx = vec(ctx, [15 - i for i in range(16)])
        r = ctx.vrgather(a, idx)
        assert list(r.values) == [2 * (15 - i) for i in range(16)]

    def test_rgather_out_of_range_is_zero(self, ctx):
        a = vec(ctx, [7] * 16)
        idx = vec(ctx, [99] * 16)
        assert (ctx.vrgather(a, idx).values == 0).all()

    def test_reductions(self, ctx):
        a = vec(ctx, range(16))
        assert ctx.vredsum(a) == sum(range(16))
        assert ctx.vredsum(a, init=100) == 100 + sum(range(16))
        assert ctx.vredmax(a) == 15
        assert ctx.vredmin(a) == 0
        assert ctx.vredxor(a) == np.bitwise_xor.reduce(np.arange(16))

    def test_redsum_wraps(self, ctx):
        a = vec(ctx, [I32MAX] * 16)
        expected = wrap32(np.array([16 * I32MAX]))[0]
        assert ctx.vredsum(a) == expected

    def test_masked_reduction(self, ctx):
        a = vec(ctx, range(16))
        m = ctx.vmslt(a, 4)
        assert ctx.vredsum(a, mask=m) == 0 + 1 + 2 + 3

    def test_vmv_x_s(self, ctx):
        a = vec(ctx, range(16))
        assert ctx.vmv_x_s(a) == 0

    def test_viota(self, ctx):
        r = ctx.viota(start=5, step=3)
        assert list(r.values) == [5 + 3 * i for i in range(16)]


class TestVirtualMemory:
    def test_line_aligned_and_guarded(self, ctx):
        a = ctx.vm.alloc_i32("a", 3)
        b = ctx.vm.alloc_i32("b", 3)
        assert a.base % 64 == 0 and b.base % 64 == 0
        assert b.base >= a.end + 64  # guard line between buffers

    def test_duplicate_name(self, ctx):
        ctx.vm.alloc_i32("a", 4)
        with pytest.raises(MemoryModelError):
            ctx.vm.alloc_i32("a", 4)

    def test_addr_of_bounds(self, ctx):
        a = ctx.vm.alloc_i32("a", 4)
        with pytest.raises(MemoryModelError):
            a.addr_of(4)

    def test_lookup(self, ctx):
        ctx.vm.alloc_i32("a", 4)
        assert "a" in ctx.vm
        with pytest.raises(MemoryModelError):
            ctx.vm["missing"]
