"""Tests for the Table III system configurations."""

import pytest

from repro.config import (
    BASE_CYCLE_TIME_NS,
    CacheConfig,
    DramConfig,
    EVE_FACTORS,
    EveSramConfig,
    ScalarCoreConfig,
    SystemConfig,
    VectorEngineConfig,
    all_system_names,
    eve_hardware_vl,
    make_system,
    with_dram,
)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_table3_l2_geometry(self):
        l2 = make_system("O3").l2
        assert l2.size_bytes == 512 * 1024
        assert l2.ways == 8
        assert l2.banks == 8
        assert l2.hit_latency == 8
        assert l2.mshrs == 32
        assert l2.sets == 1024
        assert l2.lines == 8192

    def test_llc_geometry(self):
        llc = make_system("IO").llc
        assert llc.size_bytes == 2 * 1024 * 1024
        assert llc.ways == 16
        assert llc.hit_latency == 12

    def test_l1_latencies(self):
        config = make_system("IO")
        assert config.l1i.hit_latency == 1
        assert config.l1d.hit_latency == 2

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size_bytes=1000, ways=3, hit_latency=1, mshrs=4)

    def test_non_power_of_two_sets_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig("bad", size_bytes=3 * 64 * 8, ways=8, hit_latency=1, mshrs=4)


class TestEveHardwareVl:
    """Table III: EVE-{1,2,4}=2048, EVE-8=1024, EVE-16=512, EVE-32=256."""

    @pytest.mark.parametrize("factor,expected", [
        (1, 2048), (2, 2048), (4, 2048), (8, 1024), (16, 512), (32, 256),
    ])
    def test_paper_vector_lengths(self, factor, expected):
        assert eve_hardware_vl(factor) == expected


class TestMakeSystem:
    def test_all_names_build(self):
        for name in all_system_names():
            config = make_system(name)
            assert config.name == name

    def test_unknown_name(self):
        with pytest.raises(ConfigError):
            make_system("O3+TPU")

    def test_bad_eve_factor(self):
        with pytest.raises(ConfigError):
            make_system("O3+EVE-7")

    def test_garbled_eve_name(self):
        with pytest.raises(ConfigError):
            make_system("O3+EVE-x")

    def test_eve_l2_halved(self):
        config = make_system("O3+EVE-8")
        assert config.l2.size_bytes == 256 * 1024
        assert config.l2.ways == 4

    def test_scalar_systems_have_no_vector(self):
        assert make_system("IO").vector is None
        assert make_system("O3").vector is None

    def test_iv_dv_parameters(self):
        iv = make_system("O3+IV").vector
        dv = make_system("O3+DV").vector
        assert (iv.hardware_vl, iv.exec_pipes, iv.in_order) == (4, 3, False)
        assert (dv.hardware_vl, dv.exec_pipes, dv.in_order) == (64, 4, True)

    @pytest.mark.parametrize("factor", EVE_FACTORS)
    def test_eve_cycle_times(self, factor):
        config = make_system(f"O3+EVE-{factor}")
        if factor <= 8:
            assert config.cycle_time_ns == pytest.approx(1.025)
        elif factor == 16:
            assert config.cycle_time_ns == pytest.approx(1.175)
        else:
            assert config.cycle_time_ns == pytest.approx(1.550)

    def test_slow_clock_rescales_dram(self):
        """DRAM is fixed in wall-clock; slower clocks see fewer cycles."""
        base = make_system("O3+EVE-8")
        slow = make_system("O3+EVE-32")
        ratio = slow.cycle_time_ns / BASE_CYCLE_TIME_NS
        assert slow.dram.access_latency == pytest.approx(
            base.dram.access_latency / ratio)
        assert slow.dram.bytes_per_cycle == pytest.approx(
            base.dram.bytes_per_cycle * ratio)
        # Wall-clock latency is invariant.
        assert slow.dram.access_latency * slow.cycle_time_ns == pytest.approx(
            base.dram.access_latency * base.cycle_time_ns)


class TestValidation:
    def test_core_kind_validated(self):
        with pytest.raises(ConfigError):
            ScalarCoreConfig(kind="vliw", issue_width=4, miss_overlap=0.5,
                             base_cpi=1.0)

    def test_miss_overlap_range(self):
        with pytest.raises(ConfigError):
            ScalarCoreConfig(kind="o3", issue_width=8, miss_overlap=1.0,
                             base_cpi=0.5)

    def test_vector_kind_validated(self):
        with pytest.raises(ConfigError):
            VectorEngineConfig(kind="gpu", hardware_vl=32, exec_pipes=1,
                               in_order=True)

    def test_eve_needs_factor(self):
        with pytest.raises(ConfigError):
            VectorEngineConfig(kind="eve", hardware_vl=1024, exec_pipes=1,
                               in_order=True, factor=3)

    def test_eve_system_needs_sram_config(self):
        config = make_system("O3+EVE-8")
        with pytest.raises(ConfigError):
            SystemConfig(name="x", core=config.core, l1i=config.l1i,
                         l1d=config.l1d, l2=config.l2, llc=config.llc,
                         dram=DramConfig(), vector=config.vector,
                         eve_sram=None)

    def test_eve_sram_power_of_two(self):
        with pytest.raises(ConfigError):
            EveSramConfig(rows=100)

    def test_with_dram_override(self):
        config = with_dram(make_system("IO"), DramConfig(access_latency=40.0))
        assert config.dram.access_latency == 40.0
        assert config.name == "IO"
