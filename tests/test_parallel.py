"""Parallel sweep executor: determinism, cell cache, concurrent run store."""

from __future__ import annotations

import json
import multiprocessing
import os

import pytest

from repro.errors import ExperimentError
from repro.experiments import ExperimentRunner, ParallelRunner, sweep_pairs
from repro.experiments.figures import geomean
from repro.experiments.parallel import (CellCache, fan_out,
                                        params_fingerprint, simulate_cell,
                                        sweep_config_fingerprint)
from repro.experiments.systems import canonical_system
from repro.obs.diff import diff_records
from repro.obs.runstore import RunStore, make_record
from repro.obs.scorecard import build_scorecard, scorecard_pairs
from repro.obs.selfprof import SelfProfiler
from repro.workloads import REGISTRY, canonical_workload

TINY_PARAMS = {name: dict(wl.tiny_params) for name, wl in REGISTRY.items()}

SYSTEMS = ("IO", "O3+EVE-1", "O3+EVE-4")
WORKLOADS = ("vvadd", "pathfinder")
PAIRS = [(s, w) for w in WORKLOADS for s in SYSTEMS]


def _serial_cycles():
    runner = ExperimentRunner(params_override=TINY_PARAMS)
    return {(s, w): runner.run(s, w).cycles for s, w in PAIRS}


def _record_from(results):
    record = make_record("sweep", label="test")
    for (system, workload), cycles in sorted(results.items()):
        record.add_result(system, workload, cycles=cycles, time_ns=cycles)
    return record


def _double(x):
    return x * 2


class TestFanOut:
    def test_empty_specs_short_circuit(self):
        assert fan_out(_double, [], jobs=8) == []

    def test_serial_and_pooled_agree_in_input_order(self):
        specs = list(range(12))
        serial = fan_out(_double, specs, jobs=1)
        pooled = fan_out(_double, specs, jobs=3)
        assert serial == pooled == [x * 2 for x in specs]

    def test_profiler_phase_is_attributed(self):
        profiler = SelfProfiler()
        fan_out(_double, [1, 2], jobs=1, profiler=profiler, phase="faults")
        assert "faults" in profiler.merged()


class TestParallelDeterminism:
    def test_parallel_matches_serial_cycles(self, tmp_path):
        parallel = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                                  cache_root=str(tmp_path / "cache"))
        stats = parallel.prefetch(PAIRS)
        assert stats["cells"] == len(PAIRS)
        assert stats["simulated"] == len(PAIRS)
        got = {(s, w): parallel.run(s, w).cycles for s, w in PAIRS}
        assert got == _serial_cycles()

    def test_serial_and_parallel_diff_verdicts_agree(self, tmp_path):
        parallel = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                                  cache_root=str(tmp_path / "cache"))
        parallel.prefetch(PAIRS)
        serial_rec = _record_from(_serial_cycles())
        parallel_rec = _record_from(
            {(s, w): parallel.run(s, w).cycles for s, w in PAIRS})
        diff = diff_records(serial_rec, parallel_rec)
        assert diff.exit_code(strict=True) == 0
        assert not diff.regressions()
        assert all(e.status == "same" for e in diff.entries)

    def test_scorecard_json_byte_identical(self, tmp_path):
        figures, apps = ("fig8",), ("backprop",)
        serial_card = build_scorecard(
            runner=ExperimentRunner(params_override=TINY_PARAMS),
            figures=figures, apps=apps, tiny=True)
        parallel_runner = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                                         cache_root=str(tmp_path / "cache"))
        parallel_runner.prefetch(scorecard_pairs(figures, apps))
        parallel_card = build_scorecard(runner=parallel_runner,
                                        figures=figures, apps=apps, tiny=True)
        dump = lambda card: json.dumps(card.to_json_dict(), sort_keys=True)  # noqa: E731
        assert dump(serial_card) == dump(parallel_card)

    def test_jobs1_in_process_path_matches(self, tmp_path):
        runner = ParallelRunner(params_override=TINY_PARAMS, jobs=1,
                                cache_root=str(tmp_path / "cache"))
        runner.prefetch(PAIRS)
        assert {(s, w): runner.run(s, w).cycles
                for s, w in PAIRS} == _serial_cycles()


class TestCellCache:
    def test_repeat_prefetch_hits_disk_cache(self, tmp_path):
        root = str(tmp_path / "cache")
        first = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                               cache_root=root)
        stats = first.prefetch(PAIRS)
        assert stats["cached"] == 0
        second = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                                cache_root=root)
        stats = second.prefetch(PAIRS)
        assert stats["cached"] == len(PAIRS)
        assert stats["simulated"] == 0
        assert {(s, w): second.run(s, w).cycles
                for s, w in PAIRS} == _serial_cycles()

    def test_shared_trace_built_once(self, tmp_path):
        # EVE-1 and EVE-4 share one VL=2048 trace; the cache should hold
        # a single trace file for it (plus IO's scalar trace).
        root = str(tmp_path / "cache")
        runner = ParallelRunner(params_override=TINY_PARAMS, jobs=2,
                                cache_root=root)
        runner.prefetch([(s, "vvadd") for s in SYSTEMS])
        traces = os.listdir(os.path.join(root, "traces"))
        assert len([t for t in traces if "vl2048" in t]) == 1
        assert len([t for t in traces if "vl0" in t]) == 1

    def test_params_fingerprint_separates_scales(self):
        tiny = params_fingerprint("vvadd", TINY_PARAMS)
        full = params_fingerprint("vvadd", None)
        assert tiny != full
        assert params_fingerprint("VVadd", TINY_PARAMS) == tiny

    def test_params_fingerprint_separates_seeds(self):
        default = params_fingerprint("vvadd", TINY_PARAMS)
        seeded = params_fingerprint("vvadd", TINY_PARAMS, seed=7)
        assert default != seeded
        assert params_fingerprint("vvadd", TINY_PARAMS, seed=7) == seeded

    def test_simulate_cell_accepts_seeded_specs(self, tmp_path):
        root = str(tmp_path / "cache")
        base = ("IO", "vvadd", TINY_PARAMS, root, False, True)
        first = simulate_cell(base + (7,))
        # Same seed hits the cache; the legacy 6-tuple (default seed)
        # occupies a different cell entirely.
        assert simulate_cell(base + (7,))["cached"] is True
        assert simulate_cell(base)["cached"] is False
        assert first["result"].cycles > 0

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        cache = CellCache(str(tmp_path))
        path = cache.result_path("IO", "vvadd", "abc", "def")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not a pickle")
        assert cache.load(path) is None
        spec = ("IO", "vvadd", TINY_PARAMS, str(tmp_path), False, True)
        out = simulate_cell(spec)
        assert out["cached"] is False
        assert out["result"].cycles > 0

    def test_collect_metrics_round_trip(self, tmp_path):
        root = str(tmp_path / "cache")
        spec = ("O3+EVE-1", "vvadd", TINY_PARAMS, root, True, True)
        first = simulate_cell(spec)
        assert first["metrics_flat"]
        second = simulate_cell(spec)
        assert second["cached"] is True
        assert second["metrics_flat"] == first["metrics_flat"]
        assert second["result"].cycles == first["result"].cycles

    def test_config_fingerprint_stable(self):
        assert sweep_config_fingerprint() == sweep_config_fingerprint()


class TestSweepPairs:
    def test_cross_product_order_and_canonical(self):
        pairs = sweep_pairs(["io", "o3+eve-4"], ["VVADD"])
        assert pairs == [("IO", "vvadd"), ("O3+EVE-4", "vvadd")]

    def test_defaults_cover_full_grid(self):
        pairs = sweep_pairs()
        assert len(pairs) == 10 * len(REGISTRY)

    def test_scorecard_pairs_include_geomean_apps(self):
        pairs = scorecard_pairs(("fig6",), ("vvadd",))
        apps = {w for _, w in pairs}
        assert "vvadd" in apps
        assert "k-means" in apps  # geomean* row always needs these

    def test_scorecard_pairs_fig8_only(self):
        pairs = scorecard_pairs(("fig8",), ("backprop", "vvadd"))
        assert all(w == "backprop" for _, w in pairs)
        assert all(s.startswith("O3+EVE-") for s, _ in pairs)


class TestCanonicalization:
    def test_canonical_names(self):
        assert canonical_system("o3+eve-4") == "O3+EVE-4"
        assert canonical_system("unknown") == "unknown"
        assert canonical_workload("K-Means") == "k-means"
        assert canonical_workload("unknown") == "unknown"

    def test_runner_cache_is_case_insensitive(self):
        runner = ExperimentRunner(params_override=TINY_PARAMS)
        first = runner.run("io", "VVADD")
        assert runner.run("IO", "vvadd") is first
        assert len(runner._results) == 1


class TestGeomeanGuard:
    def test_empty_selection_raises_repro_error(self):
        with pytest.raises(ExperimentError, match="empty selection.*nothing"):
            geomean([], what="nothing matched the app filter")

    def test_normal_geomean_unchanged(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)


class TestSelfProfilerExclusive:
    def test_nested_phase_not_double_counted(self):
        prof = SelfProfiler()
        with prof.phase("outer"):
            with prof.phase("inner"):
                pass
        # Inner time must have been subtracted from outer: the phase sum
        # equals the top-level wall-clock, not more.
        assert prof.seconds["outer"] >= 0.0
        assert prof.total() == pytest.approx(
            prof.seconds["outer"] + prof.seconds["inner"])

    def test_sum_of_phases_matches_wall_clock(self):
        import time
        prof = SelfProfiler()
        start = time.perf_counter()
        with prof.phase("sweep"):
            with prof.phase("sim:A"):
                time.sleep(0.02)
            with prof.phase("sim:B"):
                time.sleep(0.02)
        wall = time.perf_counter() - start
        assert prof.total() == pytest.approx(wall, rel=0.25, abs=0.02)
        assert prof.seconds["sweep"] < 0.02  # exclusive, not inclusive

    def test_absorb_namespaces_and_sums(self):
        parent, child = SelfProfiler(), SelfProfiler()
        with child.phase("sim:IO"):
            pass
        parent.absorb(child.as_dict(), prefix="worker:")
        parent.absorb(child.as_dict(), prefix="worker:")
        assert parent.calls["worker:sim:IO"] == 2


def _append_records(args):
    root, worker_id, count = args
    store = RunStore(root)
    ids = []
    for i in range(count):
        record = make_record("run", label=f"w{worker_id}-{i}")
        ids.append(store.append(record))
    return ids


class TestConcurrentRunStore:
    def test_concurrent_appends_stay_consistent(self, tmp_path):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("needs fork start method")
        root = str(tmp_path / "store")
        procs, per_proc = 4, 5
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=procs) as pool:
            id_lists = pool.map(
                _append_records,
                [(root, w, per_proc) for w in range(procs)])
        all_ids = [record_id for ids in id_lists for record_id in ids]
        assert len(all_ids) == procs * per_proc
        assert len(set(all_ids)) == len(all_ids), "duplicate record ids"

        store = RunStore(root)
        records = list(store.records())  # every JSONL line parses
        assert len(records) == procs * per_proc
        assert {r.record_id for r in records} == set(all_ids)

        rebuilt = store.rebuild_index()
        assert rebuilt["next_seq"] == procs * per_proc + 1
        summaries = {r["record_id"] for r in rebuilt["records"]}
        assert summaries == set(all_ids)
        assert store.history(limit=None) == list(
            reversed(rebuilt["records"]))
