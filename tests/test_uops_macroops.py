"""Bit-exact verification of every macro-operation micro-program.

Each test runs the real micro-program on the bit-level EVE SRAM for every
parallelization factor (the ``macro_tester`` fixture parametrises n over
{1, 2, 4, 8, 16, 32}) and compares against two's-complement numpy
semantics.
"""

import numpy as np
import pytest

from tests.conftest import wrap32

U32 = 0xFFFFFFFF


def rnd(rng, n, lo=-2 ** 31, hi=2 ** 31):
    return rng.integers(lo, hi, n)


class TestAddSub:
    def test_add(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("add", a, b)
        assert np.array_equal(got, wrap32(a + b))

    def test_add_wraps_at_boundaries(self, macro_tester):
        a = np.full(macro_tester.n, 2 ** 31 - 1)
        b = np.ones(macro_tester.n)
        got, _ = macro_tester.run("add", a, b)
        assert (got == -(2 ** 31)).all()

    def test_sub(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("sub", a, b)
        assert np.array_equal(got, wrap32(a - b))

    def test_sub_restores_subtrahend(self, macro_tester, rng):
        """The complement-restore sequence must leave vs2 intact."""
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        macro_tester.run("sub", a, b)
        restored = macro_tester.sram.read_vreg(macro_tester.layout, 2)
        assert np.array_equal(restored, wrap32(b))

    def test_rsub(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("rsub", a, b)
        assert np.array_equal(got, wrap32(b - a))

    def test_masked_add(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        m = rng.integers(0, 2, macro_tester.n)
        got, _ = macro_tester.run("add", a, b, m=m, masked=True)
        assert np.array_equal(got, np.where(m == 1, wrap32(a + b), 0))


class TestLogic:
    @pytest.mark.parametrize("op,fn", [
        ("and", lambda a, b: a & b), ("or", lambda a, b: a | b),
        ("xor", lambda a, b: a ^ b), ("nand", lambda a, b: ~(a & b)),
        ("nor", lambda a, b: ~(a | b)), ("xnor", lambda a, b: ~(a ^ b)),
    ])
    def test_binary_logic(self, macro_tester, rng, op, fn):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("logic", a, b, op=op)
        assert np.array_equal(got, wrap32(fn(a, b)))

    def test_not(self, macro_tester, rng):
        a = rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("logic", a, None, op="not")
        assert np.array_equal(got, wrap32(~a))


class TestMoves:
    def test_move(self, macro_tester, rng):
        a = rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("move", a)
        assert np.array_equal(got, wrap32(a))

    @pytest.mark.parametrize("value", [0, 1, -1, 123456789, -(2 ** 31)])
    def test_splat(self, macro_tester, value):
        got, _ = macro_tester.run("splat", scalar=value)
        assert (got == value).all()

    def test_merge(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        m = rng.integers(0, 2, macro_tester.n)
        got, _ = macro_tester.run("merge", a, b, m=m)
        assert np.array_equal(got, np.where(m == 1, wrap32(a), wrap32(b)))


class TestCompare:
    @pytest.mark.parametrize("op,fn", [
        ("lt", lambda a, b: a < b), ("le", lambda a, b: a <= b),
        ("gt", lambda a, b: a > b), ("ge", lambda a, b: a >= b),
        ("eq", lambda a, b: a == b), ("ne", lambda a, b: a != b),
    ])
    def test_signed_compares(self, macro_tester, rng, op, fn):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("compare", a, b, op=op)
        assert np.array_equal(got, fn(a, b).astype(np.int64))

    def test_equality_with_many_duplicates(self, macro_tester, rng):
        a = rnd(rng, macro_tester.n, 0, 3)
        b = rnd(rng, macro_tester.n, 0, 3)
        got, _ = macro_tester.run("compare", a, b, op="eq")
        assert np.array_equal(got, (a == b).astype(np.int64))

    def test_compare_sign_boundary(self, macro_tester):
        """The bias trick must survive INT_MIN / INT_MAX operands."""
        n = macro_tester.n
        a = np.resize([-(2 ** 31), 2 ** 31 - 1, -1, 0], n)
        b = np.resize([2 ** 31 - 1, -(2 ** 31), 0, -1], n)
        got, _ = macro_tester.run("compare", a, b, op="lt")
        assert np.array_equal(got, (a < b).astype(np.int64))

    def test_compare_restores_vs1(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        macro_tester.run("compare", a, b, op="lt")
        assert np.array_equal(
            macro_tester.sram.read_vreg(macro_tester.layout, 1), wrap32(a))


class TestMinMax:
    def test_min_max_signed(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        got_min, _ = macro_tester.run("minmax", a, b, op="min")
        got_max, _ = macro_tester.run("minmax", a, b, op="max")
        assert np.array_equal(got_min, wrap32(np.minimum(a, b)))
        assert np.array_equal(got_max, wrap32(np.maximum(a, b)))

    def test_min_max_unsigned(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        au, bu = a & U32, b & U32
        got, _ = macro_tester.run("minmax", a, b, op="min", signed=False)
        assert np.array_equal(got & U32, np.minimum(au, bu))


class TestShifts:
    @pytest.mark.parametrize("amount", [0, 1, 3, 7, 8, 15, 31])
    def test_sll_scalar(self, macro_tester, rng, amount):
        a = rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("shift_scalar", a, op="sll", amount=amount)
        assert np.array_equal(got, wrap32(a << amount))

    @pytest.mark.parametrize("amount", [1, 4, 9, 31])
    def test_srl_scalar(self, macro_tester, rng, amount):
        a = rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("shift_scalar", a, op="srl", amount=amount)
        assert np.array_equal(got, wrap32((a & U32) >> amount))

    @pytest.mark.parametrize("amount", [1, 5, 31])
    def test_sra_scalar(self, macro_tester, rng, amount):
        a = rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("shift_scalar", a, op="sra", amount=amount)
        assert np.array_equal(got, wrap32(a >> amount))

    @pytest.mark.parametrize("op,fn", [
        ("sll", lambda a, s: a << s),
        ("srl", lambda a, s: (a & U32) >> s),
        ("sra", lambda a, s: a >> s),
    ])
    def test_variable_shifts(self, macro_tester, rng, op, fn):
        a = rnd(rng, macro_tester.n)
        s = rnd(rng, macro_tester.n, 0, 32)
        got, _ = macro_tester.run("shift_variable", a, s, op=op)
        assert np.array_equal(got, wrap32(fn(a, s)))


class TestMultiply:
    def test_mul(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        got, _ = macro_tester.run("mul", a, b)
        assert np.array_equal(got, wrap32(a * b))

    def test_mul_preserves_sources(self, macro_tester, rng):
        a, b = rnd(rng, macro_tester.n), rnd(rng, macro_tester.n)
        macro_tester.run("mul", a, b)
        assert np.array_equal(
            macro_tester.sram.read_vreg(macro_tester.layout, 1), wrap32(a))
        assert np.array_equal(
            macro_tester.sram.read_vreg(macro_tester.layout, 2), wrap32(b))

    def test_mul_edge_values(self, macro_tester):
        n = macro_tester.n
        a = np.resize([0, 1, -1, 2 ** 31 - 1, -(2 ** 31), 65536], n)
        b = np.resize([-1, 2 ** 31 - 1, -(2 ** 31), 3, 65536, 0], n)
        got, _ = macro_tester.run("mul", a, b)
        assert np.array_equal(got, wrap32(a * b))


class TestDivide:
    def test_divu(self, macro_tester, rng):
        a = rnd(rng, macro_tester.n, 0)
        b = rnd(rng, macro_tester.n, 1)
        got, _ = macro_tester.run("div", a, b, op="divu")
        assert np.array_equal(got & U32, (a & U32) // (b & U32))

    def test_remu(self, macro_tester, rng):
        a = rnd(rng, macro_tester.n, 0)
        b = rnd(rng, macro_tester.n, 1)
        got, _ = macro_tester.run("div", a, b, op="remu")
        assert np.array_equal(got & U32, (a & U32) % (b & U32))

    def test_divu_by_zero_saturates(self, macro_tester):
        a = np.full(macro_tester.n, 1234)
        b = np.zeros(macro_tester.n)
        got, _ = macro_tester.run("div", a, b, op="divu")
        assert (got == -1).all()  # UINT_MAX, the RVV-mandated result

    def test_remu_by_zero_is_dividend(self, macro_tester):
        a = np.full(macro_tester.n, 1234)
        b = np.zeros(macro_tester.n)
        got, _ = macro_tester.run("div", a, b, op="remu")
        assert (got == 1234).all()

    def test_signed_div_nonnegative_operands(self, macro_tester, rng):
        a = rnd(rng, macro_tester.n, 0)
        b = rnd(rng, macro_tester.n, 1)
        got, _ = macro_tester.run("div", a, b, op="div")
        assert np.array_equal(got & U32, (a & U32) // (b & U32))


class TestLatencyShape:
    """Section II/III: latencies fall with the factor; shifts are cheapest
    at bit-hybrid factors (the segment-granularity optimisation)."""

    def test_add_latency_decreases_with_factor(self):
        from tests.conftest import MacroTester
        cycles = [MacroTester(n).run("add", [1], [2])[1]
                  for n in (1, 2, 4, 8, 16, 32)]
        assert cycles == sorted(cycles, reverse=True)

    def test_mul_is_thousands_of_cycles_bit_serial(self):
        from tests.conftest import MacroTester
        _, cycles = MacroTester(1).run("mul", [3], [5])
        assert cycles > 1000  # "thousands of cycles" (Section I)

    def test_hybrid_variable_shift_beats_bit_parallel(self):
        from tests.conftest import MacroTester
        _, hybrid = MacroTester(8).run("shift_variable", [1], [3], op="sll")
        _, parallel = MacroTester(32).run("shift_variable", [1], [3], op="sll")
        assert hybrid < parallel  # Section III-C's claim
