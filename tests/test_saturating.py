"""Fixed-point saturating arithmetic (vsadd family) — the VCU-composite
extension: intrinsics semantics, ROM composite timing, and bit-exactness
through the functional engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EveFunctionalEngine
from repro.errors import IsaError
from repro.isa import VectorContext, VectorInstr
from repro.uops import MacroOpRom
from repro.uops.rom import COMPOSITE_MACROS, instr_key

I32MIN, I32MAX = -(2 ** 31), 2 ** 31 - 1
U32MAX = 2 ** 32 - 1


def ctx_with(values_a, values_b):
    n = len(values_a)
    ctx = VectorContext(vlmax=n)
    ctx.setvl(n)
    a = ctx.vle32(ctx.vm.alloc_i32("a", np.asarray(values_a, np.int64).astype(np.int32)))
    b = ctx.vle32(ctx.vm.alloc_i32("b", np.asarray(values_b, np.int64).astype(np.int32)))
    return ctx, a, b


class TestIntrinsicsSemantics:
    def test_vsadd_clamps_positive(self):
        ctx, a, b = ctx_with([I32MAX, 1, I32MAX], [1, 1, I32MAX])
        assert list(ctx.vsadd(a, b).values) == [I32MAX, 2, I32MAX]

    def test_vsadd_clamps_negative(self):
        ctx, a, b = ctx_with([I32MIN, -1], [-1, -2])
        assert list(ctx.vsadd(a, b).values) == [I32MIN, -3]

    def test_vssub_clamps(self):
        ctx, a, b = ctx_with([I32MIN, I32MAX, 5], [1, -1, 3])
        assert list(ctx.vssub(a, b).values) == [I32MIN, I32MAX, 2]

    def test_vsaddu_clamps_at_uint_max(self):
        ctx, a, b = ctx_with([-1, 1], [1, 1])  # 0xFFFFFFFF + 1 saturates
        r = ctx.vsaddu(a, b)
        assert (int(r.values[0]) & 0xFFFFFFFF) == U32MAX
        assert r.values[1] == 2

    def test_vssubu_clamps_at_zero(self):
        ctx, a, b = ctx_with([1, 5], [2, 3])
        assert list(ctx.vssubu(a, b).values) == [0, 2]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(I32MIN, I32MAX), min_size=4, max_size=8),
           st.lists(st.integers(I32MIN, I32MAX), min_size=4, max_size=8))
    def test_vsadd_property(self, xs, ys):
        n = min(len(xs), len(ys))
        ctx, a, b = ctx_with(xs[:n], ys[:n])
        r = ctx.vsadd(a, b)
        expected = np.clip(np.asarray(xs[:n], np.int64)
                           + np.asarray(ys[:n], np.int64), I32MIN, I32MAX)
        assert np.array_equal(r.values.astype(np.int64), expected)


class TestRomComposites:
    def test_instr_mapping(self):
        instr = VectorInstr(op="vsadd", vl=8, vd=1, vs1=2, vs2=3)
        assert instr_key(instr) == ("sadd", ())

    @pytest.mark.parametrize("macro", sorted(COMPOSITE_MACROS))
    @pytest.mark.parametrize("factor", [1, 8, 32])
    def test_cycles_are_component_sums(self, macro, factor):
        rom = MacroOpRom(factor)
        total = rom.cycles(macro)
        parts = sum(rom.cycles(part, **params)
                    for part, params in COMPOSITE_MACROS[macro])
        assert total == parts > 0

    def test_signed_costs_more_than_unsigned(self):
        rom = MacroOpRom(8)
        assert rom.cycles("sadd") > rom.cycles("saddu")

    def test_no_single_microprogram(self):
        with pytest.raises(IsaError):
            MacroOpRom(8).program("sadd")

    def test_cycles_for_instr(self):
        rom = MacroOpRom(8)
        instr = VectorInstr(op="vsaddu", vl=8, vd=1, vs1=2, vs2=3)
        assert rom.cycles_for(instr) == rom.cycles("saddu")


@pytest.mark.parametrize("factor", [1, 8, 32], ids=lambda f: f"n{f}")
class TestBitExact:
    def engine_with(self, factor, values_a, values_b):
        engine = EveFunctionalEngine(factor=factor, capacity=16)
        engine.setvl(len(values_a))
        a = engine._write_new(np.asarray(values_a, np.int64))
        b = engine._write_new(np.asarray(values_b, np.int64))
        return engine, a, b

    def test_vsadd(self, factor, rng):
        xs = np.concatenate([[I32MAX, I32MIN, 0, -1],
                             rng.integers(I32MIN, I32MAX, 12)])
        ys = np.concatenate([[1, -1, 0, -1],
                             rng.integers(I32MIN, I32MAX, 12)])
        engine, a, b = self.engine_with(factor, xs, ys)
        got = engine._read(engine.vsadd(a, b)).astype(np.int64)
        assert np.array_equal(got, np.clip(xs + ys, I32MIN, I32MAX))

    def test_vssub(self, factor, rng):
        xs = rng.integers(I32MIN, I32MAX, 16)
        ys = rng.integers(I32MIN, I32MAX, 16)
        engine, a, b = self.engine_with(factor, xs, ys)
        got = engine._read(engine.vssub(a, b)).astype(np.int64)
        assert np.array_equal(got, np.clip(xs - ys, I32MIN, I32MAX))

    def test_vsaddu(self, factor, rng):
        xs = rng.integers(I32MIN, I32MAX, 16)
        ys = rng.integers(I32MIN, I32MAX, 16)
        engine, a, b = self.engine_with(factor, xs, ys)
        got = engine._read(engine.vsaddu(a, b)).astype(np.int64) & 0xFFFFFFFF
        expected = np.minimum((xs & U32MAX) + (ys & U32MAX), U32MAX)
        assert np.array_equal(got, expected)

    def test_vssubu(self, factor, rng):
        xs = rng.integers(I32MIN, I32MAX, 16)
        ys = rng.integers(I32MIN, I32MAX, 16)
        engine, a, b = self.engine_with(factor, xs, ys)
        got = engine._read(engine.vssubu(a, b)).astype(np.int64) & 0xFFFFFFFF
        expected = np.maximum((xs & U32MAX) - (ys & U32MAX), 0)
        assert np.array_equal(got, expected)
