"""Trace-compiler equivalence suite.

The compiler's contract has two halves, and this module tests both:

* **Timing is untouched.**  A compiled run replays every original event
  in original order, so cycles, instruction counts, and memory-system
  statistics must be byte-identical to the interpreted path — across
  every workload x system cell, across the fuzz corpus at every segment
  width, and at the component level for :class:`FastMemorySystem`
  against the reference :class:`~repro.mem.hierarchy.MemorySystem`.

* **Analysis is conservative.**  Dead-op elimination produces the
  checker-facing view; its findings must be exactly the original
  findings minus the eliminated sites (the known-dirty corpus cases
  ``mask_merge`` and ``strided`` anchor this), the block schedule must
  respect every dependence edge, and compiled/uncompiled results must
  never collide in the sweep cache.
"""

import glob
import os

import numpy as np
import pytest

from repro.analysis import check_trace
from repro.analysis.depgraph import build_depgraph
from repro.compiler import (CompilerConfig, compile_trace,
                            compiler_descriptor, eliminate_dead_ops,
                            schedule_blocks, verify_dce_findings)
from repro.compiler.blocks import event_kind
from repro.compiler.memengine import FastMemorySystem
from repro.compiler.passes import DceResult
from repro.config import make_system
from repro.errors import CompilerError, MemoryModelError
from repro.experiments import ExperimentRunner
from repro.experiments.parallel import (CACHE_VERSION, params_fingerprint,
                                        simulate_cell)
from repro.faults import fuzz
from repro.faults.fuzz import (FUZZ_WIDTHS, compare_runs, generate_case,
                               run_dut, run_oracle)
from repro.isa.intrinsics import VectorContext
from repro.mem.hierarchy import MemorySystem
from repro.workloads import REGISTRY

#: Tiny problem sizes, same shape the conftest `tiny_runner` uses.
TINY_PARAMS = {name: dict(wl.tiny_params) for name, wl in REGISTRY.items()}

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))
CORPUS_IDS = [os.path.splitext(os.path.basename(p))[0] for p in CORPUS]

#: Corpus cases whose traces legitimately fail ``repro check`` with
#: dead-write errors (see test_analysis_corpus) — the satellite's
#: regression anchors for the DCE-vs-checker invariant.
KNOWN_DIRTY = ("mask_merge", "strided")


def corpus_trace(name):
    """Build the recorded trace of one corpus case (functional path)."""
    case = fuzz.load_case(os.path.join(CORPUS_DIR, f"{name}.json"))
    ctx = VectorContext(case.vlmax, name=name)
    bufs = {buf_name: ctx.vm.alloc_i32(
                buf_name, np.array(vals, dtype=np.int64).astype(np.int32))
            for buf_name, vals in case.inputs.items()}
    ctx.setvl(case.avl)
    slots = []
    for op in case.ops:
        slots.append(fuzz._apply(ctx, op, slots, bufs))
    return ctx.finalize_trace()


# -- satellite 3: DCE never contradicts `repro check` -------------------------


class TestDeadOpElimination:
    @pytest.mark.parametrize("name", KNOWN_DIRTY)
    def test_known_dirty_cases_compile_clean_in_strict_mode(self, name):
        trace = corpus_trace(name)
        original = [f for f in check_trace(trace) if f.severity == "error"]
        assert original and {f.rule for f in original} == {"dead-write"}

        compiled = compile_trace(trace, CompilerConfig(strict=True))
        assert compiled.dce_ok
        # Every original finding is anchored at an eliminated site ...
        assert {f.index for f in original} <= set(compiled.eliminated)
        # ... so the compiled view carries no findings of its own.
        assert [f for f in check_trace(compiled.optimized)
                if f.severity == "error"] == []

    @pytest.mark.parametrize("name", CORPUS_IDS)
    def test_findings_invariant_holds_across_the_corpus(self, name):
        trace = corpus_trace(name)
        dce = eliminate_dead_ops(trace)
        ok, missing, unexpected = verify_dce_findings(trace, dce)
        assert ok, (missing, unexpected)

    def test_index_map_reconstructs_the_survivors(self):
        trace = corpus_trace("mask_merge")
        dce = eliminate_dead_ops(trace)
        assert dce.eliminated and dce.rounds >= 1
        assert set(dce.eliminated).isdisjoint(dce.index_map)
        assert len(dce.eliminated) + len(dce.index_map) == len(trace.events)
        for orig, new in dce.index_map.items():
            assert dce.trace.events[new] is trace.events[orig]

    def test_elimination_reaches_a_fixpoint(self):
        trace = corpus_trace("strided")
        once = eliminate_dead_ops(trace)
        again = eliminate_dead_ops(once.trace)
        assert again.eliminated == () and again.rounds == 0

    def test_strict_gate_raises_on_a_lost_finding(self):
        # A doctored result claiming nothing was eliminated while
        # presenting the pruned trace: the original dead-write findings
        # are now "lost", which the strict gate must refuse.
        trace = corpus_trace("mask_merge")
        dce = eliminate_dead_ops(trace)
        doctored = DceResult(trace=dce.trace, eliminated=(),
                             index_map=dce.index_map, rounds=dce.rounds)
        ok, missing, _ = verify_dce_findings(trace, doctored)
        assert not ok and missing
        with pytest.raises(CompilerError):
            verify_dce_findings(trace, doctored, strict=True)

    def test_non_strict_violation_discards_the_dce_view(self, monkeypatch):
        import repro.compiler as compiler_pkg
        monkeypatch.setattr(
            compiler_pkg, "verify_dce_findings",
            lambda *a, **k: (False, ((0, "dead-write"),), ()))
        trace = corpus_trace("mask_merge")
        compiled = compile_trace(trace)
        assert not compiled.dce_ok
        assert compiled.dce is None
        # The unoptimized trace stands in, so the compiled view can
        # never disagree with `repro check` on a non-strict run.
        assert compiled.optimized is trace
        assert compiled.summary()["eliminated"] == 0


# -- block scheduler ----------------------------------------------------------


class TestBlockScheduler:
    @pytest.mark.parametrize("name", CORPUS_IDS)
    def test_blocks_cover_every_event_once_in_program_order(self, name):
        trace = corpus_trace(name)
        blocks = schedule_blocks(trace)
        flat = [i for b in blocks for i in b.events]
        assert flat == list(range(len(trace.events)))
        for block in blocks:
            kinds = {event_kind(trace.events[i]) for i in block.events}
            assert kinds == {block.kind}

    @pytest.mark.parametrize("name", CORPUS_IDS)
    def test_bulk_edges_agree_with_the_materialised_depgraph(self, name):
        trace = corpus_trace(name)
        assert (schedule_blocks(trace)
                == schedule_blocks(trace, depgraph=build_depgraph(trace)))

    def test_every_dependence_edge_points_forward_in_the_schedule(self):
        trace = corpus_trace("slide_gather_reduce")
        blocks = schedule_blocks(trace)
        block_of = {i: pos for pos, b in enumerate(blocks)
                    for i in b.events}
        graph = build_depgraph(trace)
        assert graph.edges
        for edge in graph.edges:
            assert block_of[edge.src] <= block_of[edge.dst]
            assert (blocks[block_of[edge.src]].level
                    <= blocks[block_of[edge.dst]].level)

    def test_iter_events_preserves_enumerate_order(self, tiny_runner):
        trace = tiny_runner.trace_for("O3+EVE-4", "vvadd")
        compiled = compile_trace(trace)
        assert compiled.blocks
        assert list(compiled.iter_events()) == list(enumerate(trace.events))


# -- satellite 4: batched datapath vs oracle, fuzz + corpus -------------------


class TestBatchedDatapath:
    @pytest.mark.parametrize("path", CORPUS, ids=CORPUS_IDS)
    def test_corpus_replays_clean_batched_at_every_width(self, path):
        case = fuzz.load_case(path)
        oracle = run_oracle(case)
        for factor in FUZZ_WIDTHS:
            divergence = compare_runs(
                oracle, run_dut(case, factor, batched=True))
            assert divergence is None, (factor, divergence)

    @pytest.mark.parametrize("chunk", range(8))
    def test_200_fuzz_seeds_replay_clean_batched_at_every_width(self, chunk):
        # 200 generated cases split into chunks so a divergence pins a
        # narrow seed range; every case runs at all six segment widths.
        for seed in range(chunk * 25, (chunk + 1) * 25):
            case = generate_case(seed)
            oracle = run_oracle(case)
            assert "crash" not in oracle, (seed, oracle)
            for factor in FUZZ_WIDTHS:
                divergence = compare_runs(
                    oracle, run_dut(case, factor, batched=True))
                assert divergence is None, (seed, factor, divergence)


# -- compiled vs interpreted machine equivalence ------------------------------


@pytest.fixture(scope="module")
def interpreted_runner():
    return ExperimentRunner(params_override=TINY_PARAMS,
                            compile_traces=False)


@pytest.fixture(scope="module")
def compiled_runner():
    return ExperimentRunner(params_override=TINY_PARAMS,
                            compile_traces=True)


class TestCompiledMachineEquivalence:
    @pytest.mark.parametrize("system", ["IO", "O3+EVE-4"])
    @pytest.mark.parametrize("workload", sorted(REGISTRY))
    def test_cycles_and_stats_are_byte_identical(self, system, workload,
                                                 interpreted_runner,
                                                 compiled_runner):
        reference = interpreted_runner.run(system, workload)
        compiled = compiled_runner.run(system, workload)
        assert compiled.cycles == reference.cycles
        assert compiled.instructions == reference.instructions
        assert compiled.mem_stats == reference.mem_stats

    def test_instrumented_runs_fall_back_to_the_interpreter(self,
                                                            compiled_runner):
        from repro.obs import MetricsRegistry
        plain = compiled_runner.run("O3+EVE-4", "vvadd")
        metrics = MetricsRegistry()
        instrumented = compiled_runner.run("O3+EVE-4", "vvadd",
                                           metrics=metrics)
        assert instrumented.cycles == plain.cycles
        assert metrics.flat()


# -- FastMemorySystem differential --------------------------------------------


def _stream(seed, count=3000):
    """A deterministic access stream with enough reuse to exercise hits,
    evictions, dirty writebacks, and MSHR contention on every port."""
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 256, size=count) * 64
    cold = rng.integers(0, 1 << 18, size=count) * 64
    lines = np.where(rng.random(count) < 0.6, hot, cold)
    stores = rng.random(count) < 0.3
    ports = rng.choice(["l1", "l2", "llc"], size=count)
    gaps = rng.integers(0, 3, size=count)
    return lines.tolist(), stores.tolist(), ports.tolist(), gaps.tolist()


class TestFastMemorySystem:
    @pytest.mark.parametrize("system,seed", [("IO", 3), ("O3+EVE-4", 4)])
    def test_matches_the_reference_model_access_for_access(self, system,
                                                           seed):
        config = make_system(system)
        reference = MemorySystem(config)
        fast = FastMemorySystem(config)
        lines, stores, ports, gaps = _stream(seed)
        now = 0.0
        for line, store, port, gap in zip(lines, stores, ports, gaps):
            expect = reference.access(now, line, store, port)
            got = fast.access(now, line, store, port)
            assert (got.grant, got.done, got.level, got.mshr_stall) == \
                (expect.grant, expect.done, expect.level, expect.mshr_stall)
            now = max(now + gap, expect.done - 40.0)
        assert fast.level_stats(elapsed=now) == \
            reference.level_stats(elapsed=now)
        assert fast.vector_requests == reference.vector_requests
        assert fast.vector_mshr_stall == reference.vector_mshr_stall
        assert fast.vector_stalled_requests == \
            reference.vector_stalled_requests

    def test_matches_reconfiguration_views_and_flush(self):
        config = make_system("O3+EVE-4")
        reference = MemorySystem(config)
        fast = FastMemorySystem(config)
        lines, stores, ports, gaps = _stream(seed=7, count=2000)
        now = 0.0
        for line, store, port, gap in zip(lines, stores, ports, gaps):
            expect = reference.access(now, line, store, port)
            fast.access(now, line, store, port)
            now = max(now + gap, expect.done - 40.0)

        doomed = slice(config.llc.ways // 2, config.llc.ways)
        assert fast.llc.resident_lines(doomed) == \
            reference.llc.resident_lines(doomed)
        assert fast.llc.warm_fraction() == reference.llc.warm_fraction()
        assert fast.llc.flush_ways(doomed) == reference.llc.flush_ways(doomed)

        # Behaviour after the flush must track too (victim selection
        # depends on the freed ways being reissued in way order).
        for line, store, port, gap in zip(*_stream(seed=8, count=1000)):
            expect = reference.access(now, line, store, port)
            got = fast.access(now, line, store, port)
            assert (got.done, got.level) == (expect.done, expect.level)
            now = max(now + gap, expect.done - 40.0)
        assert fast.level_stats(now) == reference.level_stats(now)

    def test_reset_stats_matches_the_reference(self):
        config = make_system("IO")
        reference = MemorySystem(config)
        fast = FastMemorySystem(config)
        for line, store, port, _ in zip(*_stream(seed=9, count=500)):
            reference.access(0.0, line, store, port)
            fast.access(0.0, line, store, port)
        reference.reset_stats()
        fast.reset_stats()
        assert fast.level_stats(0.0) == reference.level_stats(0.0)

    def test_refuses_instrumentation_hooks(self):
        from repro.obs import MetricsRegistry
        config = make_system("IO")
        with pytest.raises(MemoryModelError):
            FastMemorySystem(config, metrics=MetricsRegistry())


# -- satellite 2: compiled and uncompiled results never collide ---------------


class TestCacheDistinctness:
    def test_cache_schema_bumped_for_the_compiler(self):
        assert CACHE_VERSION == 3

    def test_compiler_descriptor_shapes(self):
        assert compiler_descriptor(False) is None
        descriptor = compiler_descriptor(True)
        assert descriptor["passes"] == ["dce", "hoist", "schedule"]
        assert descriptor["compiler_version"] >= 1

    def test_fingerprints_differ_by_compiler_descriptor(self):
        bare = params_fingerprint("vvadd", TINY_PARAMS)
        compiled = params_fingerprint("vvadd", TINY_PARAMS,
                                      compiler=compiler_descriptor(True))
        assert bare != compiled
        assert compiled == params_fingerprint(
            "vvadd", TINY_PARAMS, compiler=compiler_descriptor(True))

    def test_simulate_cell_keeps_compile_modes_cache_distinct(self, tmp_path):
        root = str(tmp_path / "cache")

        def spec(compile_traces):
            return ("IO", "vvadd", TINY_PARAMS, root, False, False,
                    20230225, compile_traces)

        compiled = simulate_cell(spec(True))
        assert compiled["cache"]["result"] == "miss"
        # The uncompiled run must MISS the compiled run's cache entry.
        interpreted = simulate_cell(spec(False))
        assert interpreted["cache"]["result"] == "miss"
        # ... while sharing the compiler-independent trace pickle.
        assert interpreted["cache"]["trace"] == "hit"
        assert interpreted["result"].cycles == compiled["result"].cycles
        # Each mode hits its own entry on re-run; the trace pickle is
        # shared (traces are compiler-independent).
        assert simulate_cell(spec(True))["cached"] is True
        assert simulate_cell(spec(False))["cached"] is True
        results = glob.glob(os.path.join(root, "results", "**", "*.pkl"),
                            recursive=True)
        traces = glob.glob(os.path.join(root, "traces", "*.pkl"))
        assert len(results) == 2
        assert len(traces) == 1
