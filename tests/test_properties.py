"""Property-based tests (hypothesis) on core invariants.

Three layers: the intrinsics' two's-complement semantics against plain
integer arithmetic, the macro-op micro-programs against the intrinsics,
and structural invariants of traces and layouts.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import VectorContext
from repro.isa.intrinsics import wrap32
from repro.uops import MacroOpRom, MicroEngine

from tests.conftest import MacroTester

i32 = st.integers(-(2 ** 31), 2 ** 31 - 1)
small_lists = st.lists(i32, min_size=4, max_size=16)


def make_ctx(values_a, values_b):
    n = max(len(values_a), len(values_b))
    ctx = VectorContext(vlmax=n)
    ctx.setvl(n)
    a = ctx.vle32(ctx.vm.alloc_i32("a", np.resize(
        np.asarray(values_a, np.int64), n).astype(np.int32)))
    b = ctx.vle32(ctx.vm.alloc_i32("b", np.resize(
        np.asarray(values_b, np.int64), n).astype(np.int32)))
    return ctx, a, b


class TestIntrinsicsProperties:
    @settings(max_examples=50, deadline=None)
    @given(small_lists, small_lists)
    def test_add_matches_wrapped_integer_arithmetic(self, xs, ys):
        ctx, a, b = make_ctx(xs, ys)
        r = ctx.vadd(a, b)
        expected = wrap32(a.values.astype(np.int64) + b.values.astype(np.int64))
        assert np.array_equal(r.values.astype(np.int64), expected)

    @settings(max_examples=50, deadline=None)
    @given(small_lists, small_lists)
    def test_sub_is_add_of_negation(self, xs, ys):
        ctx, a, b = make_ctx(xs, ys)
        direct = ctx.vsub(a, b)
        negated = ctx.vadd(a, ctx.vadd(ctx.vnot(b), 1))
        assert np.array_equal(direct.values, negated.values)

    @settings(max_examples=50, deadline=None)
    @given(small_lists)
    def test_shift_pair_masks_low_bits(self, xs):
        ctx, a, _ = make_ctx(xs, xs)
        for k in (1, 5, 13):
            down_up = ctx.vsll(ctx.vsrl(a, k), k)
            masked = ctx.vand(a, wrap32(np.array([-(1 << k)]))[0].item())
            assert np.array_equal(down_up.values, masked.values)

    @settings(max_examples=50, deadline=None)
    @given(small_lists)
    def test_redsum_equals_wrapped_sum(self, xs):
        ctx, a, _ = make_ctx(xs, xs)
        assert ctx.vredsum(a) == int(
            wrap32(np.array([a.values.astype(np.int64).sum()]))[0])

    @settings(max_examples=50, deadline=None)
    @given(small_lists, small_lists)
    def test_min_max_partition(self, xs, ys):
        ctx, a, b = make_ctx(xs, ys)
        lo = ctx.vmin(a, b)
        hi = ctx.vmax(a, b)
        assert np.array_equal(
            lo.values.astype(np.int64) + hi.values.astype(np.int64),
            a.values.astype(np.int64) + b.values.astype(np.int64))

    @settings(max_examples=50, deadline=None)
    @given(small_lists, small_lists)
    def test_merge_partitions_by_mask(self, xs, ys):
        ctx, a, b = make_ctx(xs, ys)
        m = ctx.vmslt(a, b)
        taken = ctx.vmerge(m, a, b)
        other = ctx.vmerge(m, b, a)
        combined = set(zip(taken.values.tolist(), other.values.tolist()))
        expected = set(zip(a.values.tolist(), b.values.tolist())) | \
            set(zip(b.values.tolist(), a.values.tolist()))
        assert combined <= expected

    @settings(max_examples=50, deadline=None)
    @given(small_lists)
    def test_division_identity(self, xs):
        ctx, a, _ = make_ctx(xs, xs)
        for divisor in (1, 3, 7, 1000):
            q = ctx.vdiv(a, divisor)
            r = ctx.vrem(a, divisor)
            rebuilt = ctx.vadd(ctx.vmul(q, divisor), r)
            assert np.array_equal(rebuilt.values, a.values)


class TestMicroProgramProperties:
    """Random-input agreement between micro-programs and numpy, at the
    factors not exhaustively covered by the parametrized suite."""

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10 ** 6),
           factor=st.sampled_from([2, 16]))
    def test_add_mul_random(self, seed, factor):
        rng = np.random.default_rng(seed)
        tester = MacroTester(factor)
        a = rng.integers(-2 ** 31, 2 ** 31, tester.n)
        b = rng.integers(-2 ** 31, 2 ** 31, tester.n)
        got, _ = tester.run("add", a, b)
        assert np.array_equal(got, wrap32(a + b))
        got, _ = tester.run("mul", a, b)
        assert np.array_equal(got, wrap32(a * b))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10 ** 6), amount=st.integers(0, 31),
           factor=st.sampled_from([2, 16]))
    def test_shift_random(self, seed, amount, factor):
        rng = np.random.default_rng(seed)
        tester = MacroTester(factor)
        a = rng.integers(-2 ** 31, 2 ** 31, tester.n)
        got, _ = tester.run("shift_scalar", a, op="sll", amount=amount)
        assert np.array_equal(got, wrap32(a << amount))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10 ** 6))
    def test_compare_total_order(self, seed):
        """lt + eq + gt partition every element pair."""
        rng = np.random.default_rng(seed)
        tester = MacroTester(8)
        a = rng.integers(-100, 100, tester.n)
        b = rng.integers(-100, 100, tester.n)
        lt, _ = tester.run("compare", a, b, op="lt")
        eq, _ = tester.run("compare", a, b, op="eq")
        gt, _ = tester.run("compare", a, b, op="gt")
        assert ((lt + eq + gt) == 1).all()

    @settings(max_examples=10, deadline=None)
    @given(factor=st.sampled_from([1, 2, 4, 8, 16, 32]))
    def test_timing_is_input_independent(self, factor):
        """The same program costs the same cycles for any binding/data —
        the property that makes the function/timing split exact."""
        rom = MacroOpRom(factor)
        timing_only = MicroEngine().run(rom.program("mul"))
        tester = MacroTester(factor)
        _, with_zeros = tester.run("mul", np.zeros(tester.n), np.zeros(tester.n))
        _, with_ones = tester.run("mul", np.full(tester.n, -1),
                                  np.full(tester.n, -1))
        assert timing_only == with_zeros == with_ones


class TestTraceProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(1, 200), min_size=1, max_size=10),
           st.integers(1, 64))
    def test_stripmining_covers_exactly(self, chunks, vlmax):
        """setvl strip-mining processes every element exactly once."""
        total = sum(chunks)
        ctx = VectorContext(vlmax=vlmax)
        covered = 0
        for chunk in chunks:
            i = 0
            while i < chunk:
                vl = ctx.setvl(chunk - i)
                assert 0 < vl <= vlmax
                covered += vl
                i += vl
        assert covered == total

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 2048), st.integers(0, 1 << 20))
    def test_line_addresses_cover_all_elements(self, count, base):
        from repro.isa import MemAccess
        acc = MemAccess(base=base, stride=4, count=count)
        lines = set(acc.line_addresses().tolist())
        for addr in acc.element_addresses():
            assert (addr // 64) * 64 in lines
