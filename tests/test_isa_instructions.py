"""Tests for trace events: MemAccess patterns, VectorInstr, ScalarBlock."""

import numpy as np
import pytest

from repro.errors import IsaError
from repro.isa import MemAccess, ScalarBlock, VectorInstr
from repro.isa.opcodes import Category, OPCODES, opinfo


class TestMemAccess:
    def test_unit_stride_element_addresses(self):
        acc = MemAccess(base=0x1000, stride=4, count=4)
        assert list(acc.element_addresses()) == [0x1000, 0x1004, 0x1008, 0x100C]

    def test_unit_stride_single_line(self):
        acc = MemAccess(base=0x1000, stride=4, count=16)
        assert list(acc.line_addresses()) == [0x1000]

    def test_unit_stride_line_count(self):
        acc = MemAccess(base=0x1000, stride=4, count=64)
        assert len(acc.line_addresses()) == 4

    def test_unaligned_base_spans_extra_line(self):
        acc = MemAccess(base=0x1000 + 60, stride=4, count=16)
        assert len(acc.line_addresses()) == 2

    def test_large_stride_one_line_per_element(self):
        """The backprop pathology: 64-byte stride isolates every element."""
        acc = MemAccess(base=0x1000, stride=64, count=32)
        assert len(acc.line_addresses()) == 32

    def test_line_addresses_first_touch_order(self):
        addrs = np.array([0x2000, 0x1000, 0x2004], dtype=np.int64)
        acc = MemAccess(addresses=addrs, count=3)
        assert list(acc.line_addresses()) == [0x2000, 0x1000]

    def test_explicit_addresses(self):
        acc = MemAccess(addresses=np.array([0x40, 0x80]), count=2)
        assert acc.num_accesses == 2
        assert acc.total_bytes() == 8

    def test_zero_stride_multi_count_rejected(self):
        with pytest.raises(IsaError):
            MemAccess(base=0, stride=0, count=2)

    def test_total_bytes(self):
        assert MemAccess(base=0, stride=4, count=10).total_bytes() == 40


class TestVectorInstr:
    def test_memory_instr_requires_pattern(self):
        with pytest.raises(IsaError):
            VectorInstr(op="vle32", vl=8, vd=1)

    def test_unknown_opcode(self):
        with pytest.raises(IsaError):
            VectorInstr(op="vfmadd", vl=8)

    def test_negative_vl(self):
        with pytest.raises(IsaError):
            VectorInstr(op="vadd", vl=-1)

    def test_sources_include_index_register(self):
        instr = VectorInstr(op="vluxei32", vl=4, vd=3, vidx=7,
                            mem=MemAccess(addresses=np.zeros(4, dtype=np.int64),
                                          count=4))
        assert 7 in instr.sources

    def test_store_reads_its_data_register(self):
        instr = VectorInstr(op="vse32", vl=4, vd=5,
                            mem=MemAccess(base=0, stride=4, count=4,
                                          is_store=True))
        assert 5 in instr.sources
        assert instr.dest == -1

    def test_load_dest(self):
        instr = VectorInstr(op="vle32", vl=4, vd=5,
                            mem=MemAccess(base=0, stride=4, count=4))
        assert instr.dest == 5

    def test_scalar_writer_has_no_vector_dest(self):
        instr = VectorInstr(op="vmv.x.s", vl=1, vs1=2)
        assert instr.dest == -1

    def test_category(self):
        assert VectorInstr(op="vadd", vl=4, vd=1, vs1=2, vs2=3).category \
            is Category.IALU


class TestScalarBlock:
    def test_mem_count(self):
        block = ScalarBlock(n_instr=10, accesses=(
            MemAccess(base=0, stride=4, count=5),
            MemAccess(base=0x100, stride=4, count=3, is_store=True),
        ))
        assert block.n_mem == 8

    def test_negative_size_rejected(self):
        with pytest.raises(IsaError):
            ScalarBlock(n_instr=-1)


class TestOpcodeTable:
    def test_every_opcode_has_category_and_macro(self):
        for name, info in OPCODES.items():
            assert info.name == name
            assert info.macro
            assert isinstance(info.category, Category)

    def test_memory_flags_consistent(self):
        for info in OPCODES.values():
            if info.is_load or info.is_store:
                assert info.category.is_memory
            if info.category.is_memory:
                assert info.is_load != info.is_store  # exactly one

    def test_reductions_are_cross_element(self):
        for info in OPCODES.values():
            if info.is_reduction:
                assert info.category is Category.XELEM

    def test_opinfo_unknown(self):
        with pytest.raises(IsaError):
            opinfo("vnope")

    def test_table4_categories_all_present(self):
        """Every Table IV mix column has at least one opcode behind it."""
        present = {info.category for info in OPCODES.values()}
        assert present == set(Category)
