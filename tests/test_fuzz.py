"""Differential-fuzzer tests: generator, interpreter, shrinker."""

import json
import os

import pytest

from repro.core.functional import EveFunctionalEngine
from repro.errors import FaultInjectionError
from repro.faults.fuzz import (FUZZ_WIDTHS, FuzzCase, _trace_is_clean,
                               check_case, fuzz_many, generate_case,
                               load_case, run_dut, run_oracle, shrink_case)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


class TestGenerator:
    def test_same_seed_same_case(self):
        assert (generate_case(17).to_json_dict()
                == generate_case(17).to_json_dict())

    def test_different_seeds_differ(self):
        assert (generate_case(17).to_json_dict()
                != generate_case(18).to_json_dict())

    def test_cases_stay_in_the_bit_exact_envelope(self):
        # A small sweep of generated cases must run divergence-free on a
        # healthy tree (the CI smoke runs a much larger one).
        for seed in range(6):
            case = generate_case(seed, num_ops=8)
            assert check_case(case, (1, 8, 32)) == []

    def test_case_always_ends_with_a_store(self):
        case = generate_case(3)
        assert case.ops[-1]["op"] == "vse32"


class TestCaseFormat:
    def test_vl_clamps_avl_to_vlmax(self):
        case = FuzzCase(seed=0, vlmax=4, avl=9, inputs={}, ops=[])
        assert case.vl == 4

    def test_rejects_unknown_version(self):
        doc = generate_case(0).to_json_dict()
        doc["version"] = 99
        with pytest.raises(FaultInjectionError, match="version"):
            FuzzCase.from_dict(doc)

    def test_rejects_malformed_case(self):
        with pytest.raises(FaultInjectionError, match="malformed"):
            FuzzCase.from_dict({"seed": 0})

    def test_load_case_unwraps_mismatch_files(self, tmp_path):
        case = generate_case(5)
        path = tmp_path / "mismatch.json"
        path.write_text(json.dumps(
            {"factor": 8, "divergence": {}, "case": case.to_json_dict()}))
        assert load_case(str(path)) == case

    def test_unknown_op_is_a_replay_error(self):
        case = FuzzCase(seed=0, vlmax=4, avl=4, inputs={},
                        ops=[{"op": "vfmadd"}])
        # The guarded runner reports the crash as an observation record.
        assert "crash" in run_oracle(case)


class TestFuzzerFindsBugs:
    """Re-open the fuzzer's real catch (vsub(a, a) alias corruption) by
    disabling the VCU's alias-breaking copy, and check detection plus
    shrinking end to end."""

    @pytest.fixture()
    def alias_bug(self, monkeypatch):
        monkeypatch.setattr(EveFunctionalEngine, "_ALIAS_UNSAFE",
                            frozenset())

    def test_corpus_case_detects_the_alias_bug(self, alias_bug):
        case = load_case(os.path.join(CORPUS_DIR, "sub_alias.json"))
        failures = check_case(case, FUZZ_WIDTHS)
        assert [factor for factor, _ in failures] == list(FUZZ_WIDTHS)
        assert all(div["kind"] in ("op", "buffer")
                   for _, div in failures)

    def test_shrinker_produces_a_minimal_repro(self, alias_bug):
        case = load_case(os.path.join(CORPUS_DIR, "sub_alias.json"))
        shrunk = shrink_case(case, 8)
        # Still reproduces ...
        assert check_case(shrunk, (8,)) != []
        # ... with fewer ops than the original six-op program: one load,
        # one aliased subtract, and nothing else is needed.
        assert len(shrunk.ops) <= 3
        # The shrunk case must stay replayable after a JSON round trip.
        assert check_case(FuzzCase.from_dict(shrunk.to_json_dict()),
                          (8,)) != []
        # The shrunk repro must still pass the static analyzer: the
        # original trace is clean, so the cleanliness ratchet holds.
        assert _trace_is_clean(case) is True
        assert _trace_is_clean(shrunk) is True

    def test_fuzz_many_writes_replayable_repros(self, alias_bug, tmp_path):
        out_dir = tmp_path / "repros"
        # Corpus-style aliasing is rare in random programs, so drive
        # fuzz_many over seeds until the broken engine diverges once.
        mismatches = fuzz_many(40, master_seed=2, widths=(8,),
                               out_dir=str(out_dir), num_ops=10)
        assert mismatches, "no generated case hit the alias bug"
        files = sorted(out_dir.glob("mismatch-*.json"))
        assert len(files) == len(mismatches)
        replay = load_case(str(files[0]))
        assert check_case(replay, (mismatches[0].factor,)) != []


class TestShrinkCleanlinessRatchet:
    """Shrinking never trades analyzability for size: once a candidate's
    oracle trace passes ``check``, dirtier candidates are rejected."""

    @pytest.fixture()
    def always_diverges(self, monkeypatch):
        from repro.faults import fuzz
        monkeypatch.setattr(fuzz, "compare_runs",
                            lambda a, b: {"kind": "op", "index": 0})

    def test_dirty_original_shrinks_to_a_clean_repro(self, always_diverges):
        # Seed 1 generates a case with a dead compare, so its trace starts
        # dirty; the reducers strip it, the ratchet engages, and the final
        # repro is clean even though the original was not.
        case = generate_case(1)
        assert _trace_is_clean(case) is False
        shrunk = shrink_case(case, 8)
        assert len(shrunk.ops) < len(case.ops)
        assert _trace_is_clean(shrunk) is True

    def test_crashing_case_bypasses_the_ratchet(self):
        case = FuzzCase(seed=0, vlmax=4, avl=4, inputs={},
                        ops=[{"op": "vfmadd"}])
        assert _trace_is_clean(case) is None


class TestHealthySweep:
    def test_fuzz_many_is_clean_on_a_healthy_tree(self):
        progress_calls = []
        mismatches = fuzz_many(
            4, master_seed=1, num_ops=8,
            progress=lambda done, total, found:
                progress_calls.append((done, total, found)))
        assert mismatches == []
        assert progress_calls[-1] == (4, 4, 0)

    def test_dut_observations_match_oracle_shapes(self):
        case = generate_case(11, num_ops=8)
        oracle, dut = run_oracle(case), run_dut(case, 4)
        assert oracle["vl"] == dut["vl"] == case.vl
        assert len(oracle["obs"]) == len(dut["obs"]) == len(case.ops)
        assert sorted(oracle["bufs"]) == sorted(case.inputs)
