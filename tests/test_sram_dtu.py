"""Data-transpose-unit functional tests (the load/store bit reshuffle)."""

import numpy as np
import pytest

from repro.errors import SramError
from repro.sram import EveSram, RegisterLayout
from repro.sram.dtu import ELEMENTS_PER_LINE, DataTransposeUnit


def setup(factor, capacity=32):
    segments = 32 // factor
    rows = max(64, 8 * segments)
    cols = capacity * factor
    layout = RegisterLayout(rows=rows, cols=cols, element_bits=32,
                            factor=factor, num_vregs=8)
    return EveSram(rows, cols, factor), layout, DataTransposeUnit(layout)


@pytest.mark.parametrize("factor", [1, 2, 4, 8, 16, 32])
class TestRoundTrip:
    def test_line_roundtrip(self, factor, rng):
        sram, layout, dtu = setup(factor)
        values = rng.integers(-2 ** 31, 2 ** 31, ELEMENTS_PER_LINE)
        dtu.load_line(sram, 0, 0, values)
        assert np.array_equal(dtu.store_line(sram, 0, 0), values)

    def test_equivalent_to_host_transpose(self, factor, rng):
        """Loading line by line equals the whole-register transpose."""
        sram_a, layout, dtu = setup(factor)
        sram_b = EveSram(sram_a.rows, sram_a.cols, factor)
        values = rng.integers(-2 ** 31, 2 ** 31, layout.elements_per_array)
        for first in range(0, layout.elements_per_array, ELEMENTS_PER_LINE):
            chunk = values[first:first + ELEMENTS_PER_LINE]
            dtu.load_line(sram_a, 3, first, chunk)
        sram_b.write_vreg(layout, 3, values)
        assert np.array_equal(sram_a.array.snapshot(),
                              sram_b.array.snapshot())

    def test_partial_line(self, factor, rng):
        sram, layout, dtu = setup(factor)
        values = rng.integers(-1000, 1000, 5)
        dtu.load_line(sram, 1, 0, values)
        assert np.array_equal(dtu.store_line(sram, 1, 0, count=5), values)


class TestIsolation:
    def test_line_write_does_not_disturb_neighbours(self, rng):
        sram, layout, dtu = setup(8, capacity=32)
        base = rng.integers(-1000, 1000, layout.elements_per_array)
        sram.write_vreg(layout, 0, base)
        new = rng.integers(-1000, 1000, ELEMENTS_PER_LINE)
        dtu.load_line(sram, 0, ELEMENTS_PER_LINE, new)
        got = sram.read_vreg(layout, 0)
        assert np.array_equal(got[:ELEMENTS_PER_LINE], base[:ELEMENTS_PER_LINE])
        assert np.array_equal(got[ELEMENTS_PER_LINE:2 * ELEMENTS_PER_LINE], new)

    def test_other_registers_untouched(self, rng):
        sram, layout, dtu = setup(4, capacity=32)
        keep = rng.integers(-1000, 1000, layout.elements_per_array)
        sram.write_vreg(layout, 5, keep)
        dtu.load_line(sram, 2, 0, rng.integers(-1000, 1000, 16))
        assert np.array_equal(sram.read_vreg(layout, 5), keep)


class TestCostModel:
    def test_cycles_per_line_matches_timing_model(self):
        for factor in (1, 2, 4, 8, 16):
            _, _, dtu = setup(factor)
            assert dtu.cycles_per_line == 32 // factor

    def test_bit_parallel_needs_no_transpose_cycles(self):
        _, _, dtu = setup(32)
        assert dtu.cycles_per_line == 0

    def test_row_writes_counted(self, rng):
        sram, layout, dtu = setup(8)
        writes = dtu.load_line(sram, 0, 0, rng.integers(0, 100, 16))
        assert writes == layout.segments


class TestValidation:
    def test_oversized_line_rejected(self, rng):
        sram, _, dtu = setup(8)
        with pytest.raises(SramError):
            dtu.load_line(sram, 0, 0, np.zeros(17))

    def test_out_of_range_rejected(self, rng):
        sram, layout, dtu = setup(8, capacity=16)
        with pytest.raises(SramError):
            dtu.load_line(sram, 0, 8, np.zeros(16))

    def test_multi_group_layout_rejected(self):
        layout = RegisterLayout(rows=64, cols=64, element_bits=32, factor=1,
                                num_vregs=4)  # spans two column groups
        with pytest.raises(SramError):
            DataTransposeUnit(layout)
