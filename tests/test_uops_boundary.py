"""Segment-boundary carry tests at the width extremes (n=1 and n=32).

At n=1 every 32-bit element is 32 one-bit segments, so a single add can
ripple a carry across 31 segment boundaries; at n=32 there is exactly one
segment and the carry chain must degenerate cleanly.  These cases pin the
carry-select behaviour of the ``add``/``sub``/``mul``/``shift``
micro-programs with sign-boundary operands and vlmax-edge vector lengths.
"""

import numpy as np
import pytest

from repro.core import EveFunctionalEngine

from tests.conftest import wrap32

I32_MIN, I32_MAX = -(2 ** 31), 2 ** 31 - 1

#: Operand pairs chosen to ripple carries through every segment width:
#: full-chain propagation (MAX+1), borrow chains (MIN-1), alternating
#: carry patterns, and sign-crossing multiplies.
CARRY_PAIRS = [
    (I32_MAX, 1),
    (I32_MIN, -1),
    (-1, 1),
    (0x55555555, 0x55555555),
    (-0x55555556, -0x55555556),
    (I32_MAX - 1, I32_MIN + 1),
    (-2, -2),
]


@pytest.fixture(params=[1, 32], ids=lambda f: f"n{f}")
def engine(request):
    return EveFunctionalEngine(factor=request.param, capacity=8)


def load(engine, values, name):
    buf = engine.vm.alloc_i32(
        name, np.asarray(values, np.int64).astype(np.int32))
    return engine.vle32(buf)


def check(engine, vec, expected):
    assert np.array_equal(engine.peek(vec), wrap32(np.asarray(expected)))


class TestCarryPropagation:
    def setup_vectors(self, engine, vl=None):
        a_vals = [a for a, _ in CARRY_PAIRS] + [0]
        b_vals = [b for _, b in CARRY_PAIRS] + [0]
        engine.setvl(len(a_vals) if vl is None else vl)
        return (np.asarray(a_vals), np.asarray(b_vals),
                load(engine, a_vals, "a"), load(engine, b_vals, "b"))

    def test_add_ripples_across_all_segments(self, engine):
        a_vals, b_vals, a, b = self.setup_vectors(engine)
        check(engine, engine.vadd(a, b), a_vals + b_vals)

    def test_sub_borrows_across_all_segments(self, engine):
        a_vals, b_vals, a, b = self.setup_vectors(engine)
        check(engine, engine.vsub(a, b), a_vals - b_vals)
        check(engine, engine.vrsub(a, b), b_vals - a_vals)

    def test_mul_with_negative_operands(self, engine):
        a_vals, b_vals, a, b = self.setup_vectors(engine)
        check(engine, engine.vmul(a, b), a_vals * b_vals)

    def test_srl_shifts_zeros_into_the_sign_segments(self, engine):
        a_vals, _, a, _ = self.setup_vectors(engine)
        for amount in (1, 31):
            check(engine, engine.vsrl(a, amount),
                  (a_vals & 0xFFFFFFFF) >> amount)

    def test_sra_replicates_the_sign_across_segments(self, engine):
        a_vals, _, a, _ = self.setup_vectors(engine)
        check(engine, engine.vsra(a, 31), a_vals >> 31)


class TestVlmaxEdges:
    def test_single_element_vector(self, engine):
        engine.setvl(1)
        a = load(engine, [I32_MIN], "a")
        check(engine, engine.vadd(a, -1), [I32_MIN - 1])
        check(engine, engine.vsub(a, 1), [I32_MIN - 1])

    def test_full_capacity_vector(self, engine):
        engine.setvl(8)  # vl == vlmax: every lane of the array is live
        a_vals = np.asarray([I32_MAX] * 4 + [I32_MIN] * 4)
        a = load(engine, a_vals, "a")
        check(engine, engine.vadd(a, 1), a_vals + 1)
        check(engine, engine.vmul(a, -1), -a_vals)

    def test_avl_clamps_to_capacity(self, engine):
        assert engine.setvl(1000) == 8
