"""Corpus replay: every saved case stays clean at every segment width.

The corpus under ``tests/corpus/`` is the fuzzer's regression seed set:
each file is a hand-written :class:`~repro.faults.fuzz.FuzzCase` pinning
a bit-exactness corner (carry-chain edges, the vs1==vs2 aliasing fix,
division by zero, saturation clips, shift-amount masking, masked stores,
slides/gathers/reductions).  A divergence here means the micro-programmed
engine and the numpy oracle disagree on committed architectural state.
"""

import glob
import os

import pytest

from repro.faults.fuzz import (FUZZ_WIDTHS, FuzzCase, load_case, replay_case,
                               run_oracle)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def test_corpus_is_populated():
    assert len(CORPUS) >= 8


@pytest.mark.parametrize("path", CORPUS,
                         ids=[os.path.splitext(os.path.basename(p))[0]
                              for p in CORPUS])
class TestCorpus:
    def test_oracle_accepts_case(self, path):
        assert "crash" not in run_oracle(load_case(path))

    def test_replays_clean_at_every_width(self, path):
        failures = replay_case(load_case(path), FUZZ_WIDTHS)
        assert failures == []

    def test_round_trips_through_json(self, path):
        case = load_case(path)
        assert FuzzCase.from_dict(case.to_json_dict()) == case
