"""Executor mechanics and the macro-op ROM."""

import pytest

from repro.errors import IsaError, MicroExecutionError
from repro.isa import MemAccess, VectorInstr
from repro.sram import EveSram, RegisterLayout
from repro.uops import (
    ArithUop,
    Binding,
    ControlUop,
    MacroOpRom,
    MicroEngine,
    ProgramBuilder,
    RowRef,
)
from repro.uops.rom import STREAMED_OPS, instr_key
from repro.uops.uop import CounterSeg, DataIn


def small_binding():
    layout = RegisterLayout(rows=32, cols=16, element_bits=32, factor=4,
                            num_vregs=4)
    return EveSram(32, 16, 4), Binding(layout=layout,
                                       regs={"vs1": 0, "vs2": 1, "vd": 2,
                                             "vm": 3})


class TestEngineMechanics:
    def test_timing_equals_bit_exact_cycles(self):
        sram, binding = small_binding()
        rom = MacroOpRom(4)
        program = rom.program("add")
        timing = MicroEngine().run(program)
        exact = MicroEngine().run(program, sram, binding)
        assert timing == exact

    def test_bit_exact_requires_binding(self):
        sram, _ = small_binding()
        rom = MacroOpRom(4)
        with pytest.raises(MicroExecutionError):
            MicroEngine().run(rom.program("add"), sram)

    def test_runaway_loop_guarded(self):
        b = ProgramBuilder("loop")
        b.label("top")
        b.emit(control=ControlUop("jmp", target="top"))
        with pytest.raises(MicroExecutionError):
            MicroEngine().run(b.build())

    def test_histogram_counts_arith_uops(self):
        rom = MacroOpRom(8)
        histogram = {}
        MicroEngine().run(rom.program("add"), histogram=histogram)
        # One blc and one write-back per segment, plus the carry preset.
        assert histogram["blc"] == 4
        assert histogram["wb"] == 5

    def test_counter_seg_addressing(self):
        """RowRef segments resolve as base + step * iteration."""
        sram, binding = small_binding()
        b = ProgramBuilder("probe")
        ref = RowRef("vs1", CounterSeg("seg0", base=7, step=-1))
        b.sweep("seg0", 8, [
            ArithUop("wr", a=ref, data_in=DataIn("ones")),
        ])
        MicroEngine().run(b.build(), sram, binding)
        # All 8 segments of vs1 (rows 0..7) were written, top-down.
        assert sram.array.snapshot()[:8].all()

    def test_unbound_slot_raises(self):
        sram, binding = small_binding()
        binding.regs.pop("vs2")
        rom = MacroOpRom(4)
        with pytest.raises(MicroExecutionError):
            MicroEngine().run(rom.program("add"), sram, binding)

    def test_scalar_seg_data_in(self):
        sram, binding = small_binding()
        binding.scalar = 0xABCD1234
        b = ProgramBuilder("splat-probe")
        b.sweep("seg0", 8, [
            ArithUop("wr", a=RowRef("vd", CounterSeg("seg0")),
                     data_in=DataIn("scalar_seg", CounterSeg("seg0"))),
        ])
        MicroEngine().run(b.build(), sram, binding)
        values = sram.read_vreg(binding.layout, 2)
        assert (values & 0xFFFFFFFF == 0xABCD1234).all()


class TestRom:
    def test_programs_cached(self):
        rom = MacroOpRom(8)
        assert rom.program("add") is rom.program("add")

    def test_cycles_cached_and_consistent(self):
        rom = MacroOpRom(8)
        first = rom.cycles("mul")
        assert rom.cycles("mul") == first

    def test_unknown_macro(self):
        with pytest.raises(IsaError):
            MacroOpRom(8).program("sqrt")

    def test_param_variants_distinct(self):
        rom = MacroOpRom(8)
        assert rom.cycles("shift_scalar", op="sll", amount=1) < \
            rom.cycles("shift_scalar", op="sll", amount=31)

    def test_add_cycles_match_formula(self):
        """add = carry preset + 2 cycles per segment + loop init + ret."""
        for factor in (1, 2, 4, 8, 16, 32):
            segments = 32 // factor
            assert MacroOpRom(factor).cycles("add") == 2 * segments + 3


class TestInstrMapping:
    def mem(self, store=False):
        return MemAccess(base=0, stride=4, count=8, is_store=store)

    def test_streamed_ops_have_no_rom_program(self):
        rom = MacroOpRom(8)
        instr = VectorInstr(op="vle32", vl=8, vd=1, mem=self.mem())
        assert rom.cycles_for(instr) is None
        assert rom.program_for(instr) is None

    def test_streamed_ops_map_to_none(self):
        cases = [
            VectorInstr(op="vse32", vl=8, vd=1, mem=self.mem(store=True)),
            VectorInstr(op="vredsum", vl=8, vs1=1),
            VectorInstr(op="vrgather", vl=8, vd=1, vs1=2, vs2=3),
            VectorInstr(op="vslideup", vl=8, vd=1, vs1=2),
            VectorInstr(op="vsetvl", vl=8),
            VectorInstr(op="vmfence", vl=0),
            VectorInstr(op="vmv.x.s", vl=1, vs1=2),
        ]
        for instr in cases:
            assert instr.op in STREAMED_OPS
            assert instr_key(instr) is None

    @pytest.mark.parametrize("op,macro", [
        ("vadd", "add"), ("vsub", "sub"), ("vrsub", "rsub"),
        ("vand", "logic"), ("vxor", "logic"), ("vmul", "mul"),
        ("vdiv", "div"), ("vmin", "minmax"), ("vmslt", "compare"),
        ("vmerge", "merge"),
    ])
    def test_compute_mapping(self, op, macro):
        instr = VectorInstr(op=op, vl=8, vd=1, vs1=2, vs2=3)
        key = instr_key(instr)
        assert key is not None and key[0] == macro

    def test_vmv_scalar_is_splat(self):
        assert instr_key(VectorInstr(op="vmv", vl=8, vd=1, scalar=5))[0] == "splat"
        assert instr_key(VectorInstr(op="vmv", vl=8, vd=1, vs1=2))[0] == "move"

    def test_shift_forms(self):
        vx = VectorInstr(op="vsll", vl=8, vd=1, vs1=2, scalar=5)
        vv = VectorInstr(op="vsll", vl=8, vd=1, vs1=2, vs2=3)
        assert instr_key(vx)[0] == "shift_scalar"
        assert instr_key(vv)[0] == "shift_variable"

    def test_cycles_for_compute_instr(self):
        rom = MacroOpRom(8)
        instr = VectorInstr(op="vadd", vl=8, vd=1, vs1=2, vs2=3)
        assert rom.cycles_for(instr) == rom.cycles("add", masked=False)

    def test_masked_variant_costs_more(self):
        rom = MacroOpRom(8)
        plain = VectorInstr(op="vadd", vl=8, vd=1, vs1=2, vs2=3)
        masked = VectorInstr(op="vadd", vl=8, vd=1, vs1=2, vs2=3, masked=True)
        assert rom.cycles_for(masked) > rom.cycles_for(plain)


class TestEnergyModel:
    def test_average_power_below_blc_peak(self):
        from repro.circuits_model.energy import (
            OP_ENERGY_REL, average_power_overhead)
        rom = MacroOpRom(8)
        for macro in ("add", "mul", "logic"):
            avg = average_power_overhead(rom, macro)
            assert avg <= OP_ENERGY_REL["blc"]  # Section VI-B's argument

    def test_blc_twenty_percent_above_read(self):
        from repro.circuits_model.energy import OP_ENERGY_REL
        assert OP_ENERGY_REL["blc"] / OP_ENERGY_REL["rd"] == pytest.approx(1.2)

    def test_macroop_energy_positive_and_additive(self):
        from repro.circuits_model.energy import macroop_energy
        rom = MacroOpRom(8)
        assert macroop_energy(rom, "mul") > macroop_energy(rom, "add") > 0
