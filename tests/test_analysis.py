"""Static-analyzer unit tests: every checker rule fires on an injected
defect (with the offending instruction index) and stays silent on all
seven shipped workloads at default parameters."""

import numpy as np
import pytest

from repro.analysis import (DepGraph, TraceColumns, analyze_trace,
                            build_defuse, build_depgraph, build_footprint,
                            check_trace, require_clean)
from repro.errors import AnalysisError, IsaError
from repro.isa.instructions import MemAccess, VectorInstr
from repro.isa.trace import Trace
from repro.workloads import REGISTRY, workload_names

VLMAX = 8


def make_trace(events, vlmax=VLMAX, buffers=None):
    trace = Trace("unit")
    trace.vlmax = vlmax
    trace.buffers = buffers or {}
    for event in events:
        trace.append(event)
    return trace


def setvl(avl, vl=None, vlmax=VLMAX):
    return VectorInstr(op="vsetvl", vl=min(avl, vlmax) if vl is None else vl,
                       scalar=avl)


def splat(vd, value, vl=VLMAX):
    return VectorInstr(op="vmv", vl=vl, vd=vd, scalar=value)


def vadd(vd, vs1, vs2, vl=VLMAX, **kw):
    return VectorInstr(op="vadd", vl=vl, vd=vd, vs1=vs1, vs2=vs2, **kw)


def findings_with(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestCheckerRules:
    def test_uninit_read_fires_with_index(self):
        trace = make_trace([setvl(8), vadd(2, 1, 3)])
        hits = findings_with(check_trace(trace), "uninit-read")
        assert {f.index for f in hits} == {1}
        assert all(f.severity == "error" for f in hits)

    def test_dead_write_fires_with_index(self):
        trace = make_trace([setvl(8), splat(1, 7), splat(1, 9),
                            vadd(2, 1, 1)])
        hits = findings_with(check_trace(trace), "dead-write")
        assert [f.index for f in hits] == [1]

    def test_live_out_value_is_not_a_dead_write(self):
        trace = make_trace([setvl(8), splat(1, 7)])
        assert not findings_with(check_trace(trace), "dead-write")

    def test_oob_footprint_fires_with_index(self):
        load = VectorInstr(op="vle32", vl=8, vd=1,
                           mem=MemAccess(base=0x1000, stride=4, count=16,
                                         is_store=False))
        trace = make_trace([setvl(8), load],
                           buffers={"a": (0x1000, 32)})
        hits = findings_with(check_trace(trace), "oob-footprint")
        assert [f.index for f in hits] == [1]

    def test_in_bounds_footprint_is_clean(self):
        load = VectorInstr(op="vle32", vl=8, vd=1,
                           mem=MemAccess(base=0x1000, stride=4, count=8,
                                         is_store=False))
        trace = make_trace([setvl(8), load],
                           buffers={"a": (0x1000, 32)})
        assert not findings_with(check_trace(trace), "oob-footprint")

    def test_no_declared_buffers_disables_oob(self):
        load = VectorInstr(op="vle32", vl=8, vd=1,
                           mem=MemAccess(base=0x1000, stride=4, count=16,
                                         is_store=False))
        trace = make_trace([setvl(8), load], buffers={})
        assert not findings_with(check_trace(trace), "oob-footprint")

    def test_avl_vlmax_overgrant_fires_with_index(self):
        trace = make_trace([setvl(16, vl=16)])   # grant must be min(16, 8)
        hits = findings_with(check_trace(trace), "avl-vlmax")
        assert [f.index for f in hits] == [0]

    def test_vl_not_matching_grant_fires(self):
        trace = make_trace([setvl(4), splat(1, 7, vl=8)])
        hits = findings_with(check_trace(trace), "avl-vlmax")
        assert [f.index for f in hits] == [1]

    def test_instr_before_any_vsetvl_fires(self):
        trace = make_trace([splat(1, 7, vl=8)])
        hits = findings_with(check_trace(trace), "avl-vlmax")
        assert [f.index for f in hits] == [0]
        assert "before any vsetvl" in hits[0].message

    def test_vl_rules_gated_on_recorded_vlmax(self):
        trace = make_trace([setvl(16, vl=16)], vlmax=None)
        assert not findings_with(check_trace(trace), "avl-vlmax")

    def test_overlap_hazard_fires_with_index(self):
        trace = make_trace([setvl(8), splat(1, 7), vadd(1, 1, 1)])
        hits = findings_with(check_trace(trace), "overlap-hazard")
        assert [f.index for f in hits] == [2]

    def test_same_source_twice_is_not_an_overlap(self):
        trace = make_trace([setvl(8), splat(1, 7), vadd(2, 1, 1)])
        assert not findings_with(check_trace(trace), "overlap-hazard")

    def test_mask_undefined_fires_with_index(self):
        trace = make_trace([setvl(8), splat(1, 7), splat(2, 0),
                            vadd(3, 1, 2, masked=True)])
        hits = findings_with(check_trace(trace), "mask-undefined")
        assert [f.index for f in hits] == [3]

    def test_narrow_mask_fires(self):
        compare = VectorInstr(op="vmslt", vl=4, vd=0, vs1=1, vs2=2)
        trace = make_trace([setvl(4), splat(1, 7, vl=4), splat(2, 0, vl=4),
                            compare, setvl(8), splat(3, 1),
                            vadd(4, 3, 3, masked=True)])
        hits = findings_with(check_trace(trace), "mask-undefined")
        assert [f.index for f in hits] == [6]

    def test_reduction_order_fires_with_index(self):
        fold = VectorInstr(op="vredsum", vl=8, vs1=1)
        trace = make_trace([setvl(4), splat(1, 7, vl=4), setvl(8), fold])
        hits = findings_with(check_trace(trace), "reduction-order")
        assert [f.index for f in hits] == [3]

    def test_tail_undefined_warns_with_index(self):
        trace = make_trace([setvl(4), splat(1, 7, vl=4), setvl(8),
                            vadd(2, 1, 1)])
        hits = findings_with(check_trace(trace), "tail-undefined")
        assert [f.index for f in hits] == [3]
        assert all(f.severity == "warning" for f in hits)

    def test_vmv_s_x_zeroed_tail_is_exempt(self):
        scalar_insert = VectorInstr(op="vmv.s.x", vl=1, vd=1, scalar=42)
        fold = VectorInstr(op="vredsum", vl=8, vs1=1)
        trace = make_trace([setvl(8), scalar_insert, vadd(2, 1, 1), fold])
        findings = check_trace(trace)
        assert not findings_with(findings, "tail-undefined")
        assert not findings_with(findings, "reduction-order")
        assert not findings_with(findings, "avl-vlmax")

    def test_fence_runs_at_vl_zero_without_findings(self):
        fence = VectorInstr(op="vmfence", vl=0)
        trace = make_trace([setvl(8), fence])
        assert not check_trace(trace)


class TestRequireClean:
    def test_raises_with_findings_attached(self):
        trace = make_trace([setvl(8), vadd(2, 1, 3)])
        with pytest.raises(AnalysisError) as err:
            require_clean(trace, context="unit")
        assert err.value.findings
        assert all(f.severity == "error" for f in err.value.findings)
        assert "unit" in str(err.value)

    def test_passes_on_clean_trace(self):
        trace = make_trace([setvl(8), splat(1, 7)])
        require_clean(trace)


class TestMemAccessGatherGuard:
    def test_float_addresses_rejected(self):
        with pytest.raises(IsaError):
            MemAccess(addresses=np.zeros(4), count=4)

    def test_negative_addresses_rejected(self):
        with pytest.raises(IsaError):
            MemAccess(addresses=np.array([0, -4], dtype=np.int64), count=2)

    def test_integer_addresses_accepted(self):
        access = MemAccess(addresses=np.array([0, 4], dtype=np.int64),
                           count=2)
        assert access.element_addresses().tolist() == [0, 4]


class TestDefUseView:
    def test_defs_uses_and_liveness(self):
        trace = make_trace([setvl(8), splat(1, 7), vadd(2, 1, 1),
                            splat(1, 9)])
        defuse = build_defuse(trace)
        first = defuse.defs[0]
        assert (first.index, first.reg, first.uses) == (1, 1, [2])
        assert first.killed_by == 3
        assert not first.is_dead            # used before the overwrite
        assert set(defuse.live_out) == {1, 2}
        assert defuse.live_out[1].index == 3
        assert defuse.live_high_water == 2
        assert not defuse.uninit_uses

    def test_uninit_uses_reported(self):
        trace = make_trace([setvl(8), vadd(2, 1, 1)])
        defuse = build_defuse(trace)
        assert defuse.uninit_uses == [(1, 1), (1, 1)]


class TestAnalyzeTrace:
    def test_summary_and_depgraph_shape(self):
        trace = make_trace([setvl(8), splat(1, 7), vadd(2, 1, 1),
                            vadd(3, 2, 2)])
        report = analyze_trace(trace)
        assert report.summary.events == 4
        assert report.summary.vector_instrs == 4
        assert report.summary.errors == 0
        assert isinstance(report.depgraph, DepGraph)
        # the vadd chain forces depth >= 3 (splat -> vadd -> vadd)
        assert report.summary.dep_depth >= 3
        order = report.depgraph.topological_order()
        assert sorted(order) == list(range(4))

    def test_lite_footprint_skips_detail(self):
        load = VectorInstr(op="vle32", vl=8, vd=1,
                           mem=MemAccess(base=0x1000, stride=4, count=8,
                                         is_store=False))
        trace = make_trace([setvl(8), load], buffers={"a": (0x1000, 32)})
        lite = build_footprint(trace, with_deps=False)
        assert not lite.has_deps and not lite.accesses and not lite.edges
        full = build_footprint(trace, with_deps=True)
        assert full.has_deps and len(full.accesses) == 1
        assert full.touched["a"] == [(0x1000, 0x1020)]


@pytest.mark.parametrize("name", sorted(workload_names()))
def test_workloads_are_analysis_clean(name):
    trace = REGISTRY[name].vector_trace(vlmax=2048, verify=False)
    assert trace.vlmax == 2048
    assert trace.buffers
    findings = check_trace(trace)
    assert findings == [], [str(f) for f in findings[:5]]


def test_columns_empty_trace():
    cols = TraceColumns(Trace("empty"))
    assert cols.live_high_water() == 0
    assert not cols.live_out()
    graph = build_depgraph(Trace("empty"))
    assert graph.n_nodes == 0 and graph.n_edges == 0
