"""Bit-line-compute SRAM array tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SramError
from repro.sram import SramArray


@pytest.fixture
def array():
    return SramArray(8, 16)


def bits(values):
    return np.asarray(values, dtype=np.uint8)


class TestReadWrite:
    def test_roundtrip(self, array):
        pattern = bits([i % 2 for i in range(16)])
        array.write(3, pattern)
        assert np.array_equal(array.read(3), pattern)

    def test_read_returns_copy(self, array):
        row = array.read(0)
        row[:] = 1
        assert array.read(0).sum() == 0

    def test_column_enable(self, array):
        array.write(0, bits([1] * 16))
        array.write(0, bits([0] * 16), col_enable=bits([1, 0] * 8).astype(bool))
        assert list(array.read(0)) == [0, 1] * 8

    def test_row_bounds(self, array):
        with pytest.raises(SramError):
            array.read(8)
        with pytest.raises(SramError):
            array.write(-1, bits([0] * 16))

    def test_width_mismatch(self, array):
        with pytest.raises(SramError):
            array.write(0, bits([1] * 8))

    def test_non_binary_rejected(self, array):
        with pytest.raises(SramError):
            array.write(0, np.full(16, 2, dtype=np.uint8))

    def test_bad_geometry(self):
        with pytest.raises(SramError):
            SramArray(0, 16)


class TestBitLineCompute:
    def test_truth_table(self, array):
        array.write(0, bits([0, 0, 1, 1] * 4))
        array.write(1, bits([0, 1, 0, 1] * 4))
        r = array.bitline_compute(0, 1)
        assert list(r.and_[:4]) == [0, 0, 0, 1]
        assert list(r.or_[:4]) == [0, 1, 1, 1]
        assert list(r.nand[:4]) == [1, 1, 1, 0]
        assert list(r.nor[:4]) == [1, 0, 0, 0]

    def test_self_compute_senses_row(self, array):
        pattern = bits([1, 0] * 8)
        array.write(2, pattern)
        r = array.bitline_compute(2, 2)
        assert np.array_equal(r.and_, pattern)
        assert np.array_equal(r.or_, pattern)

    def test_does_not_disturb_cells(self, array):
        a, b = bits([1] * 16), bits([0, 1] * 8)
        array.write(0, a)
        array.write(1, b)
        array.bitline_compute(0, 1)
        assert np.array_equal(array.read(0), a)
        assert np.array_equal(array.read(1), b)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 1), min_size=16, max_size=16),
           st.lists(st.integers(0, 1), min_size=16, max_size=16))
    def test_property_matches_boolean_algebra(self, a, b):
        array = SramArray(2, 16)
        array.write(0, bits(a))
        array.write(1, bits(b))
        r = array.bitline_compute(0, 1)
        av, bv = np.array(a), np.array(b)
        assert np.array_equal(r.and_, av & bv)
        assert np.array_equal(r.or_, av | bv)
        assert np.array_equal(r.nand, 1 - (av & bv))
        assert np.array_equal(r.nor, 1 - (av | bv))


class TestBulkState:
    def test_snapshot_load_roundtrip(self, array):
        data = np.random.default_rng(0).integers(0, 2, (8, 16)).astype(np.uint8)
        array.load(data)
        assert np.array_equal(array.snapshot(), data)

    def test_load_shape_checked(self, array):
        with pytest.raises(SramError):
            array.load(np.zeros((4, 16), dtype=np.uint8))

    def test_clear(self, array):
        array.write(0, bits([1] * 16))
        array.clear()
        assert array.snapshot().sum() == 0
