"""Static analyzer (CFG + dataflow lint) tests.

Each of the six rule families gets at least one deliberately malformed
program asserting the specific :class:`Finding`; the shipped ROM must come
out clean for every opcode × parallelization factor (the acceptance bar
for ``repro lint``).
"""

import pytest

from repro.errors import IsaError, LintError, MicroExecutionError, ReproError
from repro.isa.opcodes import Category, OpInfo
from repro.uops import (
    ControlFlowGraph,
    ControlUop,
    MacroOpRom,
    MicroEngine,
    ProgramBuilder,
    assemble,
    check_program,
    lint_program,
    lint_rom,
    rom_specs,
)
from repro.uops.cfg import Edge

FACTORS = (1, 2, 4, 8, 16, 32)


def findings_for(source: str, factor: int = 4, name: str = "case"):
    return lint_program(assemble(source, name=name), factor=factor)


def rules_of(findings):
    return {f.rule for f in findings}


# -- the control-flow graph itself -------------------------------------------


class TestControlFlowGraph:
    def test_edge_kinds(self):
        program = assemble("""
            init seg0, 4
        loop:
            decr seg0 | nop | bnz seg0, loop
            ret
        """)
        cfg = ControlFlowGraph(program)
        assert Edge(0, 1, "fall") in cfg.edges
        assert Edge(1, 1, "taken") in cfg.edges      # bnz back edge
        assert Edge(1, 2, "fall") in cfg.edges       # bnz wrap fall-through
        assert Edge(2, cfg.exit_node, "ret") in cfg.edges

    def test_reachability_skips_dead_code(self):
        program = assemble("""
            - | nop | jmp end
            - | sclr | -
        end:
            ret
        """)
        cfg = ControlFlowGraph(program)
        assert 1 not in cfg.reachable
        assert {0, 2, cfg.exit_node} <= cfg.reachable

    def test_dominators_of_loop_body(self):
        program = assemble("""
            init seg0, 4
        loop:
            decr seg0 | nop | bnz seg0, loop
            ret
        """)
        dom = ControlFlowGraph(program).dominators()
        assert dom[1] == {0, 1}
        assert dom[2] == {0, 1, 2}

    def test_sccs_find_the_loop_only(self):
        program = assemble("""
            init seg0, 4
        loop:
            decr seg0 | sclr | -
            - | nop | bnz seg0, loop
            ret
        """)
        sccs = ControlFlowGraph(program).sccs()
        assert sccs == [[1, 2]]


# -- rule 1: counter use before init -----------------------------------------


class TestCounterUninit:
    def test_decr_before_init(self):
        findings = findings_for("""
        loop:
            decr seg0 | nop | bnz seg0, loop
            ret
        """)
        hits = [f for f in findings if f.rule == "counter-uninit"]
        assert len(hits) == 2  # the decr and the bnz test
        assert all(f.severity == "error" and f.index == 0 for f in hits)
        assert "seg0" in hits[0].message

    def test_counter_seg_address_before_init(self):
        findings = findings_for("""
            - | blc vs1[seg1], vs1[seg1] | -
            - | wb vd[0], and | -
            ret
        """)
        assert any(f.rule == "counter-uninit" and "seg1" in f.message
                   and f.index == 0 for f in findings)

    def test_init_on_only_one_path_is_flagged(self):
        # seg1's init is skipped when the bnd falls through.
        findings = findings_for("""
            init seg0, 4
        top:
            decr seg0 | nop | bnd seg0, armed
            - | nop | jmp use
        armed:
            init seg1, 4
        use:
            - | nop | bnz seg1, top
            ret
        """)
        assert any(f.rule == "counter-uninit" and "seg1" in f.message
                   for f in findings)

    def test_init_in_same_tuple_covers_the_read(self):
        # The counter slot executes before the arithmetic slot, so an
        # init+use tuple is NOT a rule-1 violation (rule 6 warns instead).
        findings = findings_for("""
            init seg0, 4 | blc vs1[seg0], vs1[seg0] | -
            - | wb vd[0], and | -
            ret
        """)
        assert "counter-uninit" not in rules_of(findings)

    def test_clean_sweep_passes(self):
        findings = findings_for("""
            init seg0, 8
        loop:
            decr seg0 | blc vs1[seg0], vs2[seg0] | -
            - | wb vd[seg0], and | bnz seg0, loop
            ret
        """, factor=4)
        assert findings == []


# -- rule 2: latch read before write -----------------------------------------


class TestLatchUninit:
    def test_carry_consumed_before_preset(self):
        findings = findings_for("""
            - | blc vs1[0], vs2[0] | -
            - | wb vd[0], add | -
            ret
        """)
        hits = [f for f in findings if f.rule == "latch-uninit"]
        assert len(hits) == 1
        assert hits[0].index == 1 and "carry" in hits[0].message

    def test_masked_write_before_mask_load(self):
        findings = findings_for("    - | wr vd[0] masked <zeros | -\n    ret")
        assert any(f.rule == "latch-uninit" and "mask" in f.message
                   for f in findings)

    def test_xreg_walked_before_load(self):
        findings = findings_for("    - | mask_shft | -\n    ret")
        assert any(f.rule == "latch-uninit" and "XRegister" in f.message
                   for f in findings)

    def test_link_ferried_before_seed(self):
        findings = findings_for("""
            - | rd vs1[0] | -
            - | lshift uncond | -
            ret
        """)
        assert any(f.rule == "latch-uninit" and "link" in f.message
                   for f in findings)

    def test_wb_source_without_blc(self):
        findings = findings_for("    - | wb vd[0], xor | -\n    ret")
        assert any(f.rule == "latch-uninit" and "bit-line" in f.message
                   for f in findings)

    def test_producer_on_one_branch_only_is_flagged(self):
        # The mask load sits on the taken side of a bnd; the fall-through
        # path reaches the masked write with the latches stale.
        findings = findings_for("""
            init seg0, 4
            decr seg0 | nop | bnd seg0, load
            - | nop | jmp use
        load:
            - | wb mask, data_in <ones | -
        use:
            - | wr vd[0] masked <zeros | -
            ret
        """)
        assert any(f.rule == "latch-uninit" and "mask" in f.message
                   for f in findings)

    def test_producer_before_loop_covers_the_body(self):
        findings = findings_for("""
            - | wb mask, data_in <ones | -
            init seg0, 4
        loop:
            decr seg0 | wr vd[seg0] masked <zeros | -
            - | nop | bnz seg0, loop
            ret
        """)
        assert "latch-uninit" not in rules_of(findings)


# -- rule 3: segment bounds ---------------------------------------------------


class TestSegBounds:
    def test_literal_out_of_range(self):
        findings = findings_for("""
            - | blc vs1[8], vs2[0] | -
            - | wb vd[0], and | -
            ret
        """, factor=4)
        hits = [f for f in findings if f.rule == "seg-bounds"]
        assert len(hits) == 1 and hits[0].index == 0
        assert "[8, 8]" in hits[0].message

    def test_same_literal_legal_at_lower_factor(self):
        source = """
            - | blc vs1[8], vs2[0] | -
            - | wb vd[0], and | -
            ret
        """
        assert any(f.rule == "seg-bounds" for f in findings_for(source, 4))
        assert not any(f.rule == "seg-bounds" for f in findings_for(source, 2))

    def test_counter_range_overruns_segments(self):
        # init of 9 sweeps indices 0..8 but n=4 only has segments 0..7.
        findings = findings_for("""
            init seg0, 9
        loop:
            decr seg0 | blc vs1[seg0], vs2[seg0] | -
            - | wb vd[seg0], and | bnz seg0, loop
            ret
        """, factor=4)
        assert any(f.rule == "seg-bounds" and "[0, 8]" in f.message
                   for f in findings)

    def test_reversed_walk_goes_negative(self):
        # 7-seg0 with 9 iterations reaches segment -1.
        findings = findings_for("""
            init seg0, 9
        loop:
            decr seg0 | wr vd[7-seg0] <zeros | -
            - | nop | bnz seg0, loop
            ret
        """, factor=4)
        assert any(f.rule == "seg-bounds" and "[-1, 7]" in f.message
                   for f in findings)

    def test_scalar_data_in_segment_checked(self):
        findings = findings_for("    - | wr vd[0] <scalar[9] | -\n    ret",
                                factor=4)
        assert any(f.rule == "seg-bounds" and "scalar" in f.message
                   for f in findings)


# -- rule 4: structure --------------------------------------------------------


class TestStructure:
    def test_unreachable_tuple_warns(self):
        findings = findings_for("""
            - | nop | jmp end
            - | sclr | -
        end:
            ret
        """)
        hits = [f for f in findings if f.rule == "unreachable"]
        assert len(hits) == 1
        assert hits[0].severity == "warning" and hits[0].index == 1

    def test_fall_off_the_end_is_an_error(self):
        findings = findings_for("    - | nop | -")
        hits = [f for f in findings if f.rule == "no-ret"]
        assert len(hits) == 1 and hits[0].severity == "error"

    def test_jump_past_the_end_is_an_error(self):
        findings = findings_for("""
            - | nop | jmp end
        end:
        """)
        assert any(f.rule == "no-ret" for f in findings)

    def test_ret_everywhere_is_clean(self):
        findings = findings_for("    ret")
        assert findings == []


# -- rule 5: termination ------------------------------------------------------


class TestTermination:
    def test_jmp_self_loop(self):
        findings = findings_for("loop:\n    - | nop | jmp loop")
        hits = [f for f in findings if f.rule == "nontermination"]
        assert len(hits) == 1
        assert "no exit branch" in hits[0].message

    def test_loop_guarded_by_unticked_counter(self):
        # seg1 is decremented but the exit tests seg0: flag never arms.
        findings = findings_for("""
            init seg0, 4
            init seg1, 4
        loop:
            decr seg1 | nop | bnz seg0, loop
            ret
        """)
        hits = [f for f in findings if f.rule == "nontermination"]
        assert len(hits) == 1
        assert "seg0" in hits[0].message and "never ticked" in hits[0].message

    def test_counted_loop_terminates(self):
        findings = findings_for("""
            init seg0, 4
        loop:
            decr seg0 | sclr | bnz seg0, loop
            ret
        """)
        assert "nontermination" not in rules_of(findings)

    def test_nested_loops_terminate(self):
        program = MacroOpRom(4).program("mul")
        assert lint_program(program, 4) == []


# -- rule 6: intra-tuple hazards ----------------------------------------------


class TestTupleHazards:
    def test_branch_on_counter_inited_same_tuple(self):
        findings = findings_for("""
        loop:
            init seg0, 4 | nop | bnz seg0, loop
            ret
        """)
        hits = [f for f in findings if f.rule == "tuple-hazard"]
        assert len(hits) == 1
        assert hits[0].severity == "error" and "init" in hits[0].message

    def test_address_through_counter_inited_same_tuple_warns(self):
        findings = findings_for("""
            init seg0, 4 | blc vs1[seg0], vs1[seg0] | -
            - | wb vd[0], and | -
            ret
        """)
        hits = [f for f in findings if f.rule == "tuple-hazard"]
        assert len(hits) == 1 and hits[0].severity == "warning"

    def test_masked_latch_write_back_warns(self):
        findings = findings_for("""
            - | wb mask, data_in <ones | -
            - | blc vs1[0], vs1[0] | -
            - | wb xreg, and masked | -
            ret
        """)
        assert any(f.rule == "tuple-hazard" and f.severity == "warning"
                   and "latch" in f.message for f in findings)

    def test_decr_plus_bnz_same_tuple_is_the_idiom(self):
        # The canonical one-μop-body sweep shares decr and bnz in a tuple.
        findings = findings_for("""
            init seg0, 4
        loop:
            decr seg0 | sclr | bnz seg0, loop
            ret
        """)
        assert "tuple-hazard" not in rules_of(findings)


# -- the diagnostics API ------------------------------------------------------


class TestCheckProgram:
    def test_raises_lint_error_with_findings(self):
        program = assemble("loop:\n    - | nop | jmp loop", name="bad")
        with pytest.raises(LintError) as excinfo:
            check_program(program, 4)
        assert excinfo.value.findings
        assert any(f.rule == "nontermination" for f in excinfo.value.findings)
        assert isinstance(excinfo.value, ReproError)

    def test_returns_warnings_without_raising(self):
        program = assemble("""
            - | nop | jmp end
            - | sclr | -
        end:
            ret
        """, name="deadcode")
        findings = check_program(program, 4)
        assert [f.rule for f in findings] == ["unreachable"]

    def test_finding_str_names_program_and_tuple(self):
        program = assemble("    - | wb vd[0], xor | -\n    ret", name="p")
        finding = lint_program(program, 4)[0]
        assert str(finding).startswith("p[0]: error: latch-uninit")


# -- the shipped ROM (acceptance bar) ----------------------------------------


class TestShippedRomClean:
    @pytest.mark.parametrize("factor", FACTORS)
    def test_every_rom_program_lints_clean(self, factor):
        count, findings = lint_rom(factors=(factor,))
        assert count == len(rom_specs())
        assert findings == [], [str(f) for f in findings]

    def test_lint_rom_macro_filter(self):
        count, findings = lint_rom(factors=(8,), macro="div")
        assert count == 4
        assert findings == []


# -- strict ROM (build-path wiring) ------------------------------------------


class TestStrictRom:
    def test_strict_rom_builds_the_shipped_programs(self):
        rom = MacroOpRom(8, strict=True)
        assert len(rom.program("add")) > 0
        assert rom.cycles("mul") > 0

    def test_verify_sweeps_every_spec(self):
        assert MacroOpRom(16).verify() == len(rom_specs())

    def test_strict_rejects_a_malformed_generator(self, monkeypatch):
        from repro.uops import macroops

        def bad_generator(factor, element_bits, **params):
            b = ProgramBuilder("bad/gen")
            b.label("top")
            b.emit(control=ControlUop("jmp", target="top"))
            return b.build()

        monkeypatch.setitem(macroops.GENERATORS, "add", bad_generator)
        with pytest.raises(LintError):
            MacroOpRom(8, strict=True).program("add")
        # Non-strict ROM still builds it (the seed behaviour).
        assert len(MacroOpRom(8).program("add")) == 2


# -- satellite: the executor watchdog ----------------------------------------


class TestWatchdog:
    def _infinite(self):
        b = ProgramBuilder("spin")
        b.label("top")
        b.emit(control=ControlUop("jmp", target="top"))
        return b.build()

    def test_engine_limit_trips(self):
        engine = MicroEngine(max_cycles=100)
        with pytest.raises(MicroExecutionError, match="watchdog"):
            engine.run(self._infinite())

    def test_per_run_override(self):
        engine = MicroEngine()
        with pytest.raises(MicroExecutionError, match="watchdog"):
            engine.run(self._infinite(), max_cycles=10)

    def test_limit_does_not_trip_terminating_programs(self):
        rom = MacroOpRom(4)
        cycles = MicroEngine().run(rom.program("add"))
        assert MicroEngine(max_cycles=cycles).run(rom.program("add")) == cycles

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(MicroExecutionError):
            MicroEngine(max_cycles=0)


# -- satellite: ISA/ROM coverage fail-fast -----------------------------------


class TestRomCoverage:
    def test_shipped_table_has_no_gaps(self):
        from repro.uops.rom import rom_coverage_gaps
        assert rom_coverage_gaps() == []

    def test_gap_names_the_opcode_and_macro(self):
        from repro.uops.rom import rom_coverage_gaps
        fake = {"vfrob": OpInfo(name="vfrob", category=Category.IALU,
                                macro="frobnicate")}
        assert rom_coverage_gaps(fake) == ["vfrob -> frobnicate"]

    def test_import_time_check_raises_isa_error(self, monkeypatch):
        from repro.uops import rom as rom_module
        fake = dict(rom_module.OPCODES)
        fake["vfrob"] = OpInfo(name="vfrob", category=Category.IALU,
                               macro="frobnicate")
        monkeypatch.setattr(rom_module, "OPCODES", fake)
        with pytest.raises(IsaError, match="vfrob -> frobnicate"):
            rom_module._check_rom_coverage()
