"""Micro-program container, builder, and μop validation."""

import pytest

from repro.errors import MicroProgramError
from repro.uops import ArithUop, ControlUop, CounterUop, MicroProgram, ProgramBuilder, RowRef
from repro.uops.uop import CounterSeg, DataIn, UopTuple


class TestUopValidation:
    def test_unknown_arith_kind(self):
        with pytest.raises(MicroProgramError):
            ArithUop("frobnicate")

    def test_blc_needs_two_operands(self):
        with pytest.raises(MicroProgramError):
            ArithUop("blc", a=RowRef("vs1"))

    def test_wb_needs_dest_and_src(self):
        with pytest.raises(MicroProgramError):
            ArithUop("wb", dest=RowRef("vd"))

    def test_rowref_slot_validated(self):
        with pytest.raises(MicroProgramError):
            RowRef("vt9")

    def test_data_in_kind_validated(self):
        with pytest.raises(MicroProgramError):
            DataIn("sevens")

    def test_counter_uop_validated(self):
        with pytest.raises(MicroProgramError):
            CounterUop("init", counter="seg0", value=0)
        with pytest.raises(MicroProgramError):
            CounterUop("decr")

    def test_control_uop_validated(self):
        with pytest.raises(MicroProgramError):
            ControlUop("bnz", counter="seg0")
        with pytest.raises(MicroProgramError):
            ControlUop("jmp")


class TestBuilder:
    def test_auto_ret_appended(self):
        b = ProgramBuilder("t")
        b.arith(ArithUop("nop"))
        program = b.build()
        assert program.tuples[-1].control.kind == "ret"

    def test_explicit_ret_not_duplicated(self):
        b = ProgramBuilder("t")
        b.ret()
        assert len(b.build()) == 1

    def test_duplicate_label_rejected(self):
        b = ProgramBuilder("t")
        b.label("x")
        with pytest.raises(MicroProgramError):
            b.label("x")

    def test_auto_labels_unique(self):
        b = ProgramBuilder("t")
        assert b.label() != b.label()

    def test_undefined_branch_target_rejected(self):
        b = ProgramBuilder("t")
        b.emit(control=ControlUop("jmp", target="nowhere"))
        with pytest.raises(MicroProgramError):
            b.build()

    def test_sweep_two_uop_body_is_two_cycles_per_iteration(self):
        b = ProgramBuilder("t")
        ref = RowRef("vs1", CounterSeg("seg0"))
        b.sweep("seg0", 4, [
            ArithUop("blc", a=ref, b=ref),
            ArithUop("wb", dest=RowRef("vd", CounterSeg("seg0")), src="and"),
        ])
        program = b.build()
        # init + 2 body tuples + ret
        assert len(program) == 4
        first_body = program.tuples[1]
        assert first_body.counter.kind == "decr"
        assert first_body.arith.kind == "blc"
        last_body = program.tuples[2]
        assert last_body.control.kind == "bnz"

    def test_sweep_single_uop_fuses_everything(self):
        b = ProgramBuilder("t")
        b.sweep("seg0", 4, [ArithUop("sclr")])
        program = b.build()
        assert len(program) == 3  # init + 1 fused tuple + ret

    def test_sweep_rejects_empty_body(self):
        with pytest.raises(MicroProgramError):
            ProgramBuilder("t").sweep("seg0", 4, [])

    def test_sweep_rejects_zero_count(self):
        with pytest.raises(MicroProgramError):
            ProgramBuilder("t").sweep("seg0", 0, [ArithUop("sclr")])


class TestMicroProgram:
    def test_label_bounds_checked(self):
        with pytest.raises(MicroProgramError):
            MicroProgram("t", [UopTuple()], {"x": 5})

    def test_target_lookup(self):
        program = MicroProgram("t", [UopTuple(), UopTuple()], {"top": 1})
        assert program.target("top") == 1
