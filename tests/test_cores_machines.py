"""Machine-model behaviour on synthetic traces (IO, O3, IV, DV)."""

import pytest

from repro.config import make_system
from repro.cores import DecoupledVectorMachine, IntegratedVectorMachine, ScalarCore
from repro.cores.result import SimResult, StallBreakdown
from repro.errors import SimulationError
from repro.isa import MemAccess, ScalarBlock, Trace, VectorInstr


def scalar_trace(n_instr=1000, accesses=()):
    trace = Trace("synthetic")
    trace.append(ScalarBlock(n_instr=n_instr, accesses=tuple(accesses)))
    return trace


def compute_trace(n=32, op="vadd", vl=64):
    trace = Trace("synthetic")
    trace.append(VectorInstr(op="vsetvl", vl=vl))
    for i in range(n):
        trace.append(VectorInstr(op=op, vl=vl, vd=(i % 8) + 1,
                                 vs1=((i + 1) % 8) + 10, vs2=((i + 2) % 8) + 20))
    return trace


class TestScalarCores:
    def test_io_pure_compute_is_cpi_bound(self):
        core = ScalarCore(make_system("IO"))
        result = core.run(scalar_trace(n_instr=5000))
        assert result.cycles == pytest.approx(5000.0)

    def test_io_blocks_on_misses(self):
        core = ScalarCore(make_system("IO"))
        pattern = MemAccess(base=0, stride=64, count=100)
        result = core.run(scalar_trace(n_instr=100, accesses=[pattern]))
        # Every line is a cold DRAM miss; each blocks ~100 cycles.
        assert result.cycles > 100 * 90

    def test_o3_overlaps_misses(self):
        io = ScalarCore(make_system("IO"))
        o3 = ScalarCore(make_system("O3"))
        pattern = MemAccess(base=0, stride=64, count=100)
        t = lambda: scalar_trace(n_instr=1000, accesses=[pattern])
        assert o3.run(t()).cycles < io.run(t()).cycles

    def test_scalar_core_rejects_vector_traces(self):
        core = ScalarCore(make_system("IO"))
        with pytest.raises(SimulationError):
            core.run(compute_trace())

    def test_result_metadata(self):
        core = ScalarCore(make_system("IO"))
        result = core.run(scalar_trace(n_instr=10))
        assert result.system == "IO"
        assert result.instructions == 10
        assert result.time_ns == pytest.approx(result.cycles * 1.025)


class TestIntegratedVector:
    def make(self):
        return IntegratedVectorMachine(make_system("O3+IV"))

    def test_requires_iv_config(self):
        with pytest.raises(SimulationError):
            IntegratedVectorMachine(make_system("O3"))

    def test_alu_throughput_two_per_cycle(self):
        result = self.make().run(compute_trace(n=64, vl=64))
        # 64 instrs x 16 μops at 0.5 cycles each = 512 issue cycles.
        assert result.cycles == pytest.approx(512, rel=0.1)

    def test_mul_is_iterative(self):
        adds = self.make().run(compute_trace(n=32, op="vadd")).cycles
        muls = self.make().run(compute_trace(n=32, op="vmul")).cycles
        assert muls > 4 * adds

    def test_strided_decomposed_per_element(self):
        unit = Trace("unit")
        strided = Trace("strided")
        unit.append(VectorInstr(op="vle32", vl=64, vd=1,
                                mem=MemAccess(base=0, stride=4, count=64)))
        strided.append(VectorInstr(op="vlse32", vl=64, vd=1,
                                   mem=MemAccess(base=0, stride=256, count=64)))
        assert self.make().run(strided).cycles > self.make().run(unit).cycles

    def test_dependency_chain_serialises(self):
        chain = Trace("chain")
        indep = Trace("indep")
        chain.append(VectorInstr(op="vsetvl", vl=64))
        indep.append(VectorInstr(op="vsetvl", vl=64))
        for i in range(16):
            chain.append(VectorInstr(op="vmul", vl=64, vd=1, vs1=1, vs2=2))
            indep.append(VectorInstr(op="vmul", vl=64, vd=(i % 8) + 1,
                                     vs1=10, vs2=20))
        assert self.make().run(chain).cycles >= self.make().run(indep).cycles


class TestDecoupledVector:
    def make(self):
        return DecoupledVectorMachine(make_system("O3+DV"))

    def test_requires_dv_config(self):
        with pytest.raises(SimulationError):
            DecoupledVectorMachine(make_system("O3+IV"))

    def test_lanes_bound_alu_occupancy(self):
        result = self.make().run(compute_trace(n=64, vl=64))
        # 64 ops x 64/8 lanes = 512 pipe-occupancy cycles, pipelined.
        assert 500 <= result.cycles <= 700

    def test_pipes_run_in_parallel(self):
        mixed = Trace("mixed")
        mixed.append(VectorInstr(op="vsetvl", vl=64))
        for i in range(32):
            mixed.append(VectorInstr(op="vadd", vl=64, vd=1 + i % 4, vs1=10, vs2=11))
            mixed.append(VectorInstr(op="vmul", vl=64, vd=5 + i % 4, vs1=12, vs2=13))
        only_mul = compute_trace(n=64, op="vmul")
        # Interleaved add/mul overlaps on two pipes; 64 muls serialise on one.
        assert self.make().run(mixed).cycles < self.make().run(only_mul).cycles

    def test_store_data_dependency_does_not_block_later_loads(self):
        """The store queue decouples store data from address generation."""
        trace = Trace("st-ld")
        trace.append(VectorInstr(op="vsetvl", vl=64))
        trace.append(VectorInstr(op="vle32", vl=64, vd=1,
                                 mem=MemAccess(base=0, stride=4, count=64)))
        trace.append(VectorInstr(op="vmul", vl=64, vd=2, vs1=1, vs2=1))
        trace.append(VectorInstr(op="vse32", vl=64, vd=2,
                                 mem=MemAccess(base=0x10000, stride=4, count=64,
                                               is_store=True)))
        load = VectorInstr(op="vle32", vl=64, vd=3,
                           mem=MemAccess(base=0x20000, stride=4, count=64))
        trace.append(load)
        machine = self.make()
        result = machine.run(trace)
        # The final load's data must be back well before the full chain
        # latency would imply (it never waited on the multiply).
        assert machine.reg_ready[3] < result.cycles

    def test_chaining_beats_full_serialisation(self):
        chain = Trace("chain")
        chain.append(VectorInstr(op="vsetvl", vl=64))
        for _ in range(16):
            chain.append(VectorInstr(op="vadd", vl=64, vd=1, vs1=1, vs2=2))
        result = self.make().run(chain)
        # Fully serialised would be 16 x (startup 2 + 8) = 160.
        assert result.cycles < 160


class TestStallBreakdown:
    def test_total_and_dict(self):
        b = StallBreakdown(busy=10, ld_mem_stall=5)
        assert b.total() == 15
        assert b.as_dict()["ld_mem_stall"] == 5

    def test_add_and_negative_guard(self):
        b = StallBreakdown()
        b.add("vru_stall", 3)
        assert b.vru_stall == 3
        with pytest.raises(ValueError):
            b.add("busy", -1)

    def test_normalised(self):
        b = StallBreakdown(busy=50, empty_stall=50)
        norm = b.normalised_to(200)
        assert norm["busy"] == 0.25
        with pytest.raises(ValueError):
            b.normalised_to(0)

    def test_speedup_over(self):
        a = SimResult(system="a", workload="w", cycles=100, cycle_time_ns=1.0)
        b = SimResult(system="b", workload="w", cycles=100, cycle_time_ns=2.0)
        assert a.speedup_over(b) == pytest.approx(2.0)
