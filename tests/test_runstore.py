"""Tests for the longitudinal run store: records, JSONL archive, index."""

import json

import pytest

from repro.errors import RunStoreError
from repro.obs.runstore import (
    RunRecord,
    RunStore,
    SCHEMA_VERSION,
    config_fingerprint,
    flatten_record,
    git_info,
    host_info,
    load_record_file,
    make_record,
)


def sample_record(kind="run", label="IO:vvadd"):
    record = make_record(kind, label=label, tiny=True, command="test")
    record.add_result("IO", "vvadd", cycles=5328.0, time_ns=5500.0,
                      instructions=42)
    record.add_result("O3+EVE-4", "vvadd", cycles=1234.0, time_ns=1000.0,
                      instructions=42)
    record.speedup_baseline = "IO"
    record.speedups = {"vvadd": {"O3+EVE-4": 4.32}}
    record.metrics = {"sim.cycles.value": 5328.0}
    record.self_profile = {"sim": {"seconds": 0.25}}
    return record


class TestEnvironmentCapture:
    def test_git_info_has_sha_and_dirty(self):
        info = git_info()
        assert set(info) == {"sha", "dirty"}
        assert isinstance(info["dirty"], bool)

    def test_git_info_survives_non_repo(self, tmp_path):
        info = git_info(cwd=str(tmp_path))
        assert info["sha"] == "unknown"

    def test_host_info_fields(self):
        info = host_info()
        assert "python" in info and "machine" in info

    def test_fingerprint_is_stable_and_sensitive(self):
        base = config_fingerprint()
        assert base == config_fingerprint()
        assert len(base) == 12
        assert config_fingerprint({"params": "tiny"}) != base


class TestRunRecord:
    def test_round_trip(self):
        record = sample_record()
        doc = json.loads(json.dumps(record.to_json_dict()))
        back = RunRecord.from_json_dict(doc)
        assert back == record

    def test_rejects_wrong_schema_version(self):
        doc = sample_record().to_json_dict()
        doc["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(RunStoreError, match="schema version"):
            RunRecord.from_json_dict(doc)

    def test_rejects_missing_kind(self):
        doc = sample_record().to_json_dict()
        del doc["kind"]
        with pytest.raises(RunStoreError, match="kind"):
            RunRecord.from_json_dict(doc)

    def test_rejects_unknown_fields(self):
        doc = sample_record().to_json_dict()
        doc["surprise"] = 1
        with pytest.raises(RunStoreError, match="surprise"):
            RunRecord.from_json_dict(doc)

    def test_rejects_non_object(self):
        with pytest.raises(RunStoreError):
            RunRecord.from_json_dict(["not", "a", "record"])

    def test_make_record_stamps_environment(self):
        record = make_record("bench", label="tiny")
        assert record.kind == "bench"
        assert record.created
        assert record.config_fingerprint
        assert record.git["sha"]


class TestFlatten:
    def test_key_families(self):
        record = sample_record()
        record.extra["bench_workloads"] = {
            "vvadd": {"seconds": 0.1, "sim_seconds": 0.05}}
        flat = flatten_record(record)
        assert flat["results.IO.vvadd.cycles"] == 5328.0
        assert flat["results.O3+EVE-4.vvadd.time_ns"] == 1000.0
        assert flat["results.IO.vvadd.instructions"] == 42.0
        assert flat["speedup.vvadd.O3+EVE-4"] == 4.32
        assert flat["metrics.sim.cycles.value"] == 5328.0
        assert flat["self_profile.sim.seconds"] == 0.25
        assert flat["bench.vvadd.seconds"] == 0.1

    def test_skips_non_numeric_values(self):
        record = sample_record()
        record.metrics["note"] = "text"
        flat = flatten_record(record)
        assert "metrics.note" not in flat

    def test_fault_campaign_keys(self):
        record = sample_record()
        record.extra["campaign"] = {
            "count": 4, "sdc_rate": 0.25, "detected_rate": 0.5,
            "counts": {"masked": 1, "sdc": 1, "note": "text"},
            "by_factor": {"8": {"injections": 2, "sdc": 1,
                                "sdc_rate": 0.5}},
            "by_model": {"bitflip": {"injections": 4, "sdc": 1,
                                     "sdc_rate": 0.25}},
        }
        flat = flatten_record(record)
        assert flat["faults.count"] == 4.0
        assert flat["faults.sdc_rate"] == 0.25
        assert flat["faults.counts.masked"] == 1.0
        assert flat["faults.by_factor.8.sdc_rate"] == 0.5
        assert flat["faults.by_model.bitflip.injections"] == 4.0
        assert "faults.counts.note" not in flat


class TestRunStore:
    def test_append_assigns_sequential_ids(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        first = store.append(sample_record())
        second = store.append(sample_record(kind="compare", label="vvadd"))
        assert first == "000001-run"
        assert second == "000002-compare"

    def test_load_round_trips(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        record = sample_record()
        record_id = store.append(record)
        assert store.load(record_id) == record

    def test_load_unknown_id_raises(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(sample_record())
        with pytest.raises(RunStoreError, match="no record"):
            store.load("999999-run")

    def test_latest_and_back(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(sample_record(label="first"))
        store.append(sample_record(label="second"))
        assert store.latest().label == "second"
        assert store.latest(back=1).label == "first"
        with pytest.raises(RunStoreError, match="cannot go back"):
            store.latest(back=2)

    def test_latest_filters_by_kind(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(sample_record(kind="run"))
        store.append(sample_record(kind="bench", label="tiny"))
        assert store.latest(kind="run").kind == "run"

    def test_resolve_refs(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(sample_record(label="first"))
        store.append(sample_record(label="second"))
        assert store.resolve("latest").label == "second"
        assert store.resolve("latest~1").label == "first"
        assert store.resolve("000001-run").label == "first"

    def test_resolve_file_path(self, tmp_path):
        path = tmp_path / "golden.json"
        record = sample_record(label="golden")
        path.write_text(json.dumps(record.to_json_dict()))
        store = RunStore(str(tmp_path / "runs"))
        assert store.resolve(str(path)).label == "golden"

    def test_empty_store(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        assert list(store.records()) == []
        assert store.history() == []
        with pytest.raises(RunStoreError):
            store.latest()

    def test_history_newest_first_with_limit_and_kind(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(sample_record(kind="run", label="a"))
        store.append(sample_record(kind="bench", label="b"))
        store.append(sample_record(kind="run", label="c"))
        rows = store.history()
        assert [r["label"] for r in rows] == ["c", "b", "a"]
        assert [r["label"] for r in store.history(limit=1)] == ["c"]
        assert [r["label"] for r in store.history(kind="run")] == ["c", "a"]

    def test_index_is_rebuildable_cache(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(sample_record(label="a"))
        store.append(sample_record(label="b"))
        import os
        os.remove(store.index_path)
        # The JSONL is the source of truth: history and the id sequence
        # survive losing the index.
        assert [r["label"] for r in store.history()] == ["b", "a"]
        assert store.append(sample_record(label="c")) == "000003-run"

    def test_corrupt_jsonl_raises_with_line_number(self, tmp_path):
        store = RunStore(str(tmp_path / "runs"))
        store.append(sample_record())
        with open(store.runs_path, "a") as handle:
            handle.write("{not json\n")
        with pytest.raises(RunStoreError, match=":2"):
            list(store.records())

    def test_load_record_file_errors(self, tmp_path):
        with pytest.raises(RunStoreError, match="cannot read"):
            load_record_file(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("nope")
        with pytest.raises(RunStoreError, match="not valid JSON"):
            load_record_file(str(bad))
