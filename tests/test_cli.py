"""Command-line interface tests."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "CRAY-1", "vvadd"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "IO", "linpack"])


class TestCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "O3+EVE-8" in out and "1024" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("vvadd", "sw", "k-means"):
            assert name in out

    def test_uprog(self, capsys):
        assert main(["uprog", "add", "--factor", "4"]) == 0
        out = capsys.readouterr().out
        assert "blc vs1[seg0], vs2[seg0]" in out
        assert "bnz seg0" in out

    def test_uprog_with_op(self, capsys):
        assert main(["uprog", "compare", "--op", "eq"]) == 0
        assert "mask_groups" in capsys.readouterr().out

    def test_figure_fig2(self, capsys):
        assert main(["figure", "fig2"]) == 0
        assert "factor" in capsys.readouterr().out

    def test_figure_area(self, capsys):
        assert main(["figure", "area"]) == 0
        assert "O3+DV" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_run_small(self, capsys, monkeypatch):
        # Patch the workload registry entry to its tiny size for speed.
        from repro.workloads import REGISTRY
        monkeypatch.setattr(REGISTRY["vvadd"], "params",
                            dict(REGISTRY["vvadd"].tiny_params))
        assert main(["run", "O3+EVE-8", "vvadd"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "busy" in out


class TestLintCommand:
    def test_rom_sweep_is_clean(self, capsys):
        assert main(["lint", "--factor", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out and "program(s) linted" in out

    def test_macro_filter(self, capsys):
        assert main(["lint", "--factor", "8", "--macro", "div"]) == 0
        assert "4 program(s) linted" in capsys.readouterr().out

    def test_unknown_macro_is_usage_error(self, capsys):
        assert main(["lint", "--macro", "frobnicate"]) == 2
        assert "frobnicate" in capsys.readouterr().err

    def test_asm_listing_with_errors_exits_nonzero(self, capsys, tmp_path):
        listing = tmp_path / "bad.uasm"
        listing.write_text("loop:\n    decr seg0 | nop | bnz seg0, loop\n"
                           "    ret\n")
        assert main(["lint", "--asm", str(listing), "--factor", "4"]) == 1
        out = capsys.readouterr().out
        assert "counter-uninit" in out and "2 error(s)" in out

    def test_asm_listing_clean(self, capsys, tmp_path):
        listing = tmp_path / "ok.uasm"
        listing.write_text("    init seg0, 4\nloop:\n"
                           "    decr seg0 | sclr | bnz seg0, loop\n    ret\n")
        assert main(["lint", "--asm", str(listing)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_asm_syntax_error_is_usage_error(self, capsys, tmp_path):
        listing = tmp_path / "syntax.uasm"
        listing.write_text("- | frob vd[0] | -\n")
        assert main(["lint", "--asm", str(listing)]) == 2
        assert "syntax.uasm" in capsys.readouterr().err

    def test_missing_asm_file_is_usage_error(self, capsys, tmp_path):
        assert main(["lint", "--asm", str(tmp_path / "nope.uasm")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_json_findings_schema(self, capsys):
        import json
        assert main(["lint", "--factor", "4", "--macro", "div",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"programs", "errors", "warnings", "findings"}
        assert payload["programs"] == 4
        assert payload["errors"] == 0 and payload["findings"] == []


class TestCheckCommand:
    def test_all_workloads_are_clean(self, capsys):
        assert main(["check", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s), 0 warning(s)" in out
        assert "7 trace(s) checked" in out
        assert "vvadd" in out and "dep_edges" in out

    def test_json_shares_the_lint_schema(self, capsys):
        import json
        assert main(["check", "--workload", "vvadd", "--tiny",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {"programs", "errors", "warnings",
                "findings"} <= set(payload)
        assert payload["programs"] == 1
        detail = payload["programs_detail"]["vvadd"]
        assert detail["errors"] == 0 and detail["dep_depth"] > 0

    def test_json_out_writes_the_report(self, capsys, tmp_path):
        import json
        out_file = tmp_path / "findings.json"
        assert main(["check", "--workload", "vvadd", "--tiny",
                     "--json-out", str(out_file)]) == 0
        assert json.loads(out_file.read_text())["errors"] == 0
        # human table still printed alongside --json-out
        assert "trace(s) checked" in capsys.readouterr().out

    def test_corpus_mode_flags_expected_dirty_cases(self, capsys):
        corpus = os.path.join(os.path.dirname(__file__), "corpus")
        assert main(["check", "--corpus", corpus]) == 1
        out = capsys.readouterr().out
        assert "dead-write" in out
        assert "9 trace(s) checked" in out

    def test_empty_corpus_is_a_diagnostic(self, capsys, tmp_path):
        assert main(["check", "--corpus", str(tmp_path)]) == 2
        assert "no case JSONs" in capsys.readouterr().err


class TestObservabilityCommands:
    def test_case_insensitive_system_name(self):
        args = build_parser().parse_args(["run", "o3+eve-4", "vvadd"])
        assert args.system == "O3+EVE-4"

    def test_case_insensitive_workload_name(self):
        args = build_parser().parse_args(["run", "IO", "VVADD"])
        assert args.workload == "vvadd"

    def test_trace_writes_valid_chrome_json(self, capsys, tmp_path):
        import json
        out_file = tmp_path / "trace.json"
        assert main(["trace", "o3+eve-4", "vvadd", "--tiny",
                     "-o", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "tracks" in out
        doc = json.loads(out_file.read_text())
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "M" and e["name"] == "thread_name"}
        assert {"VSU", "VMU", "DTU", "VRU", "DRAM"} <= names

    def test_stats_table(self, capsys):
        assert main(["stats", "O3+EVE-4", "vvadd", "--tiny"]) == 0
        out = capsys.readouterr().out
        assert "eve.vmu.busy_cycles" in out
        assert "host phase" in out

    def test_stats_json(self, capsys):
        import json
        assert main(["stats", "O3+EVE-4", "vvadd", "--tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["system"] == "O3+EVE-4"
        assert "metrics" in payload and "self_profile" in payload
        assert payload["trace_stats"]["vector_instrs"] > 0
        assert payload["analysis"]["dead_writes"] == 0
        assert payload["analysis"]["live_high_water"] > 0

    def test_stats_scalar_system_has_no_analysis(self, capsys):
        import json
        assert main(["stats", "IO", "vvadd", "--tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace_stats"]["vector_instrs"] == 0
        assert "analysis" not in payload

    def test_stats_csv(self, capsys):
        assert main(["stats", "O3+EVE-4", "vvadd", "--tiny", "--csv"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "metric,value"
        assert any(line.startswith("sim.cycles") for line in lines)

    def test_compare_json(self, capsys):
        import json
        assert main(["compare", "vvadd", "--tiny", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["baseline"] == "IO"
        assert "O3+EVE-4" in payload["systems"]
        entry = payload["systems"]["O3+EVE-4"]
        assert entry["speedup_vs_IO"] > 1.0
        assert "breakdown" in entry

    def test_run_metrics_out(self, capsys, tmp_path):
        import json
        out_file = tmp_path / "metrics.json"
        assert main(["run", "o3+eve-4", "vvadd", "--tiny",
                     "--metrics-out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["system"] == "O3+EVE-4"
        assert "sim.cycles" in payload["metrics"]


class TestErrorHandling:
    """``main`` turns library errors into diagnostics, not tracebacks."""

    def test_repro_error_exits_2(self, capsys, monkeypatch):
        import repro.cli as cli
        from repro.errors import ExperimentError

        def boom(_args):
            raise ExperimentError("empty selection")
        monkeypatch.setitem(cli._COMMANDS, "systems", boom)
        assert main(["systems"]) == 2
        err = capsys.readouterr().err
        assert "repro systems: empty selection" in err
        assert "Traceback" not in err

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli

        def interrupt(_args):
            raise KeyboardInterrupt
        monkeypatch.setitem(cli._COMMANDS, "systems", interrupt)
        assert main(["systems"]) == 130
        assert "interrupted" in capsys.readouterr().err

    def test_bad_replay_file_is_a_diagnostic(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["fuzz", "--replay", str(missing)]) == 2
        assert "cannot read case file" in capsys.readouterr().err


class TestFuzzCommand:
    def test_smoke_sweep_is_clean(self, capsys):
        assert main(["fuzz", "--seeds", "2", "--n-widths", "8", "32",
                     "--ops", "6"]) == 0
        assert "2 seed(s) x 2 width(s): OK" in capsys.readouterr().out

    def test_replay_corpus_case(self, capsys):
        import os
        path = os.path.join(os.path.dirname(__file__), "corpus",
                            "sub_alias.json")
        assert main(["fuzz", "--replay", path]) == 0
        assert "OK" in capsys.readouterr().out

    def test_json_report(self, capsys):
        import json
        assert main(["fuzz", "--seeds", "1", "--n-widths", "8",
                     "--ops", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mismatches"] == []
        assert payload["widths"] == [8]


class TestFaultsCommand:
    def test_campaign_smoke(self, capsys):
        assert main(["faults", "--count", "2", "--n-widths", "8"]) == 0
        out = capsys.readouterr().out
        assert "campaign  : 2 injection(s)" in out
        assert "outcome" in out and "sdc_rate" in out

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "--model", "gamma"])

    def test_json_out_and_record(self, capsys, tmp_path):
        import json
        report_file = tmp_path / "campaign.json"
        store = tmp_path / "runs"
        assert main(["faults", "--count", "2", "--n-widths", "8",
                     "--model", "bitflip", "--json-out", str(report_file),
                     "--record", "--store", str(store)]) == 0
        payload = json.loads(report_file.read_text())
        assert payload["count"] == 2
        assert len(payload["outcomes"]) == 2
        assert "recorded" in capsys.readouterr().err
        from repro.obs.runstore import RunStore
        record = RunStore(str(store)).resolve("latest")
        campaign = record.extra["campaign"]
        assert campaign["count"] == 2
        assert "outcomes" not in campaign  # records stay compact
        assert record.metrics["faults.injections"] == 2


class TestSeedOption:
    def test_run_accepts_seed(self, capsys):
        assert main(["run", "IO", "vvadd", "--tiny", "--seed", "7"]) == 0
        assert "cycles" in capsys.readouterr().out

    def test_seed_changes_the_record_fingerprint(self, tmp_path):
        from repro.obs.runstore import RunStore
        store = str(tmp_path / "runs")
        assert main(["run", "IO", "vvadd", "--tiny", "--record",
                     "--store", store]) == 0
        assert main(["run", "IO", "vvadd", "--tiny", "--seed", "7",
                     "--record", "--store", store]) == 0
        records = RunStore(store)
        default = records.resolve("latest~1")
        seeded = records.resolve("latest")
        assert default.config_fingerprint != seeded.config_fingerprint


class TestTelemetryOptions:
    SWEEP = ["sweep", "--tiny", "--systems", "IO", "O3+EVE-4",
             "--workloads", "vvadd", "--jobs", "2", "--no-cache", "--json"]

    def test_sweep_json_identical_with_and_without_events(self, capsys,
                                                          tmp_path):
        log = str(tmp_path / "events.jsonl")
        store = ["--store", str(tmp_path / "runs")]
        assert main(self.SWEEP + store) == 0
        bare = capsys.readouterr().out
        assert main(self.SWEEP + store + ["--events", log]) == 0
        observed = capsys.readouterr().out
        assert observed == bare  # byte-identical results, telemetry or not
        import json
        payload = json.loads(bare)
        assert payload["cache"] == {"hits": 0, "misses": 2, "corrupt": 0}

    def test_sweep_events_log_passes_the_conservation_gate(self, capsys,
                                                           tmp_path):
        log = str(tmp_path / "events.jsonl")
        assert main(self.SWEEP + ["--store", str(tmp_path / "runs"),
                                  "--events", log]) == 0
        err = capsys.readouterr().err
        assert "events: " in err and "campaign" in err
        assert main(["events", "--log", log, "--check"]) == 0
        out = capsys.readouterr().out
        assert "sweep" in out and "ok" in out

    def test_fuzz_events_conserved(self, capsys, tmp_path):
        log = str(tmp_path / "events.jsonl")
        assert main(["fuzz", "--seeds", "2", "--n-widths", "8", "--ops", "6",
                     "--events", log]) == 0
        capsys.readouterr()
        assert main(["events", "--log", log, "--check", "--json"]) == 0
        import json
        payload = json.loads(capsys.readouterr().out)
        assert payload["conserved"] is True
        assert payload["campaigns"][0]["kind"] == "fuzz"
        assert payload["campaigns"][0]["units"] == 2

    def test_faults_events_conserved(self, capsys, tmp_path):
        log = str(tmp_path / "events.jsonl")
        assert main(["faults", "--count", "2", "--n-widths", "8",
                     "--jobs", "2", "--events", log]) == 0
        capsys.readouterr()
        assert main(["events", "--log", log, "--check"]) == 0

    def test_quiet_and_progress_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--progress", "--quiet"])


class TestEventsCommand:
    def test_missing_log_is_a_diagnostic(self, capsys, tmp_path):
        assert main(["events", "--log", str(tmp_path / "nope.jsonl")]) == 2
        assert "no event log" in capsys.readouterr().err

    def test_check_fails_on_violation(self, capsys, tmp_path):
        from repro.obs.events import Event, EventLog
        log = str(tmp_path / "events.jsonl")
        EventLog(log).append([Event(event="queued", unit="u", t=0.0,
                                    campaign="c", seq=0)])
        assert main(["events", "--log", log, "--check"]) == 1
        captured = capsys.readouterr()
        assert "conservation" in captured.err
        assert main(["events", "--log", log]) == 0  # report-only mode

    def test_tail_limits_the_listing(self, capsys, tmp_path):
        from repro.obs.events import Event, EventLog
        log = str(tmp_path / "events.jsonl")
        EventLog(log).append(
            [Event(event="queued", unit=f"u{i}", t=0.0, campaign="c", seq=i)
             for i in range(5)]
            + [Event(event="finished", unit=f"u{i}", t=1.0, campaign="c",
                     seq=5 + i) for i in range(5)])
        assert main(["events", "--log", log, "--tail", "3"]) == 0
        out = capsys.readouterr().out
        assert "showing last 3 of 10" in out


class TestReportCommand:
    def test_report_is_written_and_self_contained(self, capsys, tmp_path):
        store = str(tmp_path / "runs")
        log = str(tmp_path / "events.jsonl")
        assert main(["run", "IO", "vvadd", "--tiny", "--record",
                     "--store", store]) == 0
        assert main(["sweep", "--tiny", "--systems", "IO", "O3+EVE-4",
                     "--workloads", "vvadd", "--jobs", "2", "--no-cache",
                     "--store", store, "--events", log]) == 0
        out_file = str(tmp_path / "report.html")
        assert main(["report", "-o", out_file, "--store", store,
                     "--log", log]) == 0
        assert "self-contained" in capsys.readouterr().out
        html = open(out_file).read()
        assert html.startswith("<!DOCTYPE html>")
        for forbidden in ("http://", "https://", "<script"):
            assert forbidden not in html

    def test_report_without_event_log(self, capsys, tmp_path):
        out_file = str(tmp_path / "report.html")
        assert main(["report", "-o", out_file,
                     "--store", str(tmp_path / "runs"),
                     "--log", str(tmp_path / "absent.jsonl")]) == 0
        assert os.path.exists(out_file)


class TestHistoryFilters:
    def _seed_store(self, store):
        assert main(["run", "IO", "vvadd", "--tiny", "--record",
                     "--store", store]) == 0
        assert main(["run", "O3+EVE-4", "pathfinder", "--tiny", "--record",
                     "--store", store]) == 0

    def test_workload_filter(self, capsys, tmp_path):
        store = str(tmp_path / "runs")
        self._seed_store(store)
        capsys.readouterr()
        assert main(["history", "--store", store,
                     "--workload", "vvadd"]) == 0
        out = capsys.readouterr().out
        assert "000001-run" in out and "000002-run" not in out

    def test_system_filter_with_limit(self, capsys, tmp_path):
        store = str(tmp_path / "runs")
        self._seed_store(store)
        capsys.readouterr()
        assert main(["history", "--store", store, "--system", "O3+EVE-4",
                     "--limit", "1"]) == 0
        out = capsys.readouterr().out
        assert "000002-run" in out and "000001-run" not in out

    def test_empty_filter_mentions_filters(self, capsys, tmp_path):
        store = str(tmp_path / "runs")
        self._seed_store(store)
        capsys.readouterr()
        assert main(["history", "--store", store, "--workload", "sw"]) == 0
        assert "for these filters" in capsys.readouterr().out

    def test_rejects_unknown_filter_names(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["history", "--workload", "linpack"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["history", "--system", "CRAY-1"])
