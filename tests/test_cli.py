"""Command-line interface tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "CRAY-1", "vvadd"])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "IO", "linpack"])


class TestCommands:
    def test_systems(self, capsys):
        assert main(["systems"]) == 0
        out = capsys.readouterr().out
        assert "O3+EVE-8" in out and "1024" in out

    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("vvadd", "sw", "k-means"):
            assert name in out

    def test_uprog(self, capsys):
        assert main(["uprog", "add", "--factor", "4"]) == 0
        out = capsys.readouterr().out
        assert "blc vs1[seg0], vs2[seg0]" in out
        assert "bnz seg0" in out

    def test_uprog_with_op(self, capsys):
        assert main(["uprog", "compare", "--op", "eq"]) == 0
        assert "mask_groups" in capsys.readouterr().out

    def test_figure_fig2(self, capsys):
        assert main(["figure", "fig2"]) == 0
        assert "factor" in capsys.readouterr().out

    def test_figure_area(self, capsys):
        assert main(["figure", "area"]) == 0
        assert "O3+DV" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2

    def test_run_small(self, capsys, monkeypatch):
        # Patch the workload registry entry to its tiny size for speed.
        from repro.workloads import REGISTRY
        monkeypatch.setattr(REGISTRY["vvadd"], "params",
                            dict(REGISTRY["vvadd"].tiny_params))
        assert main(["run", "O3+EVE-8", "vvadd"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out and "busy" in out
