"""Micro-program assembler / disassembler tests."""

import numpy as np
import pytest

from repro.errors import MicroProgramError
from repro.sram import EveSram, RegisterLayout
from repro.uops import Binding, MacroOpRom, MicroEngine, rom_specs
from repro.uops.assembler import assemble, disassemble
from repro.uops.uop import CounterSeg

from tests.conftest import wrap32

#: Figure 4(a)'s integer addition, written in the listing syntax
#: (factor 4 -> 8 segments).
FIG4A_ADD = """
; vd = vs1 + vs2, carry rippling through the spare flip-flop
    - | wb carry, data_in <zeros | -
    init seg0, 8
loop:
    decr seg0 | blc vs1[seg0], vs2[seg0] | -
    -         | wb vd[seg0], add         | bnz seg0, loop
    ret
"""


class TestAssemble:
    def test_fig4a_structure(self):
        program = assemble(FIG4A_ADD, name="add-asm")
        assert len(program) == 5
        assert program.labels == {"loop": 2}
        assert program.tuples[2].counter.kind == "decr"
        assert program.tuples[3].control.kind == "bnz"

    def test_fig4a_runs_bit_exact(self, rng):
        layout = RegisterLayout(rows=64, cols=32, element_bits=32, factor=4,
                                num_vregs=8)
        sram = EveSram(64, 32, 4)
        n = layout.elements_per_array
        a = rng.integers(-2 ** 31, 2 ** 31, n)
        b = rng.integers(-2 ** 31, 2 ** 31, n)
        sram.write_vreg(layout, 1, a)
        sram.write_vreg(layout, 2, b)
        program = assemble(FIG4A_ADD)
        cycles = MicroEngine().run(program, sram, Binding(
            layout=layout, regs={"vs1": 1, "vs2": 2, "vd": 3}))
        assert np.array_equal(sram.read_vreg(layout, 3), wrap32(a + b))
        # Identical cycle count to the ROM's generated program.
        assert cycles == MacroOpRom(4).cycles("add")

    def test_segment_spec_forms(self):
        program = assemble("""
            - | blc vs1[3], vs2[seg0]  | -
            - | wb vd[seg0+2], and     | -
            - | wb vd[7-seg1], xor     | -
        """)
        a = program.tuples[0].arith
        assert a.a.seg == 3
        assert a.b.seg == CounterSeg("seg0")
        assert program.tuples[1].arith.dest.seg == CounterSeg("seg0", base=2)
        assert program.tuples[2].arith.dest.seg == CounterSeg("seg1", base=7,
                                                              step=-1)

    def test_masked_and_data_in(self):
        program = assemble("- | wr vd[0] masked <lsb | -")
        uop = program.tuples[0].arith
        assert uop.masked
        assert uop.data_in.kind == "lsb_ones"

    def test_scalar_data_in(self):
        program = assemble("- | wr vd[seg0] <scalar[seg0] | -")
        assert program.tuples[0].arith.data_in.kind == "scalar_seg"

    def test_latch_destinations(self):
        program = assemble("""
            - | wb mask_groups, and | -
            - | wb xreg, or         | -
            - | wb link, and        | -
        """)
        assert program.tuples[0].arith.dest == "mask_groups"
        assert program.tuples[2].arith.dest == "link"

    def test_mask_carry_flags(self):
        program = assemble("- | mask_carry inv lsb | -")
        uop = program.tuples[0].arith
        assert uop.invert and uop.lsb_only

    def test_shift_uncond(self):
        program = assemble("- | lshift uncond | -")
        assert not program.tuples[0].arith.conditional

    def test_single_slot_shorthand(self):
        program = assemble("""
            init seg0, 4
            sclr
            ret
        """)
        assert program.tuples[0].counter.kind == "init"
        assert program.tuples[1].arith.kind == "sclr"
        assert program.tuples[2].control.kind == "ret"

    def test_errors(self):
        with pytest.raises(MicroProgramError):
            assemble("- | frob vd[0] | -")
        with pytest.raises(MicroProgramError):
            assemble("- | blc vs1[x!], vs2[0] | -")
        with pytest.raises(MicroProgramError):
            assemble("- | nop | bnz seg0, nowhere")
        with pytest.raises(MicroProgramError):
            assemble("init seg99, 4 | nop | -")
        with pytest.raises(MicroProgramError):
            assemble("x:\nx:\nret")


class TestRoundTrip:
    @pytest.mark.parametrize("macro,params", [
        ("add", {}), ("sub", {}), ("mul", {}),
        ("compare", {"op": "lt"}), ("merge", {}),
        ("shift_scalar", {"op": "sll", "amount": 5}),
        ("div", {"op": "divu"}),
        ("shift_variable", {"op": "sra"}),
    ])
    @pytest.mark.parametrize("factor", [1, 8])
    def test_disassemble_reassemble(self, macro, params, factor):
        """Every ROM program survives a disassemble/assemble round trip."""
        rom = MacroOpRom(factor)
        original = rom.program(macro, **params)
        text = disassemble(original)
        rebuilt = assemble(text, name=original.name)
        assert len(rebuilt) == len(original)
        assert rebuilt.labels == original.labels
        for a, b in zip(original.tuples, rebuilt.tuples):
            assert a == b

    @pytest.mark.parametrize("factor", [1, 2, 4, 8, 16, 32])
    def test_every_rom_spec_round_trips(self, factor):
        """Property: assemble(disassemble(p)) == p for the *entire* ROM.

        Sweeps every (macro, params) spec the ROM serves at every
        parallelization factor — the text form is a faithful, loss-free
        serialisation of the binary micro-program.
        """
        rom = MacroOpRom(factor)
        for macro, params in rom_specs():
            original = rom.program(macro, **params)
            rebuilt = assemble(disassemble(original), name=original.name)
            assert rebuilt.labels == original.labels, original.name
            assert rebuilt.tuples == original.tuples, original.name

    def test_round_trip_preserves_cycles(self):
        rom = MacroOpRom(8)
        original = rom.program("mul")
        rebuilt = assemble(disassemble(original))
        assert MicroEngine().run(rebuilt) == MicroEngine().run(original)


class TestBndControlFlow:
    def test_bnd_branches_on_binary_decades(self):
        """The bnd μop (Table II) redirects at power-of-two counter values
        and consumes the decade flag when taken."""
        from repro.uops import MicroEngine, assemble
        program = assemble("""
            init seg0, 8
        loop:
            decr seg0 | sclr | bnd seg0, hit
            - | nop | jmp next
        hit:
            - | mask_shft | -
        next:
            - | nop | bnz seg0, loop
            ret
        """)
        cycles = MicroEngine().run(program)
        # 8 iterations x 3 tuples + one extra 'hit' tuple per decade value
        # reached (7, 6, 5, 4, 3, 2, 1 -> decades at 4, 2, 1, plus the
        # wrap back to 8) + init + ret.
        assert cycles == 26
