"""EVE peripheral circuit stacks (Section III, Figure 3c-e).

Each class models one layer of the stack bit-exactly.  All layers operate on
every column group of the array simultaneously (SIMD across in-situ ALUs);
state arrays are shaped ``(groups, n)`` with bit ``j`` of a segment in
column ``j`` of its group (LSB at ``j = 0``).

Layer inventory per design (Figure 3):

* EVE-1 (bit-serial): bus logic, XOR/XNOR logic, add logic, XRegister
  (stores the serial carry), mask logic.
* EVE-32 (bit-parallel): the above plus a constant shifter; XRegister is a
  shift-right register spanning the 32 columns.
* EVE-n (bit-hybrid): all seven layers; the inter-segment carry lives in a
  spare-shifter flip-flop so the XRegister stays free for shift duty.
"""

from __future__ import annotations

import numpy as np

from ..errors import SramError
from .array import BitLineResult


def group_view(bits: np.ndarray, factor: int) -> np.ndarray:
    """Reshape a (cols,) bit vector into (groups, factor)."""
    if bits.size % factor:
        raise SramError(f"{bits.size} columns not divisible by factor {factor}")
    return bits.reshape(-1, factor)


class XorLayer:
    """Computes xor / xnor of the two operands from nand and or.

    ``xor = nand AND or``; ``xnor = NOT xor``.  Purely combinational.
    """

    @staticmethod
    def compute(blr: BitLineResult) -> tuple[np.ndarray, np.ndarray]:
        xor = blr.nand & blr.or_
        return xor, 1 - xor


class AddLogic:
    """An n-bit Manchester carry chain per column group.

    generate = ``a AND b`` (the bit-line ``and``), propagate = ``a XOR b``.
    The carry-in of each group comes from the carry store (XRegister in
    bit-serial mode, a spare-shifter flip-flop otherwise); the carry-out is
    latched back there when an ``add`` write-back commits.
    """

    def __init__(self, groups: int, factor: int) -> None:
        self.groups = groups
        self.factor = factor

    def compute(self, generate: np.ndarray, propagate: np.ndarray,
                carry_in: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return (sum bits shaped (groups, factor), carry-out per group)."""
        g = group_view(generate, self.factor)
        p = group_view(propagate, self.factor)
        carry = np.asarray(carry_in, dtype=np.uint8)
        if carry.shape != (self.groups,):
            raise SramError("carry-in shape mismatch")
        sums = np.empty_like(g)
        c = carry.copy()
        for j in range(self.factor):  # ripple through the chain, LSB first
            sums[:, j] = p[:, j] ^ c
            c = g[:, j] | (p[:, j] & c)
        return sums, c


class XRegister:
    """Per-column flip-flops; a shift-right register within each group.

    In bit-serial mode the single flip-flop per (one-column) group stores
    the carry.  In bit-parallel / bit-hybrid mode the register is loaded
    with a segment and shifted right bit by bit, exposing successive bits of
    a multiplier / shift-amount at the LSB column (Section III-B/C).
    """

    def __init__(self, groups: int, factor: int) -> None:
        self.groups = groups
        self.factor = factor
        self.bits = np.zeros((groups, factor), dtype=np.uint8)

    def load(self, bits: np.ndarray) -> None:
        self.bits = group_view(np.asarray(bits, dtype=np.uint8).copy(), self.factor)

    def shift_right(self) -> np.ndarray:
        """Shift right by one; returns the bits shifted out of the LSB."""
        out = self.bits[:, 0].copy()
        self.bits[:, :-1] = self.bits[:, 1:]
        self.bits[:, -1] = 0
        return out

    def shift_left(self) -> np.ndarray:
        """Shift left by one; returns the bits shifted out of the MSB.

        The direction is a mux on the same flip-flop chain; the left
        direction enables MSB-first walks (in-place multiplication) without
        scratch rows.
        """
        out = self.bits[:, -1].copy()
        self.bits[:, 1:] = self.bits[:, :-1]
        self.bits[:, 0] = 0
        return out

    @property
    def lsb(self) -> np.ndarray:
        return self.bits[:, 0]

    @property
    def msb(self) -> np.ndarray:
        return self.bits[:, -1]


class MaskLogic:
    """One latch per column storing the write-back predicate.

    The latch can be loaded from a value computed by the stack, from the
    data-in port, or (bit-hybrid / bit-parallel) from the LSB or MSB column
    of the XRegister, replicated across the group (Section III-C).
    """

    def __init__(self, cols: int, factor: int) -> None:
        self.cols = cols
        self.factor = factor
        self.bits = np.ones(cols, dtype=np.uint8)  # reset = all columns active

    def load_columns(self, bits: np.ndarray) -> None:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.cols,):
            raise SramError("mask width mismatch")
        self.bits = bits.copy()

    def load_groups(self, group_bits: np.ndarray) -> None:
        """Replicate one bit per group across its columns."""
        group_bits = np.asarray(group_bits, dtype=np.uint8)
        if group_bits.size * self.factor != self.cols:
            raise SramError("group-mask width mismatch")
        self.bits = np.repeat(group_bits, self.factor)

    def set_all(self) -> None:
        self.bits[:] = 1

    @property
    def group_bits(self) -> np.ndarray:
        """The (identical) mask bit of each group's LSB column."""
        return group_view(self.bits, self.factor)[:, 0]


class ConstantShifter:
    """Per-group register supporting conditional one-bit shifts/rotates.

    Loaded from a row read; shifted conditionally on the mask latch; its
    contents can be written back through the bus logic (``shift`` source).
    Variable shifts are built by binary decomposition of the shift amount
    (Section III-B).
    """

    def __init__(self, groups: int, factor: int) -> None:
        self.groups = groups
        self.factor = factor
        self.bits = np.zeros((groups, factor), dtype=np.uint8)

    def load(self, bits: np.ndarray) -> None:
        self.bits = group_view(np.asarray(bits, dtype=np.uint8).copy(), self.factor)

    def flat(self) -> np.ndarray:
        return self.bits.reshape(-1)

    def shift_left(self, condition: np.ndarray, bit_in: np.ndarray) -> np.ndarray:
        """Conditionally shift left; returns the old MSB of every group.

        Groups where ``condition`` is 0 are untouched (and report their
        current MSB unchanged into the return value, which callers must
        gate on the same condition).
        """
        out = self.bits[:, -1].copy()
        shifted = np.empty_like(self.bits)
        shifted[:, 1:] = self.bits[:, :-1]
        shifted[:, 0] = np.asarray(bit_in, dtype=np.uint8)
        cond = np.asarray(condition, dtype=bool)
        self.bits[cond] = shifted[cond]
        return out

    def shift_right(self, condition: np.ndarray, bit_in: np.ndarray) -> np.ndarray:
        """Conditionally shift right; returns the old LSB of every group."""
        out = self.bits[:, 0].copy()
        shifted = np.empty_like(self.bits)
        shifted[:, :-1] = self.bits[:, 1:]
        shifted[:, -1] = np.asarray(bit_in, dtype=np.uint8)
        cond = np.asarray(condition, dtype=bool)
        self.bits[cond] = shifted[cond]
        return out

    def rotate_left(self, condition: np.ndarray) -> None:
        self.shift_left(condition, self.bits[:, -1].copy())

    def rotate_right(self, condition: np.ndarray) -> None:
        self.shift_right(condition, self.bits[:, 0].copy())


class SpareShifter:
    """Bit-hybrid-only layer: per-group flip-flops shifting opposite to the
    constant shifter, carrying bits across segment boundaries.

    One of its flip-flops doubles as the inter-segment carry store for the
    add logic (Section III-C).
    """

    def __init__(self, groups: int, factor: int) -> None:
        self.groups = groups
        self.factor = factor
        #: Bit ferried between segments during multi-segment shifts.
        self.link = np.zeros(groups, dtype=np.uint8)
        #: The "unused flip-flop" holding the inter-segment add carry.
        self.carry = np.zeros(groups, dtype=np.uint8)

    def exchange(self, outgoing: np.ndarray, condition: np.ndarray) -> np.ndarray:
        """Swap the ferried bit with a segment's outgoing bit.

        Returns the previously stored bit (to be inserted into the constant
        shifter) and stores ``outgoing`` in groups where ``condition`` holds.
        """
        incoming = self.link.copy()
        cond = np.asarray(condition, dtype=bool)
        self.link = np.where(cond, np.asarray(outgoing, dtype=np.uint8), self.link)
        return incoming

    def clear_link(self) -> None:
        self.link[:] = 0

    def set_carry(self, bits: np.ndarray) -> None:
        self.carry = np.asarray(bits, dtype=np.uint8).copy()

    def clear_carry(self) -> None:
        self.carry[:] = 0
