"""Functional model of a data-transpose unit (DTU, Section V / VII-B).

A DTU sits between the VMU and the EVE SRAMs.  On a load it takes one
cache line (sixteen 32-bit elements in normal memory layout) and scatters
its bits into the S-CIM layout: bit ``b`` of element ``e`` lands in column
``(e * n + b mod n)`` of segment row ``b div n``.  On a store it gathers
the bits back.  Each line therefore touches every segment row once, using
partial-row (column-enabled) writes — which is why the timing model
charges ``segments`` cycles per line, and why bit-parallel EVE-32 (whose
segment rows *are* the memory layout) needs no transpose at all.

This model performs the real bit reshuffling against the bit-level
:class:`~repro.sram.EveSram`; tests prove a line-by-line DTU load is
exactly equivalent to the whole-register host transpose.
"""

from __future__ import annotations

import numpy as np

from ..errors import SramError
from .eve_sram import EveSram
from .layout import RegisterLayout

#: 32-bit elements per 64-byte cache line.
ELEMENTS_PER_LINE = 16


class DataTransposeUnit:
    """Transposes cache lines into (and out of) the S-CIM bit layout."""

    def __init__(self, layout: RegisterLayout) -> None:
        if layout.groups_per_element != 1:
            raise SramError(
                "DTU model requires a single-group register layout")
        self.layout = layout

    # -- load path: memory line -> bit planes -------------------------------

    def load_line(self, sram: EveSram, vreg: int, first_element: int,
                  values: np.ndarray) -> int:
        """Write one line's elements into ``vreg`` starting at
        ``first_element``; returns the number of row writes performed."""
        layout = self.layout
        values = np.asarray(values, dtype=np.int64)
        count = len(values)
        if count > ELEMENTS_PER_LINE:
            raise SramError("a line holds at most 16 32-bit elements")
        if first_element + count > layout.elements_per_array:
            raise SramError("line extends past the array's elements")
        unsigned = values & ((1 << layout.element_bits) - 1)
        n = layout.factor
        enable = np.zeros(sram.cols, dtype=bool)
        start_col = first_element * n
        enable[start_col:start_col + count * n] = True
        writes = 0
        for seg in range(layout.segments):
            row = layout.row_of(vreg, seg)
            bits = sram.array.read(row)
            segment_vals = (unsigned >> (seg * n)) & ((1 << n) - 1)
            for j in range(n):
                bits[start_col + j::n][:count] = \
                    ((segment_vals >> j) & 1).astype(np.uint8)
            # Partial-row write: only this line's columns are enabled.
            sram.array.write(row, bits, col_enable=enable)
            writes += 1
        return writes

    # -- store path: bit planes -> memory line -------------------------------

    def store_line(self, sram: EveSram, vreg: int, first_element: int,
                   count: int = ELEMENTS_PER_LINE) -> np.ndarray:
        """Gather ``count`` elements of ``vreg`` back into memory layout."""
        layout = self.layout
        if first_element + count > layout.elements_per_array:
            raise SramError("line extends past the array's elements")
        n = layout.factor
        start_col = first_element * n
        result = np.zeros(count, dtype=np.int64)
        for seg in range(layout.segments):
            row_bits = sram.array.read(layout.row_of(vreg, seg))
            for j in range(n):
                bit = row_bits[start_col + j::n][:count].astype(np.int64)
                result |= bit << (seg * n + j)
        sign = 1 << (layout.element_bits - 1)
        return (result ^ sign) - sign

    # -- cost model hook ---------------------------------------------------------

    @property
    def cycles_per_line(self) -> int:
        """Row-write slots one line occupies (0 at full bit-parallelism,
        where the row layout already is the memory layout)."""
        if self.layout.factor == self.layout.element_bits:
            return 0
        return self.layout.segments
