"""Vector-register data layout inside one EVE SRAM array (Section II, Fig. 1).

Bit-hybrid execution with parallelization factor ``n`` splits each
``element_bits``-wide element into ``element_bits / n`` segments of ``n``
bits.  Every group of ``n`` adjacent columns forms one in-situ ALU; an
element's segments are stacked vertically inside its column group, one row
per segment, least-significant segment first.  All vector registers of an
element live in the same column group (the S-CIM same-column principle),
stacked register after register.

When the register file does not fit in one column stack (e.g. bit-serial
with 32 registers of 32 segments in a 256-row array), registers overflow
into additional column groups and the number of in-situ ALUs drops — the
*column under-utilization* of Section II.  When the register file leaves
rows empty, the array suffers *row under-utilization* instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import LayoutError


@dataclass(frozen=True)
class RegisterLayout:
    """Placement of ``num_vregs`` vector registers in a rows x cols array."""

    rows: int
    cols: int
    element_bits: int
    factor: int
    num_vregs: int

    def __post_init__(self) -> None:
        if self.factor <= 0 or self.element_bits % self.factor != 0:
            raise LayoutError(
                f"factor {self.factor} must divide element width {self.element_bits}")
        if self.cols % self.factor != 0:
            raise LayoutError(
                f"factor {self.factor} must divide column count {self.cols}")
        if self.num_vregs <= 0:
            raise LayoutError("need at least one vector register")
        if self.segments > self.rows:
            raise LayoutError(
                f"one register needs {self.segments} rows but array has {self.rows}")

    # -- geometry ----------------------------------------------------------

    @property
    def segments(self) -> int:
        """Segments per element (= rows one register occupies per group)."""
        return self.element_bits // self.factor

    @property
    def column_groups(self) -> int:
        """Total n-bit column groups in the array."""
        return self.cols // self.factor

    @property
    def regs_per_group(self) -> int:
        """How many registers fit in one column group's row stack."""
        return self.rows // self.segments

    @property
    def groups_per_element(self) -> int:
        """Column groups one element's register file spans (>1 = column
        under-utilization; extra groups hold the overflowing registers)."""
        return math.ceil(self.num_vregs / self.regs_per_group)

    @property
    def elements_per_array(self) -> int:
        """Number of elements stored, i.e. the in-situ ALU count."""
        alus = self.column_groups // self.groups_per_element
        if alus == 0:
            raise LayoutError(
                f"register file does not fit: {self.num_vregs} regs x "
                f"{self.segments} segments need {self.groups_per_element} "
                f"groups but array only has {self.column_groups}")
        return alus

    # -- utilization (Figure 1's visual argument, quantified) ------------------

    @property
    def used_rows(self) -> int:
        regs_in_last_group = self.num_vregs - (self.groups_per_element - 1) * self.regs_per_group
        if self.groups_per_element == 1:
            return self.num_vregs * self.segments
        return max(self.regs_per_group, regs_in_last_group) * self.segments

    @property
    def row_utilization(self) -> float:
        """Fraction of rows holding register data in the fullest group."""
        return self.used_rows / self.rows

    @property
    def storage_utilization(self) -> float:
        """Fraction of all bit cells holding register data."""
        used_bits = (self.elements_per_array * self.num_vregs * self.element_bits)
        return used_bits / (self.rows * self.cols)

    # -- addressing -----------------------------------------------------------

    def group_of_reg(self, vreg: int) -> int:
        """Which of an element's column groups holds ``vreg`` (0-based)."""
        self._check_reg(vreg)
        return vreg // self.regs_per_group

    def row_of(self, vreg: int, segment: int) -> int:
        """Row address of ``segment`` of ``vreg`` (LSB segment first)."""
        self._check_reg(vreg)
        if not 0 <= segment < self.segments:
            raise LayoutError(
                f"segment {segment} out of range 0..{self.segments - 1}")
        return (vreg % self.regs_per_group) * self.segments + segment

    def columns_of_element(self, element: int, vreg: int = 0) -> slice:
        """Column slice holding ``element``'s copy of ``vreg``."""
        if not 0 <= element < self.elements_per_array:
            raise LayoutError(
                f"element {element} out of range 0..{self.elements_per_array - 1}")
        group = element * self.groups_per_element + self.group_of_reg(vreg)
        start = group * self.factor
        return slice(start, start + self.factor)

    def same_group(self, vreg_a: int, vreg_b: int) -> bool:
        """True when both registers live in the same column group, i.e.
        bit-line compute between them needs no move operations."""
        return self.group_of_reg(vreg_a) == self.group_of_reg(vreg_b)

    def _check_reg(self, vreg: int) -> None:
        if not 0 <= vreg < self.num_vregs:
            raise LayoutError(
                f"vreg {vreg} out of range 0..{self.num_vregs - 1}")
