"""A 6T SRAM array with bit-line compute (Section III).

The array supports the two vanilla operations (read / write) plus the
dual-wordline *bit-line compute* read: asserting two wordlines at once with
the sense amplifiers reconfigured to single-ended mode yields, per column,

* ``BL``  senses ``a AND b`` (both cells must pull the bit-line high), and
* ``BLB`` senses ``(NOT a) AND (NOT b)`` = ``a NOR b``.

Inverting these gives ``nand`` and ``or``, so one access produces all four
bit-wise logical operations, exactly as in Jeloka et al. and VRAM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SramError


@dataclass(frozen=True)
class BitLineResult:
    """Per-column outcome of one bit-line compute operation."""

    and_: np.ndarray
    nand: np.ndarray
    or_: np.ndarray
    nor: np.ndarray

    @property
    def width(self) -> int:
        return len(self.and_)


class SramArray:
    """A rows x cols array of bit cells storing 0/1 values."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise SramError(f"invalid geometry {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self._data = np.zeros((rows, cols), dtype=np.uint8)

    # -- bounds helpers ---------------------------------------------------

    def _check_row(self, row: int) -> int:
        if not 0 <= row < self.rows:
            raise SramError(f"row {row} out of range 0..{self.rows - 1}")
        return row

    # -- vanilla operations -------------------------------------------------

    def read(self, row: int) -> np.ndarray:
        """Differential read of one wordline; returns a copy of the row."""
        return self._data[self._check_row(row)].copy()

    def write(self, row: int, bits: np.ndarray, col_enable: np.ndarray | None = None) -> None:
        """Write ``bits`` into ``row``; ``col_enable`` masks columns."""
        self._check_row(row)
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.cols,):
            raise SramError(
                f"write width {bits.shape} does not match {self.cols} columns")
        if np.any(bits > 1):
            raise SramError("write data must be 0/1")
        if col_enable is None:
            self._data[row] = bits
        else:
            enable = np.asarray(col_enable, dtype=bool)
            if enable.shape != (self.cols,):
                raise SramError("column-enable width mismatch")
            np.copyto(self._data[row], bits, where=enable)

    def flip(self, row: int, col: int) -> None:
        """Invert one stored bit in place (the fault-injection surface:
        a transient upset of a single cell, bypassing the write drivers)."""
        self._check_row(row)
        if not 0 <= col < self.cols:
            raise SramError(f"column {col} out of range 0..{self.cols - 1}")
        self._data[row, col] ^= 1

    # -- bit-line compute -----------------------------------------------------

    def bitline_compute(self, row_a: int, row_b: int) -> BitLineResult:
        """Dual-wordline single-ended read computing AND/NAND/OR/NOR.

        ``row_a`` and ``row_b`` may be equal (a self-compute simply senses
        the row itself, a trick micro-programs use to copy a row into the
        peripheral circuits).
        """
        a = self._data[self._check_row(row_a)]
        b = self._data[self._check_row(row_b)]
        and_ = a & b
        nor = (1 - a) & (1 - b)
        return BitLineResult(and_=and_, nand=1 - and_, or_=1 - nor, nor=nor)

    # -- whole-array helpers used by the engine / tests -------------------------

    def snapshot(self) -> np.ndarray:
        return self._data.copy()

    def load(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.rows, self.cols):
            raise SramError("load shape mismatch")
        if np.any(data > 1):
            raise SramError("load data must be 0/1")
        self._data = data.copy()

    def clear(self) -> None:
        self._data[:] = 0
