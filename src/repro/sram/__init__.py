"""Bit-accurate model of EVE's compute-capable SRAM.

* :mod:`repro.sram.array` — a 6T SRAM array with the dual-wordline
  bit-line-compute read (Section III).
* :mod:`repro.sram.circuits` — the peripheral circuit stacks: XOR/XNOR
  logic, Manchester-carry-chain add logic, XRegister, mask logic, constant
  shifter, and spare shifter.
* :mod:`repro.sram.eve_sram` — the composed EVE-n SRAM executing arithmetic
  micro-operations bit-exactly.
* :mod:`repro.sram.layout` — vector-register data layout (Figure 1) and
  in-situ ALU counting, which yields the Table III hardware vector lengths.
* :mod:`repro.sram.dtu` — the data-transpose unit's bit reshuffle between
  memory layout and the S-CIM bit planes.
"""

from .array import BitLineResult, SramArray
from .layout import RegisterLayout
from .eve_sram import EveSram
from .dtu import DataTransposeUnit

__all__ = ["BitLineResult", "SramArray", "RegisterLayout", "EveSram",
           "DataTransposeUnit"]
