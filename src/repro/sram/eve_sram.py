"""The composed EVE-n SRAM: array + peripheral stacks (Section III).

:class:`EveSram` executes the *arithmetic* micro-operations of Table II
bit-exactly across every column group in parallel.  Control and counter
micro-operations belong to the VSU (:mod:`repro.uops.executor`).

Modes by parallelization factor:

* ``factor == 1`` — bit-serial (EVE-1): the XRegister stores the carry.
* ``1 < factor < element width`` — bit-hybrid (EVE-n): the carry lives in a
  spare-shifter flip-flop; the XRegister is free for shift/multiply duty.
* ``factor == element width`` — bit-parallel (EVE-32): one segment per
  element; the spare shifter is still modelled (its link bit is simply
  never needed across segments).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import SramError
from ..faults.inject import NULL_FAULTS
from .array import SramArray
from .circuits import (
    AddLogic,
    ConstantShifter,
    MaskLogic,
    SpareShifter,
    XorLayer,
    XRegister,
    group_view,
)
from .layout import RegisterLayout

#: Write-back destinations besides a wordline.
DEST_MASK = "mask"
DEST_MASK_GROUPS = "mask_groups"
DEST_XREG = "xreg"
DEST_CARRY = "carry"
DEST_LINK = "link"

WB_SOURCES = ("and", "nand", "or", "nor", "xor", "xnor", "add", "shift",
              "data_in", "mask")


class EveSram:
    """One EVE SRAM array with its full circuit stack."""

    def __init__(self, rows: int, cols: int, factor: int) -> None:
        if factor <= 0 or cols % factor != 0:
            raise SramError(f"factor {factor} must divide column count {cols}")
        self.rows = rows
        self.cols = cols
        self.factor = factor
        self.groups = cols // factor
        self.array = SramArray(rows, cols)
        self.add_logic = AddLogic(self.groups, factor)
        self.xreg = XRegister(self.groups, factor)
        self.mask = MaskLogic(cols, factor)
        self.cshift = ConstantShifter(self.groups, factor)
        self.spare = SpareShifter(self.groups, factor)
        self.data_in = np.zeros(cols, dtype=np.uint8)
        self._values: dict[str, np.ndarray] = {}
        self._pending_carry: np.ndarray | None = None
        #: Fault-injection hook (zero-cost null default, like the obs
        #: hooks); armed by :mod:`repro.faults.inject`.
        self.faults = NULL_FAULTS

    # -- carry store (mode-dependent) ------------------------------------

    @property
    def bit_serial(self) -> bool:
        return self.factor == 1

    def _carry_in(self) -> np.ndarray:
        if self.bit_serial:
            return self.xreg.bits[:, 0]
        return self.spare.carry

    def _commit_carry(self, carry: np.ndarray) -> None:
        if self.faults.enabled:
            carry = self.faults.filter_carry(carry)
        if self.bit_serial:
            self.xreg.bits[:, 0] = carry
        else:
            self.spare.set_carry(carry)

    def clear_carry(self) -> None:
        if self.bit_serial:
            self.xreg.bits[:, 0] = 0
        else:
            self.spare.clear_carry()

    # -- data-in port ------------------------------------------------------

    def set_data_in(self, bits: np.ndarray) -> None:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.cols,):
            raise SramError("data_in width mismatch")
        self.data_in = bits.copy()

    # -- arithmetic micro-operations ------------------------------------------

    def u_rd(self, row: int) -> np.ndarray:
        """``rd``: read a wordline; the value lands on the read port and is
        latched into the constant shifter (the shifter's load path)."""
        bits = self.array.read(row)
        self.cshift.load(bits)
        self._values["shift"] = bits
        return bits

    def u_wr(self, row: int, masked: bool = False) -> None:
        """``wr``: write the data-in port into a wordline."""
        enable = self.mask.bits.astype(bool) if masked else None
        self.array.write(row, self.data_in, col_enable=enable)

    def u_blc(self, row_a: int, row_b: int) -> None:
        """``blc``: dual-wordline compute; feeds the whole stack."""
        blr = self.array.bitline_compute(row_a, row_b)
        xor, xnor = XorLayer.compute(blr)
        sums, carry_out = self.add_logic.compute(
            generate=blr.and_, propagate=xor, carry_in=self._carry_in())
        self._values.update({
            "and": blr.and_, "nand": blr.nand, "or": blr.or_, "nor": blr.nor,
            "xor": xor, "xnor": xnor, "add": sums.reshape(-1),
        })
        self._pending_carry = carry_out

    def _source(self, src: str) -> np.ndarray:
        if src == "data_in":
            return self.data_in
        if src == "shift":
            return self.cshift.flat()
        if src == "mask":
            return self.mask.bits
        try:
            return self._values[src]
        except KeyError:
            raise SramError(
                f"write-back source {src!r} not available (no blc executed?)"
            ) from None

    def u_wb(self, dest: Union[int, str], src: str, masked: bool = False) -> None:
        """``wb``: write a computed value back to the array or a latch.

        ``dest`` may be a wordline number or one of the latch destinations
        (``mask``, ``mask_groups``, ``xreg``, ``carry``).  Writing the
        ``add`` source also commits the group carry-out to the carry store.
        """
        if src not in WB_SOURCES:
            raise SramError(f"unknown write-back source {src!r}")
        value = self._source(src)
        if src == "add":
            if self._pending_carry is None:
                raise SramError("add write-back without a preceding blc")
            self._commit_carry(self._pending_carry)
        if self.faults.enabled:
            # The carry flip-flop update above belongs to the adder and
            # has already happened; a dropped/latched write-back only
            # perturbs the destination write itself.
            value = self.faults.filter_wb(self, dest, src, value)
            if value is None:
                return
        if isinstance(dest, (int, np.integer)):
            enable = self.mask.bits.astype(bool) if masked else None
            self.array.write(int(dest), value, col_enable=enable)
        elif dest == DEST_MASK:
            self.mask.load_columns(value)
        elif dest == DEST_MASK_GROUPS:
            # Replicate each group's LSB-column bit across the group.
            self.mask.load_groups(group_view(value, self.factor)[:, 0])
        elif dest == DEST_XREG:
            self.xreg.load(value)
        elif dest == DEST_CARRY:
            self._commit_carry(group_view(value, self.factor)[:, 0])
        elif dest == DEST_LINK:
            # Load the ferry bit from each group's MSB column (used to seed
            # the sign bit for arithmetic right shifts).
            self.spare.link = group_view(value, self.factor)[:, -1].copy()
        else:
            raise SramError(f"unknown write-back destination {dest!r}")

    # -- shifter micro-operations -------------------------------------------

    def _condition(self, conditional: bool) -> np.ndarray:
        if conditional:
            return self.mask.group_bits.astype(bool)
        return np.ones(self.groups, dtype=bool)

    def u_lshift(self, conditional: bool = True) -> None:
        """``lshift``: constant shifter left by one; the spare shifter
        ferries the outgoing MSB to the next segment (bit-hybrid)."""
        cond = self._condition(conditional)
        bit_in = self.spare.link.copy()
        out = self.cshift.shift_left(cond, bit_in)
        self.spare.exchange(out, cond)

    def u_rshift(self, conditional: bool = True) -> None:
        """``rshift``: constant shifter right by one, spare ferrying LSBs."""
        cond = self._condition(conditional)
        bit_in = self.spare.link.copy()
        out = self.cshift.shift_right(cond, bit_in)
        self.spare.exchange(out, cond)

    def u_lrotate(self, conditional: bool = True) -> None:
        self.cshift.rotate_left(self._condition(conditional))

    def u_rrotate(self, conditional: bool = True) -> None:
        self.cshift.rotate_right(self._condition(conditional))

    def u_spare_clear(self) -> None:
        """``sclr``: reset the spare shifter's ferry bit before a new
        multi-segment shift sweep (part of our circuit template)."""
        self.spare.clear_link()

    def u_mask_shft(self) -> None:
        """``mask_shft``: load the mask latches from the XRegister LSB
        column, then shift the XRegister right by one (Section IV-A)."""
        self.mask.load_groups(self.xreg.lsb.copy())
        self.xreg.shift_right()

    def u_mask_shftl(self) -> None:
        """``mask_shftl``: load the mask latches from the XRegister MSB
        column, then shift the XRegister left by one.  The MSB-first walk
        lets multiplication accumulate in place (no scratch rows), which is
        what keeps 32 registers resident at factor 4 (Table III)."""
        self.mask.load_groups(self.xreg.msb.copy())
        self.xreg.shift_left()

    def u_mask_from_carry(self, invert: bool = False,
                          lsb_only: bool = False) -> None:
        """``mask_carry``: load the mask latches from each group's carry
        flip-flop (optionally inverted) — the compare / divide restore path.

        With ``lsb_only`` the flag is gated onto each group's LSB column
        only (an AND with the column-position signal), letting a masked
        write set a single quotient bit without disturbing its neighbours.
        """
        carry = self._carry_in()
        flag = (1 - carry) if invert else carry.copy()
        if lsb_only:
            bits = np.zeros(self.cols, dtype=np.uint8)
            bits[0::self.factor] = flag
            self.mask.load_columns(bits)
        else:
            self.mask.load_groups(flag)

    # -- host helpers (not micro-operations) -----------------------------------

    def write_vreg(self, layout: RegisterLayout, vreg: int,
                   values: np.ndarray) -> None:
        """Host-side load of a whole vector register (used by tests and the
        DTU model, which performs the transpose in hardware)."""
        self._check_layout(layout)
        values = np.asarray(values, dtype=np.int64)
        n_elem = layout.elements_per_array
        if values.shape != (n_elem,):
            raise SramError(f"expected {n_elem} elements, got {values.shape}")
        unsigned = values.astype(np.int64) & ((1 << layout.element_bits) - 1)
        for seg in range(layout.segments):
            row = layout.row_of(vreg, seg)
            row_bits = self.array.read(row)
            segment_vals = (unsigned >> (seg * layout.factor)) & ((1 << layout.factor) - 1)
            for j in range(layout.factor):
                bit = ((segment_vals >> j) & 1).astype(np.uint8)
                row_bits[j::layout.factor][:n_elem] = bit
            self.array.write(row, row_bits)

    def read_vreg(self, layout: RegisterLayout, vreg: int) -> np.ndarray:
        """Host-side read of a whole vector register as signed integers."""
        self._check_layout(layout)
        n_elem = layout.elements_per_array
        result = np.zeros(n_elem, dtype=np.int64)
        for seg in range(layout.segments):
            row_bits = self.array.read(layout.row_of(vreg, seg))
            for j in range(layout.factor):
                bit = row_bits[j::layout.factor][:n_elem].astype(np.int64)
                result |= bit << (seg * layout.factor + j)
        sign = 1 << (layout.element_bits - 1)
        return (result ^ sign) - sign

    def _check_layout(self, layout: RegisterLayout) -> None:
        if layout.rows > self.rows or layout.cols != self.cols or layout.factor != self.factor:
            raise SramError("layout does not match this array")
        if layout.groups_per_element != 1:
            raise SramError(
                "bit-exact execution requires the register file to fit one "
                "column group (reduce num_vregs or raise the factor)")
