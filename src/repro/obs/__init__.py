"""Unified instrumentation layer: metrics, timeline tracing, self-profiling.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of hierarchically
  named counters, high-water-mark gauges, and log2 histograms.
* :mod:`repro.obs.tracer` — :class:`SpanTracer` recording begin/end spans
  and instant events on the simulated timeline, exported as Chrome
  trace-event JSON (Perfetto-loadable), one track per unit/structure.
* :mod:`repro.obs.selfprof` — :class:`SelfProfiler` attributing the
  simulator's own host wall-clock time per phase.

Everything is zero-cost when disabled: machine models hold the
:data:`NULL_TRACER` / :data:`NULL_METRICS` singletons by default and guard
hot hook sites with their ``enabled`` flags.
"""

from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NULL_METRICS, NullMetricsRegistry, bucket_index)
from .selfprof import SelfProfiler
from .tracer import CANONICAL_TRACKS, NULL_TRACER, NullTracer, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "bucket_index",
    "SelfProfiler",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "CANONICAL_TRACKS",
]
