"""Unified instrumentation layer: metrics, tracing, profiling, history.

* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of hierarchically
  named counters, high-water-mark gauges, and log2 histograms, with
  reserved-prefix collision detection (:meth:`MetricsRegistry.reserve` /
  :meth:`MetricsRegistry.assert_schema`).
* :mod:`repro.obs.tracer` — :class:`SpanTracer` recording begin/end spans
  and instant events on the simulated timeline, exported as Chrome
  trace-event JSON (Perfetto-loadable), one track per unit/structure.
* :mod:`repro.obs.selfprof` — :class:`SelfProfiler` attributing the
  simulator's own host wall-clock time per phase.
* :mod:`repro.obs.runstore` — :class:`RunStore` archiving every run as a
  schema-versioned :class:`RunRecord` (append-only JSONL under
  ``.eve-runs/``), so results form a longitudinal time series.
* :mod:`repro.obs.diff` — record differ with per-metric tolerance
  policies (exact / relative / direction-aware) for regression gating.
* :mod:`repro.obs.scorecard` — paper-fidelity scorecard grading the
  reproduction against the paper's published numbers.
* :mod:`repro.obs.render` — shared JSON/CSV emission for the CLI.
* :mod:`repro.obs.attribution` — :class:`AttributionCollector` charging
  every simulated cycle of every unit to a trace instruction and stall
  bucket, with a bit-exact conservation gate
  (:meth:`AttributionCollector.require_conserved`).
* :mod:`repro.obs.critpath` — timed critical path, per-instruction
  slack, and ranked bottleneck reports over the attributed timeline.
* :mod:`repro.obs.flame` — folded-stack flamegraph / Perfetto counter
  exports and the flattened record payload for drift gating.
* :mod:`repro.obs.events` — campaign telemetry: schema-versioned JSONL
  :class:`EventLog` of per-unit lifecycle events, the
  :class:`CampaignTelemetry` hub with deterministic merge, the stall
  :class:`Watchdog`, and the conservation checker.
* :mod:`repro.obs.progress` — TTY-aware live :class:`ProgressRenderer`
  with ETA from historical per-cell wall-clock.
* :mod:`repro.obs.trend` — longitudinal per-metric trends over the run
  store, classified under the diff gate's tolerance policies.
* :mod:`repro.obs.htmlreport` — the self-contained offline HTML
  dashboard behind ``repro report``.

Everything is zero-cost when disabled: machine models hold the
:data:`NULL_TRACER` / :data:`NULL_METRICS` singletons by default and guard
hot hook sites with their ``enabled`` flags; campaign drivers hold
:data:`NULL_TELEMETRY` the same way.
"""

from .attribution import (AttributionCollector, NULL_ATTRIBUTION,
                          NodeAttribution, NullAttribution, ROOT_NODE,
                          collect_nodes)
from .critpath import (BottleneckEntry, BottleneckReport, CriticalPath,
                       build_bottleneck_report, classify_bucket,
                       timed_critical_path)
from .diff import (DiffEntry, RecordDiff, TolerancePolicy, default_policies,
                   diff_records, policy_for)
from .events import (CampaignTelemetry, EVENT_SCHEMA_VERSION, Event,
                     EventLog, NULL_TELEMETRY, NullTelemetry,
                     TERMINAL_EVENTS, TelemetryMonitor, Watchdog,
                     campaign_summaries, check_conservation, follow_events,
                     read_events)
from .flame import (attribution_record_payload, counter_trace_dict,
                    folded_stacks, write_folded)
from .htmlreport import build_report, write_report
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      NULL_METRICS, NullMetricsRegistry, bucket_index)
from .progress import ProgressRenderer, make_progress
from .runstore import (RunRecord, RunStore, SCHEMA_VERSION, flatten_record,
                       load_record_file, make_record)
from .selfprof import SelfProfiler
from .tracer import CANONICAL_TRACKS, NULL_TRACER, NullTracer, SpanTracer
from .trend import (MetricTrend, TrendReport, compute_trends,
                    filter_history, historical_cell_seconds, record_matches,
                    select_records, sparkline, trend_report)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "bucket_index",
    "SelfProfiler",
    "SpanTracer",
    "NullTracer",
    "NULL_TRACER",
    "CANONICAL_TRACKS",
    "RunRecord",
    "RunStore",
    "SCHEMA_VERSION",
    "flatten_record",
    "load_record_file",
    "make_record",
    "AttributionCollector",
    "NullAttribution",
    "NULL_ATTRIBUTION",
    "NodeAttribution",
    "ROOT_NODE",
    "collect_nodes",
    "BottleneckEntry",
    "BottleneckReport",
    "CriticalPath",
    "build_bottleneck_report",
    "classify_bucket",
    "timed_critical_path",
    "attribution_record_payload",
    "counter_trace_dict",
    "folded_stacks",
    "write_folded",
    "DiffEntry",
    "RecordDiff",
    "TolerancePolicy",
    "default_policies",
    "diff_records",
    "policy_for",
    "Event",
    "EventLog",
    "EVENT_SCHEMA_VERSION",
    "TERMINAL_EVENTS",
    "CampaignTelemetry",
    "NullTelemetry",
    "NULL_TELEMETRY",
    "TelemetryMonitor",
    "Watchdog",
    "campaign_summaries",
    "check_conservation",
    "follow_events",
    "read_events",
    "ProgressRenderer",
    "make_progress",
    "MetricTrend",
    "TrendReport",
    "compute_trends",
    "filter_history",
    "historical_cell_seconds",
    "record_matches",
    "select_records",
    "sparkline",
    "trend_report",
    "build_report",
    "write_report",
    "Scorecard",
    "build_scorecard",
]


def __getattr__(name):
    # The scorecard sits *above* the experiments layer (it drives the
    # figure harnesses), so importing it eagerly here would close an
    # import cycle: obs -> scorecard -> experiments -> machines -> obs.
    # PEP 562 lazy loading keeps ``from repro.obs import build_scorecard``
    # working without the cycle.
    if name in ("Scorecard", "build_scorecard"):
        from .scorecard import Scorecard, build_scorecard
        return {"Scorecard": Scorecard,
                "build_scorecard": build_scorecard}[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
