"""Timed critical path, per-instruction slack, and bottleneck reports.

Joins the attributed timeline (:mod:`repro.obs.attribution`) with the
PR 6 dependence graph (:mod:`repro.analysis.depgraph`): each graph node
is weighted by the timeline cycles attribution charged to it, and the
longest latency-weighted chain through the graph is the *timed* critical
path — the cycles a machine with infinite resources but the program's
true dependences would still need.  Conservation guarantees the weights
over all nodes sum to the achieved cycle count, so any dependence chain
(a subset of nodes) is bounded above by it: ``cp_cycles <= cycles``.

Per node, ``slack = cp_cycles - (longest chain through the node)`` — an
instruction with zero slack is on the critical path and shortening it
shortens the run; large slack means a local fix recovers nothing until
the critical chain is dealt with.

The **bound-by taxonomy** folds the timeline stall buckets into four
coarse classes so cells can be compared at a glance:

* ``compute`` — ``busy`` plus ``empty_stall`` (the unit was doing work,
  or starved waiting for the scalar core to feed it);
* ``dep``     — ``dep_stall`` and ``vru_stall`` (serialised on results);
* ``memory``  — load/store memory and DTU stalls, VMU backpressure,
  issue-side memory stalls, and end-of-run drain;
* ``reconfig`` — EVE spawn/reconfiguration cycles.

The :func:`build_bottleneck_report` entry point ranks instructions and
macro-op families by their recoverable (stall) cycles and reports what a
perfect fix of each would buy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.depgraph import DepGraph
from .attribution import ROOT_NODE, AttributionCollector, NodeAttribution

#: Timeline stall-bucket -> bound-by taxonomy class.  Buckets not listed
#: fold into "memory" (the conservative default: unexplained waiting is
#: almost always the memory system in this simulator).
BOUND_BY_TAXONOMY = {
    "busy": "compute",
    "empty_stall": "compute",
    "dep_stall": "dep",
    "vru_stall": "dep",
    "ld_mem_stall": "memory",
    "st_mem_stall": "memory",
    "ld_dt_stall": "memory",
    "st_dt_stall": "memory",
    "vmu_stall": "memory",
    "mem_stall": "memory",
    "drain": "memory",
    "reconfig": "reconfig",
}

#: Canonical class order for rendering.
TAXONOMY_CLASSES = ("compute", "dep", "memory", "reconfig")


def classify_bucket(bucket: str) -> str:
    return BOUND_BY_TAXONOMY.get(bucket, "memory")


@dataclass
class CriticalPath:
    """Longest latency-weighted dependence chain in a cell."""

    cycles: float                 #: weight of the heaviest chain
    path: List[int]               #: node indices, program order
    slack: Dict[int, float]       #: node -> cp_cycles - chain-through(node)

    def to_json_dict(self) -> dict:
        return {"cycles": self.cycles, "length": len(self.path),
                "path": list(self.path)}


def timed_critical_path(graph: DepGraph,
                        weights: Dict[int, float]) -> CriticalPath:
    """Longest weighted path through ``graph`` with per-node slack.

    ``weights`` maps node index -> duration (cycles); missing nodes weigh
    zero.  Dependence edges always point forward in program order, so
    index order is a topological order and one forward plus one backward
    sweep suffice.
    """
    n = graph.n_nodes
    w = [weights.get(i, 0.0) for i in range(n)]
    best_to = [0.0] * n          # heaviest chain ending at i (inclusive)
    best_pred = [-1] * n
    for node in range(n):
        best = 0.0
        pred = -1
        for p in graph.preds.get(node, ()):
            if best_to[p] > best:
                best = best_to[p]
                pred = p
        best_to[node] = best + w[node]
        best_pred[node] = pred
    best_from = [0.0] * n        # heaviest chain starting at i (inclusive)
    for node in range(n - 1, -1, -1):
        best = 0.0
        for s in graph.succs.get(node, ()):
            if best_from[s] > best:
                best = best_from[s]
        best_from[node] = best + w[node]

    if n == 0:
        return CriticalPath(cycles=0.0, path=[], slack={})
    tail = max(range(n), key=lambda i: best_to[i])
    cp_cycles = best_to[tail]
    path: List[int] = []
    node = tail
    while node != -1:
        path.append(node)
        node = best_pred[node]
    path.reverse()
    slack = {i: cp_cycles - (best_to[i] + best_from[i] - w[i])
             for i in range(n)}
    return CriticalPath(cycles=cp_cycles, path=path, slack=slack)


@dataclass
class BottleneckEntry:
    """One ranked row of a bottleneck report (instruction or family)."""

    rank: int
    label: str            #: opcode (+node) or macro-family name
    node: int             #: trace-event index (-2 for family rows)
    count: int            #: instructions aggregated into this row
    weight: float         #: timeline cycles charged
    stall: float          #: recoverable cycles (weight minus busy)
    slack: float          #: critical-path slack (min over members)
    on_critical_path: bool
    bound_by: str         #: dominant taxonomy class of the charges

    def to_json_dict(self) -> dict:
        return {
            "rank": self.rank, "label": self.label, "node": self.node,
            "count": self.count, "weight": self.weight, "stall": self.stall,
            "slack": self.slack, "on_critical_path": self.on_critical_path,
            "bound_by": self.bound_by,
        }


@dataclass
class BottleneckReport:
    """Ranked bottleneck report for one (system, workload) cell."""

    system: str
    workload: str
    cycles: float
    total_stall: float                    #: timeline non-busy cycles
    bound_by: Dict[str, float]            #: taxonomy class -> share
    dominant: str                         #: argmax of bound_by
    critical_path: CriticalPath
    instructions: List[BottleneckEntry] = field(default_factory=list)
    families: List[BottleneckEntry] = field(default_factory=list)
    instruction_coverage: float = 0.0     #: stall share of ranked instrs
    family_coverage: float = 0.0          #: stall share of ranked families

    def to_json_dict(self) -> dict:
        return {
            "system": self.system, "workload": self.workload,
            "cycles": self.cycles, "total_stall": self.total_stall,
            "bound_by": dict(self.bound_by), "dominant": self.dominant,
            "critical_path": self.critical_path.to_json_dict(),
            "critical_path_share": (self.critical_path.cycles / self.cycles
                                    if self.cycles else 0.0),
            "instructions": [e.to_json_dict() for e in self.instructions],
            "families": [e.to_json_dict() for e in self.families],
            "instruction_coverage": self.instruction_coverage,
            "family_coverage": self.family_coverage,
        }


def _dominant_class(bucket_cycles: Dict[str, float]) -> str:
    if not bucket_cycles:
        return "compute"
    totals = {cls: 0.0 for cls in TAXONOMY_CLASSES}
    for bucket, cycles in bucket_cycles.items():
        totals[classify_bucket(bucket)] += cycles
    return max(TAXONOMY_CLASSES, key=lambda cls: totals[cls])


def _stall_class(bucket_cycles: Dict[str, float]) -> str:
    """Dominant taxonomy class of the *stall* (non-busy) charges."""
    stalls = {b: c for b, c in bucket_cycles.items() if b != "busy"}
    return _dominant_class(stalls or bucket_cycles)


def build_bottleneck_report(collector: AttributionCollector,
                            nodes: Sequence[NodeAttribution],
                            graph: Optional[DepGraph],
                            system: str, workload: str,
                            top: int = 10,
                            coverage_target: float = 0.8
                            ) -> BottleneckReport:
    """Rank instructions and macro-op families by recoverable cycles.

    ``nodes`` is :func:`repro.obs.attribution.collect_nodes` output;
    ``graph`` is the PR 6 dependence graph for the same trace (``None``
    degenerates to a chain-free path of weighted nodes, used for scalar
    traces where no vector dependence graph exists).

    The instruction ranking always includes at least ``top`` rows but
    keeps extending until the ranked rows cover ``coverage_target`` of
    the total stall cycles — at paper-scale trace lengths the stall mass
    spreads over hundreds of dynamic instructions, and a fixed-size
    ranking would silently describe a sliver of the problem.  Renderers
    that want a short table print the head and say how deep the
    ranking goes.
    """
    total = collector.total_cycles
    weights = {n.node: n.weight for n in nodes if n.node != ROOT_NODE}
    if graph is not None:
        cp = timed_critical_path(graph, weights)
    else:
        heaviest = max(weights, key=weights.get) if weights else None
        cp = CriticalPath(
            cycles=max(weights.values()) if weights else 0.0,
            path=[heaviest] if heaviest is not None else [],
            slack={})
    on_path = set(cp.path)

    # Cell-level taxonomy: every timeline bucket cycle, classified; EVE
    # spawn cycles (folded into the residual by the machine) move to
    # "reconfig".
    spawn = collector.meta.get("spawn_cycles", 0.0)
    class_cycles = {cls: 0.0 for cls in TAXONOMY_CLASSES}
    for node in nodes:
        for bucket, cycles in node.timeline.items():
            class_cycles[classify_bucket(bucket)] += cycles
    if spawn > 0.0:
        donor = max(TAXONOMY_CLASSES, key=lambda cls: class_cycles[cls])
        moved = min(spawn, class_cycles[donor])
        class_cycles[donor] -= moved
        class_cycles["reconfig"] += moved
    shares = {cls: (cycles / total if total else 0.0)
              for cls, cycles in class_cycles.items()}
    dominant = max(TAXONOMY_CLASSES, key=lambda cls: shares[cls])

    total_stall = sum(n.stall for n in nodes)

    # Per-instruction ranking by recoverable (stall) cycles: at least
    # ``top`` rows, extended until the coverage target is met.
    ranked = sorted((n for n in nodes if n.stall > 0.0),
                    key=lambda n: (-n.stall, n.node))
    instructions: List[BottleneckEntry] = []
    covered = 0.0
    target = coverage_target * total_stall
    for rank, node in enumerate(ranked, start=1):
        if rank > top and covered >= target:
            break
        buckets = node.timeline
        covered += node.stall
        instructions.append(BottleneckEntry(
            rank=rank,
            label=(node.label if node.node == ROOT_NODE
                   else f"{node.label}@{node.node}"),
            node=node.node, count=1, weight=node.weight, stall=node.stall,
            slack=cp.slack.get(node.node, 0.0),
            on_critical_path=node.node in on_path,
            bound_by=_stall_class(buckets)))
    instruction_coverage = covered / total_stall if total_stall else 1.0

    # Macro-family ranking: group by (macro, category).
    families_acc: Dict[str, Dict[str, object]] = {}
    for node in nodes:
        fam = families_acc.setdefault(node.macro, {
            "count": 0, "weight": 0.0, "stall": 0.0,
            "slack": float("inf"), "on_path": False, "buckets": {}})
        fam["count"] += 1
        fam["weight"] += node.weight
        fam["stall"] += node.stall
        fam["slack"] = min(fam["slack"],
                           cp.slack.get(node.node, float("inf")))
        fam["on_path"] = fam["on_path"] or node.node in on_path
        buckets = fam["buckets"]
        for bucket, cycles in node.timeline.items():
            buckets[bucket] = buckets.get(bucket, 0.0) + cycles
    ranked_fams = sorted(families_acc.items(),
                         key=lambda kv: (-kv[1]["stall"], kv[0]))
    families: List[BottleneckEntry] = []
    fam_covered = 0.0
    for rank, (macro, fam) in enumerate(ranked_fams[:top], start=1):
        fam_covered += fam["stall"]
        families.append(BottleneckEntry(
            rank=rank, label=macro, node=-2, count=fam["count"],
            weight=fam["weight"], stall=fam["stall"],
            slack=(0.0 if fam["slack"] == float("inf") else fam["slack"]),
            on_critical_path=bool(fam["on_path"]),
            bound_by=_stall_class(fam["buckets"])))
    family_coverage = fam_covered / total_stall if total_stall else 1.0

    return BottleneckReport(
        system=system, workload=workload, cycles=total,
        total_stall=total_stall, bound_by=shares, dominant=dominant,
        critical_path=cp, instructions=instructions, families=families,
        instruction_coverage=instruction_coverage,
        family_coverage=family_coverage)
