"""Longitudinal trend analytics over the run store.

Where :mod:`repro.obs.diff` compares *two* records, this module looks
at the last N records of a kind and asks "which metrics are drifting?"
— each flat metric key becomes a :class:`MetricTrend` carrying its full
value series, and the newest step is classified against the previous
one under the *same* tolerance policies the diff gate uses, so a trend
flags a regression exactly when ``repro diff`` would.

Also home to the small record-filtering helpers (`record_matches`,
`select_records`, `filter_history`) shared by ``repro history``,
``repro report``, and the trend computation itself, plus the
historical per-cell wall-clock estimate the progress renderer's ETA
and the watchdog's stall threshold are seeded from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .diff import TolerancePolicy, default_policies, policy_for
from .runstore import RunRecord, RunStore, flatten_record


# -- record filtering (shared with `repro history`) ----------------------------

def record_matches(record: RunRecord, *, kind: Optional[str] = None,
                   workload: Optional[str] = None,
                   system: Optional[str] = None) -> bool:
    """Does one record satisfy every given filter?

    ``workload`` / ``system`` match against the record's ``results``
    grid and its ``speedups`` table (a record qualifies if the name
    appears in either), so filters work for run/compare/sweep records
    alike.
    """
    if kind is not None and record.kind != kind:
        return False
    if system is not None:
        systems = set(record.results)
        for table in record.speedups.values():
            systems.update(table)
        if system not in systems:
            return False
    if workload is not None:
        workloads = set(record.speedups)
        for table in record.results.values():
            workloads.update(table)
        if workload not in workloads:
            return False
    return True


def select_records(records: Sequence[RunRecord], *,
                   kind: Optional[str] = None,
                   workload: Optional[str] = None,
                   system: Optional[str] = None,
                   last: Optional[int] = None) -> List[RunRecord]:
    """Filter (and optionally truncate to the newest ``last``) while
    preserving oldest-first order."""
    rows = [r for r in records
            if record_matches(r, kind=kind, workload=workload, system=system)]
    if last is not None and last > 0:
        rows = rows[-last:]
    return rows


def filter_history(store: RunStore, *, kind: Optional[str] = None,
                   workload: Optional[str] = None,
                   system: Optional[str] = None,
                   limit: Optional[int] = None) -> List[Dict[str, object]]:
    """Index-style summaries, newest first, honouring the full filter
    set.  With only ``kind``/``limit`` this reads the cheap index; the
    workload/system filters require the full records."""
    if workload is None and system is None:
        return store.history(limit=limit, kind=kind)
    rows = []
    for record in store.records():
        if record_matches(record, kind=kind, workload=workload,
                          system=system):
            rows.append(RunStore._summary(record))
    rows.reverse()
    return rows[:limit] if limit else rows


# -- the trends ----------------------------------------------------------------

@dataclass
class MetricTrend:
    """One flat metric key's trajectory across the selected records."""

    name: str
    values: List[float]
    record_ids: List[str]
    policy: str
    gate: bool
    #: Newest step classified vs the previous record: one of
    #: same/improved/regressed/changed, or "new" with a single point.
    status: str = "new"

    @property
    def latest(self) -> float:
        return self.values[-1]

    @property
    def rel_delta(self) -> Optional[float]:
        """Relative newest-step delta, ``None`` for single points or a
        zero baseline."""
        if len(self.values) < 2 or not self.values[-2]:
            return None
        return (self.values[-1] - self.values[-2]) / abs(self.values[-2])

    @property
    def regressed(self) -> bool:
        """True when the newest step would fail the diff gate."""
        return self.status == "regressed" and self.gate

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "name": self.name, "values": self.values,
            "record_ids": self.record_ids, "latest": self.latest,
            "rel_delta": self.rel_delta, "status": self.status,
            "policy": self.policy, "gate": self.gate,
            "regressed": self.regressed,
        }


def compute_trends(records: Sequence[RunRecord], *,
                   policies: Optional[Sequence[Tuple[str, TolerancePolicy]]]
                   = None,
                   min_points: int = 1) -> List[MetricTrend]:
    """Per-metric trends over ``records`` (oldest first).

    A metric contributes one trend per key it appears under; keys seen
    in fewer than ``min_points`` records are dropped.  Status is the
    newest step classified under the diff's tolerance policies — a
    metric that vanished from the latest record simply has no trend
    point there (trends track presence, the two-record diff reports
    removals).
    """
    if policies is None:
        policies = default_policies()
    series: Dict[str, List[Tuple[str, float]]] = {}
    for record in records:
        for name, value in flatten_record(record).items():
            series.setdefault(name, []).append((record.record_id, value))
    trends: List[MetricTrend] = []
    for name in sorted(series):
        points = series[name]
        if len(points) < min_points:
            continue
        policy = policy_for(name, policies)
        trend = MetricTrend(
            name=name,
            values=[v for _, v in points],
            record_ids=[rid for rid, _ in points],
            policy=policy.kind, gate=policy.gate)
        if len(points) >= 2:
            trend.status = policy.classify(points[-2][1], points[-1][1])
        trends.append(trend)
    return trends


@dataclass
class TrendReport:
    """Trends plus the selection that produced them (JSON-able)."""

    kind: Optional[str]
    records: int
    trends: List[MetricTrend] = field(default_factory=list)

    def regressions(self) -> List[MetricTrend]:
        return [t for t in self.trends if t.regressed]

    def moving(self) -> List[MetricTrend]:
        """Trends whose newest step moved at all, regressions first."""
        rows = [t for t in self.trends if t.status not in ("same", "new")]
        rank = {"regressed": 0, "changed": 1, "improved": 2}
        rows.sort(key=lambda t: (rank.get(t.status, 3), t.name))
        return rows

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "records": self.records,
            "regressions": [t.name for t in self.regressions()],
            "trends": [t.to_json_dict() for t in self.trends],
        }


def trend_report(store: RunStore, *, kind: Optional[str] = None,
                 workload: Optional[str] = None,
                 system: Optional[str] = None, last: int = 20,
                 policies: Optional[Sequence[Tuple[str, TolerancePolicy]]]
                 = None) -> TrendReport:
    """Trends over the newest ``last`` matching records in the store."""
    records = select_records(list(store.records()), kind=kind,
                             workload=workload, system=system, last=last)
    return TrendReport(kind=kind, records=len(records),
                       trends=compute_trends(records, policies=policies))


# -- historical wall-clock (ETA / watchdog seed) -------------------------------

def historical_cell_seconds(store: RunStore,
                            last: int = 10) -> Optional[float]:
    """Median per-simulated-cell wall-clock from recent sweep-carrying
    records, or ``None`` with no usable history.

    Only cells actually simulated count — cache hits would drag the
    estimate toward zero and make the first cold cell look stalled.
    """
    samples: List[float] = []
    for record in list(store.records())[-4 * last:]:
        sweep = record.extra.get("sweep")
        if not isinstance(sweep, dict):
            continue
        seconds = sweep.get("seconds")
        simulated = sweep.get("simulated")
        if (isinstance(seconds, (int, float))
                and isinstance(simulated, (int, float)) and simulated >= 1
                and seconds > 0):
            samples.append(float(seconds) / float(simulated))
    if not samples:
        return None
    samples = samples[-last:]
    samples.sort()
    return samples[len(samples) // 2]


# -- sparklines ----------------------------------------------------------------

SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], glyphs: str = SPARK_GLYPHS) -> str:
    """A unicode mini-chart of ``values`` (flat series render low)."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return glyphs[0] * len(values)
    top = len(glyphs) - 1
    return "".join(glyphs[int((v - lo) / span * top)] for v in values)
