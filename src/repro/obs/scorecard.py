"""Paper-fidelity scorecard: grade the reproduction against the paper.

Runs the Figure 6 / Table IV / Figure 7 / Figure 8 harnesses in
:mod:`repro.experiments.figures` and compares every datapoint that the
paper publishes (encoded in :mod:`repro.experiments.paper_targets`)
against what our simulator measures, producing:

* a per-datapoint **grade** — A (within the tight budget), B (within the
  figure's error budget: reproduced up to the documented input-scale
  compression), C (right direction, wrong magnitude), F (miss);
* per-figure **shape checks** — the ordinal claims (EVE-8 peaks, EVE-1
  weakest, mmult's bit-serial loss, the Figure 7 U-shape, Figure 8's
  falling stall fractions) that EXPERIMENTS.md calls the reproduced
  claims;
* a **geometric-mean multiplicative error** over all datapoints, and a
  *core* variant that excludes the known deviations — the core geomean
  against :data:`~repro.experiments.paper_targets.GEOMEAN_ERROR_BUDGET`
  plus the gating shape checks decide the overall verdict.

Datapoints listed in ``KNOWN_DEVIATIONS`` are graded and reported but
never gate: EXPERIMENTS.md documents *why* they cannot reproduce at our
input scale, and the scorecard's job is drift detection, not re-litigating
the scale trade-off.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..experiments import paper_targets as targets
from ..experiments.figures import (ALL_APPS, EVE_SYSTEMS, GEOMEAN_APPS,
                                   figure6, figure7, figure8,
                                   table4_speedups)
from ..experiments.runner import ExperimentRunner

GRADES = ("A", "B", "C", "F")

FIGURES = ("fig6", "table4", "fig7", "fig8")

#: Figure 8's kernel set (the paper plots these three).
FIG8_APPS = ("k-means", "pathfinder", "backprop")


def ratio_error(paper: float, measured: float) -> float:
    """Multiplicative distance: ``max(m/p, p/m)`` — 1.0 is perfect,
    2.0 means off by 2x in either direction, ``inf`` for sign misses."""
    if paper <= 0 or measured <= 0:
        return math.inf
    return max(measured / paper, paper / measured)


def grade_datapoint(figure: str, paper: float, measured: float,
                    pivot: Optional[float] = None) -> tuple:
    """``(ratio_error, grade)`` under the figure's error budgets.

    ``pivot`` gives "direction" a meaning for grade C: a speedup
    datapoint keeps C as long as measured and paper sit on the same side
    of 1.0 (e.g. mmult's bit-serial *loss* to the integrated unit).
    """
    budgets = targets.ERROR_BUDGETS[figure]
    error = ratio_error(paper, measured)
    if pivot is not None and (paper >= pivot) != (measured >= pivot):
        # Direction miss (the paper claims a speedup, we measured a
        # slowdown or vice versa): never better than C, F beyond budget.
        return error, ("C" if error <= 1.0 + budgets["budget"] else "F")
    if error <= 1.0 + budgets["tight"]:
        return error, "A"
    if error <= 1.0 + budgets["budget"]:
        return error, "B"
    if pivot is not None or error <= 1.0 + 3 * budgets["budget"]:
        return error, "C"
    return error, "F"


@dataclass
class ScoreEntry:
    figure: str
    kernel: str
    metric: str
    paper: float
    measured: float
    error: float
    grade: str
    known_deviation: bool = False
    note: str = ""

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "figure": self.figure, "kernel": self.kernel,
            "metric": self.metric, "paper": self.paper,
            "measured": self.measured,
            "error": None if math.isinf(self.error) else self.error,
            "grade": self.grade,
            "known_deviation": self.known_deviation,
            "note": self.note,
        }


@dataclass
class ShapeCheck:
    figure: str
    name: str
    ok: bool
    detail: str = ""
    gate: bool = True

    def to_json_dict(self) -> Dict[str, object]:
        return {"figure": self.figure, "name": self.name, "ok": self.ok,
                "detail": self.detail, "gate": self.gate}


class Scorecard:
    """Accumulates datapoint grades and shape checks; renders verdicts."""

    def __init__(self, figures: Sequence[str], apps: Sequence[str],
                 tiny: bool = False) -> None:
        self.figures = tuple(figures)
        self.apps = tuple(apps)
        self.tiny = tiny
        self.entries: List[ScoreEntry] = []
        self.checks: List[ShapeCheck] = []

    def add_datapoint(self, figure: str, kernel: str, metric: str,
                      paper: float, measured: float,
                      pivot: Optional[float] = None) -> None:
        error, grade = grade_datapoint(figure, paper, measured, pivot)
        self.entries.append(ScoreEntry(
            figure=figure, kernel=kernel, metric=metric, paper=paper,
            measured=measured, error=error, grade=grade,
            known_deviation=targets.is_known_deviation(figure, kernel),
            note=targets.deviation_note(figure, kernel)))

    def add_check(self, figure: str, name: str, ok: bool,
                  detail: str = "", gate: bool = True) -> None:
        self.checks.append(ShapeCheck(figure=figure, name=name, ok=ok,
                                      detail=detail, gate=gate))

    # -- aggregation -----------------------------------------------------------

    def _errors(self, core_only: bool) -> List[float]:
        return [e.error for e in self.entries
                if math.isfinite(e.error)
                and not (core_only and e.known_deviation)]

    def geomean_error(self, core_only: bool = False) -> float:
        """Geometric mean of the multiplicative errors (1.0 = perfect)."""
        errors = self._errors(core_only)
        if not errors:
            return 1.0
        return math.exp(sum(math.log(e) for e in errors) / len(errors))

    def grade_counts(self) -> Dict[str, int]:
        counts = {g: 0 for g in GRADES}
        for entry in self.entries:
            counts[entry.grade] += 1
        return counts

    def failed_checks(self) -> List[ShapeCheck]:
        return [c for c in self.checks if not c.ok and c.gate]

    @property
    def passed(self) -> bool:
        return (not self.failed_checks()
                and self.geomean_error(core_only=True)
                <= targets.GEOMEAN_ERROR_BUDGET)

    def kernel_summary(self) -> List[Dict[str, object]]:
        """Per-(figure, kernel) fidelity: geomean error + grade string."""
        grouped: Dict[tuple, List[ScoreEntry]] = {}
        for entry in self.entries:
            grouped.setdefault((entry.figure, entry.kernel), []).append(entry)
        rows = []
        for (figure, kernel), entries in sorted(grouped.items()):
            finite = [e.error for e in entries if math.isfinite(e.error)]
            geo = (math.exp(sum(math.log(e) for e in finite) / len(finite))
                   if finite else math.inf)
            rows.append({
                "figure": figure,
                "kernel": kernel,
                "grades": "".join(e.grade for e in entries),
                "geomean_error": geo,
                "known_deviation": all(e.known_deviation for e in entries),
            })
        return rows

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "figures": list(self.figures),
            "apps": list(self.apps),
            "tiny": self.tiny,
            "entries": [e.to_json_dict() for e in self.entries],
            "checks": [c.to_json_dict() for c in self.checks],
            "kernel_summary": self.kernel_summary(),
            "grades": self.grade_counts(),
            "geomean_error": self.geomean_error(),
            "geomean_error_core": self.geomean_error(core_only=True),
            "geomean_error_budget": targets.GEOMEAN_ERROR_BUDGET,
            "failed_checks": [c.name for c in self.failed_checks()],
            "passed": self.passed,
        }


# -- per-figure scoring --------------------------------------------------------

def _score_fig6(card: Scorecard, runner: ExperimentRunner,
                apps: Sequence[str]) -> None:
    rows = figure6(runner, apps)
    by_workload = {r["workload"]: r for r in rows}
    vector_systems = [s for s in rows[0]
                      if s not in ("workload", "IO", "O3")]
    for app in apps:
        row = by_workload[app]
        laggards = [s for s in vector_systems if row[s] <= 1.0]
        card.add_check(
            "fig6", f"{app}: every vector system beats IO",
            not laggards, detail=", ".join(laggards) or "ok",
            gate=not targets.is_known_deviation("fig6", app))
    if "vvadd" in by_workload:
        flat = [by_workload["vvadd"][f"O3+EVE-{n}"] for n in (1, 2, 4, 8)]
        card.add_check(
            "fig6", "vvadd flat across EVE-1..8 (memory-bound plateau)",
            max(flat) / min(flat) < 1.35,
            detail=f"spread {max(flat) / min(flat):.2f}x")
    geo = by_workload.get("geomean*")
    if geo is not None:
        eve = {s: geo[s] for s in EVE_SYSTEMS if s in geo}
        card.add_check("fig6", "EVE geomean peaks at EVE-8",
                       max(eve, key=eve.get) == "O3+EVE-8",
                       detail=f"peak {max(eve, key=eve.get)}")
        card.add_check("fig6", "bit-serial EVE-1 is the weakest EVE design",
                       min(eve, key=eve.get) == "O3+EVE-1",
                       detail=f"floor {min(eve, key=eve.get)}")
        card.add_check("fig6", "O3+DV is the strongest baseline",
                       geo["O3+DV"] > geo["O3+IV"] and geo["O3+DV"] > geo["O3"])
        for system, paper in targets.FIG6_GEOMEAN_VS_IO.items():
            metric = "geomean* vs IO"
            if system in targets.FIG6_DERIVED:
                metric += " (derived target)"
            card.add_datapoint("fig6", system, metric, paper, geo[system],
                               pivot=1.0)


def _score_table4(card: Scorecard, runner: ExperimentRunner,
                  apps: Sequence[str]) -> None:
    rows = table4_speedups(runner, apps)
    by_workload = {r["workload"]: r for r in rows}
    for app in apps:
        paper_row = targets.TABLE4_SPEEDUP_VS_IV.get(app)
        if paper_row is None:
            continue
        for column, paper in paper_row.items():
            card.add_datapoint("table4", app, f"{column} vs O3+IV",
                               paper, by_workload[app][column], pivot=1.0)
    if "mmult" in by_workload:
        row = by_workload["mmult"]
        card.add_check(
            "table4", "mmult: bit-serial EVE-1 loses to IV, EVE-8 wins",
            row["E-1"] < 1.0 < row["E-8"],
            detail=f"E-1 {row['E-1']:.2f}, E-8 {row['E-8']:.2f}")
    geo = by_workload.get("geomean*")
    if geo is not None:
        for column, paper in targets.TABLE4_GEOMEAN_VS_IV.items():
            card.add_datapoint("table4", "geomean*", f"{column} vs O3+IV",
                               paper, geo[column], pivot=1.0)
        eve_cols = {f"E-{n}": geo[f"E-{n}"] for n in (1, 2, 4, 8, 16, 32)}
        card.add_check("table4", "EVE geomean vs IV peaks at E-8",
                       max(eve_cols, key=eve_cols.get) == "E-8",
                       detail=f"peak {max(eve_cols, key=eve_cols.get)}")


def _score_fig7(card: Scorecard, runner: ExperimentRunner,
                apps: Sequence[str]) -> None:
    apps = [a for a in apps if a in GEOMEAN_APPS]
    if not apps:  # figure 7 only covers the geomean kernels
        return
    rows = figure7(runner, apps)
    by_key = {(r["workload"], r["system"]): r for r in rows}
    for app in apps:
        busy = {s: by_key[(app, s)]["busy"] for s in EVE_SYSTEMS}
        card.add_check(
            "fig7", f"{app}: busy fraction U-shape (E-1 > E-4 < E-32)",
            busy["O3+EVE-1"] > busy["O3+EVE-4"] < busy["O3+EVE-32"],
            detail=(f"E-1 {busy['O3+EVE-1']:.2f}, E-4 "
                    f"{busy['O3+EVE-4']:.2f}, E-32 "
                    f"{busy['O3+EVE-32']:.2f}"),
            gate=not targets.is_known_deviation("fig7", app))
        e32 = by_key[(app, "O3+EVE-32")]
        card.add_check(
            "fig7", f"{app}: EVE-32 has zero transpose stalls",
            e32["ld_dt_stall"] + e32["st_dt_stall"] == 0.0)


def _score_fig8(card: Scorecard, runner: ExperimentRunner,
                apps: Sequence[str]) -> None:
    apps = [a for a in apps if a in FIG8_APPS]
    if not apps:  # figure 8 is the backprop / k-means deep dive
        return
    rows = figure8(runner, apps)
    by_workload = {r["workload"]: r for r in rows}
    for app, paper_row in targets.FIG8_VMU_STALL.items():
        if app not in by_workload:
            continue
        for system, paper in paper_row.items():
            card.add_datapoint("fig8", app, f"{system} VMU LLC-stall frac",
                               paper, by_workload[app][system])
    if "backprop" in by_workload:
        row = by_workload["backprop"]
        series = [row[f"O3+EVE-{n}"] for n in (4, 8, 16, 32)]
        card.add_check(
            "fig8", "backprop: stall fraction falls from the balanced "
                    "factor onward (halved MSHR demand)",
            all(a >= b for a, b in zip(series, series[1:])),
            detail=" -> ".join(f"{v:.2f}" for v in series))


_SCORERS = {
    "fig6": _score_fig6,
    "table4": _score_table4,
    "fig7": _score_fig7,
    "fig8": _score_fig8,
}


def scorecard_pairs(figures: Iterable[str] = FIGURES,
                    apps: Iterable[str] = ALL_APPS) -> List[tuple]:
    """Every (system, workload) cell the requested figures will simulate,
    in deterministic order — the prefetch set for a parallel scorecard.
    """
    from ..config import all_system_names
    requested = set(figures)
    apps = [a for a in ALL_APPS if a in set(apps)]
    wanted: List[tuple] = []
    seen = set()

    def add(systems: Sequence[str], figure_apps: Sequence[str]) -> None:
        for app in figure_apps:
            for system in systems:
                if (system, app) not in seen:
                    seen.add((system, app))
                    wanted.append((system, app))

    # The fig6/table4 geomean* rows always span GEOMEAN_APPS, even when
    # the app filter is narrower, so their cells are always needed.
    with_geomean = [a for a in ALL_APPS
                    if a in set(apps) | set(GEOMEAN_APPS)]
    if "fig6" in requested:
        add(all_system_names(), with_geomean)
    if "table4" in requested:
        add(("O3+IV", "O3+DV") + EVE_SYSTEMS, with_geomean)
    if "fig7" in requested:
        add(EVE_SYSTEMS, [a for a in apps if a in GEOMEAN_APPS])
    if "fig8" in requested:
        add(EVE_SYSTEMS, [a for a in apps if a in FIG8_APPS])
    return wanted


def build_scorecard(runner: Optional[ExperimentRunner] = None,
                    figures: Iterable[str] = FIGURES,
                    apps: Iterable[str] = ALL_APPS,
                    tiny: bool = False) -> Scorecard:
    """Run the requested figure harnesses and grade them.

    One shared :class:`ExperimentRunner` means each (system, workload)
    simulation happens once no matter how many figures consume it.
    """
    requested = set(figures)
    unknown = requested - set(FIGURES)
    figures = [f for f in FIGURES if f in requested]
    if unknown:
        raise ValueError(f"unknown scorecard figures {sorted(unknown)}; "
                         f"choose from {FIGURES}")
    apps = [a for a in ALL_APPS if a in set(apps)]
    if runner is None:
        runner = ExperimentRunner()
    card = Scorecard(figures=figures, apps=apps, tiny=tiny)
    for figure in figures:
        _SCORERS[figure](card, runner, apps)
    return card
