"""Hierarchically named simulation metrics: counters, gauges, histograms.

Every instrument lives in a :class:`MetricsRegistry` under a dotted
hierarchical name (``eve.vmu.busy_cycles``, ``mem.l2.miss``,
``mshr.l1d.occupancy``), so a whole registry snapshot flattens naturally
into JSON/CSV and groups naturally by subsystem prefix.

Three instrument kinds cover the simulator's needs:

* :class:`Counter` — monotonically increasing totals (requests, hits);
* :class:`Gauge` — a level that moves both ways and remembers its
  high-water mark (MSHR occupancy, outstanding requests);
* :class:`Histogram` — log2-bucketed distributions (access latency,
  micro-program cycle counts) — constant memory, no sample storage.

The :data:`NULL_METRICS` singleton is the disabled-mode stand-in: it hands
out shared no-op instruments and reports ``enabled = False`` so hot paths
can skip metric computation entirely.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Union

from ..errors import MetricsSchemaError

#: Log2 bucket count: bucket i covers [2**(i-1), 2**i); bucket 0 is < 1.
#: 48 buckets reach 2**47 — far beyond any simulated-cycle quantity.
HISTOGRAM_BUCKETS = 48


def bucket_index(value: float) -> int:
    """Log2 bucket of ``value``: 0 for values below 1, else the exponent
    ``e`` with ``2**(e-1) <= value < 2**e``, clamped to the bucket range."""
    if value < 1.0:
        return 0
    return min(HISTOGRAM_BUCKETS - 1, math.frexp(value)[1])


def bucket_upper_bound(index: int) -> float:
    """Exclusive upper edge of bucket ``index``."""
    return float(2 ** index) if index > 0 else 1.0


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A level that moves both ways and tracks its high-water mark."""

    __slots__ = ("name", "value", "hwm")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.hwm = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.hwm:
            self.hwm = value

    def add(self, delta: float) -> None:
        self.set(self.value + delta)

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value, "hwm": self.hwm}


class Histogram:
    """A log2-bucketed distribution with count/sum/min/max."""

    __slots__ = ("name", "counts", "count", "sum", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.counts: List[int] = [0] * HISTOGRAM_BUCKETS
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding the
        ``q``-th sample (exact to within a factor of two)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target and n > 0:
                return bucket_upper_bound(i)
        return bucket_upper_bound(HISTOGRAM_BUCKETS - 1)

    def snapshot(self) -> Dict[str, object]:
        buckets = {f"le_{bucket_upper_bound(i):g}": n
                   for i, n in enumerate(self.counts) if n}
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": buckets,
        }


Instrument = Union[Counter, Gauge, Histogram]

#: Legal metric names: dotted lowercase segments (``mem.l2.miss``).
#: Digits, ``_`` and ``-`` are allowed inside a segment (``l1d``,
#: ``busy_cycles``); uppercase and whitespace are not.
_NAME_RE = re.compile(r"^[a-z0-9_-]+(\.[a-z0-9_-]+)*$")


class MetricsRegistry:
    """Get-or-create registry of hierarchically named instruments.

    Units may *reserve* their name prefix (``metrics.reserve("mem",
    owner="MemorySystem")``): a second unit reserving the same or an
    overlapping prefix raises :class:`~repro.errors.MetricsSchemaError`
    instead of silently publishing colliding metric names.
    :meth:`assert_schema` additionally validates name syntax and that no
    gauge/histogram ``flat()`` expansion (``.value`` / ``.hwm`` / ...)
    shadows another instrument's name.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}
        self._reserved: Dict[str, str] = {}

    def _get(self, name: str, cls) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name)
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}")
        return instrument

    def reserve(self, prefix: str, owner: str) -> None:
        """Claim a name prefix for one unit; conflicting claims raise.

        Re-reserving with the same owner is a no-op, so constructors can
        reserve unconditionally.
        """
        if not _NAME_RE.match(prefix):
            raise MetricsSchemaError(f"illegal metric prefix {prefix!r}")
        for existing, existing_owner in self._reserved.items():
            if existing_owner == owner:
                continue
            if (existing == prefix
                    or existing.startswith(prefix + ".")
                    or prefix.startswith(existing + ".")):
                raise MetricsSchemaError(
                    f"metric prefix {prefix!r} (owner {owner!r}) collides "
                    f"with {existing!r} reserved by {existing_owner!r}")
        self._reserved[prefix] = owner

    def assert_schema(self) -> None:
        """Raise :class:`~repro.errors.MetricsSchemaError` on any naming
        violation: malformed names, or a gauge/histogram whose ``flat()``
        suffix expansion (``.value``/``.hwm``/``.count``/...) shadows a
        separately registered instrument (two units whose names collide
        only in the flattened CSV view)."""
        names = set(self._instruments)
        flat_sources: Dict[str, str] = {}
        for name, instrument in self._instruments.items():
            if not _NAME_RE.match(name):
                raise MetricsSchemaError(f"illegal metric name {name!r}")
            if isinstance(instrument, Counter):
                expanded = (name,)
            elif isinstance(instrument, Gauge):
                expanded = (f"{name}.value", f"{name}.hwm")
            else:
                expanded = tuple(f"{name}.{s}"
                                 for s in ("count", "sum", "mean", "max"))
            for key in expanded:
                if key != name and key in names:
                    raise MetricsSchemaError(
                        f"{type(instrument).__name__} {name!r} flattens to "
                        f"{key!r}, shadowing the instrument of that name")
                previous = flat_sources.setdefault(key, name)
                if previous != name:
                    raise MetricsSchemaError(
                        f"metrics {previous!r} and {name!r} both flatten "
                        f"to {key!r}")

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, object]:
        """Full registry state, keyed by hierarchical name (sorted)."""
        return {name: self._instruments[name].snapshot()
                for name in self.names()}

    def flat(self) -> Dict[str, float]:
        """Scalar view for CSV reporting: gauges expand to ``.value`` /
        ``.hwm`` suffixes, histograms to ``.count`` / ``.sum`` / ``.mean``
        / ``.max`` (bucket detail stays in :meth:`snapshot`)."""
        out: Dict[str, float] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = instrument.value
            elif isinstance(instrument, Gauge):
                out[f"{name}.value"] = instrument.value
                out[f"{name}.hwm"] = instrument.hwm
            else:
                out[f"{name}.count"] = float(instrument.count)
                out[f"{name}.sum"] = instrument.sum
                out[f"{name}.mean"] = instrument.mean
                out[f"{name}.max"] = instrument.max if instrument.count else 0.0
        return out


def merge_flat(parts: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Deterministically merge per-source flat snapshots into one
    namespaced scalar dict (``{"O3+EVE-4": reg.flat()}`` becomes
    ``{"O3+EVE-4.eve.vmu.busy_cycles": ...}``).

    Sources and their metrics are emitted in sorted order so the merged
    view is byte-stable no matter which sweep worker finished first.
    """
    out: Dict[str, float] = {}
    for source in sorted(parts):
        for name in sorted(parts[source]):
            out[f"{source}.{name}"] = parts[source][name]
    return out


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled-mode hooks."""

    __slots__ = ()
    name = "null"
    value = 0.0
    hwm = 0.0
    count = 0
    sum = 0.0
    mean = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def snapshot(self):
        return None


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry(MetricsRegistry):
    """Disabled-mode registry: every instrument is a shared no-op."""

    enabled = False

    def reserve(self, prefix: str, owner: str) -> None:
        # The singleton is shared by every uninstrumented machine, so
        # ownership bookkeeping would raise spurious conflicts.
        pass

    def assert_schema(self) -> None:
        pass

    def counter(self, name: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str):
        return _NULL_INSTRUMENT


#: Process-wide disabled registry; safe to share (it holds no state).
NULL_METRICS = NullMetricsRegistry()
