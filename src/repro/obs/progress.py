"""Live campaign progress: TTY single-line bar, plain periodic lines.

The renderer is deliberately dumb terminal code with every dependency
injected (clock, output stream, mode) so tests can drive it
deterministically.  Mode resolution:

``auto``
    Single-line ``\\r`` bar when the stream is a TTY, otherwise a
    periodic plain log line (CI-safe).
``tty`` / ``plain``
    Force one of the above.
``off``
    Render nothing (``--quiet``).

ETA blends two estimators: the historical median per-unit wall-clock
from past run-store records (supplied as ``hint_seconds`` so the very
first update already has an ETA) and the observed per-unit rate of the
current campaign, which takes over as units complete.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, List, Optional, Sequence, TextIO


def format_duration(seconds: float) -> str:
    """``73.2`` -> ``"1m13s"`` (compact, no sub-second noise past 10s)."""
    if seconds < 0:
        return "?"
    if seconds < 10:
        return f"{seconds:.1f}s"
    seconds = int(round(seconds))
    if seconds < 3600:
        return (f"{seconds // 60}m{seconds % 60:02d}s" if seconds >= 60
                else f"{seconds}s")
    return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"


def format_bar(fraction: float, width: int = 20) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "-" * (width - filled)


class ProgressRenderer:
    """Renders campaign progress to a stream.

    Not thread-safe and not meant to be: the parent's polling loop is
    the only writer.
    """

    def __init__(self, label: str = "sweep", mode: str = "auto",
                 stream: Optional[TextIO] = None,
                 clock: Callable[[], float] = time.monotonic,
                 hint_seconds: Optional[float] = None,
                 plain_every: float = 5.0) -> None:
        if mode not in ("auto", "tty", "plain", "off"):
            raise ValueError(f"unknown progress mode {mode!r}")
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.clock = clock
        self.hint_seconds = hint_seconds
        self.plain_every = plain_every
        if mode == "auto":
            mode = "tty" if self._stream_is_tty() else "plain"
        self.mode = mode
        self.total = 0
        self.done = 0
        self._start = 0.0
        self._last_plain = -float("inf")
        self._line_open = False

    def _stream_is_tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        try:
            return bool(isatty()) if isatty is not None else False
        except (ValueError, OSError):
            return False

    @property
    def enabled(self) -> bool:
        return self.mode != "off"

    # -- lifecycle -------------------------------------------------------------

    def begin(self, total: int) -> None:
        self.total = max(0, total)
        self.done = 0
        self._start = self.clock()
        self._last_plain = -float("inf")
        if self.mode == "plain" and self.total:
            self._emit_plain(cached=0, failed=0, stalled=0, active=())

    def update(self, done: int, *, cached: int = 0, failed: int = 0,
               stalled: int = 0, active: Sequence[str] = ()) -> None:
        self.done = min(done, self.total) if self.total else done
        if self.mode == "off":
            return
        if self.mode == "tty":
            self._emit_tty(cached, failed, stalled, active)
        else:
            now = self.clock()
            final = self.total and self.done >= self.total
            if final or now - self._last_plain >= self.plain_every:
                self._last_plain = now
                self._emit_plain(cached=cached, failed=failed,
                                 stalled=stalled, active=active)

    def finish(self) -> None:
        if self._line_open:
            self.stream.write("\n")
            self.stream.flush()
            self._line_open = False

    # -- estimation ------------------------------------------------------------

    def eta_seconds(self) -> Optional[float]:
        """Remaining seconds, or ``None`` when there is nothing to base
        an estimate on yet."""
        remaining = self.total - self.done
        if remaining <= 0:
            return 0.0
        if self.done > 0:
            per_unit = (self.clock() - self._start) / self.done
            return per_unit * remaining
        if self.hint_seconds is not None:
            return self.hint_seconds * remaining
        return None

    # -- rendering -------------------------------------------------------------

    def render(self, cached: int = 0, failed: int = 0, stalled: int = 0,
               active: Sequence[str] = ()) -> str:
        """The current status line (shared by both modes; exposed for
        tests)."""
        parts: List[str] = [f"{self.label}:"]
        if self.total:
            fraction = self.done / self.total
            parts.append(f"[{format_bar(fraction)}]")
            parts.append(f"{self.done}/{self.total}")
        else:
            parts.append(f"{self.done} done")
        extras = []
        if cached:
            extras.append(f"{cached} cached")
        if failed:
            extras.append(f"{failed} FAILED")
        if stalled:
            extras.append(f"{stalled} stalled")
        if extras:
            parts.append("(" + ", ".join(extras) + ")")
        eta = self.eta_seconds()
        if eta is not None and self.done < self.total:
            parts.append(f"eta {format_duration(eta)}")
        if active and self.done < self.total:
            shown = ", ".join(list(active)[:2])
            if len(active) > 2:
                shown += f", +{len(active) - 2}"
            parts.append(f"<{shown}>")
        return " ".join(parts)

    def _emit_tty(self, cached: int, failed: int, stalled: int,
                  active: Sequence[str]) -> None:
        line = self.render(cached, failed, stalled, active)
        self.stream.write("\r\x1b[2K" + line[:200])
        self.stream.flush()
        self._line_open = True

    def _emit_plain(self, *, cached: int, failed: int, stalled: int,
                    active: Sequence[str]) -> None:
        self.stream.write(self.render(cached, failed, stalled, active) + "\n")
        self.stream.flush()


def make_progress(label: str, *, quiet: bool = False, force: bool = False,
                  stream: Optional[TextIO] = None,
                  hint_seconds: Optional[float] = None
                  ) -> Optional[ProgressRenderer]:
    """CLI helper: ``--quiet`` kills progress, ``--progress`` forces the
    plain renderer even without a TTY, otherwise auto-detect (and return
    ``None`` when auto-detection lands on a non-TTY, keeping the default
    path silent for scripts and tests)."""
    if quiet:
        return None
    renderer = ProgressRenderer(label, mode="auto", stream=stream,
                                hint_seconds=hint_seconds)
    if renderer.mode == "plain" and not force:
        return None
    return renderer
