"""Cycle attribution: charge every simulated cycle to a trace instruction.

The machine models report *aggregate* stall breakdowns — a cell can say it
spent 42% of its cycles in ``vmu_stall`` but not which instructions bought
those cycles.  This module closes that gap: an
:class:`AttributionCollector` rides along a simulation and receives a
``charge(unit, bucket, cycles)`` call at every accounting site in the
machine models (VSU/core issue timeline, VMU streams, DTU transposes, VRU
reductions, MSHR acquire stalls, DRAM channel transfers), each tagged with
the trace-event index currently being simulated.

Conservation invariant
----------------------
Every charge site is placed immediately adjacent to the machine's own
accumulator update and charges the *same value in the same order*, so the
collector's per-(unit, bucket) running sums are bit-identical floats to
the totals the machine reports (e.g. ``StallBreakdown`` for the EVE VSU,
``VmuModel.busy_cycles``, ``MshrPool.stall_cycles``).  At the end of the
run the machine hands the collector its reported totals via
:meth:`AttributionCollector.finish`; :meth:`~AttributionCollector.\
require_conserved` then enforces

* **bit-exactness** — for every unit the machine registered, the ledger
  equals the reported total per bucket under ``==`` (no epsilon), and the
  ledger contains no unit the machine did not register; and
* **coverage** — the units the machine declared as *timeline* units (the
  serialising resources whose buckets partition the run: the EVE VSU, the
  scalar core) sum to the achieved cycle count within a 1e-6 relative
  epsilon (their totals are accumulated in a different order than the
  machine's single running clock, so bit-exact equality is not defined
  there; the per-unit ledgers above are the bit-exact check).

A violation raises :class:`repro.errors.AttributionError` — any new
accounting statement in a machine model without a matching charge site
fails the gate on the very first attributed run.

The :data:`NULL_ATTRIBUTION` singleton is the disabled-mode stand-in
(same pattern as ``NULL_TRACER`` / ``NULL_METRICS``): hot paths guard
with ``if self.attr.enabled:`` so attribution off costs one attribute
check per site.

Node identity
-------------
Charges are tagged with the index of the trace event being simulated
(``Trace.events[node]``), which is exactly the node numbering of the
PR 6 dependence graph — :mod:`repro.obs.critpath` joins the two to
compute the timed critical path.  Cycles charged outside any instruction
(end-of-run drain with no identifiable culprit) use :data:`ROOT_NODE`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import AttributionError
from ..isa.instructions import ScalarBlock, VectorInstr

#: Pseudo-node for cycles not attributable to any single trace event.
ROOT_NODE = -1

#: Relative epsilon for the timeline-coverage check (see module docstring
#: for why coverage is epsilon-bounded while per-unit ledgers are exact).
COVERAGE_REL_EPS = 1e-6


class AttributionCollector:
    """Accumulates per-instruction, per-unit, per-bucket cycle charges."""

    enabled = True

    def __init__(self) -> None:
        #: (unit, bucket) -> cycles, accumulated in machine charge order.
        self._ledger: Dict[Tuple[str, str], float] = {}
        #: node -> (unit, bucket) -> cycles.
        self._node_charges: Dict[int, Dict[Tuple[str, str], float]] = {}
        #: node -> (start, end) span on the simulated timeline.
        self._spans: Dict[int, Tuple[float, float]] = {}
        #: Current trace-event index (set by the machine main loop).
        self._node: int = ROOT_NODE
        #: Machine-reported totals: unit -> bucket -> cycles.
        self.expected: Dict[str, Dict[str, float]] = {}
        #: Units whose buckets partition the achieved cycle count.
        self.timeline_units: Tuple[str, ...] = ()
        #: Achieved cycles, as reported by the machine at finish().
        self.total_cycles: float = 0.0
        #: Free-form scalar metadata (e.g. ``spawn_cycles`` for EVE).
        self.meta: Dict[str, float] = {}
        self._finished = False

    # -- recording (hot path) ---------------------------------------------

    def set_node(self, node: int) -> None:
        """Declare the trace event subsequent charges belong to."""
        self._node = node

    def charge(self, unit: str, bucket: str, cycles: float,
               node: Optional[int] = None) -> None:
        """Charge ``cycles`` on ``unit``/``bucket`` to a trace event.

        ``node=None`` charges to the current :meth:`set_node` context —
        the form deep components (MSHR pools, DRAM channels, the VMU) use.
        """
        if node is None:
            node = self._node
        key = (unit, bucket)
        ledger = self._ledger
        ledger[key] = ledger.get(key, 0.0) + cycles
        per_node = self._node_charges.get(node)
        if per_node is None:
            per_node = self._node_charges[node] = {}
        per_node[key] = per_node.get(key, 0.0) + cycles

    def span(self, begin: float, end: float,
             node: Optional[int] = None) -> None:
        """Record (widening) the timeline span a trace event occupied."""
        if node is None:
            node = self._node
        prior = self._spans.get(node)
        if prior is None:
            self._spans[node] = (begin, end)
        else:
            self._spans[node] = (min(prior[0], begin), max(prior[1], end))

    # -- machine hand-off --------------------------------------------------

    def finish(self, total_cycles: float,
               expected: Dict[str, Dict[str, float]],
               timeline_units: Iterable[str]) -> None:
        """Machine hand-off at end of run: reported totals + timeline units.

        ``expected`` maps each instrumented unit to its machine-reported
        per-bucket totals (e.g. ``{"vsu": breakdown.as_dict(), ...}``);
        ``timeline_units`` names the subset whose buckets partition
        ``total_cycles``.
        """
        self.total_cycles = float(total_cycles)
        self.expected = {unit: dict(buckets)
                         for unit, buckets in expected.items()}
        self.timeline_units = tuple(timeline_units)
        self._finished = True

    # -- conservation gate -------------------------------------------------

    def require_conserved(self, context: str = "") -> None:
        """Raise :class:`AttributionError` unless every cycle is accounted.

        Checks (1) bit-exact per-(unit, bucket) equality between the
        charge ledger and the machine-reported totals, (2) that the
        ledger contains no unit the machine did not register, and (3)
        that the timeline units cover ``total_cycles`` within
        :data:`COVERAGE_REL_EPS` relative.
        """
        where = f" [{context}]" if context else ""
        if not self._finished:
            raise AttributionError(
                f"attribution incomplete{where}: the machine never called "
                f"finish() — attribution is not threaded through this model")
        mismatches: List[Tuple[str, str, float, float]] = []
        for unit, buckets in self.expected.items():
            names = set(buckets)
            names.update(b for (u, b) in self._ledger if u == unit)
            for bucket in sorted(names):
                attributed = self._ledger.get((unit, bucket), 0.0)
                reported = buckets.get(bucket, 0.0)
                if attributed != reported:
                    mismatches.append((unit, bucket, attributed, reported))
        known = set(self.expected)
        for unit, _bucket in self._ledger:
            if unit not in known:
                mismatches.append((unit, _bucket,
                                   self._ledger[(unit, _bucket)], 0.0))
                known.add(unit)
        if mismatches:
            detail = "; ".join(
                f"{unit}.{bucket}: attributed {attributed!r} != "
                f"reported {reported!r} (delta {attributed - reported:+g})"
                for unit, bucket, attributed, reported in mismatches[:8])
            raise AttributionError(
                f"cycle-attribution conservation violated{where}: {detail}"
                + ("" if len(mismatches) <= 8
                   else f" (+{len(mismatches) - 8} more)"),
                mismatches=mismatches)
        covered, total = self.coverage()
        if abs(covered - total) > COVERAGE_REL_EPS * max(1.0, abs(total)):
            raise AttributionError(
                f"cycle-attribution coverage violated{where}: timeline "
                f"units {list(self.timeline_units)} cover {covered!r} of "
                f"{total!r} achieved cycles "
                f"(delta {covered - total:+g})",
                mismatches=[("<timeline>", "coverage", covered, total)])

    # -- views -------------------------------------------------------------

    def coverage(self) -> Tuple[float, float]:
        """(cycles charged on timeline units, achieved total cycles)."""
        covered = sum(cycles for (unit, _), cycles in self._ledger.items()
                      if unit in self.timeline_units)
        return covered, self.total_cycles

    def unit_totals(self) -> Dict[str, Dict[str, float]]:
        """Ledger as ``unit -> bucket -> cycles`` (attributed side)."""
        out: Dict[str, Dict[str, float]] = {}
        for (unit, bucket), cycles in self._ledger.items():
            out.setdefault(unit, {})[bucket] = cycles
        return out

    def nodes(self) -> List[int]:
        """Every node that received at least one charge, sorted
        (ROOT_NODE, if charged, sorts first)."""
        return sorted(self._node_charges)

    def node_charges(self, node: int) -> Dict[Tuple[str, str], float]:
        return dict(self._node_charges.get(node, {}))

    def node_weight(self, node: int) -> float:
        """Timeline cycles charged to ``node`` (its weight in the timed
        dependence graph)."""
        return sum(cycles
                   for (unit, _), cycles
                   in self._node_charges.get(node, {}).items()
                   if unit in self.timeline_units)

    def node_span(self, node: int) -> Optional[Tuple[float, float]]:
        return self._spans.get(node)


class NullAttribution(AttributionCollector):
    """Disabled-mode collector: every hook is a no-op."""

    enabled = False

    def set_node(self, node: int) -> None:
        pass

    def charge(self, unit, bucket, cycles, node=None) -> None:
        pass

    def span(self, begin, end, node=None) -> None:
        pass

    def finish(self, total_cycles, expected, timeline_units) -> None:
        pass

    def require_conserved(self, context: str = "") -> None:
        raise AttributionError(
            "attribution is disabled (NULL_ATTRIBUTION); pass an "
            "AttributionCollector into the run to verify conservation")


#: Process-wide disabled collector; safe to share (it records nothing).
NULL_ATTRIBUTION = NullAttribution()


# -- joining charges with the trace ---------------------------------------

#: Label metadata for the pseudo-node holding unattributable cycles.
_ROOT_LABEL = ("(drain)", "machine", "MACHINE")


@dataclass
class NodeAttribution:
    """One trace event's attributed cycles, labelled for reporting."""

    node: int
    label: str          #: opcode, ``scalar_block``, or ``(drain)``
    macro: str          #: macro-op family (``add``, ``mul``, ``scalar``...)
    category: str       #: ISA category name (``IALU``, ``MEM_UNIT``, ...)
    vl: int             #: vector length in effect (0 for scalar blocks)
    start: float        #: earliest timeline point charged to this node
    end: float          #: latest timeline point charged to this node
    weight: float       #: timeline cycles charged (node duration)
    busy: float         #: timeline ``busy`` bucket cycles
    stall: float        #: ``weight - busy`` (recoverable by a perfect fix)
    charges: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: bucket -> cycles, restricted to the timeline units (sums to weight).
    timeline: Dict[str, float] = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "node": self.node, "label": self.label, "macro": self.macro,
            "category": self.category, "vl": self.vl,
            "start": self.start, "end": self.end, "weight": self.weight,
            "busy": self.busy, "stall": self.stall,
            "charges": {unit: dict(buckets)
                        for unit, buckets in sorted(self.charges.items())},
            "timeline": dict(sorted(self.timeline.items())),
        }


def _event_labels(event) -> Tuple[str, str, str, int]:
    """(label, macro, category, vl) for one trace event."""
    if isinstance(event, VectorInstr):
        return (event.op, event.info.macro, event.info.category.name,
                int(event.vl))
    if isinstance(event, ScalarBlock):
        return ("scalar_block", "scalar", "SCALAR", 0)
    return (type(event).__name__, "other", "OTHER", 0)


def collect_nodes(collector: AttributionCollector,
                  trace) -> List[NodeAttribution]:
    """Join the collector's per-node charges with trace-event labels.

    Returns one :class:`NodeAttribution` per charged node, in node order
    (:data:`ROOT_NODE`, when charged, comes first with a ``(drain)``
    label).  ``trace`` is the :class:`repro.isa.trace.Trace` the machine
    ran; its event indices are the node identities.
    """
    events = trace.events
    timeline = set(collector.timeline_units)
    out: List[NodeAttribution] = []
    for node in collector.nodes():
        if 0 <= node < len(events):
            label, macro, category, vl = _event_labels(events[node])
        else:
            label, macro, category = _ROOT_LABEL
            vl = 0
        charges: Dict[str, Dict[str, float]] = {}
        timeline_split: Dict[str, float] = {}
        weight = 0.0
        busy = 0.0
        for (unit, bucket), cycles in collector.node_charges(node).items():
            charges.setdefault(unit, {})[bucket] = cycles
            if unit in timeline:
                weight += cycles
                timeline_split[bucket] = (
                    timeline_split.get(bucket, 0.0) + cycles)
                if bucket == "busy":
                    busy += cycles
        span = collector.node_span(node) or (0.0, 0.0)
        out.append(NodeAttribution(
            node=node, label=label, macro=macro, category=category, vl=vl,
            start=span[0], end=span[1], weight=weight, busy=busy,
            stall=max(0.0, weight - busy), charges=charges,
            timeline=timeline_split))
    return out
