"""Shared machine-readable rendering for the CLI.

``stats``, ``diff``, ``scorecard``, ``history``, and the ``--metrics-out``
/ ``--record`` paths all need the same three moves: dump a payload as
JSON to stdout, dump it to a file (with ``-`` meaning stdout), and write
``(header, rows)`` as CSV.  Centralising them here keeps every command's
JSON formatting identical (indent, trailing newline) and stops cli.py
from growing one private helper per subcommand.
"""

from __future__ import annotations

import csv
import json
import sys
from typing import IO, Iterable, Optional, Sequence


def emit_json(payload: object, stream: Optional[IO[str]] = None) -> None:
    """Pretty-print one JSON document followed by a newline."""
    stream = stream if stream is not None else sys.stdout
    json.dump(payload, stream, indent=2, sort_keys=False)
    stream.write("\n")


def write_json(path: str, payload: object) -> None:
    """Write JSON to ``path``; ``-`` means stdout."""
    if path == "-":
        emit_json(payload)
    else:
        with open(path, "w") as handle:
            emit_json(payload, handle)


def emit_csv(headers: Sequence[str], rows: Iterable[Sequence[object]],
             stream: Optional[IO[str]] = None) -> None:
    """Write one header row plus data rows as CSV."""
    writer = csv.writer(stream if stream is not None else sys.stdout)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))


def findings_json(findings: Sequence[object], programs: int) -> dict:
    """One findings schema for ``lint --json`` and ``check --json``.

    ``findings`` is any sequence of objects with ``program`` / ``index``
    / ``rule`` / ``severity`` / ``message`` attributes (duck-typed so the
    uop linter and the trace analyzer share it without an import cycle).
    """
    return {
        "programs": programs,
        "errors": sum(1 for f in findings if f.severity == "error"),
        "warnings": sum(1 for f in findings if f.severity == "warning"),
        "findings": [{"program": f.program, "index": f.index,
                      "rule": f.rule, "severity": f.severity,
                      "message": f.message} for f in findings],
    }
