"""Timeline span tracing with Chrome trace-event (Perfetto) export.

The tracer records what each simulated unit/structure was doing *when* on
the simulated-cycle timeline: begin/end spans (VSU dispatch, VMU streams,
DTU transposes, VRU reductions, cache access → completion, DRAM channel
occupancy, micro-program execution), instant events (reconfiguration
spawn, fences), and counter samples (MSHR occupancy).

Export produces the Chrome trace-event JSON format — ``chrome://tracing``
and https://ui.perfetto.dev both load it directly.  One process per
simulation, one named thread ("track") per unit/structure; timestamps are
simulated cycles, rendered as microseconds (1 cycle == 1 µs on screen).

``ts`` ordering and B/E balance are guaranteed by construction: spans are
stored complete (begin, end) and serialised as a globally sorted event
list where, at equal timestamps, inner spans close before outer spans
open.  Zero-length spans are emitted as instant events so no B/E pair can
invert.

The :data:`NULL_TRACER` singleton is the disabled-mode stand-in: every
hook is a no-op and ``enabled`` is ``False`` so the machine models can
skip argument marshalling entirely — tracing off costs one attribute
check per hook site.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

#: Canonical track order: these units always get the same tid (1-based),
#: whether or not earlier tracks appear in a given run.  Tracks outside
#: this table are numbered from 100 in order of first appearance.
CANONICAL_TRACKS = (
    "Machine", "VSU", "VMU", "DTU", "VRU", "DRAM",
    "L1D", "L2", "LLC", "MSHR", "Core", "LSQ", "uProg", "Reconfig",
)

_CANONICAL_TID = {name: i + 1 for i, name in enumerate(CANONICAL_TRACKS)}
_DYNAMIC_TID_BASE = 100


class SpanTracer:
    """Records spans / instants / counter samples on the simulated timeline."""

    enabled = True

    def __init__(self, process: str = "repro") -> None:
        self.process = process
        #: (track, name, begin, end, args)
        self._spans: List[Tuple[str, str, float, float, Optional[dict]]] = []
        #: (track, name, ts, args)
        self._instants: List[Tuple[str, str, float, Optional[dict]]] = []
        #: (track, series, ts, value)
        self._samples: List[Tuple[str, str, float, float]] = []
        #: track -> stack of (name, begin, args) for the begin/end API
        self._open: Dict[str, List[Tuple[str, float, Optional[dict]]]] = {}
        self._tracks: List[str] = []

    # -- recording ---------------------------------------------------------

    def _touch(self, track: str) -> None:
        if track not in self._tracks:
            self._tracks.append(track)

    def declare(self, *tracks: str) -> None:
        """Pre-register tracks so idle units still get a named track
        (a unit with no spans is itself a finding worth seeing)."""
        for track in tracks:
            self._touch(track)

    def span(self, track: str, name: str, begin: float, end: float,
             **args) -> None:
        """Record a complete span on ``track`` (the common fast path)."""
        self._touch(track)
        self._spans.append((track, name, begin, max(begin, end), args or None))

    def begin(self, track: str, name: str, ts: float, **args) -> None:
        """Open a span; close it with :meth:`end` (LIFO per track)."""
        self._touch(track)
        self._open.setdefault(track, []).append((name, ts, args or None))

    def end(self, track: str, ts: float) -> None:
        stack = self._open.get(track)
        if not stack:
            raise ValueError(f"end() on track {track!r} with no open span")
        name, begin, args = stack.pop()
        self._spans.append((track, name, begin, max(begin, ts),
                            args if args else None))

    def instant(self, track: str, name: str, ts: float, **args) -> None:
        self._touch(track)
        self._instants.append((track, name, ts, args or None))

    def sample(self, track: str, series: str, ts: float,
               value: float) -> None:
        """Record one point of a counter track (Perfetto renders a graph)."""
        self._touch(track)
        self._samples.append((track, series, ts, value))

    # -- introspection ----------------------------------------------------

    @property
    def num_events(self) -> int:
        return len(self._spans) + len(self._instants) + len(self._samples)

    def track_names(self) -> List[str]:
        return list(self._tracks)

    def spans_on(self, track: str) -> List[Tuple[str, float, float]]:
        """(name, begin, end) of every complete span on ``track``."""
        return [(name, begin, end)
                for trk, name, begin, end, _ in self._spans if trk == track]

    def track_busy(self, track: str) -> float:
        """Total span-covered cycles on ``track`` (overlap not collapsed)."""
        return sum(end - begin for _, begin, end in self.spans_on(track))

    # -- export -----------------------------------------------------------

    def _tid_map(self) -> Dict[str, int]:
        tids: Dict[str, int] = {}
        dynamic = _DYNAMIC_TID_BASE
        for track in self._tracks:
            fixed = _CANONICAL_TID.get(track)
            if fixed is not None:
                tids[track] = fixed
            else:
                tids[track] = dynamic
                dynamic += 1
        return tids

    def to_dict(self) -> dict:
        """Serialise as a Chrome trace-event document.

        Spans still open via :meth:`begin` are closed at the latest
        timestamp seen, so the output is always balanced.
        """
        for track, stack in list(self._open.items()):
            if stack:
                horizon = max(
                    [b for _, _, b, _, _ in self._spans]
                    + [e for _, _, _, e, _ in self._spans]
                    + [begin for _, begin, _ in stack])
                while stack:
                    self.end(track, horizon)
        tids = self._tid_map()
        pid = 1
        meta = [{"ph": "M", "pid": pid, "name": "process_name",
                 "args": {"name": self.process}}]
        for track in sorted(self._tracks, key=lambda t: tids[t]):
            meta.append({"ph": "M", "pid": pid, "tid": tids[track],
                         "name": "thread_name", "args": {"name": track}})
            meta.append({"ph": "M", "pid": pid, "tid": tids[track],
                         "name": "thread_sort_index",
                         "args": {"sort_index": tids[track]}})

        # Sortable body events: key = (ts, rank, tiebreak).  At one
        # timestamp: close inner-then-outer (rank 0, later begin first),
        # then open outer-then-inner (rank 1, later end first), then
        # instants and counter samples (rank 2).
        body: List[Tuple[Tuple[float, int, float], dict]] = []
        for track, name, begin, end, args in self._spans:
            tid = tids[track]
            if end <= begin:
                event = {"ph": "i", "pid": pid, "tid": tid, "ts": begin,
                         "name": name, "s": "t"}
                if args:
                    event["args"] = args
                body.append(((begin, 2, 0.0), event))
                continue
            b_event = {"ph": "B", "pid": pid, "tid": tid, "ts": begin,
                       "name": name}
            if args:
                b_event["args"] = args
            body.append(((begin, 1, -end), b_event))
            body.append(((end, 0, -begin),
                         {"ph": "E", "pid": pid, "tid": tid, "ts": end,
                          "name": name}))
        for track, name, ts, args in self._instants:
            event = {"ph": "i", "pid": pid, "tid": tids[track], "ts": ts,
                     "name": name, "s": "t"}
            if args:
                event["args"] = args
            body.append(((ts, 2, 0.0), event))
        for track, series, ts, value in self._samples:
            body.append(((ts, 2, 0.0),
                         {"ph": "C", "pid": pid, "tid": tids[track],
                          "ts": ts, "name": series,
                          "args": {series: value}}))
        body.sort(key=lambda item: item[0])
        return {
            "traceEvents": meta + [event for _, event in body],
            "displayTimeUnit": "ns",
            "otherData": {"timestamp_unit": "simulated cycles"},
        }

    def export(self, path: str) -> None:
        """Write the Chrome trace-event JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)


class NullTracer(SpanTracer):
    """Disabled-mode tracer: every hook is a no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(process="null")

    def span(self, track, name, begin, end, **args) -> None:
        pass

    def declare(self, *tracks) -> None:
        pass

    def begin(self, track, name, ts, **args) -> None:
        pass

    def end(self, track, ts) -> None:
        pass

    def instant(self, track, name, ts, **args) -> None:
        pass

    def sample(self, track, series, ts, value) -> None:
        pass


#: Process-wide disabled tracer; safe to share (it records nothing).
NULL_TRACER = NullTracer()
