"""Offline HTML dashboard: run store + events + scorecard + attribution.

``repro report`` renders **one self-contained HTML file** — inline CSS,
inline SVG sparklines, zero scripts, zero external fetches — so the
artifact can be archived by CI, attached to a PR, or opened from a
tarball years later and still work.  Sections (each skipped gracefully
when its source payload is absent):

* header card: latest record's git SHA / fingerprint, store totals;
* run history table (newest first);
* latest scorecard: per-figure grade tables plus the global checks;
* metric trends: per-key SVG sparklines with regression badges, driven
  by :mod:`repro.obs.trend` under the diff gate's tolerance policies;
* campaign telemetry: per-campaign event rollups (cache hit/corrupt
  counters, stall flags, conservation verdict) and a tail excerpt of
  the raw event stream;
* attribution excerpt: the latest record's cycle-attribution shares
  and dominant bottleneck.

Everything here is pure string building over already-loaded payloads;
no simulation imports, so the report stays importable anywhere.
"""

from __future__ import annotations

import html
from typing import Dict, List, Optional, Sequence

from .events import Event, campaign_summaries
from .runstore import RunRecord, RunStore
from .trend import MetricTrend, TrendReport, trend_report

#: How many rows each section shows before truncating.
HISTORY_ROWS = 15
TREND_ROWS = 40
EVENT_TAIL_ROWS = 30

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 70rem; color: #1a2233;
       background: #f7f8fa; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; background: #fff;
        font-size: 0.85rem; }
th, td { border: 1px solid #d8dce3; padding: 0.3rem 0.55rem;
         text-align: left; }
th { background: #eceff4; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.card { background: #fff; border: 1px solid #d8dce3; border-radius: 6px;
        padding: 0.8rem 1rem; margin: 0.6rem 0; }
.badge { display: inline-block; border-radius: 3px; padding: 0 0.4rem;
         font-size: 0.75rem; font-weight: 600; }
.badge.ok { background: #d9f2e0; color: #19633a; }
.badge.warn { background: #fdeccc; color: #8a5a00; }
.badge.bad { background: #fbdddd; color: #9d1c1c; }
.badge.info { background: #dde7fb; color: #1c3f9d; }
.mono { font-family: ui-monospace, 'SF Mono', Menlo, monospace;
        font-size: 0.8rem; }
.muted { color: #6a7385; }
svg.spark { vertical-align: middle; }
footer { margin-top: 2.5rem; font-size: 0.75rem; color: #6a7385; }
"""


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _badge(text: str, tone: str) -> str:
    return f'<span class="badge {tone}">{_esc(text)}</span>'


def _status_badge(status: str) -> str:
    tone = {"regressed": "bad", "changed": "warn", "improved": "ok",
            "same": "info", "new": "info"}.get(status, "info")
    return _badge(status, tone)


def spark_svg(values: Sequence[float], width: int = 120,
              height: int = 24) -> str:
    """An inline SVG polyline sparkline (empty string for <2 points)."""
    if len(values) < 2:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    pad = 2
    step = (width - 2 * pad) / (len(values) - 1)
    points = " ".join(
        f"{pad + i * step:.1f},"
        f"{height - pad - (v - lo) / span * (height - 2 * pad):.1f}"
        for i, v in enumerate(values))
    return (f'<svg class="spark" width="{width}" height="{height}" '
            f'viewBox="0 0 {width} {height}">'
            f'<polyline fill="none" stroke="#3558c0" stroke-width="1.5" '
            f'points="{points}"/></svg>')


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Rows are pre-escaped/pre-rendered HTML cell strings."""
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join("<tr>" + "".join(f"<td>{cell}</td>" for cell in row)
                   + "</tr>" for row in rows)
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


# -- sections ------------------------------------------------------------------

def _header_section(records: List[RunRecord], store_root: str,
                    generated: str) -> str:
    latest = records[-1] if records else None
    bits = [f"<p class='muted'>store <span class='mono'>{_esc(store_root)}"
            f"</span> &middot; {len(records)} record(s)"
            f" &middot; generated {_esc(generated)}</p>"]
    if latest is not None:
        sha = str(latest.git.get("sha", "unknown"))[:12]
        dirty = " (dirty)" if latest.git.get("dirty") else ""
        bits.append(
            f"<div class='card'>latest: <span class='mono'>"
            f"{_esc(latest.record_id)}</span> [{_esc(latest.kind)}] "
            f"&middot; git <span class='mono'>{_esc(sha)}{_esc(dirty)}"
            f"</span> &middot; config <span class='mono'>"
            f"{_esc(latest.config_fingerprint)}</span></div>")
    return "\n".join(bits)


def _history_section(records: List[RunRecord]) -> str:
    if not records:
        return "<p class='muted'>run store is empty.</p>"
    rows = []
    for record in reversed(records[-HISTORY_ROWS:]):
        sha = str(record.git.get("sha", "unknown"))[:12]
        rows.append([
            f"<span class='mono'>{_esc(record.record_id)}</span>",
            _esc(record.kind), _esc(record.label or "-"),
            _esc(record.created), f"<span class='mono'>{_esc(sha)}</span>",
            _badge("tiny", "info") if record.tiny else "",
        ])
    note = ("" if len(records) <= HISTORY_ROWS else
            f"<p class='muted'>showing newest {HISTORY_ROWS} "
            f"of {len(records)}.</p>")
    return _table(("record", "kind", "label", "created", "git", ""),
                  rows) + note


def _scorecard_section(records: List[RunRecord]) -> str:
    payload = None
    source = None
    for record in reversed(records):
        candidate = record.extra.get("scorecard")
        if isinstance(candidate, dict) and candidate.get("entries"):
            payload, source = candidate, record
            break
    if payload is None:
        return ("<p class='muted'>no scorecard recorded yet "
                "(run: repro scorecard --record).</p>")
    by_figure: Dict[str, List[dict]] = {}
    for entry in payload["entries"]:
        by_figure.setdefault(str(entry.get("figure", "?")), []).append(entry)
    parts = [f"<p class='muted'>from <span class='mono'>"
             f"{_esc(source.record_id)}</span></p>"]
    for figure in sorted(by_figure):
        rows = []
        for entry in by_figure[figure]:
            grade = str(entry.get("grade", "?"))
            tone = {"A": "ok", "B": "ok", "C": "warn"}.get(grade, "bad")
            error = entry.get("error")
            rows.append([
                _esc(entry.get("kernel", "-")),
                _esc(entry.get("metric", "-")),
                _esc(entry.get("paper", "-")),
                _esc(entry.get("measured", "-")),
                "-" if not isinstance(error, (int, float))
                else f"{error:+.1%}",
                _badge(grade, tone)
                + (" " + _badge("known dev.", "info")
                   if entry.get("known_deviation") else ""),
            ])
        parts.append(f"<h3>{_esc(figure)}</h3>")
        parts.append(_table(("kernel", "metric", "paper", "measured",
                             "error", "grade"), rows))
    checks = payload.get("checks")
    if isinstance(checks, list) and checks:
        rows = [[_esc(c.get("name", "-")),
                 _badge("pass" if c.get("ok") else "FAIL",
                        "ok" if c.get("ok") else "bad"),
                 _esc(c.get("note", ""))] for c in checks]
        parts.append("<h3>global checks</h3>")
        parts.append(_table(("check", "status", "note"), rows))
    return "\n".join(parts)


def _trend_section(report: TrendReport) -> str:
    if report.records < 2:
        return (f"<p class='muted'>{report.records} record(s) — trends "
                f"need at least 2 comparable runs.</p>")
    regressions = report.regressions()
    parts = []
    if regressions:
        names = ", ".join(f"<span class='mono'>{_esc(t.name)}</span>"
                          for t in regressions[:8])
        parts.append(f"<div class='card'>{_badge('REGRESSED', 'bad')} "
                     f"{len(regressions)} gated metric(s) moved beyond "
                     f"the diff budget: {names}</div>")
    else:
        parts.append(f"<div class='card'>{_badge('clean', 'ok')} no gated "
                     f"metric regressed beyond the diff budget across "
                     f"{report.records} records.</div>")
    shown: List[MetricTrend] = report.moving()[:TREND_ROWS]
    if not shown:
        shown = [t for t in report.trends if len(t.values) >= 2][:12]
    rows = []
    for trend in shown:
        rel = trend.rel_delta
        rows.append([
            f"<span class='mono'>{_esc(trend.name)}</span>",
            spark_svg(trend.values),
            f"{trend.latest:g}",
            "-" if rel is None else f"{rel:+.1%}",
            _status_badge(trend.status)
            + ("" if trend.gate else " " + _badge("advisory", "info")),
        ])
    parts.append(_table(("metric", "trend", "latest", "step", "status"),
                        rows))
    return "\n".join(parts)


def _events_section(events: List[Event]) -> str:
    if not events:
        return ("<p class='muted'>no event log supplied "
                "(record one with: repro sweep --events).</p>")
    rows = []
    for summary in campaign_summaries(events):
        cache = summary["cache"]
        stalled = summary["stalled_units"]
        rows.append([
            f"<span class='mono'>{_esc(summary['campaign'])}</span>",
            _esc(summary["kind"] or "-"),
            f"{summary['units']}",
            f"{summary['events']}",
            f"{cache['hits']} hit / {cache['corrupt']} corrupt",
            _badge(f"{len(stalled)} stalled", "warn") if stalled else "-",
            _badge("conserved", "ok") if summary["conserved"]
            else _badge("VIOLATED", "bad"),
        ])
    parts = [_table(("campaign", "kind", "units", "events", "cache",
                     "stalls", "conservation"), rows)]
    tail = events[-EVENT_TAIL_ROWS:]
    tail_rows = [[f"{e.t:9.3f}", _esc(e.event), _esc(e.unit),
                  _esc(e.worker),
                  f"<span class='mono'>{_esc(e.detail) if e.detail else ''}"
                  f"</span>"] for e in tail]
    parts.append(f"<h3>event tail (last {len(tail)})</h3>")
    parts.append(_table(("t [s]", "event", "unit", "worker", "detail"),
                        tail_rows))
    return "\n".join(parts)


def _attribution_section(records: List[RunRecord]) -> str:
    payload = None
    source = None
    for record in reversed(records):
        candidate = record.extra.get("attribution")
        if isinstance(candidate, dict) and candidate.get("shares"):
            payload, source = candidate, record
            break
    if payload is None:
        return ("<p class='muted'>no attribution recorded yet "
                "(run: repro attribute --record).</p>")
    shares = payload["shares"]
    top = sorted(shares.items(), key=lambda kv: -float(kv[1]))[:10]
    rows = [[f"<span class='mono'>{_esc(name)}</span>",
             f"{float(value):.1%}"] for name, value in top]
    head = (f"<p class='muted'>from <span class='mono'>"
            f"{_esc(source.record_id)}</span> &middot; dominant: "
            f"{_badge(str(payload.get('dominant', '?')), 'info')}"
            f" &middot; top family: "
            f"{_badge(str(payload.get('top_family', '?')), 'info')}</p>")
    return head + _table(("bucket", "share of cycles"), rows)


# -- assembly ------------------------------------------------------------------

def build_report(store: RunStore, events: Optional[List[Event]] = None, *,
                 title: str = "EVE reproduction report", last: int = 20,
                 generated: str = "") -> str:
    """The full dashboard as one HTML string."""
    records = list(store.records())
    trends = trend_report(store, last=last)
    sections = [
        ("Run history", _history_section(records)),
        ("Fidelity scorecard", _scorecard_section(records)),
        ("Metric trends", _trend_section(trends)),
        ("Campaign telemetry", _events_section(events or [])),
        ("Cycle attribution", _attribution_section(records)),
    ]
    body = [f"<h1>{_esc(title)}</h1>",
            _header_section(records, store.root, generated)]
    for heading, content in sections:
        body.append(f"<h2>{_esc(heading)}</h2>")
        body.append(content)
    body.append("<footer>self-contained report — no scripts, no external "
                "resources; regenerate with: repro report</footer>")
    return ("<!DOCTYPE html>\n<html lang=\"en\"><head>"
            f"<meta charset=\"utf-8\"><title>{_esc(title)}</title>"
            f"<style>{_CSS}</style></head>\n<body>\n"
            + "\n".join(body) + "\n</body></html>\n")


def write_report(path: str, store: RunStore,
                 events: Optional[List[Event]] = None, *,
                 title: str = "EVE reproduction report", last: int = 20,
                 generated: str = "") -> int:
    """Render and write the report; returns the byte count written."""
    markup = build_report(store, events, title=title, last=last,
                          generated=generated)
    data = markup.encode("utf-8")
    with open(path, "wb") as handle:
        handle.write(data)
    return len(data)
