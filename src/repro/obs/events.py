"""Campaign telemetry: a schema-versioned, append-only JSONL event log.

Every campaign-scale run — a ``repro sweep`` over (system, workload)
cells, a fuzzing run over seeds, a fault-injection campaign — is a set
of *units of work* whose lifecycle this module records as events:

``queued``
    The parent registered the unit (always first).
``started``
    A worker began executing the unit (carries the worker id).
``heartbeat``
    The parent observed the unit still in flight (periodic; live-only).
``cache_hit``
    The unit was satisfied from the on-disk cell cache (terminal).
``cache_corrupt``
    A cache entry for the unit failed to unpickle; the offending file
    was quarantined (renamed, not deleted) and the unit re-simulated.
``finished`` / ``failed``
    The unit completed / raised (terminal; ``failed`` carries the
    error).
``cancelled``
    The unit was abandoned before executing (terminal): its job was
    cancelled, or the service drained on SIGTERM and checkpointed the
    remaining cells instead of running them.
``stalled``
    The watchdog flagged the unit as exceeding ``k x`` the historical
    p95 per-unit wall-clock (the unit may still finish later).

Invariants the log is designed around:

* **Conservation** — every queued unit gets *exactly one* terminal
  event (``cache_hit`` / ``finished`` / ``failed``); a violation means
  the campaign aborted mid-flight.  :func:`check_conservation` verifies
  this and ``repro events --check`` gates on it in CI.
* **Deterministic merge** — workers report their events through the
  pool's result channel; the parent buffers them and writes the log in
  *unit input order* (never completion order), so two runs of the same
  campaign produce the same ``(unit, event)`` sequence for the
  deterministic event kinds regardless of ``--jobs``.  ``heartbeat`` /
  ``stalled`` are wall-clock-driven and explicitly excluded.
* **Zero cost when off** — call sites hold :data:`NULL_TELEMETRY` and
  guard with its ``enabled`` flag, the same null-hook pattern the
  metrics registry and tracer use; a telemetry-off sweep executes the
  exact pre-telemetry code path and its results are byte-identical.

Timestamps are ``time.monotonic()`` seconds relative to the campaign
epoch.  On the platforms the toolkit targets the monotonic clock is
system-wide, so worker-process timestamps are directly comparable to
the parent's; the log never depends on wall-clock time.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

try:  # POSIX advisory locking; other hosts degrade to lockless appends.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None

from ..errors import EventLogError

#: Bump when the event layout changes incompatibly.
EVENT_SCHEMA_VERSION = 1

#: Default event-log location (sibling of ``runs.jsonl`` in the store).
DEFAULT_EVENTS_PATH = os.path.join(".eve-runs", "events.jsonl")

#: Every event kind the schema admits.
EVENT_KINDS = (
    "campaign_started", "queued", "started", "heartbeat", "cache_hit",
    "cache_corrupt", "finished", "failed", "cancelled", "stalled",
    "campaign_finished",
)

#: Exactly one of these per unit (the conservation invariant).
TERMINAL_EVENTS = ("cache_hit", "finished", "failed", "cancelled")

#: Wall-clock-driven kinds, excluded from determinism comparisons.
LIVE_EVENTS = ("heartbeat", "stalled")

#: ``unit`` value for campaign-scope events.
CAMPAIGN_UNIT = "*"

#: Within one unit the log orders events by lifecycle rank (stable, so
#: emission order breaks ties); terminal kinds share the final rank.
_RANK = {"queued": 0, "started": 1, "heartbeat": 2, "stalled": 3,
         "cache_corrupt": 4, "cache_hit": 5, "finished": 5, "failed": 5,
         "cancelled": 5}


# -- the event -----------------------------------------------------------------

@dataclass
class Event:
    """One schema-versioned telemetry event."""

    event: str
    unit: str
    t: float
    campaign: str
    seq: int = -1
    worker: str = "parent"
    fingerprint: str = ""
    detail: Dict[str, object] = field(default_factory=dict)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "v": EVENT_SCHEMA_VERSION, "seq": self.seq,
            "t": round(self.t, 6), "campaign": self.campaign,
            "event": self.event, "unit": self.unit, "worker": self.worker,
            "fp": self.fingerprint, "detail": self.detail,
        }

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "Event":
        if not isinstance(doc, dict):
            raise EventLogError(
                f"event must be an object, got {type(doc).__name__}")
        version = doc.get("v")
        if version != EVENT_SCHEMA_VERSION:
            raise EventLogError(
                f"event schema version {version!r} is not supported "
                f"(this build reads version {EVENT_SCHEMA_VERSION})")
        kind = doc.get("event")
        if kind not in EVENT_KINDS:
            raise EventLogError(f"unknown event kind {kind!r}")
        try:
            return cls(event=str(kind), unit=str(doc["unit"]),
                       t=float(doc["t"]), campaign=str(doc["campaign"]),
                       seq=int(doc.get("seq", -1)),
                       worker=str(doc.get("worker", "parent")),
                       fingerprint=str(doc.get("fp", "")),
                       detail=dict(doc.get("detail") or {}))
        except (KeyError, TypeError, ValueError) as exc:
            raise EventLogError(f"malformed event: {exc}") from exc


# -- the on-disk log -----------------------------------------------------------

class EventLog:
    """Append-only JSONL event file, flock-serialised like the run store.

    Concurrent campaigns appending to one log never interleave partial
    lines; readers tolerate trailing garbage on the final line (a
    crashed writer) but raise :class:`EventLogError` on any interior
    corruption.
    """

    def __init__(self, path: str = DEFAULT_EVENTS_PATH) -> None:
        self.path = path

    def append(self, events: Sequence[Event]) -> int:
        if not events:
            return 0
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                for event in events:
                    handle.write(json.dumps(event.to_json_dict(),
                                            sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return len(events)

    def read(self, campaign: Optional[str] = None) -> List["Event"]:
        return read_events(self.path, campaign=campaign)


def read_events(path: str, campaign: Optional[str] = None,
                tail: Optional[int] = None) -> List[Event]:
    """Every event in ``path`` (oldest first), optionally filtered to
    one campaign and/or the last ``tail`` events."""
    if not os.path.exists(path):
        raise EventLogError(f"no event log at {path!r} (record one with: "
                            f"repro sweep --events {path})")
    events: List[Event] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventLogError(
                    f"{path}:{lineno}: corrupt event: {exc}") from exc
            events.append(Event.from_json_dict(doc))
    if campaign is not None:
        events = [e for e in events if e.campaign == campaign]
    if tail is not None and tail >= 0:
        events = events[-tail:] if tail else []
    return events


def follow_events(path: str, poll_seconds: float = 0.5,
                  stop: Optional[Callable[[], bool]] = None,
                  campaign: Optional[str] = None) -> Iterable[Event]:
    """Yield events appended to ``path`` as they land (``tail -f``).

    Polls the flock'd JSONL for growth; a missing file simply means "no
    events yet" (the service may not have started its first campaign),
    and a shrinking file (rotated/truncated log) restarts from the top.
    A partial final line — an appender mid-write on a non-flock host —
    is buffered until its newline arrives, never parsed early.  ``stop``
    is checked once per poll; without one, iterate until interrupted.
    """
    offset = 0
    buffer = ""
    while True:
        size = os.path.getsize(path) if os.path.exists(path) else 0
        if size < offset:  # truncated or rotated: start over
            offset = 0
            buffer = ""
        if size > offset:
            with open(path) as handle:
                handle.seek(offset)
                chunk = handle.read()
                offset = handle.tell()
            buffer += chunk
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise EventLogError(
                        f"{path}: corrupt event while following: "
                        f"{exc}") from exc
                event = Event.from_json_dict(doc)
                if campaign is None or event.campaign == campaign:
                    yield event
            continue  # re-check immediately after a batch
        if stop is not None and stop():
            return
        time.sleep(poll_seconds)


# -- log analysis --------------------------------------------------------------

def check_conservation(events: Iterable[Event]) -> List[str]:
    """Violations of the one-terminal-event-per-unit invariant.

    Returns human-readable messages (empty list == conserved): units
    with zero or multiple terminal events, and terminal events for
    units that were never queued.
    """
    queued: Dict[Tuple[str, str], int] = {}
    terminal: Dict[Tuple[str, str], List[str]] = {}
    for event in events:
        if event.unit == CAMPAIGN_UNIT:
            continue
        key = (event.campaign, event.unit)
        if event.event == "queued":
            queued[key] = queued.get(key, 0) + 1
        elif event.event in TERMINAL_EVENTS:
            terminal.setdefault(key, []).append(event.event)
    violations = []
    for key, count in sorted(queued.items()):
        kinds = terminal.get(key, [])
        if count != 1:
            violations.append(
                f"{key[0]}: unit {key[1]!r} queued {count} times")
        if len(kinds) != 1:
            violations.append(
                f"{key[0]}: unit {key[1]!r} has {len(kinds)} terminal "
                f"event(s) {kinds} (want exactly 1)")
    for key, kinds in sorted(terminal.items()):
        if key not in queued:
            violations.append(
                f"{key[0]}: unit {key[1]!r} has terminal event(s) {kinds} "
                f"but was never queued")
    return violations


def campaign_summaries(events: Iterable[Event]) -> List[Dict[str, object]]:
    """Per-campaign rollup (kind, unit/event counts, cache telemetry,
    stall flags, wall-clock span), oldest campaign first."""
    order: List[str] = []
    table: Dict[str, Dict[str, object]] = {}
    for event in events:
        if event.campaign not in table:
            order.append(event.campaign)
            table[event.campaign] = {
                "campaign": event.campaign, "kind": "", "units": 0,
                "events": 0, "counts": {}, "cache": {"hits": 0, "corrupt": 0},
                "stalled_units": [], "seconds": 0.0, "conserved": True,
            }
        row = table[event.campaign]
        row["events"] += 1
        counts = row["counts"]
        counts[event.event] = counts.get(event.event, 0) + 1
        row["seconds"] = max(float(row["seconds"]), event.t)
        if event.event == "campaign_started":
            row["kind"] = str(event.detail.get("kind", ""))
            row["units"] = int(event.detail.get("units", 0))
        elif event.event == "cache_hit":
            row["cache"]["hits"] += 1
        elif event.event == "cache_corrupt":
            row["cache"]["corrupt"] += 1
        elif event.event == "stalled":
            if event.unit not in row["stalled_units"]:
                row["stalled_units"].append(event.unit)
    by_campaign: Dict[str, List[Event]] = {}
    for event in events:
        by_campaign.setdefault(event.campaign, []).append(event)
    for campaign, rows in by_campaign.items():
        table[campaign]["conserved"] = not check_conservation(rows)
    return [table[c] for c in order]


# -- the watchdog --------------------------------------------------------------

class Watchdog:
    """Flags units whose wall-clock exceeds ``factor x`` the p95 of
    historical per-unit durations.

    History blends two sources: durations observed *this* campaign
    (:meth:`observe`, preferred once ``min_history`` cells completed)
    and an optional prior from the run store (``hint_seconds``, e.g.
    the median per-cell wall-clock of past sweeps).  Until either
    exists the watchdog never fires — a cold first run cannot stall.
    """

    def __init__(self, factor: float = 4.0,
                 hint_seconds: Optional[float] = None,
                 min_seconds: float = 0.5, min_history: int = 3) -> None:
        if factor <= 1.0:
            raise EventLogError("watchdog factor must exceed 1.0")
        self.factor = factor
        self.hint_seconds = hint_seconds
        self.min_seconds = min_seconds
        self.min_history = min_history
        self.durations: List[float] = []

    def observe(self, seconds: float) -> None:
        """Record one completed unit's wall-clock seconds."""
        if seconds >= 0:
            self.durations.append(seconds)

    def p95(self) -> Optional[float]:
        """Historical p95 per-unit seconds, or ``None`` with no data."""
        if len(self.durations) >= self.min_history:
            ordered = sorted(self.durations)
            return ordered[min(len(ordered) - 1,
                               int(0.95 * (len(ordered) - 1) + 0.999))]
        return self.hint_seconds

    def threshold(self) -> Optional[float]:
        """Seconds after which an in-flight unit counts as stalled."""
        p95 = self.p95()
        if p95 is None:
            return None
        return max(self.min_seconds, self.factor * p95)

    def is_stalled(self, elapsed: float) -> bool:
        threshold = self.threshold()
        return threshold is not None and elapsed > threshold


# -- the telemetry hub ---------------------------------------------------------

def make_campaign_id(kind: str) -> str:
    """A sortable, process-unique campaign id."""
    return (f"{kind}-{time.strftime('%Y%m%dT%H%M%S')}"
            f"-{os.getpid() % 100000:05d}")


class NullTelemetry:
    """Do-nothing telemetry; the zero-cost default at every call site."""

    enabled = False

    def begin(self, units) -> None:
        pass

    def emit(self, event, unit, **kwargs) -> None:
        pass

    def unit_finished(self, unit, **kwargs) -> None:
        pass

    def heartbeat(self, in_flight) -> None:
        pass

    def finalize(self, detail=None):
        return {}


#: Shared no-op instance (the null-hook pattern; see obs.metrics).
NULL_TELEMETRY = NullTelemetry()


class CampaignTelemetry:
    """Buffers one campaign's events and writes them deterministically.

    The parent emits ``queued`` for every unit up front, workers hand
    their observations back through the pool's result channel
    (timestamps, worker pid, cache events), and the parent replays them
    as ``started`` / ``cache_*`` / terminal events per unit.  Live
    events (``heartbeat`` / ``stalled``) come from the parent's polling
    loop.  :meth:`finalize` orders everything — campaign header, then
    each unit's events in *input* order by lifecycle rank, then the
    campaign footer — assigns sequence numbers, and appends to the
    :class:`EventLog` (when one is attached) in a single locked write.
    """

    enabled = True

    def __init__(self, kind: str, *, log: Optional[EventLog] = None,
                 progress=None, watchdog: Optional[Watchdog] = None,
                 fingerprint: str = "", campaign_id: Optional[str] = None,
                 clock: Callable[[], float] = time.monotonic,
                 heartbeat_every: float = 5.0,
                 tap: Optional[Callable[[Event], None]] = None) -> None:
        self.kind = kind
        self.log = log
        self.progress = progress
        #: Live per-event callback, invoked at emission time (before the
        #: deterministic merge, so in *completion* order).  The job
        #: service uses it to stream NDJSON progress to HTTP subscribers
        #: while the campaign runs; a raising tap is dropped rather than
        #: allowed to fail the campaign.
        self.tap = tap
        self.watchdog = watchdog or Watchdog()
        self.fingerprint = fingerprint
        self.clock = clock
        self.epoch = clock()
        self.campaign = campaign_id or make_campaign_id(kind)
        self.heartbeat_every = heartbeat_every
        self._unit_order: List[str] = []
        self._unit_events: Dict[str, List[Event]] = {}
        self._head: List[Event] = []
        self._tail: List[Event] = []
        self._stalled: set = set()
        self._last_heartbeat = -float("inf")
        self._done = self._cached = self._failed = self._corrupt = 0
        self._finalized: Optional[Dict[str, object]] = None

    # -- time ------------------------------------------------------------------

    def now(self) -> float:
        """Seconds since the campaign epoch (monotonic)."""
        return self.clock() - self.epoch

    def to_rel(self, raw_monotonic: float) -> float:
        """Convert a worker's raw ``time.monotonic()`` reading to
        campaign-relative seconds (the monotonic clock is system-wide)."""
        return raw_monotonic - self.epoch

    # -- emission --------------------------------------------------------------

    def _event(self, event: str, unit: str, t: Optional[float],
               worker: str, detail: Optional[dict]) -> Event:
        return Event(event=event, unit=unit,
                     t=self.now() if t is None else t,
                     campaign=self.campaign, worker=worker,
                     fingerprint=self.fingerprint, detail=detail or {})

    def emit(self, event: str, unit: str, *, t: Optional[float] = None,
             worker: str = "parent", detail: Optional[dict] = None) -> None:
        if event not in EVENT_KINDS:
            raise EventLogError(f"unknown event kind {event!r}")
        record = self._event(event, unit, t, worker, detail)
        if self.tap is not None:
            try:
                self.tap(record)
            except Exception:
                self.tap = None  # a broken subscriber must not kill the run
        if unit == CAMPAIGN_UNIT:
            (self._head if not self._unit_order or event == "campaign_started"
             else self._tail).append(record)
            return
        if unit not in self._unit_events:
            self._unit_order.append(unit)
            self._unit_events[unit] = []
        self._unit_events[unit].append(record)

    def begin(self, units: Sequence[str]) -> None:
        """Register + queue every unit and announce the campaign."""
        if not self._head:
            self.emit("campaign_started", CAMPAIGN_UNIT,
                      detail={"kind": self.kind, "units": len(units)})
        t = self.now()
        for unit in units:
            self.emit("queued", unit, t=t)
        if self.progress is not None:
            self.progress.begin(len(units))

    def unit_finished(self, unit: str, *, ok: bool = True,
                      cached: bool = False, t_start: Optional[float] = None,
                      t_end: Optional[float] = None, worker: str = "parent",
                      detail: Optional[dict] = None,
                      events: Sequence[Tuple[str, dict]] = ()) -> None:
        """Record one unit's completion (started + extras + terminal).

        ``t_start`` / ``t_end`` are raw ``time.monotonic()`` readings
        from the worker (converted to campaign-relative here);
        ``events`` carries worker-side extras such as ``cache_corrupt``
        as ``(kind, detail)`` pairs.
        """
        start = self.to_rel(t_start) if t_start is not None else self.now()
        end = self.to_rel(t_end) if t_end is not None else self.now()
        if not cached:
            self.emit("started", unit, t=start, worker=worker)
        for kind, extra_detail in events:
            self.emit(kind, unit, t=end, worker=worker, detail=extra_detail)
            if kind == "cache_corrupt":
                self._corrupt += 1
        terminal = "cache_hit" if cached else ("finished" if ok else "failed")
        self.emit(terminal, unit, t=end, worker=worker, detail=detail)
        self._done += 1
        self._cached += bool(cached)
        self._failed += not ok
        if ok and not cached:
            self.watchdog.observe(end - start)
        if self.progress is not None:
            self.progress.update(self._done, cached=self._cached,
                                 failed=self._failed,
                                 stalled=len(self._stalled))

    def unit_cancelled(self, unit: str,
                       detail: Optional[dict] = None) -> None:
        """Record one unit's abandonment (terminal, conservation-safe):
        the queued cell will never execute because its job was cancelled
        or the service is draining."""
        self.emit("cancelled", unit, detail=detail)
        self._done += 1
        if self.progress is not None:
            self.progress.update(self._done, cached=self._cached,
                                 failed=self._failed,
                                 stalled=len(self._stalled))

    def heartbeat(self, in_flight: Dict[str, float]) -> None:
        """Periodic liveness check from the parent's polling loop.

        ``in_flight`` maps unit -> campaign-relative start seconds for
        the units believed to be executing right now.  Emits at most
        one ``heartbeat`` per unit per ``heartbeat_every`` window and a
        single ``stalled`` event the first time a unit crosses the
        watchdog threshold.
        """
        now = self.now()
        beat = now - self._last_heartbeat >= self.heartbeat_every
        if beat:
            self._last_heartbeat = now
        for unit, started in in_flight.items():
            elapsed = now - started
            if beat:
                self.emit("heartbeat", unit,
                          detail={"elapsed_seconds": round(elapsed, 3)})
            if unit not in self._stalled and self.watchdog.is_stalled(elapsed):
                self._stalled.add(unit)
                threshold = self.watchdog.threshold()
                self.emit("stalled", unit, detail={
                    "elapsed_seconds": round(elapsed, 3),
                    "threshold_seconds": round(threshold or 0.0, 3),
                    "factor": self.watchdog.factor})
        if self.progress is not None:
            self.progress.update(self._done, cached=self._cached,
                                 failed=self._failed,
                                 stalled=len(self._stalled),
                                 active=sorted(in_flight))

    @property
    def stalled_units(self) -> List[str]:
        return sorted(self._stalled)

    # -- the deterministic merge -----------------------------------------------

    def ordered_events(self) -> List[Event]:
        """All events in the canonical order: header, then each unit in
        input order with its events stable-sorted by lifecycle rank,
        then the footer."""
        out = list(self._head)
        for unit in self._unit_order:
            out.extend(sorted(self._unit_events[unit],
                              key=lambda e: _RANK.get(e.event, 9)))
        out.extend(self._tail)
        return out

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for events in self._unit_events.values():
            for event in events:
                counts[event.event] = counts.get(event.event, 0) + 1
        return counts

    def finalize(self, detail: Optional[dict] = None) -> Dict[str, object]:
        """Seal the campaign: emit the footer, write the log, report.

        Idempotent — a second call returns the first summary without
        re-appending to the log (the CLI calls this from ``finally``
        blocks so aborted campaigns still persist their events).
        """
        if self._finalized is not None:
            return self._finalized
        footer = dict(detail or {})
        footer.update({"units": len(self._unit_order),
                       "counts": self.counts()})
        self.emit("campaign_finished", CAMPAIGN_UNIT, detail=footer)
        events = self.ordered_events()
        for seq, event in enumerate(events):
            event.seq = seq
        written = self.log.append(events) if self.log is not None else 0
        if self.progress is not None:
            self.progress.finish()
        self._finalized = {
            "campaign": self.campaign, "kind": self.kind,
            "units": len(self._unit_order), "events": len(events),
            "written": written,
            "log_path": self.log.path if self.log is not None else None,
            "counts": self.counts(), "stalled": self.stalled_units,
            "seconds": self.now(),
        }
        return self._finalized


# -- the fan-out monitor -------------------------------------------------------

class TelemetryMonitor:
    """Adapts :class:`CampaignTelemetry` to the executor's fan-out hooks.

    The pool executor calls :meth:`on_dispatch` as specs are submitted,
    :meth:`on_complete` as observed results arrive (completion order —
    only *live* state depends on it), and :meth:`poll` between checks.
    ``describe`` extracts ``(cached, extra_events, detail)`` from a
    successful unit's return value; ``jobs`` bounds how many dispatched
    units are assumed to be actually executing (chunksize-1 pools start
    work in dispatch order).
    """

    def __init__(self, telemetry: CampaignTelemetry, units: Sequence[str],
                 describe: Optional[Callable] = None, jobs: int = 1) -> None:
        self.telemetry = telemetry
        self.units = list(units)
        self.describe = describe
        self.jobs = max(1, jobs)
        self._dispatched: Dict[int, float] = {}
        self._open: List[int] = []

    def on_dispatch(self, index: int) -> None:
        self._dispatched[index] = self.telemetry.now()
        self._open.append(index)

    def in_flight(self) -> Dict[str, float]:
        """unit -> start seconds for the (at most ``jobs``) oldest
        dispatched-but-unfinished units."""
        return {self.units[i]: self._dispatched[i]
                for i in self._open[:self.jobs]}

    def on_complete(self, index: int, observed: Dict[str, object]) -> None:
        unit = self.units[index]
        if index in self._open:
            self._open.remove(index)
        error = observed.get("error")
        value = observed.get("value")
        cached, extra_events, detail = False, (), None
        if error is not None:
            detail = {"error": f"{type(error).__name__}: {error}"}
        elif self.describe is not None:
            cached, extra_events, detail = self.describe(value)
        self.telemetry.unit_finished(
            unit, ok=error is None, cached=cached,
            t_start=observed.get("t0"), t_end=observed.get("t1"),
            worker=str(observed.get("pid", "parent")),
            detail=detail, events=extra_events)

    def poll(self) -> None:
        self.telemetry.heartbeat(self.in_flight())
