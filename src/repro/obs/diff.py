"""Record differ: compare two run records under per-metric tolerances.

Three tolerance-policy kinds cover everything a run record contains:

* **exact** — deterministic simulation outputs (cycle counts,
  instruction counts).  Any mismatch is a change; when the metric has a
  direction (cycles: lower is better) the change classifies as an
  improvement or a regression.
* **relative** — noisy host-side measurements (wall-clock seconds).
  Differences inside a relative epsilon are "same"; beyond it they
  classify by direction.  Wall-clock entries are advisory by default
  (``gate=False``) so CI noise cannot fail a build.
* **direction** — speedups.  Only movement *against* the metric's good
  direction beyond the budget is a regression; getting faster is an
  improvement, never a failure.

The differ reports added/removed keys, renders a human table via
:func:`repro.experiments.report.format_table`, emits machine-readable
JSON, and drives the CLI's nonzero-on-regression exit code.
"""

from __future__ import annotations

from dataclasses import dataclass
from fnmatch import fnmatchcase
from typing import Dict, List, Optional, Sequence, Tuple

from .runstore import RunRecord, flatten_record

#: Relative budget a speedup may lose before the gate calls it a regression.
DEFAULT_SPEEDUP_BUDGET = 0.05

#: Relative epsilon for host wall-clock comparisons (noisy across hosts).
WALLCLOCK_EPSILON = 0.75

#: Floating-point slack for "exact" comparisons of float-typed counters.
EXACT_SLACK = 1e-9

STATUS_ORDER = ("regressed", "changed", "removed", "added", "improved", "same")


@dataclass(frozen=True)
class TolerancePolicy:
    """How one metric family is compared.

    ``higher_is_better`` gives the metric a direction (``None`` means a
    difference is just a "change"); ``gate`` says whether a regression
    under this policy should fail the build.
    """

    kind: str  # "exact" | "relative" | "direction"
    rel_eps: float = 0.0
    higher_is_better: Optional[bool] = None
    gate: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("exact", "relative", "direction"):
            raise ValueError(f"unknown tolerance-policy kind {self.kind!r}")
        if self.kind == "direction" and self.higher_is_better is None:
            raise ValueError("direction policies need higher_is_better")
        if self.rel_eps < 0:
            raise ValueError("rel_eps must be non-negative")

    def classify(self, baseline: float, current: float) -> str:
        """One of ``same`` / ``improved`` / ``regressed`` / ``changed``."""
        if self.kind == "exact":
            if abs(current - baseline) <= EXACT_SLACK:
                return "same"
            return self._directional(baseline, current)
        # relative and direction both use a relative band around baseline.
        scale = max(abs(baseline), EXACT_SLACK)
        if abs(current - baseline) <= self.rel_eps * scale:
            return "same"
        return self._directional(baseline, current)

    def _directional(self, baseline: float, current: float) -> str:
        if self.higher_is_better is None:
            return "changed"
        got_better = (current > baseline) == self.higher_is_better
        return "improved" if got_better else "regressed"


def exact(higher_is_better: Optional[bool] = None,
          gate: bool = True) -> TolerancePolicy:
    return TolerancePolicy("exact", higher_is_better=higher_is_better,
                           gate=gate)


def relative(rel_eps: float, higher_is_better: Optional[bool] = None,
             gate: bool = False) -> TolerancePolicy:
    return TolerancePolicy("relative", rel_eps=rel_eps,
                           higher_is_better=higher_is_better, gate=gate)


def direction(rel_eps: float = DEFAULT_SPEEDUP_BUDGET,
              higher_is_better: bool = True,
              gate: bool = True) -> TolerancePolicy:
    return TolerancePolicy("direction", rel_eps=rel_eps,
                           higher_is_better=higher_is_better, gate=gate)


#: Ordered (pattern, policy) pairs; first match wins.  Patterns match the
#: flat key families produced by :func:`repro.obs.runstore.flatten_record`.
def default_policies(
        speedup_budget: float = DEFAULT_SPEEDUP_BUDGET,
) -> List[Tuple[str, TolerancePolicy]]:
    return [
        ("speedup.*", direction(speedup_budget, higher_is_better=True)),
        ("results.*.cycles", exact(higher_is_better=False)),
        ("results.*.time_ns", exact(higher_is_better=False)),
        ("results.*.instructions", exact(higher_is_better=None)),
        ("metrics.*", exact(higher_is_better=None, gate=False)),
        # Attribution shares are deterministic fractions of the (exact)
        # cycle count; a small relative budget absorbs trace-content
        # shifts while still flagging genuine bottleneck drift.  Gated,
        # so ``repro diff --strict`` enforces golden-file discipline.
        ("attribution.*", relative(0.05, higher_is_better=None, gate=True)),
        ("self_profile.*.seconds",
         relative(WALLCLOCK_EPSILON, higher_is_better=False, gate=False)),
        ("bench.*", relative(WALLCLOCK_EPSILON, higher_is_better=False,
                             gate=False)),
        ("*", relative(WALLCLOCK_EPSILON, higher_is_better=None,
                       gate=False)),
    ]


def policy_for(name: str,
               policies: Sequence[Tuple[str, TolerancePolicy]],
               ) -> TolerancePolicy:
    for pattern, policy in policies:
        if fnmatchcase(name, pattern):
            return policy
    return relative(WALLCLOCK_EPSILON, gate=False)


@dataclass
class DiffEntry:
    name: str
    baseline: Optional[float]
    current: Optional[float]
    status: str
    policy: str
    gate: bool

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def rel_delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None or not self.baseline:
            return None
        return (self.current - self.baseline) / abs(self.baseline)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "rel_delta": self.rel_delta,
            "status": self.status,
            "policy": self.policy,
            "gate": self.gate,
        }


class RecordDiff:
    """The comparison of two records; drives tables, JSON, exit codes."""

    def __init__(self, baseline: RunRecord, current: RunRecord,
                 entries: List[DiffEntry]) -> None:
        self.baseline = baseline
        self.current = current
        self.entries = entries

    def regressions(self) -> List[DiffEntry]:
        return [e for e in self.entries
                if e.status == "regressed" and e.gate]

    def gated_changes(self) -> List[DiffEntry]:
        return [e for e in self.entries
                if e.gate and e.status in ("changed", "regressed")]

    def interesting(self) -> List[DiffEntry]:
        """Everything except unchanged entries, worst first."""
        rank = {status: i for i, status in enumerate(STATUS_ORDER)}
        rows = [e for e in self.entries if e.status != "same"]
        rows.sort(key=lambda e: (rank[e.status], e.name))
        return rows

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {status: 0 for status in STATUS_ORDER}
        for entry in self.entries:
            out[entry.status] += 1
        return out

    def exit_code(self, strict: bool = False) -> int:
        """Nonzero on any gated regression (``strict``: on any gated
        change at all, the golden-file discipline)."""
        failing = self.gated_changes() if strict else self.regressions()
        return 1 if failing else 0

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "baseline": {"record_id": self.baseline.record_id,
                         "kind": self.baseline.kind,
                         "label": self.baseline.label,
                         "git_sha": self.baseline.git.get("sha", "unknown"),
                         "fingerprint": self.baseline.config_fingerprint},
            "current": {"record_id": self.current.record_id,
                        "kind": self.current.kind,
                        "label": self.current.label,
                        "git_sha": self.current.git.get("sha", "unknown"),
                        "fingerprint": self.current.config_fingerprint},
            "fingerprint_match": (self.baseline.config_fingerprint
                                  == self.current.config_fingerprint),
            "counts": self.counts(),
            "regressions": [e.name for e in self.regressions()],
            "entries": [e.to_json_dict() for e in self.interesting()],
        }

    def table_rows(self) -> List[List[object]]:
        rows = []
        for entry in self.interesting():
            rows.append([
                entry.name,
                "-" if entry.baseline is None else entry.baseline,
                "-" if entry.current is None else entry.current,
                "-" if entry.rel_delta is None
                else f"{entry.rel_delta:+.1%}",
                entry.status + ("" if entry.gate else " (advisory)"),
            ])
        return rows


def diff_records(baseline: RunRecord, current: RunRecord,
                 policies: Optional[Sequence[Tuple[str,
                                                   TolerancePolicy]]] = None,
                 speedup_budget: float = DEFAULT_SPEEDUP_BUDGET,
                 ) -> RecordDiff:
    """Compare two records key-by-key under the tolerance policies."""
    if policies is None:
        policies = default_policies(speedup_budget)
    flat_base = flatten_record(baseline)
    flat_cur = flatten_record(current)
    entries: List[DiffEntry] = []
    for name in sorted(set(flat_base) | set(flat_cur)):
        policy = policy_for(name, policies)
        base_v = flat_base.get(name)
        cur_v = flat_cur.get(name)
        if base_v is None:
            status = "added"
        elif cur_v is None:
            status = "removed"
        else:
            status = policy.classify(base_v, cur_v)
        entries.append(DiffEntry(name=name, baseline=base_v, current=cur_v,
                                 status=status, policy=policy.kind,
                                 gate=policy.gate))
    return RecordDiff(baseline, current, entries)
