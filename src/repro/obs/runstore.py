"""Longitudinal run store: every experiment leaves a durable record.

The in-run observability layer (metrics, tracer, self-profiler) answers
"what happened in *this* run"; the :class:`RunStore` answers "what
happened across the PR trajectory".  Every ``repro run`` / ``compare`` /
``stats`` / ``scorecard`` invocation and every ``bench_smoke`` execution
can archive a schema-versioned :class:`RunRecord` — git SHA, config
fingerprint, host info, per-(system, workload) cycle counts, the flat
metrics snapshot, and the self-profiler's host wall-clock — into an
append-only JSONL file under ``.eve-runs/``.

Storage layout (``root`` defaults to ``.eve-runs``)::

    .eve-runs/runs.jsonl    one JSON record per line, append-only
    .eve-runs/index.json    id -> summary cache (rebuilt if missing)

``runs.jsonl`` is the source of truth; the index is a derived cache so a
corrupted or deleted index never loses history.  Records are compared by
:mod:`repro.obs.diff` and rendered by ``repro history``.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional

try:  # POSIX advisory locking; Windows degrades to lockless appends.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None

from ..errors import RunStoreError

#: Bump when the record layout changes incompatibly.  Loading a record
#: with a different major version raises :class:`RunStoreError` — a diff
#: across schema generations would silently compare the wrong keys.
SCHEMA_VERSION = 1

DEFAULT_ROOT = ".eve-runs"
RUNS_FILENAME = "runs.jsonl"
INDEX_FILENAME = "index.json"
LOCK_FILENAME = ".lock"


# -- environment capture -------------------------------------------------------

def git_info(cwd: Optional[str] = None) -> Dict[str, object]:
    """Best-effort ``{sha, dirty}`` of the enclosing git checkout."""

    def _git(*argv: str) -> Optional[str]:
        try:
            out = subprocess.run(
                ("git",) + argv, cwd=cwd, capture_output=True, text=True,
                timeout=10)
        except (OSError, subprocess.SubprocessError):
            return None
        return out.stdout.strip() if out.returncode == 0 else None

    sha = _git("rev-parse", "HEAD")
    status = _git("status", "--porcelain")
    return {"sha": sha or "unknown",
            "dirty": bool(status) if status is not None else False}


def host_info() -> Dict[str, str]:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "system": platform.system(),
    }


def config_fingerprint(extra: Optional[dict] = None) -> str:
    """Digest of every Table III system config (plus any extra payload,
    e.g. workload parameter overrides), so a diff can tell "the code
    changed" from "the experiment changed"."""
    from ..config import all_system_names, make_system
    payload = {name: asdict(make_system(name)) for name in all_system_names()}
    if extra:
        payload["__extra__"] = extra
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:12]


# -- the record ----------------------------------------------------------------

@dataclass
class RunRecord:
    """One archived experiment: identity, environment, and measurements.

    ``results`` maps ``system -> workload -> {cycles, time_ns,
    instructions}`` (the deterministic core every diff keys on);
    ``speedups`` maps ``workload -> system -> speedup`` relative to
    ``speedup_baseline``; ``metrics`` is a flat ``name -> scalar`` view
    of a :class:`~repro.obs.MetricsRegistry`; ``extra`` carries
    kind-specific payloads (bench wall-clock, scorecard summaries).
    """

    kind: str
    label: str = ""
    schema_version: int = SCHEMA_VERSION
    record_id: str = ""
    created: str = ""
    git: Dict[str, object] = field(default_factory=dict)
    host: Dict[str, str] = field(default_factory=dict)
    config_fingerprint: str = ""
    tiny: bool = False
    command: str = ""
    results: Dict[str, Dict[str, Dict[str, float]]] = field(default_factory=dict)
    speedup_baseline: str = ""
    speedups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    metrics: Dict[str, float] = field(default_factory=dict)
    self_profile: Dict[str, Dict[str, float]] = field(default_factory=dict)
    extra: Dict[str, object] = field(default_factory=dict)

    def add_result(self, system: str, workload: str, *, cycles: float,
                   time_ns: float, instructions: int = 0) -> None:
        self.results.setdefault(system, {})[workload] = {
            "cycles": cycles, "time_ns": time_ns,
            "instructions": instructions}

    def to_json_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "RunRecord":
        if not isinstance(doc, dict):
            raise RunStoreError(f"run record must be an object, "
                                f"got {type(doc).__name__}")
        version = doc.get("schema_version")
        if version != SCHEMA_VERSION:
            raise RunStoreError(
                f"run record schema version {version!r} is not supported "
                f"(this build reads version {SCHEMA_VERSION}); re-record "
                f"the baseline with the current toolkit")
        if "kind" not in doc:
            raise RunStoreError("run record is missing its 'kind' field")
        unknown = set(doc) - set(cls.__dataclass_fields__)
        if unknown:
            raise RunStoreError(
                f"run record carries unknown fields {sorted(unknown)} "
                f"(schema version {SCHEMA_VERSION})")
        return cls(**doc)


def make_record(kind: str, *, label: str = "", tiny: bool = False,
                command: str = "", extra: Optional[dict] = None,
                fingerprint_extra: Optional[dict] = None) -> RunRecord:
    """A new record stamped with the current environment."""
    return RunRecord(
        kind=kind, label=label, tiny=tiny, command=command,
        created=time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime()),
        git=git_info(), host=host_info(),
        config_fingerprint=config_fingerprint(fingerprint_extra),
        extra=dict(extra or {}))


def flatten_record(record: RunRecord) -> Dict[str, float]:
    """Scalar ``name -> value`` view a differ can compare key-by-key.

    Key families (the diff's tolerance policies match on these):

    * ``results.<system>.<workload>.cycles`` / ``.time_ns`` /
      ``.instructions`` — deterministic simulation outputs;
    * ``speedup.<workload>.<system>`` — relative performance
      (direction-aware in the differ);
    * ``metrics.<name>`` — the flat registry snapshot;
    * ``self_profile.<phase>.seconds`` — host wall-clock (noisy,
      advisory);
    * ``bench.<workload>.<field>`` — bench_smoke wall-clock;
    * ``faults.<field>`` / ``faults.<dim>.<bucket>.<field>`` — a
      fault-injection campaign's classification counts and SDC rates
      (deterministic given the campaign seed);
    * ``attribution.<unit>.<bucket>`` / ``attribution.bound_by.<class>``
      — cycle-attribution shares of the achieved cycles (bottleneck
      drift; see :mod:`repro.obs.flame`).
    """
    out: Dict[str, float] = {}
    for system, workloads in record.results.items():
        for workload, fields_ in workloads.items():
            for key, value in fields_.items():
                out[f"results.{system}.{workload}.{key}"] = float(value)
    for workload, systems in record.speedups.items():
        for system, value in systems.items():
            out[f"speedup.{workload}.{system}"] = float(value)
    for name, value in record.metrics.items():
        if isinstance(value, (int, float)):
            out[f"metrics.{name}"] = float(value)
    for phase, info in record.self_profile.items():
        seconds = info.get("seconds") if isinstance(info, dict) else info
        if isinstance(seconds, (int, float)):
            out[f"self_profile.{phase}.seconds"] = float(seconds)
    bench = record.extra.get("bench_workloads")
    if isinstance(bench, dict):
        for workload, fields_ in bench.items():
            if isinstance(fields_, dict):
                for key, value in fields_.items():
                    if isinstance(value, (int, float)):
                        out[f"bench.{workload}.{key}"] = float(value)
    sweep = record.extra.get("sweep")
    if isinstance(sweep, dict):
        for key, value in sweep.items():
            if isinstance(value, (int, float)):
                out[f"bench.sweep.{key}"] = float(value)
    attribution = record.extra.get("attribution")
    if isinstance(attribution, dict):
        shares = attribution.get("shares")
        if isinstance(shares, dict):
            for name, value in shares.items():
                if isinstance(value, (int, float)):
                    out[f"attribution.{name}"] = float(value)
    campaign = record.extra.get("campaign")
    if isinstance(campaign, dict):
        for key in ("count", "sdc_rate", "detected_rate"):
            value = campaign.get(key)
            if isinstance(value, (int, float)):
                out[f"faults.{key}"] = float(value)
        counts = campaign.get("counts")
        if isinstance(counts, dict):
            for name, value in counts.items():
                if isinstance(value, (int, float)):
                    out[f"faults.counts.{name}"] = float(value)
        for dim in ("by_factor", "by_model", "by_family"):
            table = campaign.get(dim)
            if not isinstance(table, dict):
                continue
            for bucket, fields_ in table.items():
                if isinstance(fields_, dict):
                    for key, value in fields_.items():
                        if isinstance(value, (int, float)):
                            out[f"faults.{dim}.{bucket}.{key}"] = float(value)
    return out


# -- the store -----------------------------------------------------------------

class RunStore:
    """Append-only archive of :class:`RunRecord` lines plus an index.

    Appends are serialised by an advisory ``flock`` on ``.lock`` so
    concurrent sweep workers (or parallel CI jobs sharing one store) get
    unique sequence ids and never interleave partial JSONL lines, and
    the index is always rewritten atomically (unique temp file +
    ``os.replace``) so readers never observe a half-written cache.
    """

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root

    @property
    def runs_path(self) -> str:
        return os.path.join(self.root, RUNS_FILENAME)

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, INDEX_FILENAME)

    @property
    def lock_path(self) -> str:
        return os.path.join(self.root, LOCK_FILENAME)

    # -- locking ---------------------------------------------------------------

    @contextmanager
    def _locked(self):
        """Exclusive advisory lock over the store (no-op off-POSIX).

        Not re-entrant: public mutators take it once and call only
        unlocked ``_``-helpers inside.
        """
        os.makedirs(self.root, exist_ok=True)
        handle = open(self.lock_path, "a+")
        try:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            finally:
                handle.close()

    # -- writing ---------------------------------------------------------------

    def append(self, record: RunRecord) -> str:
        """Assign an id, append one JSONL line, refresh the index.

        Safe against concurrent appenders: id assignment, the JSONL
        write (flushed and fsync'd before the lock drops), and the index
        refresh happen under the store lock.
        """
        with self._locked():
            index = self._load_index()
            seq = int(index.get("next_seq",
                                len(index.get("records", [])) + 1))
            record.record_id = f"{seq:06d}-{record.kind}"
            with open(self.runs_path, "a") as handle:
                handle.write(json.dumps(record.to_json_dict(),
                                        sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            index["next_seq"] = seq + 1
            index.setdefault("records", []).append(self._summary(record))
            self._write_index(index)
        return record.record_id

    def append_all(self, records: List[RunRecord]) -> List[str]:
        """Append many records under a single lock acquisition.

        The service's drain checkpoint archives every completed job in
        one batch; taking the store lock once per batch (instead of per
        record) keeps the drain window short and guarantees the batch's
        ids are consecutive.  Returns the assigned record ids.
        """
        if not records:
            return []
        ids: List[str] = []
        with self._locked():
            index = self._load_index()
            seq = int(index.get("next_seq",
                                len(index.get("records", [])) + 1))
            with open(self.runs_path, "a") as handle:
                for record in records:
                    record.record_id = f"{seq:06d}-{record.kind}"
                    seq += 1
                    ids.append(record.record_id)
                    handle.write(json.dumps(record.to_json_dict(),
                                            sort_keys=True) + "\n")
                    index.setdefault("records", []).append(
                        self._summary(record))
                handle.flush()
                os.fsync(handle.fileno())
            index["next_seq"] = seq
            self._write_index(index)
        return ids

    @staticmethod
    def _summary(record: RunRecord) -> Dict[str, object]:
        return {
            "record_id": record.record_id,
            "kind": record.kind,
            "label": record.label,
            "created": record.created,
            "git_sha": str(record.git.get("sha", "unknown"))[:12],
            "dirty": bool(record.git.get("dirty", False)),
            "tiny": record.tiny,
            "fingerprint": record.config_fingerprint,
        }

    # -- reading ---------------------------------------------------------------

    def records(self) -> Iterator[RunRecord]:
        """Every record, oldest first (empty iterator if no store yet)."""
        if not os.path.exists(self.runs_path):
            return
        with open(self.runs_path) as handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise RunStoreError(
                        f"{self.runs_path}:{lineno}: corrupt record: {exc}") from exc
                yield RunRecord.from_json_dict(doc)

    def history(self, limit: Optional[int] = None,
                kind: Optional[str] = None) -> List[Dict[str, object]]:
        """Index summaries, newest first."""
        index = self._load_index()
        rows = list(index.get("records", []))
        if kind is not None:
            rows = [r for r in rows if r.get("kind") == kind]
        rows.reverse()
        return rows[:limit] if limit else rows

    def load(self, record_id: str) -> RunRecord:
        for record in self.records():
            if record.record_id == record_id:
                return record
        raise RunStoreError(f"no record {record_id!r} in {self.root} "
                            f"(see 'repro history')")

    def latest(self, kind: Optional[str] = None, back: int = 0) -> RunRecord:
        """The most recent record (``back`` steps earlier if given)."""
        matches = [r for r in self.records()
                   if kind is None or r.kind == kind]
        if len(matches) <= back:
            raise RunStoreError(
                f"run store {self.root} holds {len(matches)} "
                f"{kind or 'any'}-kind record(s); cannot go back {back}")
        return matches[-1 - back]

    def resolve(self, ref: str) -> RunRecord:
        """A record from a flexible reference: ``latest`` / ``latest~N``,
        a record id from the store, or a path to a record JSON file (the
        committed golden baseline)."""
        if ref == "latest" or ref.startswith("latest~"):
            back = int(ref.split("~", 1)[1]) if "~" in ref else 0
            return self.latest(back=back)
        if os.path.sep in ref or ref.endswith(".json") or os.path.exists(ref):
            return load_record_file(ref)
        return self.load(ref)

    # -- the index cache -------------------------------------------------------

    def _load_index(self) -> Dict[str, object]:
        try:
            with open(self.index_path) as handle:
                index = json.load(handle)
            if not isinstance(index, dict):
                raise ValueError("index is not an object")
            return index
        except (OSError, ValueError):
            return self._rebuild_index()

    def _write_index(self, index: Dict[str, object]) -> None:
        # Unique temp name + os.replace: a crashed or concurrent writer
        # can never leave a torn index or clobber another's temp file.
        os.makedirs(self.root, exist_ok=True)
        tmp = f"{self.index_path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w") as handle:
                json.dump(index, handle, indent=2, sort_keys=True)
            os.replace(tmp, self.index_path)
        finally:
            if os.path.exists(tmp):  # pragma: no cover - error path
                os.unlink(tmp)

    def rebuild_index(self) -> Dict[str, object]:
        """Recreate the index cache from ``runs.jsonl`` (source of
        truth), serialised against concurrent appenders."""
        with self._locked():
            return self._rebuild_index()

    def _rebuild_index(self) -> Dict[str, object]:
        records = list(self.records()) if os.path.exists(self.runs_path) else []
        seqs = [int(r.record_id.split("-", 1)[0]) for r in records
                if r.record_id]
        index = {
            "version": 1,
            "next_seq": (max(seqs) + 1) if seqs else 1,
            "records": [self._summary(r) for r in records],
        }
        if records:
            self._write_index(index)
        return index


def load_record_file(path: str) -> RunRecord:
    """Read one record from a standalone JSON file (golden baselines)."""
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise RunStoreError(
            f"cannot read record file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise RunStoreError(f"{path} is not valid JSON: {exc}") from exc
    return RunRecord.from_json_dict(doc)
