"""Flamegraph and Perfetto exports for the attributed timeline.

Two render targets for :mod:`repro.obs.attribution` output:

* **Folded stacks** — the classic ``a;b;c <count>`` format flamegraph.pl
  / speedscope / inferno all read.  The stack hierarchy is
  ``workload;macro-family;opcode;stall-bucket`` and the count is the
  timeline cycles charged, so the flame width partitions the achieved
  cycle count exactly (conservation guarantees it).
* **Perfetto counter tracks** — a Chrome trace-event JSON document with
  one cumulative counter per stall bucket, sampled at each instruction's
  dispatch point; load it next to a ``repro trace`` span file to see
  *where in the run* each stall class accumulated.

Plus :func:`attribution_record_payload`, the flattened top-level shares
stored in ``RunRecord.extra["attribution"]`` so ``repro diff`` can gate
on bottleneck drift.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .attribution import ROOT_NODE, AttributionCollector, NodeAttribution
from .critpath import BottleneckReport, classify_bucket


def folded_stacks(nodes: Sequence[NodeAttribution],
                  workload: str) -> List[str]:
    """Render attributed nodes as folded-stack lines.

    One line per ``workload;macro;opcode;bucket`` leaf with the summed
    timeline cycles (rounded to integer "samples", the format's native
    unit).  Lines are sorted for deterministic output; zero-cycle leaves
    are dropped.
    """
    counts: Dict[Tuple[str, str, str], float] = {}
    for node in nodes:
        for bucket, cycles in node.timeline.items():
            key = (node.macro, node.label, bucket)
            counts[key] = counts.get(key, 0.0) + cycles
    lines = []
    for (macro, label, bucket), cycles in sorted(counts.items()):
        samples = int(round(cycles))
        if samples > 0:
            lines.append(f"{workload};{macro};{label};{bucket} {samples}")
    return lines


def write_folded(path: str, lines: Sequence[str]) -> None:
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")


def counter_trace_dict(nodes: Sequence[NodeAttribution],
                       process: str = "repro-attribution") -> dict:
    """Chrome trace-event document with cumulative stall-bucket counters.

    One counter track per timeline bucket; each instruction contributes a
    sample at its span start with the running total of cycles charged to
    that bucket so far (in node order — program order).  Rendered by
    Perfetto as stacked area graphs.
    """
    pid = 1
    events: List[dict] = [{
        "ph": "M", "pid": pid, "name": "process_name",
        "args": {"name": process}}]
    ordered = sorted((n for n in nodes if n.node != ROOT_NODE),
                     key=lambda n: (n.start, n.node))
    cumulative: Dict[str, float] = {}
    tids: Dict[str, int] = {}
    body: List[dict] = []
    for node in ordered:
        for bucket, cycles in sorted(node.timeline.items()):
            cumulative[bucket] = cumulative.get(bucket, 0.0) + cycles
            tid = tids.setdefault(bucket, len(tids) + 1)
            body.append({
                "ph": "C", "pid": pid, "tid": tid, "ts": node.start,
                "name": f"attr:{bucket}",
                "args": {bucket: cumulative[bucket]}})
    for bucket, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name",
                       "args": {"name": f"attr:{bucket}"}})
    events.extend(body)
    return {"traceEvents": events, "displayTimeUnit": "ns",
            "otherData": {"timestamp_unit": "simulated cycles"}}


def attribution_record_payload(collector: AttributionCollector,
                               report: Optional[BottleneckReport] = None
                               ) -> dict:
    """Flat attribution shares for ``RunRecord.extra["attribution"]``.

    ``shares`` holds only scalars so ``flatten_record`` can expose them
    as ``attribution.<key>`` for ``repro diff`` drift gating: per-unit
    per-bucket shares of the achieved cycles, the bound-by taxonomy
    split, and the critical-path summary.
    """
    total = collector.total_cycles or 1.0
    shares: Dict[str, float] = {}
    for unit, buckets in sorted(collector.unit_totals().items()):
        for bucket, cycles in sorted(buckets.items()):
            shares[f"{unit}.{bucket}"] = cycles / total
    if report is not None:
        for cls, share in sorted(report.bound_by.items()):
            shares[f"bound_by.{cls}"] = share
        shares["critical_path.cycles"] = report.critical_path.cycles
        shares["critical_path.share"] = (
            report.critical_path.cycles / total)
        shares["stall.total"] = report.total_stall
    payload = {"cycles": collector.total_cycles,
               "timeline_units": list(collector.timeline_units),
               "shares": shares}
    if report is not None:
        payload["dominant"] = report.dominant
        payload["top_family"] = (report.families[0].label
                                 if report.families else "")
    return payload


__all__ = [
    "folded_stacks", "write_folded", "counter_trace_dict",
    "attribution_record_payload", "classify_bucket",
]
