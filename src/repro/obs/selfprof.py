"""Wall-clock self-profiler: where does the *simulator's* host time go?

ROADMAP's north star is simulator speed, so the toolkit watches its own
perf trajectory: the :class:`SelfProfiler` attributes host wall-clock
seconds to named phases (``trace_build``, ``sim:<system>``, ``report``)
via nestable context managers.  ``benchmarks/bench_smoke.py`` and
``repro run --record`` archive these numbers into the run store
(:mod:`repro.obs.runstore`) so CI records the trend.

Each phase records **exclusive** time: a child phase's elapsed seconds
are subtracted from its enclosing phase, so nesting (a ``sim:`` phase
inside a ``sweep`` phase) never double-counts and
``sum(profiler.seconds.values())`` equals the wall-clock spent inside
top-level phases.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List


class SelfProfiler:
    """Accumulates host wall-clock time per named phase (exclusive)."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        #: Stack of open frames: ``[name, child_elapsed_seconds]``.
        self._stack: List[List[object]] = []

    @contextmanager
    def phase(self, name: str):
        """Time a phase; nested phases record exclusive time (the parent
        is charged only for seconds not attributed to a child phase)."""
        frame: List[object] = [name, 0.0]
        self._stack.append(frame)
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            exclusive = max(0.0, elapsed - float(frame[1]))
            self.seconds[name] = self.seconds.get(name, 0.0) + exclusive
            self.calls[name] = self.calls.get(name, 0) + 1
            if self._stack:
                self._stack[-1][1] = float(self._stack[-1][1]) + elapsed

    @property
    def current_phase(self) -> str:
        return str(self._stack[-1][0]) if self._stack else ""

    def total(self) -> float:
        """Seconds spent inside top-level phases.  Because every phase is
        exclusive, this is a plain sum with no double-counting."""
        return sum(self.seconds.values())

    def absorb(self, phases: Dict[str, Dict[str, float]],
               prefix: str = "") -> None:
        """Merge another profiler's :meth:`as_dict` output into this one,
        optionally namespaced (``prefix="worker:"`` keeps child-process
        time distinguishable from the parent's own phases).  Keys are
        merged in sorted order so repeated merges are deterministic."""
        for name in sorted(phases):
            info = phases[name]
            key = prefix + name
            self.seconds[key] = (self.seconds.get(key, 0.0)
                                 + float(info.get("seconds", 0.0)))
            self.calls[key] = (self.calls.get(key, 0)
                               + int(info.get("calls", 0)))

    def as_dict(self) -> Dict[str, object]:
        return {name: {"seconds": self.seconds[name],
                       "calls": self.calls[name]}
                for name in sorted(self.seconds)}

    def merged(self, prefix_sep: str = ":") -> Dict[str, float]:
        """Phase seconds with per-instance suffixes collapsed
        (``sim:O3+EVE-4`` and ``sim:IO`` merge into ``sim``)."""
        out: Dict[str, float] = {}
        for name, secs in self.seconds.items():
            key = name.split(prefix_sep, 1)[0]
            out[key] = out.get(key, 0.0) + secs
        return out
