"""Wall-clock self-profiler: where does the *simulator's* host time go?

ROADMAP's north star is simulator speed, so the toolkit watches its own
perf trajectory: the :class:`SelfProfiler` attributes host wall-clock
seconds to named phases (``trace_build``, ``sim:<system>``, ``report``)
via nestable context managers.  ``benchmarks/bench_smoke.py`` and
``repro run --record`` archive these numbers into the run store
(:mod:`repro.obs.runstore`) so CI records the trend.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, List


class SelfProfiler:
    """Accumulates host wall-clock time per named phase."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._stack: List[str] = []

    @contextmanager
    def phase(self, name: str):
        """Time a phase; nested phases accumulate independently."""
        self._stack.append(name)
        start = time.perf_counter()
        try:
            yield self
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    @property
    def current_phase(self) -> str:
        return self._stack[-1] if self._stack else ""

    def total(self) -> float:
        """Seconds in top-level phases (nested time is not double-counted
        because only phases are accumulated, and callers nest sparingly)."""
        return sum(self.seconds.values())

    def as_dict(self) -> Dict[str, object]:
        return {name: {"seconds": self.seconds[name],
                       "calls": self.calls[name]}
                for name in sorted(self.seconds)}

    def merged(self, prefix_sep: str = ":") -> Dict[str, float]:
        """Phase seconds with per-instance suffixes collapsed
        (``sim:O3+EVE-4`` and ``sim:IO`` merge into ``sim``)."""
        out: Dict[str, float] = {}
        for name, secs in self.seconds.items():
            key = name.split(prefix_sep, 1)[0]
            out[key] = out.get(key, 0.0) + secs
        return out
