"""Columnar view of a trace: the analysis passes' shared substrate.

The checker suite must stay a few percent of trace-build time so strict
mode can run on every freshly built trace.  Per-event Python property
walks (``instr.reads`` builds a tuple per instruction) are too slow for
that, so this module lowers the whole trace into numpy columns in one
pass — opcode ids, operand registers, vector lengths — and derives the
def-use facts with array operations:

* reaching definitions via a key-sorted ``searchsorted`` (register ×
  event-index keys make "latest def of r strictly before i" a binary
  search);
* use counts / last uses per definition via ``bincount`` / ``maximum.at``;
* kill sites and live-out sets from the reg-major def ordering;
* the ``vl`` state machine via ``searchsorted`` over vsetvl sites.

Everything downstream (checkers, DepGraph construction, the DefUse
convenience view) reads these arrays instead of the event objects.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..isa.instructions import MemAccess, ScalarBlock, VectorInstr
from ..isa.opcodes import OPCODES
from ..isa.trace import Trace

#: Stable opcode -> small-int id (table order).
OP_ID: Dict[str, int] = {name: i for i, name in enumerate(OPCODES)}
OP_NAME: List[str] = list(OPCODES)

_I = np.int64


def _flag_table(attr: str) -> np.ndarray:
    return np.array([getattr(info, attr) for info in OPCODES.values()],
                    dtype=bool)


IS_STORE = _flag_table("is_store")
IS_LOAD = _flag_table("is_load")
IS_REDUCTION = _flag_table("is_reduction")
WRITES_SCALAR = _flag_table("writes_scalar")
IS_MEMORY = np.array([info.category.is_memory for info in OPCODES.values()],
                     dtype=bool)

SETVL = OP_ID["vsetvl"]
FENCE = OP_ID["vmfence"]
VMV_X_S = OP_ID["vmv.x.s"]
VMV_S_X = OP_ID["vmv.s.x"]

#: Use-slot codes: which operand position a (use, reg) record came from.
SLOT_VS1, SLOT_VS2, SLOT_VIDX, SLOT_STORE, SLOT_VOLD, SLOT_MASK = range(6)


class TraceColumns:
    """One trace lowered to arrays; all fields are program-order parallel
    over the *vector* instructions (``row`` indexes them; ``self.index``
    maps rows back to event indices within the full event list)."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.n_events = len(trace.events)
        index, op_id, vl, vd, vs1, vs2, vidx, vold, masked, scalar = \
            [], [], [], [], [], [], [], [], [], []
        mem_rows: List[Tuple[int, MemAccess]] = []
        # Bound-method locals halve the extraction loop's cost (it is the
        # single largest slice of check_trace's strict-mode budget).
        ap_index, ap_op, ap_vl, ap_vd = (index.append, op_id.append,
                                         vl.append, vd.append)
        ap_vs1, ap_vs2, ap_vidx, ap_vold = (vs1.append, vs2.append,
                                            vidx.append, vold.append)
        ap_masked, ap_scalar, ap_mem = (masked.append, scalar.append,
                                        mem_rows.append)
        op_table = OP_ID
        for i, e in enumerate(trace.events):
            if type(e) is VectorInstr:
                ap_index(i)
                ap_op(op_table[e.op])
                ap_vl(e.vl)
                ap_vd(e.vd)
                ap_vs1(e.vs1)
                ap_vs2(e.vs2)
                ap_vidx(e.vidx)
                ap_vold(e.vold)
                ap_masked(e.masked)
                ap_scalar(e.scalar)
                if e.mem is not None:
                    ap_mem((i, e.mem))
            elif type(e) is ScalarBlock:
                for access in e.accesses:
                    ap_mem((i, access))
        self.index = np.array(index, dtype=_I)
        self.op_id = np.array(op_id, dtype=_I)
        self.vl = np.array(vl, dtype=_I)
        self.vd = np.array(vd, dtype=_I)
        self.vs1 = np.array(vs1, dtype=_I)
        self.vs2 = np.array(vs2, dtype=_I)
        self.vidx = np.array(vidx, dtype=_I)
        self.vold = np.array(vold, dtype=_I)
        self.masked = np.array(masked, dtype=bool)
        self.scalar = np.array(scalar, dtype=_I)
        #: (event index, MemAccess) for every memory access, program order.
        self.mem_rows = mem_rows

        self.is_store = IS_STORE[self.op_id]
        self.is_reduction = IS_REDUCTION[self.op_id]
        #: Destination register (-1 for stores and scalar writers).
        self.dest = np.where(self.is_store | WRITES_SCALAR[self.op_id],
                             -1, self.vd)
        self._build_defs_uses()
        self._build_vl_state()

    # -- defs, uses, reaching bindings -------------------------------------

    def _build_defs_uses(self) -> None:
        n = max(self.n_events, 1)
        defining = self.dest >= 0
        #: Per definition (program order): event index, register, vl, op.
        self.def_event = self.index[defining]
        self.def_reg = self.dest[defining]
        self.def_vl = self.vl[defining]
        self.def_op_id = self.op_id[defining]

        order = np.argsort(self.def_reg * n + self.def_event, kind="stable")
        self._def_order = order
        self._def_keys = (self.def_reg * n + self.def_event)[order]
        #: Defs in (register, event) order — consecutive same-register
        #: entries are redefinition (WAW) pairs.
        self.def_sorted_reg = self.def_reg[order]
        self.def_sorted_event = self.def_event[order]
        #: Event index of the next def of the same register, -1 = live-out.
        killed_sorted = np.full(len(order), -1, dtype=_I)
        if len(order) > 1:
            same = self.def_sorted_reg[1:] == self.def_sorted_reg[:-1]
            killed_sorted[:-1][same] = self.def_sorted_event[1:][same]
        self.def_killed_by = np.empty(len(order), dtype=_I)
        self.def_killed_by[order] = killed_sorted
        self._live_out_def_pos = order[killed_sorted < 0]

        # Use records: one per (instruction, operand-slot) register read.
        rows, regs, slots = [], [], []
        for slot, (sel, reg) in enumerate((
                (self.vs1 >= 0, self.vs1),
                (self.vs2 >= 0, self.vs2),
                (self.vidx >= 0, self.vidx),
                (self.is_store & (self.vd >= 0), self.vd),
                (self.vold >= 0, self.vold),
                (self.masked, np.zeros_like(self.vs1)))):
            picked = np.nonzero(sel)[0]
            rows.append(picked)
            regs.append(reg[picked])
            slots.append(np.full(len(picked), slot, dtype=_I))
        self.use_row = np.concatenate(rows)
        self.use_reg = np.concatenate(regs)
        self.use_slot = np.concatenate(slots)
        self.use_event = self.index[self.use_row]

        # Bind each use to its reaching definition (or -1 if none): the
        # greatest def key strictly below reg*n + event is the latest def
        # of that register before the use.
        pos = np.searchsorted(self._def_keys, self.use_reg * n
                              + self.use_event, side="left") - 1
        if len(order):
            in_range = pos >= 0
            bound_sorted = np.where(in_range, pos, 0)
            valid = in_range & (self.def_sorted_reg[bound_sorted]
                                == self.use_reg)
            #: Per use: index into the def arrays, -1 when uninitialized.
            self.use_def = np.where(valid, order[bound_sorted], -1)
        else:
            valid = np.zeros(len(self.use_row), dtype=bool)
            self.use_def = np.full(len(self.use_row), -1, dtype=_I)

        self.def_use_count = np.bincount(
            self.use_def[valid], minlength=len(self.def_event)).astype(_I)
        self.def_last_use = np.full(len(self.def_event), -1, dtype=_I)
        np.maximum.at(self.def_last_use, self.use_def[valid],
                      self.use_event[valid])

    # -- vl state -----------------------------------------------------------

    def _build_vl_state(self) -> None:
        setvl_rows = np.nonzero(self.op_id == SETVL)[0]
        self.setvl_event = self.index[setvl_rows]
        self.setvl_vl = self.vl[setvl_rows]
        self.setvl_avl = self.scalar[setvl_rows]
        #: Per row: event index of the governing vsetvl (-1 = none yet)
        #: and the vl it granted (0 before the first vsetvl).  For vsetvl
        #: rows these describe the *previous* grant.
        if len(self.setvl_event):
            slot = np.searchsorted(self.setvl_event, self.index,
                                   side="left") - 1
            governed = slot >= 0
            clamped = np.where(governed, slot, 0)
            self.vl_setter = np.where(governed, self.setvl_event[clamped], -1)
            self.vl_granted = np.where(governed, self.setvl_vl[clamped], 0)
        else:
            self.vl_setter = np.full(len(self.index), -1, dtype=_I)
            self.vl_granted = np.zeros(len(self.index), dtype=_I)

    # -- derived summaries ---------------------------------------------------

    def fence_events(self) -> List[int]:
        """Event indices of every ``vmfence``, program order."""
        return self.index[self.op_id == FENCE].tolist()

    def dead_def_positions(self) -> np.ndarray:
        """Defs never used and later overwritten (true dead writes)."""
        return np.nonzero((self.def_use_count == 0)
                          & (self.def_killed_by >= 0))[0]

    def live_out(self) -> Dict[int, int]:
        """Register -> def position of the value live at trace end."""
        return {int(self.def_reg[pos]): int(pos)
                for pos in self._live_out_def_pos}

    def live_high_water(self) -> int:
        """Max simultaneously live values (def-to-last-use interval sweep).

        A value occupies its register through its last use (+1 so a
        same-instruction def of another register overlaps it); live-out
        values extend to trace end; dead writes contribute nothing.
        """
        live_out = self.def_killed_by < 0
        used = self.def_use_count > 0
        keep = live_out | used
        if not keep.any():
            return 0
        start = self.def_event[keep]
        end = np.where(live_out[keep], self.n_events,
                       self.def_last_use[keep] + 1)
        delta = np.zeros(self.n_events + 2, dtype=_I)
        np.add.at(delta, start, 1)
        np.add.at(delta, end, -1)
        return int(np.cumsum(delta).max())
