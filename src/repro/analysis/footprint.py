"""Memory-footprint analysis: byte intervals per buffer + dependences.

Each :class:`~repro.isa.instructions.MemAccess` is folded into one byte
interval ``[lo, hi)`` — exact for unit-stride accesses, a conservative
hull for strided and indexed patterns.  The hull is sound for both uses
here: an interval contained in a buffer proves every element access is
in bounds (addresses are monotone within the hull), and dependence
edges derived from hull overlap over-approximate the true alias relation
(extra edges only ever serialise the dependence graph further, never
miss an ordering).

Dependences are tracked with a last-writer segment map per address
space: disjoint written segments each remember their writing event, and
readers-since-last-write accumulate per segment range.  A store draws
WAW edges to the writers it overlaps and WAR edges to the readers it
overlaps, then replaces that range; a load draws RAW edges to the
writers it overlaps.  ``vmfence`` events order all memory traffic across
them.  :class:`~repro.isa.instructions.ScalarBlock` accesses participate
under the block's event index.

The checker fast path only needs the intervals and the out-of-bounds
verdicts; pass ``with_deps=False`` to get a *lite* footprint that skips
the (sequential) segment map **and** the per-access object view —
:attr:`MemoryFootprint.accesses`, :attr:`MemoryFootprint.touched`, and
:attr:`MemoryFootprint.edges` stay empty and only
:attr:`MemoryFootprint.out_of_bounds` is populated.
:func:`repro.analysis.depgraph.build_depgraph` requests the full
version.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass, field
from operator import attrgetter
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..isa.instructions import MemAccess
from ..isa.trace import Trace
from .columns import TraceColumns


def access_interval(access: MemAccess) -> Tuple[int, int]:
    """Conservative byte-interval hull ``[lo, hi)`` of one access."""
    if access.addresses is not None:
        addrs = access.element_addresses()
        if addrs.size == 0:
            return (0, 0)
        return (int(addrs.min()), int(addrs.max()) + access.elem_bytes)
    if access.count <= 0:
        return (access.base, access.base)
    span = access.stride * (access.count - 1)
    lo = access.base + min(0, span)
    return (lo, access.base + max(0, span) + access.elem_bytes)


class BufferMap:
    """Declared buffer extents, answering interval-containment queries."""

    def __init__(self, buffers: Dict[str, Tuple[int, int]]) -> None:
        #: Sorted (base, end, name) triples.
        self.extents: List[Tuple[int, int, str]] = sorted(
            (base, base + size, name)
            for name, (base, size) in buffers.items())
        self._bases = np.array([base for base, _, _ in self.extents])
        self._ends = np.array([end for _, end, _ in self.extents])

    def __len__(self) -> int:
        return len(self.extents)

    def containing(self, lo: int, hi: int) -> Optional[str]:
        """Name of the buffer fully containing ``[lo, hi)``, else ``None``."""
        slot = int(np.searchsorted(self._bases, lo, side="right")) - 1
        if slot < 0:
            return None
        base, end, name = self.extents[slot]
        if lo >= base and hi <= end:
            return name
        return None

    def containing_many(self, lo: np.ndarray,
                        hi: np.ndarray) -> np.ndarray:
        """Per interval: index into :attr:`extents`, or -1 when not fully
        contained in any buffer."""
        slot = np.searchsorted(self._bases, lo, side="right") - 1
        clamped = np.where(slot >= 0, slot, 0)
        inside = ((slot >= 0) & (lo >= self._bases[clamped])
                  & (hi <= self._ends[clamped]))
        return np.where(inside, clamped, -1)


@dataclass
class MemEvent:
    """One memory access attributed to a trace event."""

    index: int
    interval: Tuple[int, int]
    is_store: bool
    buffer: Optional[str]       #: containing buffer, ``None`` if OOB/unknown


@dataclass
class MemoryFootprint:
    """Byte footprints and the memory dependence relation of one trace."""

    #: Per-access object view; empty on the lite path (``with_deps=False``).
    accesses: List[MemEvent]
    #: Buffer name -> total distinct byte-interval hull touched, as merged
    #: disjoint intervals; empty on the lite path.
    touched: Dict[str, List[Tuple[int, int]]]
    #: Memory-ordering edges (src event, dst event, kind) with kind in
    #: {"mem-raw", "mem-war", "mem-waw", "fence"}; src < dst always.
    #: Only populated when built ``with_deps`` (see :attr:`has_deps`).
    edges: List[Tuple[int, int, str]]
    #: Accesses whose hull is not contained in any declared buffer
    #: (empty when the trace declares no buffers at all).
    out_of_bounds: List[MemEvent] = field(default_factory=list)
    has_deps: bool = True


class _SegmentMap:
    """Disjoint last-writer segments plus readers-since-write, by start."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        #: start -> (end, writer event, set of reader events since)
        self._segs: Dict[int, Tuple[int, int, Set[int]]] = {}

    def _overlapping(self, lo: int, hi: int) -> List[int]:
        if not self._starts or lo >= hi:
            return []
        slot = bisect_right(self._starts, lo) - 1
        out = []
        if slot >= 0:
            start = self._starts[slot]
            if self._segs[start][0] > lo:
                out.append(start)
        slot += 1
        while slot < len(self._starts) and self._starts[slot] < hi:
            out.append(self._starts[slot])
            slot += 1
        return out

    def load(self, index: int, lo: int, hi: int,
             edges: List[Tuple[int, int, str]]) -> None:
        for start in self._overlapping(lo, hi):
            _end, writer, readers = self._segs[start]
            if writer >= 0 and writer != index:
                edges.append((writer, index, "mem-raw"))
            readers.add(index)
        # Track readers of never-written ranges too (for WAR on input
        # buffers): materialise a writer-less segment covering the gaps.
        self._fill_gaps(lo, hi, reader=index)

    def store(self, index: int, lo: int, hi: int,
              edges: List[Tuple[int, int, str]]) -> None:
        for start in self._overlapping(lo, hi):
            end, writer, readers = self._segs[start]
            if writer >= 0 and writer != index:
                edges.append((writer, index, "mem-waw"))
            for reader in readers:
                if reader != index:
                    edges.append((reader, index, "mem-war"))
            # Trim the old segment to the parts outside [lo, hi).
            self._remove(start)
            if start < lo:
                self._insert(start, min(end, lo), writer, set(readers))
            if end > hi:
                self._insert(max(start, hi), end, writer, set(readers))
        self._insert(lo, hi, index, set())

    def _fill_gaps(self, lo: int, hi: int, reader: int) -> None:
        cursor = lo
        for start in self._overlapping(lo, hi):
            end = self._segs[start][0]
            if start > cursor:
                self._insert(cursor, start, -1, {reader})
            cursor = max(cursor, end)
        if cursor < hi:
            self._insert(cursor, hi, -1, {reader})

    def _insert(self, lo: int, hi: int, writer: int, readers: Set[int]) -> None:
        if lo >= hi:
            return
        insort(self._starts, lo)
        self._segs[lo] = (hi, writer, readers)

    def _remove(self, start: int) -> None:
        del self._segs[start]
        self._starts.pop(bisect_left(self._starts, start))


def _merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    merged: List[Tuple[int, int]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], hi))
        else:
            merged.append((lo, hi))
    return merged


_ACCESS_FIELDS = attrgetter("base", "stride", "count", "elem_bytes",
                            "is_store", "addresses")


def _access_intervals(
        mem_rows: List[Tuple[int, MemAccess]]
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized :func:`access_interval` over every access: arrays
    ``(lo, hi, is_store)``, program order."""
    if not mem_rows:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), np.zeros(0, dtype=bool)
    base, stride, count, elem_bytes, is_store, addresses = zip(
        *(_ACCESS_FIELDS(access) for _index, access in mem_rows))
    base = np.array(base, dtype=np.int64)
    span = (np.array(stride, dtype=np.int64)
            * (np.maximum(np.array(count, dtype=np.int64), 1) - 1))
    eb = np.array(elem_bytes, dtype=np.int64)
    lo = base + np.minimum(0, span)
    hi = base + np.maximum(0, span) + eb
    # Degenerate (count <= 0) and indexed accesses take the scalar path.
    for slot, (count_slot, addrs) in enumerate(zip(count, addresses)):
        if addrs is not None or count_slot <= 0:
            lo[slot], hi[slot] = access_interval(mem_rows[slot][1])
    return lo, hi, np.array(is_store, dtype=bool)


def build_footprint(trace: Trace, columns: Optional[TraceColumns] = None,
                    with_deps: bool = True) -> MemoryFootprint:
    """Fold every memory access into intervals (and dependence edges)."""
    cols = columns if columns is not None else TraceColumns(trace)
    buffer_map = BufferMap(trace.buffers or {})
    mem_rows = cols.mem_rows
    lo, hi, is_store = _access_intervals(mem_rows)
    if len(buffer_map) and len(mem_rows):
        containing = buffer_map.containing_many(lo, hi)
    else:
        containing = np.full(len(mem_rows), -1, dtype=np.int64)

    oob: List[MemEvent] = []
    if len(buffer_map):
        for slot in np.nonzero(containing < 0)[0]:
            index, _access = mem_rows[slot]
            oob.append(MemEvent(index=index,
                                interval=(int(lo[slot]), int(hi[slot])),
                                is_store=bool(is_store[slot]), buffer=None))
    if not with_deps:
        return MemoryFootprint(accesses=[], touched={}, edges=[],
                               out_of_bounds=oob, has_deps=False)

    accesses: List[MemEvent] = []
    per_buffer: Dict[str, List[Tuple[int, int]]] = {}
    for slot, (index, _access) in enumerate(mem_rows):
        name = (buffer_map.extents[containing[slot]][2]
                if containing[slot] >= 0 else None)
        mem_event = MemEvent(index=index,
                             interval=(int(lo[slot]), int(hi[slot])),
                             is_store=bool(is_store[slot]), buffer=name)
        accesses.append(mem_event)
        if name is not None:
            per_buffer.setdefault(name, []).append(mem_event.interval)

    fences = cols.fence_events()
    touched = {name: _merge_intervals(spans)
               for name, spans in per_buffer.items()}
    return MemoryFootprint(accesses=accesses, touched=touched,
                           edges=_dependence_edges(accesses, fences),
                           out_of_bounds=oob, has_deps=True)


def _dependence_edges(accesses: List[MemEvent],
                      fences: List[int]) -> List[Tuple[int, int, str]]:
    """Sequential last-writer segment sweep (DepGraph construction only)."""
    edges: List[Tuple[int, int, str]] = []
    segments = _SegmentMap()
    last_fence = -1
    since_fence: List[int] = []
    fence_slot = 0
    for mem_event in accesses:
        index = mem_event.index
        while fence_slot < len(fences) and fences[fence_slot] < index:
            fence = fences[fence_slot]
            for touched in since_fence:
                edges.append((touched, fence, "fence"))
            last_fence, since_fence = fence, []
            fence_slot += 1
        if last_fence >= 0 and (not since_fence or since_fence[-1] != index):
            edges.append((last_fence, index, "fence"))
        if not since_fence or since_fence[-1] != index:
            since_fence.append(index)
        lo, hi = mem_event.interval
        if mem_event.is_store:
            segments.store(index, lo, hi, edges)
        else:
            segments.load(index, lo, hi, edges)
    while fence_slot < len(fences):
        fence = fences[fence_slot]
        for touched in since_fence:
            edges.append((touched, fence, "fence"))
        since_fence = []
        fence_slot += 1
    return sorted(set(edges))
