"""Whole-trace static analysis over the Trace/VectorInstr/ScalarBlock IR.

Layered like a small compiler middle-end:

* :mod:`repro.analysis.columns` — the shared vectorized substrate: the
  whole trace lowered to numpy columns with reaching definitions, use
  counts, kill sites, and the ``vl`` state machine derived by array ops;
* :mod:`repro.analysis.defuse` — the def-use object view (per-def use
  lists, liveness) materialised from the columns for walking callers;
* :mod:`repro.analysis.footprint` — byte-interval memory footprints per
  buffer plus the load/store dependence (alias) relation;
* :mod:`repro.analysis.depgraph` — the exported :class:`DepGraph`
  (nodes = trace events, edges = register RAW/WAR/WAW + memory + vl +
  fence dependences) that the trace compiler will consume;
* :mod:`repro.analysis.replay` — a trace-level reference executor used
  to validate the dependence graph (any topological order must produce
  bit-identical state) and to cross-check corpus observations;
* :mod:`repro.analysis.checkers` — the hazard checker suite behind
  ``repro check`` and the strict-mode experiment hook.
"""

from .checkers import (AnalysisReport, AnalysisSummary, analyze_trace,
                       check_trace, require_clean)
from .columns import TraceColumns
from .defuse import DefUse, build_defuse
from .depgraph import DepEdge, DepGraph, build_depgraph
from .footprint import BufferMap, MemoryFootprint, build_footprint
from .replay import TraceReplayer

__all__ = [
    "AnalysisReport", "AnalysisSummary", "analyze_trace", "check_trace",
    "require_clean", "TraceColumns", "DefUse", "build_defuse", "DepEdge",
    "DepGraph", "build_depgraph", "BufferMap", "MemoryFootprint",
    "build_footprint", "TraceReplayer",
]
