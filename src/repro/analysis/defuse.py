"""Def-use chains, liveness, and the ``vl`` state machine for one trace.

Traces are straight-line programs (the workload generators unroll all
control flow), so reaching definitions are exact — SSA in all but name:
every definition site is a unique (event index, register) pair and every
use binds to exactly one reaching definition or to "uninitialized".

The heavy lifting lives in :class:`repro.analysis.columns.TraceColumns`
(vectorized, shared with the checkers and the dependence graph); this
module materialises the object view — per-definition use lists, kill
sites, live-out sets — for callers that want to walk the facts rather
than batch over them (tests, ``repro stats``, the corpus cross-check).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isa.trace import Trace
from .columns import TraceColumns


@dataclass
class RegDef:
    """One definition site of a vector register."""

    index: int              #: event index of the defining instruction
    reg: int
    vl: int                 #: vector length the definition was made at
    uses: List[int] = field(default_factory=list)   #: event indices
    killed_by: int = -1     #: index of the next def of the same reg; -1 = live-out

    @property
    def is_dead(self) -> bool:
        """Defined, never used, and overwritten later (a true dead write)."""
        return not self.uses and self.killed_by >= 0

    @property
    def live_out(self) -> bool:
        return self.killed_by < 0


@dataclass
class DefUse:
    """Whole-trace def-use facts (see :func:`build_defuse`)."""

    #: All definition sites, in program order.
    defs: List[RegDef]
    #: (event index, register) pairs read without any reaching definition.
    uninit_uses: List[Tuple[int, int]]
    #: Registers still holding a value at trace end: reg -> final RegDef.
    live_out: Dict[int, RegDef]
    #: Maximum number of simultaneously live register values.
    live_high_water: int

    @property
    def dead_defs(self) -> List[RegDef]:
        return [d for d in self.defs if d.is_dead]


def build_defuse(trace: Trace,
                 columns: Optional[TraceColumns] = None) -> DefUse:
    """Materialise the def-use object view from the columnar facts."""
    cols = columns if columns is not None else TraceColumns(trace)
    defs = [RegDef(index=int(cols.def_event[pos]),
                   reg=int(cols.def_reg[pos]),
                   vl=int(cols.def_vl[pos]),
                   killed_by=int(cols.def_killed_by[pos]))
            for pos in range(len(cols.def_event))]
    for use in range(len(cols.use_row)):
        pos = int(cols.use_def[use])
        if pos >= 0:
            uses = defs[pos].uses
            event = int(cols.use_event[use])
            if not uses or uses[-1] != event:
                uses.append(event)
    for d in defs:
        d.uses.sort()
    uninit = sorted(
        (int(cols.use_event[use]), int(cols.use_reg[use]))
        for use in range(len(cols.use_row)) if cols.use_def[use] < 0)
    live_out = {reg: defs[pos] for reg, pos in cols.live_out().items()}
    return DefUse(defs=defs, uninit_uses=uninit, live_out=live_out,
                  live_high_water=cols.live_high_water())
