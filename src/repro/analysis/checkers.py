"""The trace checker suite behind ``repro check`` and strict mode.

Eight rules over the def-use and footprint facts (``error`` unless noted):

``uninit-read``
    A vector register is read with no reaching definition.
``dead-write``
    A definition with zero uses that a later definition of the same
    register overwrites (live-out values are not flagged).
``oob-footprint``
    A memory access whose byte-interval hull is not fully contained in
    one declared buffer (checked only when the trace declares buffers).
``avl-vlmax``
    ``vsetvl`` misuse: a grant different from ``min(avl, vlmax)``, an
    instruction executing at a ``vl`` other than the current grant, or a
    vector instruction before any ``vsetvl`` (checked only when the
    trace records its ``vlmax``).
``mask-undefined``
    A predicated instruction whose v0 has no reaching compare, or whose
    reaching compare ran at a shorter ``vl`` than the use.
``overlap-hazard``
    An instruction whose destination register is also one of its source
    registers — the destructive-overlap class PR 5's fuzzer caught
    dynamically (an in-place engine clobbers its own input mid-read).
``reduction-order``
    A reduction consuming a source defined at a shorter ``vl`` than the
    reduction folds over (the tail lanes' fold order is undefined).
``tail-undefined`` (warning)
    Any other read beyond the producing definition's ``vl`` — the tail
    holds stale or zero data depending on the engine.

Findings reuse the :class:`repro.uops.lint.Finding` shape (PR 1's
micro-program lint), so ``repro lint --json`` and ``repro check --json``
share one schema.  The rules run on the vectorized columnar facts
(:class:`~repro.analysis.columns.TraceColumns`); only actual violations
fall back to per-finding Python, which keeps a clean check a few
percent of trace-build time — cheap enough for strict mode on every
freshly built trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import AnalysisError
from ..isa.instructions import VectorInstr
from ..isa.trace import Trace
from ..uops.lint import ERROR, WARNING, Finding
from .columns import (FENCE, OP_NAME, SETVL, SLOT_VS1, VMV_S_X, VMV_X_S,
                      TraceColumns)
from .depgraph import DepGraph, build_depgraph
from .footprint import MemoryFootprint, build_footprint

#: The trace-checker rule names (see module docstring).
RULES = ("uninit-read", "dead-write", "oob-footprint", "avl-vlmax",
         "mask-undefined", "overlap-hazard", "reduction-order",
         "tail-undefined")


def check_trace(trace: Trace, name: Optional[str] = None,
                columns: Optional[TraceColumns] = None,
                footprint: Optional[MemoryFootprint] = None) -> List[Finding]:
    """Run every rule; returns findings in (index, rule) order."""
    program = name or trace.name
    cols = columns if columns is not None else TraceColumns(trace)
    footprint = (footprint if footprint is not None
                 else build_footprint(trace, cols, with_deps=False))
    findings: List[Finding] = []

    for use in np.nonzero(cols.use_def < 0)[0]:
        index = int(cols.use_event[use])
        reg = int(cols.use_reg[use])
        op = OP_NAME[cols.op_id[cols.use_row[use]]]
        if reg == 0:
            findings.append(Finding(
                "mask-undefined", ERROR, program, index,
                f"{op} is predicated but no compare defines v0"))
        else:
            findings.append(Finding(
                "uninit-read", ERROR, program, index,
                f"{op} reads v{reg} before any definition"))

    for pos in cols.dead_def_positions():
        index = int(cols.def_event[pos])
        killer = int(cols.def_killed_by[pos])
        findings.append(Finding(
            "dead-write", ERROR, program, index,
            f"{OP_NAME[cols.def_op_id[pos]]} writes v{int(cols.def_reg[pos])} "
            f"but the value is never read before "
            f"{trace.events[killer].op} overwrites it at [{killer}]"))

    for mem_event in footprint.out_of_bounds:
        instr = trace.events[mem_event.index]
        lo, hi = mem_event.interval
        op = instr.op if isinstance(instr, VectorInstr) else "scalar block"
        findings.append(Finding(
            "oob-footprint", ERROR, program, mem_event.index,
            f"{op} touches [{lo:#x}, {hi:#x}) which is not contained in "
            "any declared buffer"))

    if trace.vlmax is not None:
        findings += _check_vl_discipline(trace, cols, program)
    findings += _check_overlap(cols, program)
    findings += _check_use_widths(trace, cols, program)

    # An instruction reading one register through two operand slots would
    # report the same defect twice; keep one copy of identical findings.
    unique = {(f.index, f.rule, f.message): f for f in findings}
    return sorted(unique.values(), key=lambda f: (f.index, f.rule))


def _check_vl_discipline(trace: Trace, cols: TraceColumns,
                         program: str) -> List[Finding]:
    vlmax = trace.vlmax
    findings: List[Finding] = []
    grant = np.minimum(cols.setvl_avl, vlmax)
    for slot in np.nonzero(cols.setvl_vl != grant)[0]:
        findings.append(Finding(
            "avl-vlmax", ERROR, program, int(cols.setvl_event[slot]),
            f"vsetvl granted vl={int(cols.setvl_vl[slot])} for "
            f"avl={int(cols.setvl_avl[slot])} (must be min(avl, vlmax)="
            f"{int(grant[slot])} at vlmax={vlmax})"))

    exempt = (((cols.op_id == FENCE) & (cols.vl == 0))
              | (((cols.op_id == VMV_X_S) | (cols.op_id == VMV_S_X))
                 & (cols.vl == 1)))
    checked = ~exempt & (cols.op_id != SETVL)
    for row in np.nonzero(checked & (cols.vl_setter < 0))[0]:
        findings.append(Finding(
            "avl-vlmax", ERROR, program, int(cols.index[row]),
            f"{OP_NAME[cols.op_id[row]]} executes before any vsetvl"))
    mismatch = checked & (cols.vl_setter >= 0) & (cols.vl != cols.vl_granted)
    for row in np.nonzero(mismatch)[0]:
        findings.append(Finding(
            "avl-vlmax", ERROR, program, int(cols.index[row]),
            f"{OP_NAME[cols.op_id[row]]} executes at vl={int(cols.vl[row])} "
            f"but the grant from vsetvl at [{int(cols.vl_setter[row])}] is "
            f"vl={int(cols.vl_granted[row])}"))
    return findings


def _check_overlap(cols: TraceColumns, program: str) -> List[Finding]:
    dest = cols.dest
    overlap = (dest >= 0) & ((dest == cols.vs1) | (dest == cols.vs2)
                             | (dest == cols.vidx) | (dest == cols.vold)
                             | (cols.masked & (dest == 0)))
    findings = []
    for row in np.nonzero(overlap)[0]:
        findings.append(Finding(
            "overlap-hazard", ERROR, program, int(cols.index[row]),
            f"{OP_NAME[cols.op_id[row]]} destination v{int(dest[row])} "
            "overlaps one of its sources (destructive in-place update)"))
    return findings


def _check_use_widths(trace: Trace, cols: TraceColumns,
                      program: str) -> List[Finding]:
    """Reads beyond the producing definition's vl (rules mask-undefined,
    reduction-order, tail-undefined)."""
    bound = cols.use_def >= 0
    clamped = np.where(bound, cols.use_def, 0)
    if not len(cols.def_vl):
        return []
    narrow = bound & (cols.def_vl[clamped] < cols.vl[cols.use_row])
    findings: List[Finding] = []
    for use in np.nonzero(narrow)[0]:
        row = int(cols.use_row[use])
        index = int(cols.use_event[use])
        reg = int(cols.use_reg[use])
        pos = int(cols.use_def[use])
        op = OP_NAME[cols.op_id[row]]
        use_vl, def_vl = int(cols.vl[row]), int(cols.def_vl[pos])
        if reg == 0:
            findings.append(Finding(
                "mask-undefined", ERROR, program, index,
                f"{op} is predicated at vl={use_vl} but v0 was defined at "
                f"vl={def_vl} (tail lanes undefined)"))
        elif cols.def_op_id[pos] == VMV_S_X:
            # vmv.s.x architecturally zeroes the tail; wider reads —
            # including reduction folds — are defined despite the
            # recorded vl=1.
            continue
        elif cols.is_reduction[row] and cols.use_slot[use] == SLOT_VS1:
            findings.append(Finding(
                "reduction-order", ERROR, program, index,
                f"{op} folds vl={use_vl} lanes but v{reg} was defined at "
                f"vl={def_vl} (tail fold order undefined)"))
        else:
            findings.append(Finding(
                "tail-undefined", WARNING, program, index,
                f"{op} reads v{reg} at vl={use_vl} but the value was "
                f"defined at vl={def_vl}"))
    return findings


@dataclass
class AnalysisSummary:
    """Scheduler-facing headline numbers for ``repro stats``."""

    events: int
    vector_instrs: int
    dead_writes: int
    live_high_water: int
    dep_edges: int
    dep_depth: int
    dep_width: int
    errors: int
    warnings: int

    @property
    def ilp_width(self) -> float:
        """Average dependence-level population — crude ILP headroom."""
        return self.events / max(1, self.dep_depth)

    def to_json(self) -> dict:
        return {
            "events": self.events,
            "vector_instrs": self.vector_instrs,
            "dead_writes": self.dead_writes,
            "live_high_water": self.live_high_water,
            "dep_edges": self.dep_edges,
            "dep_depth": self.dep_depth,
            "dep_width": self.dep_width,
            "ilp_width": self.ilp_width,
            "errors": self.errors,
            "warnings": self.warnings,
        }


@dataclass
class AnalysisReport:
    """Everything the analyzer knows about one trace."""

    trace: Trace
    columns: TraceColumns
    footprint: MemoryFootprint
    depgraph: DepGraph
    findings: List[Finding]
    summary: AnalysisSummary


def analyze_trace(trace: Trace, name: Optional[str] = None) -> AnalysisReport:
    """Full pipeline: columns + footprint + checkers + dependence graph."""
    cols = TraceColumns(trace)
    footprint = build_footprint(trace, cols, with_deps=True)
    findings = check_trace(trace, name=name, columns=cols,
                           footprint=footprint)
    depgraph = build_depgraph(trace, columns=cols, footprint=footprint)
    depth, width = depgraph.critical_path()
    summary = AnalysisSummary(
        events=len(trace.events),
        vector_instrs=len(cols.index),
        dead_writes=len(cols.dead_def_positions()),
        live_high_water=cols.live_high_water(),
        dep_edges=depgraph.n_edges,
        dep_depth=depth,
        dep_width=width,
        errors=sum(1 for f in findings if f.severity == ERROR),
        warnings=sum(1 for f in findings if f.severity == WARNING),
    )
    return AnalysisReport(trace=trace, columns=cols, footprint=footprint,
                          depgraph=depgraph, findings=findings,
                          summary=summary)


def require_clean(trace: Trace, context: str = "") -> None:
    """Raise :class:`~repro.errors.AnalysisError` if any rule reports an
    error on ``trace`` (the strict-mode / shrinker gate)."""
    findings = check_trace(trace)
    errors = [f for f in findings if f.severity == ERROR]
    if errors:
        where = f" ({context})" if context else ""
        head = "; ".join(str(f) for f in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        raise AnalysisError(
            f"trace {trace.name!r}{where} failed static checks: "
            f"{head}{more}", findings=errors)
