"""The exported trace dependence graph (future trace-compiler input).

Nodes are trace event indices; edges carry a kind tag:

* ``reg-raw`` / ``reg-war`` / ``reg-waw`` — vector/mask register
  dependences from the def-use pass;
* ``mem-raw`` / ``mem-war`` / ``mem-waw`` / ``fence`` — memory ordering
  from the footprint pass;
* ``vl`` — vector-length state: every instruction depends on the vsetvl
  governing it, and each vsetvl depends on its predecessor and on every
  instruction that executed under the previous grant.

All edges point forward in program order, so the graph is a DAG by
construction; any topological order is a legal execution order, which
:mod:`repro.analysis.replay` exploits to validate the edge set against
ground truth (bit-identical final state under reordering).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..isa.trace import Trace
from .columns import SETVL, TraceColumns
from .footprint import MemoryFootprint, build_footprint

#: Edge kinds, in rough severity order for display.
EDGE_KINDS = ("reg-raw", "reg-war", "reg-waw",
              "mem-raw", "mem-war", "mem-waw", "fence", "vl")


@dataclass(frozen=True)
class DepEdge:
    src: int
    dst: int
    kind: str


@dataclass
class DepGraph:
    """Dependence DAG over one trace's events."""

    n_nodes: int
    edges: List[DepEdge]
    #: Adjacency: node -> sorted successor indices (deduplicated).
    succs: Dict[int, List[int]] = field(default_factory=dict)
    preds: Dict[int, List[int]] = field(default_factory=dict)

    @property
    def n_edges(self) -> int:
        return len(self.edges)

    def critical_path(self) -> Tuple[int, int]:
        """(depth, width): longest dependence chain and the maximum number
        of nodes sharing one as-soon-as-possible level — the headroom
        numbers an instruction scheduler cares about."""
        level = [0] * self.n_nodes
        for node in range(self.n_nodes):
            preds = self.preds.get(node, ())
            if preds:
                level[node] = 1 + max(level[p] for p in preds)
        if not self.n_nodes:
            return (0, 0)
        counts: Dict[int, int] = {}
        for lvl in level:
            counts[lvl] = counts.get(lvl, 0) + 1
        return (max(level) + 1, max(counts.values()))

    def topological_order(self, prefer_late: bool = False) -> List[int]:
        """A topological order via Kahn's algorithm.

        ``prefer_late=False`` breaks ties toward program order (lowest
        ready node first); ``prefer_late=True`` picks the highest ready
        node, producing a maximally different — but still legal —
        schedule for the replay equivalence test.
        """
        indegree = [0] * self.n_nodes
        for node, preds in self.preds.items():
            indegree[node] = len(preds)
        sign = -1 if prefer_late else 1
        ready = [sign * node for node in range(self.n_nodes)
                 if indegree[node] == 0]
        heapq.heapify(ready)
        order: List[int] = []
        while ready:
            node = sign * heapq.heappop(ready)
            order.append(node)
            for succ in self.succs.get(node, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    heapq.heappush(ready, sign * succ)
        if len(order) != self.n_nodes:
            raise AssertionError("dependence graph contains a cycle")
        return order

    def to_json(self) -> Dict[str, object]:
        by_kind: Dict[str, int] = {}
        for edge in self.edges:
            by_kind[edge.kind] = by_kind.get(edge.kind, 0) + 1
        depth, width = self.critical_path()
        return {
            "nodes": self.n_nodes,
            "edges": [[e.src, e.dst, e.kind] for e in self.edges],
            "edge_counts": by_kind,
            "depth": depth,
            "width": width,
        }


def dependence_edge_groups(
        trace: Trace, columns: Optional[TraceColumns] = None,
        footprint: Optional[MemoryFootprint] = None
) -> List[Tuple[np.ndarray, np.ndarray, str]]:
    """The raw dependence relation as ``(src, dst, kind)`` array groups.

    This is the bulk form :func:`build_depgraph` dedups into
    :class:`DepEdge` objects; duplicates across groups are possible.
    The trace compiler's block scheduler consumes it directly — on
    hundred-thousand-event traces, materialising per-edge objects costs
    more than the whole simulation it is meant to speed up.
    """
    cols = columns if columns is not None else TraceColumns(trace)
    if footprint is None or not footprint.has_deps:
        footprint = build_footprint(trace, cols, with_deps=True)
    groups: List[Tuple[np.ndarray, np.ndarray, str]] = []

    def _pairs(src: np.ndarray, dst: np.ndarray, kind: str) -> None:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        if len(src):
            groups.append((src, dst, kind))

    # Register dependences, straight off the use->def bindings: RAW from
    # the reaching definition, WAR from each reader to the def that kills
    # the value it read, WAW between consecutive defs of one register.
    bound = np.nonzero(cols.use_def >= 0)[0]
    use_pos = cols.use_def[bound]
    _pairs(cols.def_event[use_pos], cols.use_event[bound], "reg-raw")
    killer = cols.def_killed_by[use_pos]
    war = (killer >= 0) & (cols.use_event[bound] != killer)
    _pairs(cols.use_event[bound][war], killer[war], "reg-war")
    same = cols.def_sorted_reg[1:] == cols.def_sorted_reg[:-1]
    _pairs(cols.def_sorted_event[:-1][same],
           cols.def_sorted_event[1:][same], "reg-waw")

    # vl-state dependences: every governed instruction depends on its
    # vsetvl, each vsetvl on its predecessor and on every instruction
    # that executed under the previous grant.
    governed = (cols.op_id != SETVL) & (cols.vl_setter >= 0)
    _pairs(cols.vl_setter[governed], cols.index[governed], "vl")
    if len(cols.setvl_event):
        nxt = np.searchsorted(cols.setvl_event, cols.index, side="right")
        fenced = governed & (nxt < len(cols.setvl_event))
        _pairs(cols.index[fenced],
               cols.setvl_event[nxt[fenced]], "vl")
        _pairs(cols.setvl_event[:-1], cols.setvl_event[1:], "vl")

    by_kind: Dict[str, List[Tuple[int, int]]] = {}
    for src, dst, kind in footprint.edges:
        by_kind.setdefault(kind, []).append((src, dst))
    for kind, pairs in by_kind.items():
        arr = np.asarray(pairs, dtype=np.int64)
        groups.append((arr[:, 0], arr[:, 1], kind))
    return groups


def build_depgraph(trace: Trace, columns: Optional[TraceColumns] = None,
                   footprint: Optional[MemoryFootprint] = None) -> DepGraph:
    """Assemble the dependence DAG from the columnar def-use facts and
    the footprint pass's memory dependence relation."""
    raw_edges: List[Tuple[int, int, str]] = []
    for src, dst, kind in dependence_edge_groups(trace, columns, footprint):
        raw_edges.extend(zip(src.tolist(), dst.tolist(), (kind,) * len(src)))

    edges = [DepEdge(src, dst, kind)
             for src, dst, kind in sorted(set(raw_edges))]
    succs: Dict[int, List[int]] = {}
    preds: Dict[int, List[int]] = {}
    seen = set()
    for edge in edges:
        if edge.src >= edge.dst:
            raise AssertionError(
                f"non-forward dependence edge {edge.src}->{edge.dst}")
        if (edge.src, edge.dst) in seen:
            continue
        seen.add((edge.src, edge.dst))
        succs.setdefault(edge.src, []).append(edge.dst)
        preds.setdefault(edge.dst, []).append(edge.src)
    return DepGraph(n_nodes=len(trace.events), edges=edges,
                    succs=succs, preds=preds)
