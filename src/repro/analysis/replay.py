"""Trace-level reference executor (the analyzer's ground truth).

Replays a recorded instruction sequence against an explicit register
file and memory image, reusing the *same* semantic tables the intrinsics
layer executes with (:data:`repro.isa.intrinsics.BINARY_SEMANTICS` and
friends), so the two executors cannot drift.  Two uses:

* dependence-graph validation — executing the events in any topological
  order of the :class:`~repro.analysis.depgraph.DepGraph` must leave
  bit-identical final state to program order;
* corpus cross-checks — live-out register values must match the
  ``peek()`` observations the differential fuzz harness recorded.

Semantics notes (deliberate, documented trace-level choices):

* Gathers/scatters replay the *recorded* element addresses rather than
  recomputing them from the index register; the RAW edge from the index
  definition keeps this valid under reordering.
* Reductions fold with each opcode's canonical initial value — the
  kernel-supplied ``init`` is scalar-core state the trace does not
  record — and land in :attr:`TraceReplayer.scalars` keyed by event
  index, so reduction chains are not replayed through the accumulator.
* A read beyond the producing definition's ``vl`` sees zeros (the
  ``tail-undefined`` checker warns about such reads).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..isa.instructions import VectorInstr
from ..isa.intrinsics import (BINARY_SEMANTICS, COMPARE_SEMANTICS,
                              REDUCE_SEMANTICS, wrap32)
from ..isa.trace import Trace

_I32 = np.int32


class TraceReplayer:
    """Executes a trace's events against explicit state.

    ``images`` maps base byte addresses to initial int32 buffer contents
    (copied); events touching addresses outside every image raise
    :class:`~repro.errors.AnalysisError`.
    """

    def __init__(self, trace: Trace,
                 images: Optional[Dict[int, np.ndarray]] = None) -> None:
        self.trace = trace
        self.memory: List[Tuple[int, np.ndarray]] = sorted(
            (int(base), np.array(data, dtype=_I32))
            for base, data in (images or {}).items())
        self._bases = [base for base, _ in self.memory]
        self.regs: Dict[int, np.ndarray] = {}
        self.mask = np.zeros(0, dtype=bool)
        self.scalars: Dict[int, int] = {}

    @staticmethod
    def _splat64(scalar: int, vl: int) -> np.ndarray:
        """Scalar operand splat, wrapped to int32 first (as the intrinsics
        layer's ``_operand`` does) then widened for the semantics tables."""
        return np.full(vl, int(wrap32(np.array([scalar]))[0]), dtype=np.int64)

    # -- state access ------------------------------------------------------

    def _read(self, reg: int, vl: int) -> np.ndarray:
        value = self.regs.get(reg)
        if value is None:
            return np.zeros(vl, dtype=_I32)
        if len(value) >= vl:
            return value[:vl]
        padded = np.zeros(vl, dtype=_I32)
        padded[:len(value)] = value
        return padded

    def _read_mask(self, vl: int) -> np.ndarray:
        if len(self.mask) >= vl:
            return self.mask[:vl]
        padded = np.zeros(vl, dtype=bool)
        padded[:len(self.mask)] = self.mask
        return padded

    def _locate(self, addrs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(buffer array, element indices) for a batch of byte addresses."""
        if addrs.size == 0:
            return np.zeros(0, dtype=_I32), np.zeros(0, dtype=np.int64)
        slot = bisect_right(self._bases, int(addrs.min())) - 1
        if slot < 0:
            raise AnalysisError(
                f"replay access below every image: {int(addrs.min()):#x}")
        base, data = self.memory[slot]
        elems = (addrs - base) // 4
        if int(elems.min()) < 0 or int(elems.max()) >= data.size:
            raise AnalysisError(
                "replay access outside its containing image "
                f"(base {base:#x}, {data.size} elements)")
        return data, elems

    def load(self, addrs: np.ndarray) -> np.ndarray:
        data, elems = self._locate(np.asarray(addrs, dtype=np.int64))
        return data[elems].copy()

    def store(self, addrs: np.ndarray, values: np.ndarray) -> None:
        data, elems = self._locate(np.asarray(addrs, dtype=np.int64))
        data[elems] = values

    # -- execution ----------------------------------------------------------

    def run(self, order: Optional[Sequence[int]] = None) -> "TraceReplayer":
        """Execute the events (by index) in ``order``; defaults to program
        order.  Returns ``self`` for chaining into :meth:`snapshot`."""
        events = self.trace.events
        indices: Iterable[int] = (order if order is not None
                                  else range(len(events)))
        for index in indices:
            event = events[index]
            if isinstance(event, VectorInstr):
                self._execute(index, event)
        return self

    def _execute(self, index: int, instr: VectorInstr) -> None:
        op, vl = instr.op, instr.vl
        if op in ("vsetvl", "vmfence"):
            return
        if op in BINARY_SEMANTICS:
            a = self._read(instr.vs1, vl).astype(np.int64)
            b = (self._read(instr.vs2, vl).astype(np.int64)
                 if instr.vs2 >= 0 else self._splat64(instr.scalar, vl))
            result = wrap32(BINARY_SEMANTICS[op](a, b))
            if instr.masked:
                keep = (self._read(instr.vold, vl) if instr.vold >= 0
                        else np.zeros(vl, dtype=_I32))
                result = np.where(self._read_mask(vl), result, keep)
            self.regs[instr.vd] = result
            return
        if op in COMPARE_SEMANTICS:
            a = self._read(instr.vs1, vl).astype(np.int64)
            b = (self._read(instr.vs2, vl).astype(np.int64)
                 if instr.vs2 >= 0 else self._splat64(instr.scalar, vl))
            self.mask = COMPARE_SEMANTICS[op](a, b)
            return
        if op in REDUCE_SEMANTICS:
            values = self._read(instr.vs1, vl).astype(np.int64)
            if instr.masked:
                values = values[self._read_mask(vl)]
            init, fold = REDUCE_SEMANTICS[op]
            self.scalars[index] = int(wrap32(
                np.array([fold(values, init)]))[0])
            return
        handler = getattr(self, "_op_" + op.replace(".", "_"), None)
        if handler is None:
            raise AnalysisError(f"replayer does not implement {op!r}")
        handler(index, instr)

    # -- memory ops ---------------------------------------------------------

    def _load_op(self, instr: VectorInstr) -> None:
        self.regs[instr.vd] = self.load(instr.mem.element_addresses())

    _op_vle32 = _op_vlse32 = _op_vluxei32 = (
        lambda self, index, instr: self._load_op(instr))

    def _op_vse32(self, index: int, instr: VectorInstr) -> None:
        addrs = instr.mem.element_addresses()
        values = self._read(instr.vd, len(addrs))
        if instr.masked:
            mask = self._read_mask(len(addrs))
            addrs, values = addrs[mask], values[mask]
        self.store(addrs, values)

    def _op_vsse32(self, index: int, instr: VectorInstr) -> None:
        addrs = instr.mem.element_addresses()
        self.store(addrs, self._read(instr.vd, len(addrs)))

    _op_vsuxei32 = _op_vsse32

    # -- moves, permutes, ramps ---------------------------------------------

    def _op_vmv(self, index: int, instr: VectorInstr) -> None:
        if instr.vs1 >= 0:
            self.regs[instr.vd] = self._read(instr.vs1, instr.vl).copy()
        else:
            self.regs[instr.vd] = np.full(
                instr.vl, wrap32(np.array([instr.scalar]))[0], dtype=_I32)

    def _op_vid(self, index: int, instr: VectorInstr) -> None:
        base = self._read(instr.vs1, instr.vl).astype(np.int64)
        ramp = base + np.arange(instr.vl, dtype=np.int64) * instr.scalar
        self.regs[instr.vd] = wrap32(ramp)

    def _op_vmerge(self, index: int, instr: VectorInstr) -> None:
        vl = instr.vl
        a = self._read(instr.vs1, vl)
        b = (self._read(instr.vs2, vl) if instr.vs2 >= 0
             else self._splat64(instr.scalar, vl).astype(_I32))
        self.regs[instr.vd] = np.where(self._read_mask(vl), a, b)

    def _op_vrgather(self, index: int, instr: VectorInstr) -> None:
        vl = instr.vl
        a = self._read(instr.vs1, vl)
        idx = self._read(instr.vs2, vl).astype(np.int64)
        in_range = (idx >= 0) & (idx < vl)
        self.regs[instr.vd] = np.where(
            in_range, a[np.clip(idx, 0, vl - 1)], 0).astype(_I32)

    def _op_vslidedown(self, index: int, instr: VectorInstr) -> None:
        vl, offset = instr.vl, instr.scalar
        result = np.zeros(vl, dtype=_I32)
        if offset < vl:
            result[:vl - offset] = self._read(instr.vs1, vl)[offset:]
        self.regs[instr.vd] = result

    def _op_vslideup(self, index: int, instr: VectorInstr) -> None:
        vl, offset = instr.vl, instr.scalar
        result = (self._read(instr.vold, vl).copy() if instr.vold >= 0
                  else np.zeros(vl, dtype=_I32))
        if offset < vl:
            result[offset:] = self._read(instr.vs1, vl)[:vl - offset]
        self.regs[instr.vd] = result

    def _op_vmv_x_s(self, index: int, instr: VectorInstr) -> None:
        self.scalars[index] = int(self._read(instr.vs1, 1)[0])

    def _op_vmv_s_x(self, index: int, instr: VectorInstr) -> None:
        result = np.zeros(instr.vl, dtype=_I32)
        if instr.vl:
            result[0] = wrap32(np.array([instr.scalar]))[0]
        self.regs[instr.vd] = result

    # -- results -------------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Hashable-comparable final state: registers, mask, memory,
        scalar results.  Two snapshots compare equal iff the replayed
        executions were bit-identical."""
        return {
            "regs": {reg: value.tobytes()
                     for reg, value in self.regs.items()},
            "mask": self.mask.tobytes(),
            "memory": {base: data.tobytes() for base, data in self.memory},
            "scalars": dict(self.scalars),
        }
