"""Differential fuzzing of the micro-programmed engine (DESIGN.md §11).

Seeded random RVV instruction sequences are executed lockstep through two
contexts that share one workload-facing API:

* the **oracle** — :class:`~repro.isa.intrinsics.VectorContext`, whose
  arithmetic is plain numpy with full 32-bit wrap-around semantics, and
* the **DUT** — :class:`~repro.core.EveFunctionalEngine`, where every
  result comes from executing ROM micro-programs on the bit-level SRAM,
  instantiated at every segment width ``n`` under test.

A case is a small JSON-serialisable program (:class:`FuzzCase`): named
input buffers plus a list of ops whose vector operands are *slot indices*
(op ``i``'s result is slot ``i``).  Per-op observations — every vector and
scalar result, then the final contents of every buffer — are compared
element-wise; the first divergence is the mismatch.  Mismatching cases are
shrunk to a minimal repro (op removal, input simplification, ``avl``
reduction) and written out as replayable JSON.

The generator stays inside the engine's documented bit-exact envelope:
``vmulh``/``vmulhu`` are never emitted, and signed ``vdiv``/``vrem``
operands are first masked non-negative with an explicit ``vand`` guard op
(executed identically by both sides, so it costs no fidelity).  Everything
else — including division by zero, saturating ops, masked ops, slides,
gathers and strided memory — is fair game.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.functional import EveFunctionalEngine
from ..errors import FaultInjectionError
from ..isa.intrinsics import VectorContext

#: Every segment width the paper's design space covers (bits per segment).
FUZZ_WIDTHS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Current on-disk case format.
CASE_VERSION = 1

#: Default number of ops per generated case (loads and guards excluded).
DEFAULT_OPS = 12

_I32_MIN, _I32_MAX = -(2 ** 31), 2 ** 31 - 1

#: Boundary-heavy value pool: carry-chain and sign-bit corners dominate.
INTERESTING_VALUES = (
    0, 1, -1, 2, -2, 3, _I32_MAX, _I32_MIN, _I32_MAX - 1, _I32_MIN + 1,
    0x55555555, -0x55555556, 0x00FF00FF, 1 << 30, -(1 << 30), 1 << 16, 255,
)

_BINARY_OPS = (
    "vadd", "vsub", "vrsub", "vand", "vor", "vxor",
    "vsll", "vsrl", "vsra", "vmin", "vmax", "vminu", "vmaxu",
    "vmul", "vdiv", "vrem", "vdivu", "vremu",
    "vsadd", "vssub", "vsaddu", "vssubu",
)
_COMPARE_OPS = ("vmseq", "vmsne", "vmslt", "vmsle", "vmsgt", "vmsge")

#: Fields holding a plain slot index, per op dict.
_SLOT_FIELDS = ("a", "mask", "old", "vec", "index")
#: Fields holding an operand spec ({"slot": i} or {"imm": n}).
_OPERAND_FIELDS = ("b", "src")


# ---------------------------------------------------------------------------
# Case representation
# ---------------------------------------------------------------------------


@dataclass
class FuzzCase:
    """One replayable differential test: buffers + a slot-indexed program."""

    seed: int
    vlmax: int
    avl: int
    inputs: Dict[str, List[int]] = field(default_factory=dict)
    ops: List[dict] = field(default_factory=list)
    version: int = CASE_VERSION

    @property
    def vl(self) -> int:
        """The vector length both contexts grant for this case."""
        return min(self.avl, self.vlmax)

    def to_json_dict(self) -> dict:
        return {
            "version": self.version, "seed": self.seed, "vlmax": self.vlmax,
            "avl": self.avl, "inputs": self.inputs, "ops": self.ops,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzCase":
        try:
            case = cls(seed=int(data["seed"]), vlmax=int(data["vlmax"]),
                       avl=int(data["avl"]),
                       inputs={str(k): [int(v) for v in vals]
                               for k, vals in data["inputs"].items()},
                       ops=[dict(op) for op in data["ops"]],
                       version=int(data.get("version", CASE_VERSION)))
        except (KeyError, TypeError, ValueError) as exc:
            raise FaultInjectionError(f"malformed fuzz case: {exc}") from exc
        if case.version != CASE_VERSION:
            raise FaultInjectionError(
                f"unsupported fuzz-case version {case.version}")
        return case


@dataclass(frozen=True)
class FuzzMismatch:
    """A shrunk, confirmed oracle/DUT divergence at one segment width."""

    case: FuzzCase
    factor: int
    divergence: dict

    def to_json_dict(self) -> dict:
        return {"factor": self.factor, "divergence": self.divergence,
                "case": self.case.to_json_dict()}


def load_case(path: str) -> FuzzCase:
    """Load a replayable case (accepts both bare-case and mismatch files)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise FaultInjectionError(f"cannot read case file {path!r}: {exc}") from exc
    if "case" in data and "ops" not in data:
        data = data["case"]
    return FuzzCase.from_dict(data)


# ---------------------------------------------------------------------------
# Interpreter: one program, either context
# ---------------------------------------------------------------------------


def _resolve(spec, slots):
    """An operand spec is {"slot": i} (a vector) or {"imm": n} (a scalar)."""
    if "slot" in spec:
        return slots[spec["slot"]]
    return int(spec["imm"])


def _apply(ctx, op: dict, slots: list, bufs: dict):
    """Dispatch one op dict against a context; returns the new slot value."""
    name = op["op"]
    if name in _BINARY_OPS:
        method = getattr(ctx, name)
        if "mask" in op:  # masked vadd/vsub with optional merge-old
            old = slots[op["old"]] if "old" in op else None
            return method(slots[op["a"]], _resolve(op["b"], slots),
                          mask=slots[op["mask"]], old=old)
        return method(slots[op["a"]], _resolve(op["b"], slots))
    if name in _COMPARE_OPS:
        return getattr(ctx, name)(slots[op["a"]], _resolve(op["b"], slots))
    if name == "vnot":
        return ctx.vnot(slots[op["a"]])
    if name == "vle32":
        return ctx.vle32(bufs[op["buf"]], op.get("offset", 0))
    if name == "vlse32":
        return ctx.vlse32(bufs[op["buf"]], op.get("offset", 0), op["stride"])
    if name == "vse32":
        mask = slots[op["mask"]] if "mask" in op else None
        ctx.vse32(slots[op["vec"]], bufs[op["buf"]], op.get("offset", 0),
                  mask=mask)
        return None
    if name == "vsse32":
        ctx.vsse32(slots[op["vec"]], bufs[op["buf"]], op.get("offset", 0),
                   op["stride"])
        return None
    if name == "vmerge":
        return ctx.vmerge(slots[op["mask"]], slots[op["a"]],
                          _resolve(op["b"], slots))
    if name == "vmv":
        return ctx.vmv(_resolve(op["src"], slots))
    if name == "viota":
        return ctx.viota(op.get("start", 0), op.get("step", 1))
    if name == "vrgather":
        return ctx.vrgather(slots[op["a"]], slots[op["index"]])
    if name == "vslidedown":
        return ctx.vslidedown(slots[op["a"]], op["offset"])
    if name == "vslideup":
        old = slots[op["old"]] if "old" in op else None
        return ctx.vslideup(slots[op["a"]], op["offset"], old=old)
    if name == "vmv_s_x":
        return ctx.vmv_s_x(op["value"])
    if name == "vmv_x_s":
        return ctx.vmv_x_s(slots[op["a"]])
    if name == "vredsum":
        mask = slots[op["mask"]] if "mask" in op else None
        return ctx.vredsum(slots[op["a"]], op.get("init", 0), mask=mask)
    if name == "vredmax":
        return ctx.vredmax(slots[op["a"]], op.get("init", _I32_MIN))
    if name == "vredmin":
        return ctx.vredmin(slots[op["a"]], op.get("init", _I32_MAX))
    raise FaultInjectionError(f"fuzz case uses unknown op {name!r}")


def run_case(case: FuzzCase, ctx) -> dict:
    """Execute ``case`` on ``ctx``; returns the observation record.

    ``ctx`` is either a :class:`VectorContext` or an
    :class:`EveFunctionalEngine` — the two share the intrinsics API and a
    ``peek`` observation port, so the interpreter is context-agnostic.
    The record holds the granted ``vl``, one observation per op (vector
    results via ``peek``, scalar results verbatim, ``None`` for stores)
    and the final contents of every buffer.
    """
    bufs = {name: ctx.vm.alloc_i32(name, np.array(vals, dtype=np.int64)
                                   .astype(np.int32))
            for name, vals in case.inputs.items()}
    vl = ctx.setvl(case.avl)
    slots: list = []
    observations: list = []
    for op in case.ops:
        result = _apply(ctx, op, slots, bufs)
        slots.append(result)
        if result is None:
            observations.append(None)
        elif isinstance(result, (int, np.integer)):
            observations.append(int(result))
        else:
            observations.append([int(v) for v in ctx.peek(result)])
    return {
        "vl": vl,
        "obs": observations,
        "bufs": {name: buf.data.tolist() for name, buf in bufs.items()},
    }


def _run_guarded(case: FuzzCase, ctx) -> dict:
    try:
        return run_case(case, ctx)
    except Exception as exc:  # noqa: BLE001 - a crash IS the finding
        return {"crash": f"{type(exc).__name__}: {exc}"}


def compare_runs(oracle: dict, dut: dict) -> Optional[dict]:
    """First divergence between two observation records, or ``None``."""
    if "crash" in oracle or "crash" in dut:
        return {"kind": "crash", "oracle": oracle.get("crash"),
                "dut": dut.get("crash")}
    if oracle["vl"] != dut["vl"]:
        return {"kind": "vl", "oracle": oracle["vl"], "dut": dut["vl"]}
    for i, (expect, got) in enumerate(zip(oracle["obs"], dut["obs"])):
        if expect != got:
            return {"kind": "op", "index": i, "oracle": expect, "dut": got}
    for name in oracle["bufs"]:
        if oracle["bufs"][name] != dut["bufs"][name]:
            return {"kind": "buffer", "buffer": name,
                    "oracle": oracle["bufs"][name], "dut": dut["bufs"][name]}
    return None


def run_oracle(case: FuzzCase) -> dict:
    return _run_guarded(case, VectorContext(case.vlmax, name="fuzz"))


def run_dut(case: FuzzCase, factor: int, faults=None,
            batched: bool = False) -> dict:
    engine = EveFunctionalEngine(factor, capacity=case.vlmax, faults=faults,
                                 batched=batched)
    return _run_guarded(case, engine)


def check_case(case: FuzzCase, widths: Sequence[int] = FUZZ_WIDTHS,
               oracle: Optional[dict] = None) -> List[Tuple[int, dict]]:
    """Run one case at every width; returns [(factor, divergence), ...]."""
    if oracle is None:
        oracle = run_oracle(case)
    failures = []
    for factor in widths:
        divergence = compare_runs(oracle, run_dut(case, factor))
        if divergence is not None:
            failures.append((factor, divergence))
    return failures


def replay_case(case: FuzzCase,
                widths: Sequence[int] = FUZZ_WIDTHS) -> List[Tuple[int, dict]]:
    """Replay a saved case; returns the surviving divergences (ideally [])."""
    return check_case(case, widths)


# ---------------------------------------------------------------------------
# Generator
# ---------------------------------------------------------------------------


class _CaseBuilder:
    """Accumulates ops while tracking which slots hold vectors vs masks."""

    def __init__(self) -> None:
        self.ops: List[dict] = []
        self.vecs: List[int] = []
        self.masks: List[int] = []
        self.scalars: List[int] = []

    def emit(self, op: dict, kind: str) -> int:
        slot = len(self.ops)
        self.ops.append(op)
        if kind == "vec":
            self.vecs.append(slot)
        elif kind == "mask":
            self.masks.append(slot)
        elif kind == "scalar":
            self.scalars.append(slot)
        return slot


def _value(rng: random.Random) -> int:
    if rng.random() < 0.6:
        return rng.choice(INTERESTING_VALUES)
    return rng.randint(_I32_MIN, _I32_MAX)


def _values(rng: random.Random, count: int) -> List[int]:
    return [_value(rng) for _ in range(count)]


def _operand(rng: random.Random, build: _CaseBuilder,
             signed_nonneg: bool = False) -> dict:
    """A random operand: an existing vector slot (70%) or an immediate."""
    if build.vecs and rng.random() < 0.7 and not signed_nonneg:
        return {"slot": rng.choice(build.vecs)}
    if signed_nonneg:
        # Signed-division operands must be non-negative on the DUT; zero
        # stays in the pool to exercise the RVV x/0 semantics.
        return {"imm": rng.choice((0, 1, 2, 3, 7, _I32_MAX, 255))}
    return {"imm": _value(rng)}


def _guard_nonneg(rng: random.Random, build: _CaseBuilder, slot: int) -> int:
    """Emit ``vand(slot, INT32_MAX)`` so signed div/rem sees no sign bits."""
    return build.emit({"op": "vand", "a": slot, "b": {"imm": _I32_MAX}}, "vec")


def _ensure_mask(rng: random.Random, build: _CaseBuilder) -> int:
    if build.masks and rng.random() < 0.8:
        return rng.choice(build.masks)
    op = rng.choice(_COMPARE_OPS)
    return build.emit({"op": op, "a": rng.choice(build.vecs),
                       "b": _operand(rng, build)}, "mask")


def generate_case(seed: int, *, vlmax: Optional[int] = None,
                  num_ops: int = DEFAULT_OPS) -> FuzzCase:
    """Deterministically generate one differential test case from a seed."""
    rng = random.Random(seed)
    if vlmax is None:
        vlmax = rng.choice((4, 8, 16, 32, 64))
    # avl may exceed vlmax: both contexts must clamp identically.
    avl = rng.randint(1, vlmax + 3)
    vl = min(avl, vlmax)

    unit_size = vl + 2
    strided_size = 3 * vl  # covers stride <= 3 with offset <= 2
    inputs = {
        "in0": _values(rng, unit_size),
        "in1": _values(rng, unit_size),
        "str0": _values(rng, strided_size),
        "out0": _values(rng, unit_size),     # pre-filled: partial stores show
        "outs": _values(rng, strided_size),
    }

    build = _CaseBuilder()
    build.emit({"op": "vle32", "buf": "in0",
                "offset": rng.randint(0, 2)}, "vec")
    build.emit({"op": "vle32", "buf": "in1",
                "offset": rng.randint(0, 2)}, "vec")
    if rng.random() < 0.6:
        stride = rng.randint(2, 3)
        max_off = strided_size - 1 - stride * (vl - 1)
        build.emit({"op": "vlse32", "buf": "str0",
                    "offset": rng.randint(0, min(2, max_off)),
                    "stride": stride}, "vec")

    choices = (
        ("binary", 10), ("compare", 3), ("masked_arith", 2), ("vmerge", 2),
        ("unary", 2), ("slide", 2), ("gather", 1), ("iota", 1),
        ("reduce", 2), ("splat", 1), ("scalar_move", 1),
        ("store", 2), ("strided_store", 1),
    )
    names = [name for name, _w in choices]
    weights = [w for _n, w in choices]

    for _ in range(num_ops):
        kind = rng.choices(names, weights=weights, k=1)[0]
        if kind == "binary":
            op = rng.choice(_BINARY_OPS)
            a = rng.choice(build.vecs)
            if op in ("vdiv", "vrem"):
                a = _guard_nonneg(rng, build, a)
                b = _operand(rng, build, signed_nonneg=rng.random() < 0.4)
                if "slot" in b:
                    b = {"slot": _guard_nonneg(rng, build, b["slot"])}
                else:
                    b = {"imm": b["imm"] & _I32_MAX}
            else:
                b = _operand(rng, build)
            build.emit({"op": op, "a": a, "b": b}, "vec")
        elif kind == "compare":
            build.emit({"op": rng.choice(_COMPARE_OPS),
                        "a": rng.choice(build.vecs),
                        "b": _operand(rng, build)}, "mask")
        elif kind == "masked_arith":
            mask = _ensure_mask(rng, build)
            op = {"op": rng.choice(("vadd", "vsub")),
                  "a": rng.choice(build.vecs), "b": _operand(rng, build),
                  "mask": mask}
            if rng.random() < 0.5:
                op["old"] = rng.choice(build.vecs)
            build.emit(op, "vec")
        elif kind == "vmerge":
            mask = _ensure_mask(rng, build)
            build.emit({"op": "vmerge", "mask": mask,
                        "a": rng.choice(build.vecs),
                        "b": _operand(rng, build)}, "vec")
        elif kind == "unary":
            build.emit({"op": "vnot", "a": rng.choice(build.vecs)}, "vec")
        elif kind == "slide":
            op = {"op": rng.choice(("vslideup", "vslidedown")),
                  "a": rng.choice(build.vecs),
                  "offset": rng.randint(0, vl + 1)}
            if op["op"] == "vslideup" and rng.random() < 0.5:
                op["old"] = rng.choice(build.vecs)
            build.emit(op, "vec")
        elif kind == "gather":
            # Out-of-range indices are defined (yield 0) on both sides.
            build.emit({"op": "vrgather", "a": rng.choice(build.vecs),
                        "index": rng.choice(build.vecs)}, "vec")
        elif kind == "iota":
            build.emit({"op": "viota", "start": rng.randint(-4, 4),
                        "step": rng.choice((-2, -1, 1, 2, 3))}, "vec")
        elif kind == "reduce":
            op = {"op": rng.choice(("vredsum", "vredmax", "vredmin")),
                  "a": rng.choice(build.vecs)}
            if op["op"] == "vredsum" and build.masks and rng.random() < 0.4:
                op["mask"] = rng.choice(build.masks)
            build.emit(op, "scalar")
        elif kind == "splat":
            build.emit({"op": "vmv", "src": _operand(rng, build)}, "vec")
        elif kind == "scalar_move":
            if rng.random() < 0.5:
                build.emit({"op": "vmv_s_x", "value": _value(rng)}, "vec")
            else:
                build.emit({"op": "vmv_x_s",
                            "a": rng.choice(build.vecs)}, "scalar")
        elif kind == "store":
            op = {"op": "vse32", "vec": rng.choice(build.vecs),
                  "buf": "out0", "offset": rng.randint(0, 2)}
            if rng.random() < 0.4:
                op["mask"] = _ensure_mask(rng, build)
            build.emit(op, "store")
        elif kind == "strided_store":
            stride = rng.randint(2, 3)
            max_off = strided_size - 1 - stride * (vl - 1)
            build.emit({"op": "vsse32", "vec": rng.choice(build.vecs),
                        "buf": "outs",
                        "offset": rng.randint(0, min(2, max_off)),
                        "stride": stride}, "store")

    # Always end by materialising the most recent vector result.
    build.emit({"op": "vse32", "vec": build.vecs[-1], "buf": "out0",
                "offset": 0}, "store")
    return FuzzCase(seed=seed, vlmax=vlmax, avl=avl, inputs=inputs,
                    ops=build.ops)


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _refs(op: dict) -> List[int]:
    refs = [op[f] for f in _SLOT_FIELDS if f in op]
    for f in _OPERAND_FIELDS:
        spec = op.get(f)
        if spec is not None and "slot" in spec:
            refs.append(spec["slot"])
    return refs


def _renumber(op: dict, removed: int) -> dict:
    out = dict(op)
    for f in _SLOT_FIELDS:
        if f in out and out[f] > removed:
            out[f] = out[f] - 1
    for f in _OPERAND_FIELDS:
        spec = out.get(f)
        if spec is not None and "slot" in spec and spec["slot"] > removed:
            out[f] = {"slot": spec["slot"] - 1}
    return out


def _without_op(case: FuzzCase, idx: int) -> Optional[FuzzCase]:
    """Remove op ``idx`` if nothing later references its slot."""
    for later in case.ops[idx + 1:]:
        if idx in _refs(later):
            return None
    ops = [(_renumber(op, idx) if j > idx else dict(op))
           for j, op in enumerate(case.ops) if j != idx]
    return replace(case, ops=ops)


def _trace_is_clean(case: FuzzCase) -> Optional[bool]:
    """Whether the case's oracle trace passes the static checkers.

    ``None`` when the oracle crashes mid-case (no trace to analyze —
    the crash itself is the repro)."""
    from ..analysis import check_trace
    ctx = VectorContext(case.vlmax, name="shrink")
    try:
        run_case(case, ctx)
    except Exception:  # noqa: BLE001 - crash repros pass through unchecked
        return None
    trace = ctx.finalize_trace()
    return not any(f.severity == "error" for f in check_trace(trace))


def shrink_case(case: FuzzCase, factor: int,
                max_rounds: int = 20) -> FuzzCase:
    """Greedy delta-debugging: minimise while the divergence persists.

    Three reducers run to fixpoint: drop ops whose slots are dead, zero
    (then one) individual input elements, and shrink ``avl``.  A candidate
    is accepted only if the oracle/DUT comparison at ``factor`` still
    diverges — crashes included, so a repro never shrinks into validity.

    Shrunk repros must also keep passing the static analyzer: trace
    cleanliness is a ratchet.  Random cases may start dirty (e.g. a dead
    compare the generator emitted), and reducers are free to strip the
    offending ops — but once a candidate's oracle trace is
    ``check``-clean, any later candidate that would re-dirty it is
    rejected, so the emitted repro never trades analyzability for size.
    Oracle-crash candidates bypass the ratchet (the crash is the repro).
    """
    must_stay_clean = bool(_trace_is_clean(case))

    def still_fails(candidate: FuzzCase) -> bool:
        if compare_runs(run_oracle(candidate),
                        run_dut(candidate, factor)) is None:
            return False
        clean = _trace_is_clean(candidate)
        return clean is None or clean or not must_stay_clean

    if not still_fails(case):
        return case

    for _ in range(max_rounds):
        changed = False
        # 1. op removal, last-to-first so dependency chains unravel.
        idx = len(case.ops) - 1
        while idx >= 0:
            candidate = _without_op(case, idx)
            if candidate is not None and still_fails(candidate):
                case = candidate
                changed = True
            idx -= 1
        # 2. avl reduction: smallest reproducing vector length wins.
        for avl in range(1, case.avl):
            candidate = replace(case, avl=avl)
            if still_fails(candidate):
                case = candidate
                changed = True
                break
        # 3. input simplification toward 0 (then 1).
        for name in list(case.inputs):
            values = case.inputs[name]
            for i, value in enumerate(values):
                for simple in (0, 1):
                    if value == simple:
                        break
                    trial = dict(case.inputs)
                    trial[name] = values[:i] + [simple] + values[i + 1:]
                    candidate = replace(case, inputs=trial)
                    if still_fails(candidate):
                        case = candidate
                        values = trial[name]
                        changed = True
                        break
        if not changed:
            break
    return case


# ---------------------------------------------------------------------------
# Fuzzing loop
# ---------------------------------------------------------------------------

#: Per-case seeds are spread with a large odd multiplier so campaigns with
#: nearby master seeds never share cases.
SEED_STRIDE = 1_000_003


def fuzz_many(num_seeds: int, *, master_seed: int = 0,
              widths: Sequence[int] = FUZZ_WIDTHS,
              vlmax: Optional[int] = None, num_ops: int = DEFAULT_OPS,
              out_dir: Optional[str] = None,
              progress=None, telemetry=None) -> List[FuzzMismatch]:
    """Generate and check ``num_seeds`` cases; returns shrunk mismatches.

    Each mismatch is shrunk at the first diverging width and, when
    ``out_dir`` is given, written to ``mismatch-<seed>-n<factor>.json`` in
    a format :func:`load_case` replays directly.  ``telemetry`` (a
    :class:`~repro.obs.events.CampaignTelemetry`) streams one
    ``seed:<case_seed>`` unit per checked seed; a ``finished`` terminal
    carries the per-seed mismatch count.
    """
    telemetry_on = telemetry is not None and telemetry.enabled
    if telemetry_on:
        telemetry.begin([f"seed:{master_seed * SEED_STRIDE + i}"
                         for i in range(num_seeds)])
    mismatches: List[FuzzMismatch] = []
    for i in range(num_seeds):
        case_seed = master_seed * SEED_STRIDE + i
        t0 = time.monotonic()
        before = len(mismatches)
        try:
            case = generate_case(case_seed, vlmax=vlmax, num_ops=num_ops)
            failures = check_case(case, widths)
            for factor, _div in failures:
                shrunk = shrink_case(case, factor)
                divergence = compare_runs(run_oracle(shrunk),
                                          run_dut(shrunk, factor))
                mismatch = FuzzMismatch(case=shrunk, factor=factor,
                                        divergence=divergence or {})
                mismatches.append(mismatch)
                if out_dir is not None:
                    os.makedirs(out_dir, exist_ok=True)
                    path = os.path.join(
                        out_dir, f"mismatch-{case_seed}-n{factor}.json")
                    with open(path, "w") as fh:
                        json.dump(mismatch.to_json_dict(), fh, indent=2)
        except Exception as exc:
            if telemetry_on:
                telemetry.unit_finished(
                    f"seed:{case_seed}", ok=False, t_start=t0,
                    t_end=time.monotonic(),
                    detail={"error": f"{type(exc).__name__}: {exc}"})
            raise
        if telemetry_on:
            telemetry.unit_finished(
                f"seed:{case_seed}", ok=True, t_start=t0,
                t_end=time.monotonic(),
                detail={"mismatches": len(mismatches) - before})
        if progress is not None:
            progress(i + 1, num_seeds, len(mismatches))
    return mismatches
