"""Fault-injection campaigns: thousands of seeded faults, classified.

Each injection is one picklable spec fanned out over the same process
pool that powers ``repro sweep`` (:func:`~repro.experiments.parallel.
fan_out`).  A worker runs the three-pass protocol from DESIGN.md §11:

1. **oracle** — the numpy golden model executes the generated case;
2. **probe** — the micro-programmed engine runs it fault-free with a
   :class:`~repro.faults.inject.FaultProbe` counting injectable events;
3. **armed** — the engine re-runs with a seed-addressed
   :class:`~repro.faults.inject.FaultInjector` live.

The armed outcome is classified against the oracle:

* ``masked``   — observations identical (the fault hit dead state, was
  overwritten, or landed outside the observed window);
* ``detected`` — the engine raised: ``detected_watchdog`` when the
  micro-program watchdog tripped, ``detected_exception`` for any other
  simulator-raised error (a lint/bounds/consistency trap);
* ``sdc``      — silent data corruption: the run completed but some
  observation differs from the oracle.

Classification is fully deterministic given the campaign seed: case
generation, injection addressing, and the round-robin over fault models
and segment widths are all derived from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import FaultInjectionError, MicroExecutionError
from ..experiments.parallel import fan_out
from ..obs.events import NULL_TELEMETRY, TelemetryMonitor
from .fuzz import (
    DEFAULT_OPS,
    FUZZ_WIDTHS,
    SEED_STRIDE,
    compare_runs,
    generate_case,
    run_dut,
    run_oracle,
)
from .inject import FAULT_MODELS, FaultInjector, FaultProbe, FaultSpec

#: Classification labels, in reporting order.
OUTCOMES = ("masked", "detected_watchdog", "detected_exception", "sdc")

#: ROM macro name -> reporting family (Figure 4's op taxonomy).
_MACRO_FAMILY = {
    "add": "arith", "sub": "arith", "rsub": "arith", "minmax": "arith",
    "logic": "logical", "shift_scalar": "shift", "shift_variable": "shift",
    "mul": "mul", "div": "div", "compare": "compare",
    "merge": "move", "move": "move", "splat": "move",
}


def family_of(macro: Optional[str]) -> str:
    """Reporting family of a ROM macro-op name (``other`` when unknown)."""
    if macro is None:
        return "other"
    return _MACRO_FAMILY.get(macro, "other")


@dataclass(frozen=True)
class InjectionOutcome:
    """One classified injection."""

    index: int
    model: str
    factor: int
    case_seed: int
    injection_seed: int
    outcome: str
    family: str
    fired: bool
    detail: dict

    def to_json_dict(self) -> dict:
        return {
            "index": self.index, "model": self.model, "factor": self.factor,
            "case_seed": self.case_seed,
            "injection_seed": self.injection_seed,
            "outcome": self.outcome, "family": self.family,
            "fired": self.fired, "detail": self.detail,
        }


# -- the worker ----------------------------------------------------------------


def _run_injection(spec: tuple) -> dict:
    """Run one injection; ``spec`` is picklable for the process pool:
    ``(index, case_seed, vlmax, num_ops, factor, model, injection_seed)``.
    """
    index, case_seed, vlmax, num_ops, factor, model, injection_seed = spec
    case = generate_case(case_seed, vlmax=vlmax, num_ops=num_ops)
    oracle = run_oracle(case)

    probe = FaultProbe()
    fault_free = run_dut(case, factor, faults=probe)
    if compare_runs(oracle, fault_free) is not None:  # pragma: no cover
        # The fuzzer guarantees this never happens on a healthy tree; a
        # pre-existing mismatch would corrupt every classification.
        raise FaultInjectionError(
            f"case seed {case_seed} already diverges at n={factor} "
            "without any fault; run `repro fuzz` first")

    fault_spec = FaultSpec(model=model, seed=injection_seed)
    engine_rows = max(256, 32 * (32 // factor))
    try:
        injector = FaultInjector(
            fault_spec, wb_events=probe.wb_events,
            carry_events=probe.carry_events, rows=engine_rows,
            cols=case.vlmax * factor, groups=case.vlmax)
    except FaultInjectionError as exc:
        # Unarmable (e.g. stuck_carry on a carry-free program): by
        # definition nothing was perturbed.
        return {"index": index, "model": model, "factor": factor,
                "case_seed": case_seed, "injection_seed": injection_seed,
                "outcome": "masked", "family": "other", "fired": False,
                "detail": {"unarmable": str(exc)}}

    armed = run_dut(case, factor, faults=injector)
    detail: dict = {"fault": injector.describe()}
    if "crash" in armed:
        detail["crash"] = armed["crash"]
        if armed["crash"].startswith(MicroExecutionError.__name__):
            outcome = "detected_watchdog"
        else:
            outcome = "detected_exception"
    else:
        divergence = compare_runs(oracle, armed)
        if divergence is None:
            outcome = "masked"
        else:
            outcome = "sdc"
            detail["divergence"] = divergence
    return {"index": index, "model": model, "factor": factor,
            "case_seed": case_seed, "injection_seed": injection_seed,
            "outcome": outcome, "family": family_of(injector.fired_macro),
            "fired": injector.fired, "detail": detail}


# -- aggregation ---------------------------------------------------------------


def _rate_table(outcomes: Sequence[InjectionOutcome],
                key) -> Dict[str, dict]:
    table: Dict[str, dict] = {}
    for out in outcomes:
        bucket = table.setdefault(str(key(out)),
                                  {"injections": 0, "sdc": 0})
        bucket["injections"] += 1
        bucket["sdc"] += out.outcome == "sdc"
    for bucket in table.values():
        bucket["sdc_rate"] = bucket["sdc"] / bucket["injections"]
    return table


@dataclass
class CampaignReport:
    """Aggregate view of one campaign, JSON-able for records and CI."""

    seed: int
    count: int
    models: Tuple[str, ...]
    factors: Tuple[int, ...]
    outcomes: List[InjectionOutcome] = field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in OUTCOMES}
        for out in self.outcomes:
            counts[out.outcome] += 1
        return counts

    @property
    def sdc_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        return self.counts["sdc"] / len(self.outcomes)

    @property
    def detected_rate(self) -> float:
        if not self.outcomes:
            return 0.0
        counts = self.counts
        detected = counts["detected_watchdog"] + counts["detected_exception"]
        return detected / len(self.outcomes)

    def by_factor(self) -> Dict[str, dict]:
        return _rate_table(self.outcomes, lambda o: o.factor)

    def by_model(self) -> Dict[str, dict]:
        return _rate_table(self.outcomes, lambda o: o.model)

    def by_family(self) -> Dict[str, dict]:
        return _rate_table(self.outcomes, lambda o: o.family)

    def to_json_dict(self) -> dict:
        return {
            "seed": self.seed, "count": self.count,
            "models": list(self.models), "factors": list(self.factors),
            "counts": self.counts,
            "sdc_rate": self.sdc_rate,
            "detected_rate": self.detected_rate,
            "by_factor": self.by_factor(),
            "by_model": self.by_model(),
            "by_family": self.by_family(),
            "outcomes": [o.to_json_dict() for o in self.outcomes],
        }


def _describe_injection(out: dict):
    """Telemetry view of one worker outcome dict: never cached, no
    extra events, the classification as the terminal detail."""
    return False, (), {"outcome": out.get("outcome"),
                       "model": out.get("model"),
                       "factor": out.get("factor"),
                       "fired": bool(out.get("fired"))}


def run_campaign(count: int, *, models: Optional[Sequence[str]] = None,
                 factors: Sequence[int] = FUZZ_WIDTHS, seed: int = 0,
                 jobs: int = 1, vlmax: Optional[int] = 16,
                 num_ops: int = DEFAULT_OPS, profiler=None,
                 metrics=None, telemetry=NULL_TELEMETRY) -> CampaignReport:
    """Fan ``count`` seeded injections over the pool and classify each.

    Fault models and segment widths are round-robined so every
    ``(model, factor)`` pair gets near-equal coverage; case and injection
    seeds both derive from ``seed``, making the whole campaign — including
    every classification — reproducible bit-for-bit.  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) receives counters under
    the reserved ``faults`` namespace; ``telemetry`` (a
    :class:`~repro.obs.events.CampaignTelemetry`) streams one
    ``inj:<index>`` unit per injection.
    """
    if count <= 0:
        raise FaultInjectionError("campaign count must be positive")
    models = tuple(models) if models else FAULT_MODELS
    for model in models:
        if model not in FAULT_MODELS:
            raise FaultInjectionError(f"unknown fault model {model!r}")
    factors = tuple(factors)
    specs = []
    for i in range(count):
        case_seed = seed * SEED_STRIDE + i
        injection_seed = case_seed * 31 + 7
        specs.append((i, case_seed, vlmax, num_ops,
                      factors[i % len(factors)], models[i % len(models)],
                      injection_seed))
    monitor = None
    if telemetry.enabled:
        units = [f"inj:{spec[0]}" for spec in specs]
        telemetry.begin(units)
        monitor = TelemetryMonitor(telemetry, units,
                                   describe=_describe_injection, jobs=jobs)
    raw = fan_out(_run_injection, specs, jobs, profiler=profiler,
                  phase="faults", monitor=monitor)
    outcomes = [InjectionOutcome(**out) for out in raw]
    report = CampaignReport(seed=seed, count=count, models=models,
                            factors=factors, outcomes=outcomes)
    if metrics is not None:
        metrics.reserve("faults", "FaultCampaign")
        metrics.counter("faults.injections").inc(len(outcomes))
        for name, value in report.counts.items():
            metrics.counter(f"faults.{name}").inc(value)
        metrics.gauge("faults.sdc_rate").set(report.sdc_rate)
    return report
