"""Differential fuzzing + fault injection for bit-hybrid execution.

* :mod:`repro.faults.fuzz` — a seeded differential fuzzer that runs
  random RVV instruction sequences lockstep through the micro-programmed
  :class:`~repro.core.EveFunctionalEngine` at every segment width against
  the numpy :class:`~repro.isa.intrinsics.VectorContext` oracle, shrinks
  any mismatch to a minimal repro, and emits it as a replayable JSON case.
* :mod:`repro.faults.inject` — deterministic, seed-addressable fault
  models (SRAM bit flips, stuck carry-chain segment boundaries,
  dropped / latched micro-op write-backs) applied through zero-cost
  hooks in the SRAM, the micro-engine, and the machine models.
* :mod:`repro.faults.campaign` — seeded injection campaigns fanned out
  over worker processes, classifying every outcome as masked / detected
  / silent-data-corruption against the oracle.

Only :mod:`.inject` is imported eagerly: the hooked modules
(``sram.eve_sram``, ``uops.executor``, the machine models) import
``NULL_FAULTS`` from this package, so the fuzzer/campaign halves — which
themselves import those hooked modules — load lazily on first use.
"""

from .inject import (
    FAULT_MODELS,
    NULL_FAULTS,
    FaultInjector,
    FaultProbe,
    FaultSpec,
)

_FUZZ_EXPORTS = ("FUZZ_WIDTHS", "FuzzCase", "FuzzMismatch", "fuzz_many",
                 "generate_case", "load_case", "replay_case", "run_case",
                 "shrink_case")
_CAMPAIGN_EXPORTS = ("CampaignReport", "InjectionOutcome", "run_campaign")

__all__ = [
    "FAULT_MODELS",
    "NULL_FAULTS",
    "FaultInjector",
    "FaultProbe",
    "FaultSpec",
    *_FUZZ_EXPORTS,
    *_CAMPAIGN_EXPORTS,
]


def __getattr__(name: str):
    if name in _FUZZ_EXPORTS:
        from . import fuzz
        return getattr(fuzz, name)
    if name in _CAMPAIGN_EXPORTS:
        from . import campaign
        return getattr(campaign, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
