"""Deterministic, seed-addressable fault models for the EVE SRAM path.

Compute-in-SRAM designs are exactly where transient bit-line faults
matter: a flipped cell in a compute row, a stuck carry flip-flop on a
segment boundary, or a dropped peripheral write-back silently corrupts a
*value*, not a control word, so nothing in the machine traps.  This
module gives the simulator a way to inject exactly those faults — in a
fully deterministic, replayable way — so campaigns can measure how often
they are masked, detected, or become silent data corruption.

The hook pattern mirrors the observability layer: every hooked object
(:class:`~repro.sram.EveSram`, :class:`~repro.uops.executor.MicroEngine`,
the machine models) carries :data:`NULL_FAULTS` by default and guards
every call site with ``if self.faults.enabled:``, so the fault plumbing
costs nothing when disabled.

Seed addressing is a two-pass protocol:

1. a **probe pass** runs the workload fault-free with a
   :class:`FaultProbe` attached, counting the write-back and carry-commit
   events the program generates (and capturing the golden outcome);
2. the **armed pass** re-runs it with a :class:`FaultInjector` whose
   target event index, fault site, and polarity are all drawn from
   ``random.Random(seed)`` against the probe's event counts.

Because micro-program control flow is data-independent, the armed pass
replays exactly the same event stream, so the same seed always fires the
same fault at the same micro-architectural instant.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import FaultInjectionError

#: The supported fault models (CLI ``--model`` values).
FAULT_MODELS = ("bitflip", "multi_bitflip", "stuck_carry", "drop_wb",
                "latch_wb")

#: Bit flips injected by ``multi_bitflip`` (a burst along a bit-line).
MULTI_FLIPS = 4


class NullFaultInjector:
    """Disabled-mode stand-in: hooked objects skip all fault work."""

    enabled = False

    def on_macro(self, macro: str) -> None:  # pragma: no cover - guarded
        pass

    def on_program(self, name: str) -> None:  # pragma: no cover - guarded
        pass

    def filter_wb(self, sram, dest, src, value):  # pragma: no cover
        return value

    def filter_carry(self, carry):  # pragma: no cover - guarded
        return carry


#: Shared zero-cost default for every hooked constructor.
NULL_FAULTS = NullFaultInjector()


@dataclass(frozen=True)
class FaultSpec:
    """One requested fault: a model plus the seed that addresses it."""

    model: str
    seed: int
    flips: int = MULTI_FLIPS

    def __post_init__(self) -> None:
        if self.model not in FAULT_MODELS:
            raise FaultInjectionError(
                f"unknown fault model {self.model!r} "
                f"(expected one of {', '.join(FAULT_MODELS)})")
        if self.flips <= 0:
            raise FaultInjectionError("flip count must be positive")


class FaultProbe:
    """Pass-1 hook: counts injectable events without perturbing anything.

    The counts parameterise :class:`FaultInjector` seed addressing; the
    probe is also how a campaign learns a case's fault-free event budget.
    """

    enabled = True

    def __init__(self) -> None:
        self.wb_events = 0
        self.carry_events = 0
        self.macro_ops = 0

    def on_macro(self, macro: str) -> None:
        self.macro_ops += 1

    def on_program(self, name: str) -> None:
        pass

    def filter_wb(self, sram, dest, src, value):
        self.wb_events += 1
        return value

    def filter_carry(self, carry):
        self.carry_events += 1
        return carry


class FaultInjector:
    """Pass-2 hook: fires one seed-addressed fault into the event stream.

    ``wb_events`` / ``carry_events`` are the probe's counts; ``rows`` /
    ``cols`` / ``groups`` the geometry of the SRAM under attack.  All
    random draws happen in the constructor in a fixed order, so equal
    ``(spec, counts, geometry)`` always produce an identical fault.
    """

    enabled = True

    def __init__(self, spec: FaultSpec, *, wb_events: int, carry_events: int,
                 rows: int, cols: int, groups: int) -> None:
        self.spec = spec
        self.model = spec.model
        self.fired = False
        #: Macro-op family active when the fault fired (report breakdown).
        self.fired_macro: Optional[str] = None
        self.fired_program: Optional[str] = None
        self._current_macro = ""
        self._current_program = ""
        self._wb_seen = 0
        self._carry_seen = 0
        self._stale_wb: Optional[np.ndarray] = None
        self._stuck_active = False
        rng = random.Random(spec.seed)
        if self.model == "stuck_carry":
            if carry_events <= 0:
                raise FaultInjectionError(
                    "cannot arm stuck_carry: the probe saw no carry-commit "
                    "events (program has no multi-segment arithmetic)")
            self.target = rng.randrange(carry_events)
            self.group = rng.randrange(groups)
            self.stuck_value = rng.randrange(2)
            self.flip_sites: List[Tuple[int, int]] = []
        else:
            if wb_events <= 0:
                raise FaultInjectionError(
                    "cannot arm a write-back fault: the probe saw no "
                    "write-back events")
            self.target = rng.randrange(wb_events)
            flips = spec.flips if self.model == "multi_bitflip" else 1
            self.flip_sites = [(rng.randrange(rows), rng.randrange(cols))
                               for _ in range(flips)]
            self.group = -1
            self.stuck_value = -1

    # -- context tracking --------------------------------------------------

    def on_macro(self, macro: str) -> None:
        self._current_macro = macro

    def on_program(self, name: str) -> None:
        self._current_program = name

    def _mark_fired(self) -> None:
        if not self.fired:
            self.fired = True
            self.fired_macro = self._current_macro or None
            self.fired_program = self._current_program or None

    # -- the two fault surfaces --------------------------------------------

    def filter_wb(self, sram, dest, src, value):
        """Intercept one write-back; returns the (possibly replaced)
        value, or ``None`` to drop the write entirely."""
        event = self._wb_seen
        self._wb_seen += 1
        if self.model == "stuck_carry" or event != self.target:
            if self.model == "latch_wb":
                self._stale_wb = np.array(value, dtype=np.uint8, copy=True)
            return value
        self._mark_fired()
        if self.model == "drop_wb":
            return None
        if self.model == "latch_wb":
            # The peripheral latch failed to capture this cycle's value:
            # the previous write-back's bits (or reset state) go out.
            return (self._stale_wb if self._stale_wb is not None
                    else np.zeros_like(np.asarray(value, dtype=np.uint8)))
        # bitflip / multi_bitflip: flip stored cells at the event boundary.
        for row, col in self.flip_sites:
            sram.array.flip(row % sram.rows, col % sram.cols)
        return value

    def filter_carry(self, carry):
        """Intercept one carry commit; a stuck segment boundary holds its
        flip-flop at the stuck value from the target event onward."""
        event = self._carry_seen
        self._carry_seen += 1
        if self.model != "stuck_carry":
            return carry
        if not self._stuck_active and event >= self.target:
            self._stuck_active = True
            self._mark_fired()
        if self._stuck_active:
            carry = np.array(carry, dtype=np.uint8, copy=True)
            carry[self.group % len(carry)] = self.stuck_value
        return carry

    # -- reporting ----------------------------------------------------------

    def describe(self) -> Dict[str, object]:
        info: Dict[str, object] = {
            "model": self.model,
            "seed": self.spec.seed,
            "target_event": self.target,
            "fired": self.fired,
            "macro": self.fired_macro,
            "program": self.fired_program,
        }
        if self.model == "stuck_carry":
            info["group"] = self.group
            info["stuck_value"] = self.stuck_value
        elif self.flip_sites:
            info["sites"] = [list(site) for site in self.flip_sites]
        return info
