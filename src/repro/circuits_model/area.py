"""Area model (Sections VI-B and VII-B).

Constants are the paper's layout-derived measurements on the 28nm node:
the base bit-line-compute overhead of the simplified 256x128 EVE SRAM, the
estimated full-stack overheads per sub-array for the three circuit
families, the halving from banking two sub-arrays per EVE SRAM, the
halving from equipping only half the L2 ways, and the five extra
sub-array-equivalents (8 half-sub-array DTUs + 1 ROM) out of the L2's 64.

System-level factors reproduce Section VII-B: O3+IV = 1.10x, O3+DV =
2.00x, EVE-1 = 1.10x, EVE-2..16 = 1.12x, EVE-32 = 1.11x (the private L2 is
modelled as core-sized, which reproduces the paper's roundings exactly).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: Layout-measured overhead of the simplified (shifter-less) EVE SRAM.
SIMPLIFIED_OVERHEAD = 0.082

#: Estimated full-stack overhead per sub-array (Section VI-B).
STACK_OVERHEAD = {"serial": 0.090, "hybrid": 0.156, "parallel": 0.126}

#: An EVE SRAM banks two 256x128 sub-arrays behind one circuit stack.
BANKED_SUBARRAYS = 2

#: Sub-arrays in the 512KB private L2.
L2_SUBARRAYS = 64

#: Data-transpose units and their size in sub-array halves (Section VII-B).
NUM_DTUS = 8
DTU_SUBARRAY_EQUIV = 0.5
ROM_SUBARRAY_EQUIV = 1.0

#: Fraction of L2 ways built with EVE SRAMs.
EVE_WAY_FRACTION = 0.5

#: Non-EVE baselines (relative to the O3 core+caches), Section VII-B.
BASELINE_AREA_FACTORS = {"O3": 1.00, "O3+IV": 1.10, "O3+DV": 2.00}

#: Assumed in-order-core factor (not given by the paper; used only for
#: presentation, never for the paper's area-efficiency claims).
IO_AREA_FACTOR = 0.40

#: Private-L2 area relative to the O3 core complex.  1.0 reproduces the
#: paper's rounded EVE system factors exactly.
L2_TO_CORE_AREA = 1.0


def circuit_family(factor: int) -> str:
    """Which circuit stack an EVE-``factor`` design uses."""
    if factor == 1:
        return "serial"
    if factor == 32:
        return "parallel"
    if factor in (2, 4, 8, 16):
        return "hybrid"
    raise ConfigError(f"no circuit family for factor {factor}")


@dataclass(frozen=True)
class AreaModel:
    """Area overheads of one EVE-``factor`` design."""

    factor: int

    @property
    def stack_overhead(self) -> float:
        """Full circuit-stack overhead on a single sub-array."""
        return STACK_OVERHEAD[circuit_family(self.factor)]

    @property
    def eve_sram_overhead(self) -> float:
        """Overhead of one EVE SRAM (two banked sub-arrays, one stack)."""
        return self.stack_overhead / BANKED_SUBARRAYS

    @property
    def extra_subarray_overhead(self) -> float:
        """DTUs + macro-op ROM, as a fraction of the L2's sub-arrays."""
        extra = NUM_DTUS * DTU_SUBARRAY_EQUIV + ROM_SUBARRAY_EQUIV
        return extra / L2_SUBARRAYS

    @property
    def l2_overhead(self) -> float:
        """Total L2 area overhead (Section VII-B; 11.7% for EVE-8)."""
        return self.eve_sram_overhead * EVE_WAY_FRACTION + self.extra_subarray_overhead

    @property
    def system_factor(self) -> float:
        """System area relative to the plain O3 baseline."""
        return 1.0 + self.l2_overhead * L2_TO_CORE_AREA


def system_area_factor(name: str) -> float:
    """Area factor (vs O3) for any Table III system name."""
    if name == "IO":
        return IO_AREA_FACTOR
    if name in BASELINE_AREA_FACTORS:
        return BASELINE_AREA_FACTORS[name]
    if name.startswith("O3+EVE-"):
        return AreaModel(int(name.split("-")[-1])).system_factor
    raise ConfigError(f"unknown system {name!r}")
