"""Cycle-time model (Section VI-B).

The vanilla 28nm SRAM cycles at 1.025ns with the read path critical.  Up
to an 8-bit Manchester carry chain, the EVE circuits stay off the critical
path; a 16-bit chain costs ~15% and a 32-bit chain ~51% — and because the
EVE ways double as L2 ways, the penalty slows the *whole system's* clock
(Section VII-B discusses this for EVE-16/EVE-32).
"""

from __future__ import annotations

from ..config import BASE_CYCLE_TIME_NS, CYCLE_TIME_NS_BY_FACTOR
from ..errors import ConfigError


def cycle_time_ns(factor: int) -> float:
    """Cycle time of an EVE-``factor`` system in nanoseconds."""
    try:
        return CYCLE_TIME_NS_BY_FACTOR[factor]
    except KeyError:
        raise ConfigError(f"no cycle-time data for factor {factor}") from None


def cycle_time_penalty(factor: int) -> float:
    """Fractional penalty over the vanilla SRAM (0.0 for n <= 8)."""
    return cycle_time_ns(factor) / BASE_CYCLE_TIME_NS - 1.0


def frequency_ghz(factor: int) -> float:
    """Clock frequency of an EVE-``factor`` system in GHz."""
    return 1.0 / cycle_time_ns(factor)
