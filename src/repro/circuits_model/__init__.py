"""Circuit-level area / cycle-time / energy models (Section VI).

These models encode the scaling structure extracted from the paper's
OpenRAM 28nm layouts:

* :mod:`repro.circuits_model.area` — per-sub-array circuit overheads, the
  EVE SRAM pool overhead in the L2, and system-level area factors.
* :mod:`repro.circuits_model.timing` — cycle time per parallelization
  factor (the Manchester chain is the critical path above n = 8).
* :mod:`repro.circuits_model.energy` — relative energy of the SRAM
  micro-operations.
"""

from .area import AreaModel, system_area_factor
from .timing import cycle_time_ns, frequency_ghz
from .energy import OP_ENERGY_REL, macroop_energy

__all__ = [
    "AreaModel",
    "system_area_factor",
    "cycle_time_ns",
    "frequency_ghz",
    "OP_ENERGY_REL",
    "macroop_energy",
]
