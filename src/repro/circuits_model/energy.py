"""Relative-energy model of the EVE SRAM operations (Section VI-B).

The paper's extracted-netlist power analysis found: read/write match the
vanilla SRAM (read being its most expensive operation, taken as 1.0 here);
bit-line compute costs ~20% more than a read; every other added operation
is much cheaper because neither the sense amplifiers nor bit-line
pre-charging is involved.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..uops.executor import MicroEngine
from ..uops.rom import MacroOpRom

#: Energy of each arithmetic μop relative to a vanilla SRAM read.
OP_ENERGY_REL: Dict[str, float] = {
    "rd": 1.00,
    "wr": 0.90,
    "blc": 1.20,       # ~20% above a read (Section VI-B)
    "wb": 0.90,        # a write driven from the peripheral stack
    "lshift": 0.05,    # latch-only operations: no bit-lines involved
    "rshift": 0.05,
    "lrot": 0.05,
    "rrot": 0.05,
    "mask_shft": 0.05,
    "mask_shftl": 0.05,
    "mask_carry": 0.02,
    "sclr": 0.01,
    "nop": 0.0,
}

#: Peak-power envelope of the array versus vanilla (the blc worst case).
PEAK_POWER_OVERHEAD = 0.20


def uop_histogram(rom: MacroOpRom, macro: str, **params: object) -> Dict[str, int]:
    """Dynamic arithmetic-μop counts of one macro-op's micro-program."""
    histogram: Dict[str, int] = {}
    MicroEngine().run(rom.program(macro, **params), histogram=histogram)
    return histogram


def macroop_energy(rom: MacroOpRom, macro: str,
                   histogram: Optional[Dict[str, int]] = None,
                   **params: object) -> float:
    """Energy of one macro-op in read-equivalents (per in-situ ALU).

    Demonstrates the paper's point that the *average* power overhead of
    vector execution sits well below the +20% blc peak: micro-programs mix
    blc cycles with writes, shifts, and latch operations.
    """
    if histogram is None:
        histogram = uop_histogram(rom, macro, **params)
    return sum(OP_ENERGY_REL[kind] * count for kind, count in histogram.items())


def average_power_overhead(rom: MacroOpRom, macro: str, **params: object) -> float:
    """Mean per-cycle energy of a macro-op relative to a read-only stream.

    Values below :data:`PEAK_POWER_OVERHEAD` + 1 confirm Section VI-B's
    argument that sustained power stays under the blc peak.
    """
    histogram = uop_histogram(rom, macro, **params)
    cycles = MicroEngine().run(rom.program(macro, **params))
    return macroop_energy(rom, macro, histogram=histogram, **params) / cycles
