"""Exception hierarchy for the EVE reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A system or SRAM configuration is internally inconsistent."""


class IsaError(ReproError):
    """A vector instruction is malformed or unsupported."""


class SramError(ReproError):
    """An SRAM array operation violates the array geometry or state."""


class LayoutError(ReproError):
    """A vector-register layout cannot be realised in the given array."""


class MicroProgramError(ReproError):
    """A micro-program is malformed (bad label, operand, or tuple)."""


class LintError(MicroProgramError):
    """A micro-program failed static verification.

    Carries the analyzer's full diagnostic list in :attr:`findings`
    (a tuple of :class:`repro.uops.lint.Finding`).
    """

    def __init__(self, message: str, findings=()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)


class MicroExecutionError(ReproError):
    """A micro-program performed an illegal action at execution time."""


class MemoryModelError(ReproError):
    """A memory-system request or configuration is invalid."""


class SimulationError(ReproError):
    """A machine model reached an inconsistent simulation state."""


class WorkloadError(ReproError):
    """A workload was given invalid parameters."""


class ExperimentError(ReproError):
    """An experiment harness was asked for an impossible aggregation
    (e.g. a geometric mean over an empty app/system selection)."""


class RunStoreError(ReproError):
    """A run record is malformed or the run store cannot satisfy a lookup."""


class MetricsSchemaError(ReproError):
    """The metrics registry's naming schema is violated (colliding names
    or conflicting reserved prefixes)."""


class AnalysisError(ReproError):
    """A trace failed static analysis in strict mode.

    Carries the checkers' full diagnostic list in :attr:`findings`
    (a tuple of :class:`repro.uops.lint.Finding`).
    """

    def __init__(self, message: str, findings=()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)


class CompilerError(ReproError):
    """Trace compilation failed, or a compile-time equivalence gate
    (block-schedule legality, the DCE-vs-checker findings invariant)
    tripped in strict mode.

    Carries any static-check findings involved in :attr:`findings`.
    """

    def __init__(self, message: str, findings=()) -> None:
        super().__init__(message)
        self.findings = tuple(findings)


class EventLogError(ReproError):
    """A telemetry event is malformed, the event log is corrupt, or an
    event-stream invariant (schema version, known kinds, watchdog
    configuration) is violated."""


class FaultInjectionError(ReproError):
    """A fault-injection or fuzzing request is malformed (unknown fault
    model, unreplayable case file, or an unarmable fault target)."""


class ServiceError(ReproError):
    """A job-service request is malformed or cannot be satisfied (unknown
    job kind or id, invalid parameters, a journal the service cannot
    replay, or a submission rejected because the service is draining).

    Carries an HTTP-ish status code in :attr:`status` so the server can
    map validation failures to 4xx responses without string matching.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = int(status)


class AttributionError(ReproError):
    """The cycle-attribution conservation invariant is violated.

    Raised by :meth:`repro.obs.attribution.AttributionCollector.\
require_conserved` when a unit's attributed cycles do not sum bit-exactly
    to the totals the machine model reported, or when the attributed
    timeline fails to cover the achieved cycle count.  Carries the
    per-(unit, bucket) deltas in :attr:`mismatches`.
    """

    def __init__(self, message: str, mismatches=()) -> None:
        super().__init__(message)
        self.mismatches = tuple(mismatches)
