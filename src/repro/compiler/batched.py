"""Numpy-batched word-level datapath for macro-operation blocks.

The bit-exact :class:`~repro.uops.executor.MicroEngine` evaluates one VLIW
tuple per simulated cycle — hundreds of Python iterations per macro-op at
factor 1.  But the macro-ops' *word-level* effects are the shared ISA
semantic tables in :mod:`repro.isa.intrinsics`, and their cycle counts are
data-independent (that is the point of the function/timing split), so a
block of macro-ops can be evaluated as one numpy expression per macro with
cycles charged from :meth:`MacroOpRom.cycles` — the same timing-only run
the bit engine's dynamic count reduces to.

:class:`WordDatapath` is the batched backend behind
``EveFunctionalEngine(batched=True)``: the engine's register allocator,
spill/reload protocol, and macro emission order are untouched, so the
cycle totals and spill counts come out identical to the bit path, while
each macro costs one vectorised numpy op instead of a micro-program
interpretation.  ``tests/test_compiler.py`` replays the fuzz corpus at all
six widths asserting byte-identical cycles and live-out state.

Values are stored the way :meth:`EveSram.read_vreg` would return them:
sign-extended ``int64`` arrays of 32-bit values, one entry per element,
full register capacity.  Lanes a macro never writes in one mode but does
in the other (the div scratch register, masked-off tails) are
unobservable through the engine's handle API, which is the only read
path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..errors import SimulationError
from ..isa.intrinsics import BINARY_SEMANTICS, COMPARE_SEMANTICS, wrap32
from ..uops.rom import MacroOpRom

_MASK32 = 0xFFFFFFFF

#: macro (op param) -> intrinsics semantic key.  ``rsub`` maps directly:
#: the macro computes vs2 - vs1 and the table's ``vrsub(x, y)`` is y - x.
_BINARY_KEYS = {
    ("add", None): "vadd",
    ("sub", None): "vsub",
    ("rsub", None): "vrsub",
    ("logic", "and"): "vand",
    ("logic", "or"): "vor",
    ("logic", "xor"): "vxor",
    ("logic", "not"): "vnot",
    ("shift_scalar", "sll"): "vsll",
    ("shift_scalar", "srl"): "vsrl",
    ("shift_scalar", "sra"): "vsra",
    ("shift_variable", "sll"): "vsll",
    ("shift_variable", "srl"): "vsrl",
    ("shift_variable", "sra"): "vsra",
    ("div", "div"): "vdiv",
    ("div", "rem"): "vrem",
    ("div", "divu"): "vdivu",
    ("div", "remu"): "vremu",
}

#: Logic forms the ROM serves but the intrinsics table has no vx name for.
_EXTRA_LOGIC = {
    "nand": lambda x, y: ~(x & y),
    "nor": lambda x, y: ~(x | y),
    "xnor": lambda x, y: ~(x ^ y),
}

#: One macro emission: (macro, regs, scalar, params).
MacroOp = Tuple[str, dict, int, dict]


class WordDatapath:
    """Executes macro-op blocks as vectorised word arithmetic.

    Drop-in peer of the engine's bit datapath: ``execute`` runs a block
    and returns its cycle total; ``read_vreg``/``write_vreg`` are the
    spill/observation ports (sign-extended int64, like the SRAM's).
    """

    def __init__(self, rom: MacroOpRom, capacity: int) -> None:
        if rom.element_bits != 32:
            raise SimulationError(
                "batched word datapath supports 32-bit elements only")
        self.rom = rom
        self.capacity = capacity
        self._regs: Dict[int, np.ndarray] = {}

    # -- spill / observation ports ------------------------------------------

    def _reg(self, reg: int) -> np.ndarray:
        values = self._regs.get(reg)
        if values is None:
            values = np.zeros(self.capacity, dtype=np.int64)
            self._regs[reg] = values
        return values

    def read_vreg(self, reg: int) -> np.ndarray:
        return self._reg(reg).copy()

    def write_vreg(self, reg: int, values: np.ndarray) -> None:
        full = np.zeros(self.capacity, dtype=np.int64)
        data = np.asarray(values, dtype=np.int64)[: self.capacity]
        full[: len(data)] = wrap32(data)
        self._regs[reg] = full

    # -- block execution ------------------------------------------------------

    def execute(self, block: List[MacroOp]) -> int:
        """Run one macro block; returns its total cycle count."""
        cycles = 0
        rom_cycles = self.rom.cycles
        for macro, regs, scalar, params in block:
            cycles += rom_cycles(macro, **params)
            self._apply(macro, regs, scalar, params)
        return cycles

    def _apply(self, macro: str, regs: dict, scalar: int,
               params: dict) -> None:
        if macro == "splat":
            value = int(wrap32(np.asarray([scalar], dtype=np.int64))[0])
            result = np.full(self.capacity, value, dtype=np.int64)
        elif macro == "move":
            result = self._reg(regs["vs1"]).copy()
        elif macro == "merge":
            mask = self._reg(regs["vm"])
            result = np.where(mask != 0, self._reg(regs["vs1"]),
                              self._reg(regs["vs2"]))
        elif macro == "compare":
            x = self._reg(regs["vs1"])
            y = self._reg(regs["vs2"])
            if not params.get("signed", True):
                x = x & _MASK32
                y = y & _MASK32
            result = COMPARE_SEMANTICS["vms" + params["op"]](x, y).astype(np.int64)
        elif macro == "minmax":
            x = self._reg(regs["vs1"])
            y = self._reg(regs["vs2"])
            fold = np.minimum if params["op"] == "min" else np.maximum
            if params.get("signed", True):
                result = fold(x, y)
            else:
                result = wrap32(fold(x & _MASK32, y & _MASK32)).astype(np.int64)
        elif macro == "mul":
            if params.get("high"):
                raise SimulationError(
                    "mulh is a timing proxy only; the word datapath does "
                    "not implement the high half (see DESIGN.md)")
            x = self._reg(regs["vs1"])
            y = self._reg(regs["vs2"])
            result = wrap32(x * y).astype(np.int64)
        elif macro == "shift_scalar":
            x = self._reg(regs["vs1"])
            semantics = BINARY_SEMANTICS[_BINARY_KEYS[(macro, params["op"])]]
            result = wrap32(semantics(x, int(params["amount"]))).astype(np.int64)
        else:
            x = self._reg(regs["vs1"])
            y = self._reg(regs["vs2"]) if "vs2" in regs else np.int64(0)
            op = params.get("op")
            key = _BINARY_KEYS.get((macro, op if macro != "add" else None))
            if macro in ("add", "sub", "rsub"):
                key = _BINARY_KEYS[(macro, None)]
            if key is not None:
                semantics = BINARY_SEMANTICS[key]
            elif macro == "logic" and op in _EXTRA_LOGIC:
                semantics = _EXTRA_LOGIC[op]
            else:
                raise SimulationError(
                    f"word datapath has no semantics for macro {macro!r} "
                    f"(params {params!r})")
            result = wrap32(semantics(x, y)).astype(np.int64)
        vd = regs["vd"]
        if params.get("masked"):
            mask = self._reg(regs["vm"])
            result = np.where(mask != 0, result, self._reg(vd))
        self._regs[vd] = result
