"""Trace compiler: DCE + line hoisting + block scheduling + fast backends.

The per-event interpreter loop is the simulator's dispatch bottleneck:
every memory event re-derives its cache-line stream through numpy, every
functional macro-op runs a per-cycle micro-program, and every cache
access crosses several delegation layers.  This package compiles a trace
once and lets the machines replay the compiled form:

* :mod:`passes` — dead-op elimination (the architectural work view,
  gated against the static checkers) and memory-line hoisting (the
  per-event request lists, precomputed to plain ints);
* :mod:`blocks` — the block scheduler, packing events into
  dependence-legal kind-homogeneous blocks proved against the
  :class:`~repro.analysis.depgraph.DepGraph`;
* :mod:`batched` — the numpy word-level datapath behind
  ``EveFunctionalEngine(batched=True)``;
* :mod:`memengine` — the flattened memory hierarchy the machines swap
  in for uninstrumented compiled runs.

Cycle accounting is byte-identical to the interpreted path by
construction: the machines replay every original event in original
order (blocks outer, events inner), dead ops included — elimination
changes what the *checkers* see, never what the timing models charge.
Instrumented runs (tracer, metrics, attribution, fault injection)
always take the reference interpreter path.

:data:`COMPILER_VERSION` and the pass list are folded into experiment
fingerprints (see :func:`CompilerConfig.descriptor`) so compiled and
uncompiled results can never collide in the result cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..analysis.columns import TraceColumns
from ..errors import CompilerError
from ..isa.trace import Trace
from .blocks import Block, schedule_blocks
from .passes import (DceResult, LinesTable, eliminate_dead_ops,
                     hoist_memory_lines, verify_dce_findings)

#: Bumped whenever a pass changes observable behaviour; part of every
#: compiled run's fingerprint.
COMPILER_VERSION = 1

#: The full pipeline, in the order it runs.
DEFAULT_PASSES: Tuple[str, ...] = ("dce", "hoist", "schedule")

_KNOWN_PASSES = frozenset(DEFAULT_PASSES)


@dataclass(frozen=True)
class CompilerConfig:
    """Which passes run, and whether equivalence gates are fatal."""

    passes: Tuple[str, ...] = DEFAULT_PASSES
    strict: bool = False

    def __post_init__(self) -> None:
        unknown = set(self.passes) - _KNOWN_PASSES
        if unknown:
            raise CompilerError(
                f"unknown compiler pass(es): {sorted(unknown)} "
                f"(known: {sorted(_KNOWN_PASSES)})")

    def descriptor(self) -> Dict[str, object]:
        """Fingerprint ingredient: identifies the compiled semantics."""
        return {"compiler_version": COMPILER_VERSION,
                "passes": list(self.passes)}


class CompiledTrace:
    """One trace, compiled: line tables, block schedule, DCE view.

    The machines drive a compiled run through :meth:`iter_events`
    (block-at-a-time event stream, order-identical to ``enumerate``)
    and :meth:`lines_for` (the hoisted request list, or ``None`` for
    non-memory events).
    """

    def __init__(self, trace: Trace, config: CompilerConfig,
                 lines: LinesTable, blocks: Optional[List[Block]],
                 dce: Optional[DceResult],
                 dce_ok: bool = True,
                 dce_mismatch: Tuple[tuple, tuple] = ((), ())) -> None:
        self.trace = trace
        self.config = config
        self.lines = lines
        self.blocks = blocks
        self.dce = dce
        #: Did the DCE-vs-checker findings invariant hold?  Always True
        #: in strict mode (a violation raises at compile time).
        self.dce_ok = dce_ok
        self.dce_mismatch = dce_mismatch

    @property
    def optimized(self) -> Trace:
        """The analysis view: original trace minus eliminated dead ops."""
        return self.dce.trace if self.dce is not None else self.trace

    @property
    def eliminated(self) -> Tuple[int, ...]:
        return self.dce.eliminated if self.dce is not None else ()

    def iter_events(self) -> Iterator[tuple]:
        """Yield ``(index, event)`` block-at-a-time, program order."""
        events = self.trace.events
        if self.blocks is None:
            for index, event in enumerate(events):
                yield index, event
            return
        for block in self.blocks:
            for index in block.events:
                yield index, events[index]

    def lines_for(self, index: int):
        return self.lines.get(index)

    def descriptor(self) -> Dict[str, object]:
        return self.config.descriptor()

    def summary(self) -> Dict[str, object]:
        return {
            "events": len(self.trace.events),
            "blocks": len(self.blocks) if self.blocks is not None else 0,
            "max_block": max((len(b) for b in self.blocks), default=0)
                         if self.blocks is not None else 0,
            "dep_levels": max((b.level for b in self.blocks), default=0) + 1
                          if self.blocks else 0,
            "eliminated": len(self.eliminated),
            "dce_rounds": self.dce.rounds if self.dce is not None else 0,
            "dce_ok": self.dce_ok,
            "hoisted_events": len(self.lines),
        }


def compile_trace(trace: Trace, config: Optional[CompilerConfig] = None,
                  columns: Optional[TraceColumns] = None) -> CompiledTrace:
    """Run the pass pipeline over ``trace``.

    ``columns`` lets a caller that already built the def-use facts (the
    analysis pipeline, strict check) share them with the first DCE
    round.  With ``config.strict`` the findings gate raises on
    violation; otherwise a violation is recorded on the result and the
    DCE view is discarded (the unoptimized trace stands in), so a
    non-strict compile never contradicts ``repro check``.
    """
    config = config if config is not None else CompilerConfig()
    passes = config.passes
    if columns is None and ("dce" in passes or "schedule" in passes):
        columns = TraceColumns(trace)

    dce = None
    dce_ok = True
    dce_mismatch: Tuple[tuple, tuple] = ((), ())
    if "dce" in passes:
        dce = eliminate_dead_ops(trace, columns=columns)
        if dce.eliminated:
            dce_ok, missing, unexpected = verify_dce_findings(
                trace, dce, strict=config.strict)
            dce_mismatch = (missing, unexpected)
            if not dce_ok:
                dce = None

    lines: LinesTable = (hoist_memory_lines(trace)
                         if "hoist" in passes else {})

    blocks = None
    if "schedule" in passes:
        blocks = schedule_blocks(trace, columns=columns)

    return CompiledTrace(trace, config, lines, blocks, dce,
                         dce_ok=dce_ok, dce_mismatch=dce_mismatch)


def compiler_descriptor(enabled: bool,
                        config: Optional[CompilerConfig] = None):
    """The fingerprint ingredient for a run: a descriptor dict when the
    compiled path is on, ``None`` when interpreted."""
    if not enabled:
        return None
    return (config if config is not None else CompilerConfig()).descriptor()


__all__ = [
    "COMPILER_VERSION", "DEFAULT_PASSES", "CompilerConfig", "CompiledTrace",
    "compile_trace", "compiler_descriptor", "Block", "schedule_blocks",
    "DceResult", "eliminate_dead_ops", "verify_dce_findings",
    "hoist_memory_lines",
]
