"""Block scheduler: packs trace events into dependence-legal blocks.

The scheduler partitions a trace into maximal program-order runs of
like-kind events (scalar block / control / memory / cross-element /
compute).  Program order is a topological order of the dependence DAG,
so the partition is dependence-legal by construction — but the legality
is *proved*, not assumed: :func:`schedule_blocks` validates every
dependence edge (register RAW/WAR/WAW, vl-state, and memory ordering,
the same relation :func:`~repro.analysis.depgraph.build_depgraph`
exposes) against the block assignment and raises
:class:`CompilerError` on any backward edge or coverage gap.

Each block carries its dependence *level* — its longest-path depth in
the block DAG induced by cross-block edges — so downstream consumers
(the compiled machine drivers, reports) see how much of the trace's
critical structure a pack spans.  The compiled machines iterate blocks
outer, events inner, which preserves the interpreted per-event order
exactly and therefore the cycle accounting byte-for-byte.

Edges are consumed in the bulk array form
(:func:`~repro.analysis.depgraph.dependence_edge_groups`) rather than
as a materialised :class:`~repro.analysis.depgraph.DepGraph`: on the
hundred-thousand-event full-parameter traces, building per-edge objects
costs more than the simulation the compiler is speeding up.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..analysis.columns import TraceColumns
from ..analysis.depgraph import DepGraph, dependence_edge_groups
from ..errors import CompilerError
from ..isa.instructions import ScalarBlock, VectorInstr
from ..isa.opcodes import Category
from ..isa.trace import Trace


@dataclass(frozen=True)
class Block:
    """One scheduled pack of same-kind, program-contiguous events."""

    kind: str                 # "scalar" | "ctrl" | "mem" | "xelem" | "compute"
    events: Tuple[int, ...]   # original trace indices, ascending
    level: int                # longest-path depth in the block DAG

    def __len__(self) -> int:
        return len(self.events)


def event_kind(event) -> str:
    """Scheduling class of one trace event."""
    if isinstance(event, ScalarBlock):
        return "scalar"
    instr: VectorInstr = event
    category = instr.category
    if category is Category.CTRL:
        return "ctrl"
    if category.is_memory:
        return "mem"
    if category is Category.XELEM or instr.info.is_reduction:
        return "xelem"
    return "compute"


def schedule_blocks(trace: Trace,
                    depgraph: Optional[DepGraph] = None,
                    columns: Optional[TraceColumns] = None) -> List[Block]:
    """Pack ``trace`` into kind-homogeneous blocks and prove legality.

    ``depgraph`` reuses an already-built graph's edge set; otherwise the
    bulk edge relation is derived directly (``columns`` shares the
    def-use facts with other passes).
    """
    n = len(trace.events)
    if depgraph is not None:
        src = np.asarray([e.src for e in depgraph.edges], dtype=np.int64)
        dst = np.asarray([e.dst for e in depgraph.edges], dtype=np.int64)
        groups = [(src, dst, "dep")] if len(src) else []
    else:
        groups = dependence_edge_groups(trace, columns=columns)

    # Maximal program-order runs of one scheduling kind.
    spans: List[Tuple[str, int, int]] = []   # (kind, start, end)
    start = 0
    while start < n:
        kind = event_kind(trace.events[start])
        end = start + 1
        while end < n and event_kind(trace.events[end]) == kind:
            end += 1
        spans.append((kind, start, end))
        start = end

    # Event -> block position (spans are contiguous and ascending).
    sizes = np.asarray([end - beg for _, beg, end in spans], dtype=np.int64)
    block_of = np.repeat(np.arange(len(spans), dtype=np.int64), sizes)

    # Legality proof: no dependence may point to an earlier block.
    cross_src: List[np.ndarray] = []
    cross_dst: List[np.ndarray] = []
    for src, dst, kind in groups:
        if np.any((src < 0) | (dst >= n)):
            raise CompilerError(
                f"dependence edge out of range for trace {trace.name!r}")
        bsrc = block_of[src]
        bdst = block_of[dst]
        backward = bsrc > bdst
        if np.any(backward):
            at = int(np.nonzero(backward)[0][0])
            raise CompilerError(
                f"block schedule for {trace.name!r} violates {kind} "
                f"dependence {int(src[at])}->{int(dst[at])}")
        cross = bsrc < bdst
        cross_src.append(bsrc[cross])
        cross_dst.append(bdst[cross])

    # Block levels: longest path over the cross-block edges.  All edges
    # point forward, so one pass in ascending destination order
    # finalises each block's level before it is read as a source.
    levels = [0] * len(spans)
    if cross_src:
        all_src = np.concatenate(cross_src)
        all_dst = np.concatenate(cross_dst)
        order = np.argsort(all_dst, kind="stable")
        for s, d in zip(all_src[order].tolist(), all_dst[order].tolist()):
            if levels[s] + 1 > levels[d]:
                levels[d] = levels[s] + 1

    return [Block(kind=kind, events=tuple(range(beg, end)),
                  level=levels[position])
            for position, (kind, beg, end) in enumerate(spans)]
