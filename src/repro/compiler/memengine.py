"""Pure-Python replica of the memory hierarchy for the compiled path.

The interpreter's :class:`~repro.mem.hierarchy.MemorySystem` keeps its tag
arrays in numpy, which is the right shape for bulk state queries (the
reconfiguration FSM walks ways with slices) but a terrible shape for the
hot path: every ``access()`` call pays numpy scalar dispatch several times
over (``np.nonzero`` on an 8-wide row, ``np.argmin``, fancy indexing), and
backprop alone issues ~1.7M line requests.  The compiled evaluator swaps
in this module's :class:`FastMemorySystem`, which reproduces the numpy
model's behaviour *exactly*:

* identical LRU clocks, tie-breaks (first matching way, first invalid way,
  first-minimum stamp — the ``np.argmin`` convention), and dirty-bit
  updates, via a per-set ``{line: way}`` index plus way-major lists;
* identical timing chains (``_from_l1`` → ``_from_l2`` → ``_from_llc`` →
  ``_from_dram``) with MSHR and DRAM models transcribed line-for-line
  from :class:`~repro.mem.mshr.MshrPool` and
  :class:`~repro.mem.dram.DramChannel` (same statistics, minus the
  instrumentation branches that are dead in uninstrumented runs);
* identical statistics (``level_stats`` / per-cache hit/miss counters /
  Figure 8 vector-port counters).

All arithmetic is double precision either way (``np.float64`` *is* a C
double), so completion times — and therefore total cycle counts — come
out byte-identical.  ``tests/test_compiler.py`` locks this with a
differential test against :class:`MemorySystem` on random address
streams over all three ports.

The fast model supports no instrumentation: it is only ever constructed
for uninstrumented runs (tracer/metrics/attribution all disabled), where
the interpreter's per-access ``if self.tracer.enabled`` guards are dead
code anyway.
"""

from __future__ import annotations

from bisect import insort
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple

from ..config import CacheConfig, DramConfig, SystemConfig
from ..errors import MemoryModelError
from ..mem.cache import Eviction
from ..mem.hierarchy import PORTS
from ..obs.attribution import NULL_ATTRIBUTION
from ..obs.metrics import NULL_METRICS
from ..obs.tracer import NULL_TRACER


class FastCompletion:
    """Attribute-compatible stand-in for :class:`~repro.mem.hierarchy.Completion`.

    A ``__slots__`` class instantiates several times faster than the
    frozen dataclass; the field set and meaning are identical.
    """

    __slots__ = ("grant", "done", "level", "mshr_stall")

    def __init__(self, grant: float, done: float, level: str,
                 mshr_stall: float) -> None:
        self.grant = grant
        self.done = done
        self.level = level
        self.mshr_stall = mshr_stall


class FastCacheArray:
    """Replica of :class:`~repro.mem.cache.CacheArray` built for probes.

    Per-set ``{line: [way, dirty]}`` dicts make tag matching O(1) (tags
    are unique within a set: ``fill`` refreshes instead of duplicating)
    and double as the recency order: valid ways always carry *unique*
    LRU stamps in the numpy model (every touch advances the clock), so
    "first minimum stamp" is simply the least-recently-touched line —
    the dict's first key, when touches move entries to the end.  A
    sorted free-way list keeps the "first invalid way" rule.

    Both per-set structures materialise lazily (``None`` until the set
    is first filled): constructing the model costs two ``[None] * sets``
    lists instead of thousands of dicts, which matters because the
    compiled path builds a fresh FastMemorySystem per simulation and
    tiny-workload runs take single-digit milliseconds.
    """

    __slots__ = ("config", "sets", "ways", "line_bytes", "_lru", "_free",
                 "hits", "misses")

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.sets = config.sets
        self.ways = config.ways
        self.line_bytes = config.line_bytes
        #: Per set: resident line -> [way, dirty], ordered oldest-first;
        #: ``None`` until the set is first filled.
        self._lru: List[Optional[Dict[int, list]]] = [None] * self.sets
        #: Per set: invalid way indices, ascending; ``None`` = all free.
        self._free: List[Optional[List[int]]] = [None] * self.sets
        self.hits = 0
        self.misses = 0

    # -- address mapping ----------------------------------------------------

    def bank_of(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.config.banks

    # -- operations ---------------------------------------------------------

    def lookup(self, line_addr: int, is_store: bool = False) -> bool:
        """Probe; on a hit, updates LRU (and dirty for stores)."""
        line = line_addr // self.line_bytes
        lru = self._lru[line % self.sets]
        if lru is not None:
            entry = lru.pop(line, None)
            if entry is not None:
                lru[line] = entry  # reinsert at the end: most recent
                if is_store:
                    entry[1] = True
                self.hits += 1
                return True
        self.misses += 1
        return False

    def fill(self, line_addr: int, dirty: bool = False) -> Optional[Eviction]:
        """Install a line, evicting the LRU way if the set is full."""
        evicted = self.fill_fast(line_addr, dirty)
        if evicted is None:
            return None
        return Eviction(line_addr=evicted[0], dirty=evicted[1])

    def fill_fast(self, line_addr: int,
                  dirty: bool) -> Optional[Tuple[int, bool]]:
        """``fill`` without the :class:`Eviction` allocation: returns
        ``(victim line address, victim dirty)`` or ``None``."""
        line = line_addr // self.line_bytes
        s = line % self.sets
        lru = self._lru[s]
        if lru is None:
            lru = self._lru[s] = {}
            free = self._free[s] = list(range(self.ways))
        else:
            entry = lru.pop(line, None)
            if entry is not None:
                # already present (e.g. racing fills) — refresh
                lru[line] = entry
                if dirty:
                    entry[1] = True
                return None
            free = self._free[s]
        evicted = None
        if free:
            victim = free.pop(0)    # lowest invalid index, as the scan
        else:
            old_line, old_entry = next(iter(lru.items()))  # oldest touch
            del lru[old_line]
            victim = old_entry[0]
            evicted = (old_line * self.line_bytes, old_entry[1])
        lru[line] = [victim, dirty]
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present; returns whether it was dirty.

        Like the numpy model, invalidation does not advance the LRU clock.
        """
        line = line_addr // self.line_bytes
        s = line % self.sets
        lru = self._lru[s]
        if lru is None:
            return False
        entry = lru.pop(line, None)
        if entry is None:
            return False
        # A resident line implies fill ran on this set, so _free exists.
        insort(self._free[s], entry[0])
        return entry[1]

    # -- bulk state used by reconfiguration ---------------------------------

    def resident_lines(self, ways: Optional[slice] = None) -> Tuple[int, int]:
        """(valid lines, dirty lines) resident in the selected ways."""
        cols = (range(self.ways) if ways is None
                else range(*ways.indices(self.ways)))
        wanted = frozenset(cols)
        total = dirty = 0
        for lru in self._lru:
            if not lru:
                continue
            for entry in lru.values():
                if entry[0] in wanted:
                    total += 1
                    if entry[1]:
                        dirty += 1
        return total, dirty

    def flush_ways(self, ways: slice) -> Tuple[int, int]:
        """Invalidate the selected ways; returns (lines walked, dirty)."""
        total, dirty = self.resident_lines(ways)
        wanted = frozenset(range(*ways.indices(self.ways)))
        for s, lru in enumerate(self._lru):
            if not lru:
                continue
            doomed = [(line, entry[0]) for line, entry in lru.items()
                      if entry[0] in wanted]
            if doomed:
                free = self._free[s]
                for line, way in doomed:
                    del lru[line]
                    free.append(way)
                free.sort()
        return total, dirty

    def warm_fraction(self) -> float:
        resident = sum(len(lru) for lru in self._lru if lru)
        return resident / (self.sets * self.ways)

    # -- statistics ---------------------------------------------------------

    def stats(self) -> dict:
        accesses = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "miss_rate": self.misses / accesses if accesses else 0.0,
        }

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0


class FastMshrPool:
    """Transcription of :class:`~repro.mem.mshr.MshrPool` without the
    attribution hook; token-heap semantics and statistics identical."""

    __slots__ = ("size", "name", "_busy", "acquires", "stall_cycles",
                 "stalled_acquires", "occupancy_hwm")

    def __init__(self, size: int, name: str = "mshr") -> None:
        if size <= 0:
            raise MemoryModelError(f"{name}: pool size must be positive")
        self.size = size
        self.name = name
        self._busy: List[float] = []  # heap of release times
        self.acquires = 0
        self.stall_cycles = 0.0
        self.stalled_acquires = 0
        self.occupancy_hwm = 0

    def acquire(self, now: float) -> Tuple[float, float]:
        busy = self._busy
        while busy and busy[0] <= now:
            heappop(busy)
        if len(busy) < self.size:
            self.acquires += 1
            occupancy = len(busy) + 1
            if occupancy > self.occupancy_hwm:
                self.occupancy_hwm = occupancy
            return now, 0.0
        grant = busy[0]
        while busy and busy[0] <= grant:
            heappop(busy)
        stall = grant - now
        self.stall_cycles += stall
        self.stalled_acquires += 1
        self.acquires += 1
        occupancy = len(busy) + 1
        if occupancy > self.occupancy_hwm:
            self.occupancy_hwm = occupancy
        return grant, stall

    def release(self, at: float) -> None:
        heappush(self._busy, at)

    @property
    def outstanding(self) -> int:
        return len(self._busy)

    def stats(self) -> dict:
        return {
            "size": self.size,
            "acquires": self.acquires,
            "stalled_acquires": self.stalled_acquires,
            "stall_cycles": self.stall_cycles,
            "occupancy_hwm": self.occupancy_hwm,
        }

    def reset_stats(self) -> None:
        self.acquires = 0
        self.stall_cycles = 0.0
        self.stalled_acquires = 0
        self.occupancy_hwm = 0


class FastDramChannel:
    """Transcription of :class:`~repro.mem.dram.DramChannel` without
    tracer/attribution branches; ``transfer_cycles`` is precomputed
    (the original recomputes the division per request)."""

    __slots__ = ("config", "line_bytes", "transfer_cycles", "access_latency",
                 "_next_free", "requests", "writebacks", "busy_cycles")

    def __init__(self, config: DramConfig, line_bytes: int = 64) -> None:
        self.config = config
        self.line_bytes = line_bytes
        self.transfer_cycles = line_bytes / (config.bytes_per_cycle
                                             * config.channels)
        self.access_latency = config.access_latency
        self._next_free = 0.0
        self.requests = 0
        self.writebacks = 0
        self.busy_cycles = 0.0

    def service(self, now: float) -> Tuple[float, float]:
        transfer = self.transfer_cycles
        next_free = self._next_free
        start = now if now > next_free else next_free
        self._next_free = start + transfer
        self.requests += 1
        self.busy_cycles += transfer
        return start, start + self.access_latency

    def writeback(self, now: float) -> float:
        transfer = self.transfer_cycles
        next_free = self._next_free
        start = now if now > next_free else next_free
        self._next_free = start + transfer
        self.requests += 1
        self.writebacks += 1
        self.busy_cycles += transfer
        return start + transfer

    def utilisation(self, elapsed: float) -> float:
        return self.busy_cycles / elapsed if elapsed > 0 else 0.0

    def stats(self, elapsed: float = 0.0) -> dict:
        return {
            "requests": self.requests,
            "writebacks": self.writebacks,
            "busy_cycles": self.busy_cycles,
            "utilisation": self.utilisation(elapsed),
        }

    def reset_stats(self) -> None:
        self.requests = 0
        self.writebacks = 0
        self.busy_cycles = 0.0
        self._next_free = 0.0


class FastMemorySystem:
    """Drop-in, uninstrumented replica of :class:`MemorySystem`.

    The level chains are a line-for-line transcription of the numpy
    model's with the always-false ``tracer.enabled`` / ``metrics.enabled``
    branches removed.  Internally the chains pass ``(grant, done, level,
    stall)`` tuples and only the public ``access`` allocates a
    completion object — the callers read it once and discard it.
    """

    def __init__(self, config: SystemConfig, tracer=None, metrics=None,
                 attribution=None) -> None:
        if any(hook is not None and getattr(hook, "enabled", True)
               for hook in (tracer, metrics, attribution)):
            raise MemoryModelError(
                "FastMemorySystem does not support instrumentation; "
                "use MemorySystem for traced/metered/attributed runs")
        self.config = config
        self.tracer = NULL_TRACER
        self.metrics = NULL_METRICS
        self.attr = NULL_ATTRIBUTION
        self.l1d = FastCacheArray(config.l1d)
        self.l2 = FastCacheArray(config.l2)
        self.llc = FastCacheArray(config.llc)
        self.l1d_mshrs = FastMshrPool(config.l1d.mshrs, "l1d")
        self.l2_mshrs = FastMshrPool(config.l2.mshrs, "l2")
        self.llc_mshrs = FastMshrPool(config.llc.mshrs, "llc")
        self.dram = FastDramChannel(config.dram, config.llc.line_bytes)
        self._l2_bank_free = [0.0] * config.l2.banks
        self.vector_mshr_stall = 0.0
        self.vector_requests = 0
        self.vector_stalled_requests = 0
        # Hoisted hot constants (attribute loads add up at 1.7M calls).
        self._l1_hit = config.l1d.hit_latency
        self._l2_hit = config.l2.hit_latency
        self._llc_hit = config.llc.hit_latency

    # -- internal level chain (tuples: grant, done, level, stall) -----------

    def _from_dram(self, now: float, line_addr: int,
                   is_store: bool) -> Tuple[float, float, str, float]:
        grant, stall = self.llc_mshrs.acquire(now)
        # dram.service(), inlined on the hottest edge of the chain
        dram = self.dram
        transfer = dram.transfer_cycles
        at = grant + self._llc_hit
        next_free = dram._next_free
        start = at if at > next_free else next_free
        dram._next_free = start + transfer
        dram.requests += 1
        dram.busy_cycles += transfer
        done = start + dram.access_latency
        evicted = self.llc.fill_fast(line_addr, is_store)
        if evicted is not None:
            ev_line, ev_dirty = evicted
            if ev_dirty:
                dram.writeback(done)
            # Inclusive hierarchy: drop inner copies of the victim.
            if self.l2.invalidate(ev_line):
                dram.writeback(done)
            self.l1d.invalidate(ev_line)
        self.llc_mshrs.release(done)
        return grant, done, "dram", stall

    def _from_llc(self, now: float, line_addr: int,
                  is_store: bool) -> Tuple[float, float, str, float]:
        if self.llc.lookup(line_addr, is_store):
            return now, now + self._llc_hit, "llc", 0.0
        return self._from_dram(now, line_addr, is_store)

    def _from_l2(self, now: float, line_addr: int,
                 is_store: bool) -> Tuple[float, float, str, float]:
        bank_free = self._l2_bank_free
        bank = self.l2.bank_of(line_addr)
        at = bank_free[bank]
        start = at if at > now else now
        bank_free[bank] = start + 1.0  # pipelined, 1-cycle occupancy
        if self.l2.lookup(line_addr, is_store):
            return now, start + self._l2_hit, "l2", start - now
        grant, stall = self.l2_mshrs.acquire(start)
        _, done, level, inner_stall = self._from_llc(
            grant + self._l2_hit, line_addr, False)
        evicted = self.l2.fill_fast(line_addr, is_store)
        if evicted is not None and evicted[1]:
            # Dirty L2 victims write back into the LLC.
            if not self.llc.lookup(evicted[0], is_store=True):
                self.llc.fill_fast(evicted[0], True)
        self.l2_mshrs.release(done)
        return grant, done, level, stall + inner_stall

    def _from_l1(self, now: float, line_addr: int,
                 is_store: bool) -> Tuple[float, float, str, float]:
        if self.l1d.lookup(line_addr, is_store):
            return now, now + self._l1_hit, "l1", 0.0
        grant, stall = self.l1d_mshrs.acquire(now)
        _, done, level, inner_stall = self._from_l2(
            grant + self._l1_hit, line_addr, False)
        evicted = self.l1d.fill_fast(line_addr, is_store)
        if evicted is not None and evicted[1]:
            if not self.l2.lookup(evicted[0], is_store=True):
                self.l2.fill_fast(evicted[0], True)
        self.l1d_mshrs.release(done)
        return grant, done, level, stall + inner_stall

    # -- public ports ---------------------------------------------------------

    def access(self, now: float, line_addr: int, is_store: bool,
               port: str = "l1") -> FastCompletion:
        """Issue one cache-line request on the given port."""
        if port == "l1":
            grant, done, level, stall = self._from_l1(now, line_addr,
                                                      is_store)
        elif port == "l2":
            grant, done, level, stall = self._from_l2(now, line_addr,
                                                      is_store)
        elif port == "llc":
            grant, done, level, stall = self._from_llc(now, line_addr,
                                                       is_store)
            self.vector_requests += 1
            self.vector_mshr_stall += stall
            if stall > 0:
                self.vector_stalled_requests += 1
        else:
            raise MemoryModelError(
                f"unknown port {port!r} (expected one of {PORTS})")
        return FastCompletion(grant, done, level, stall)

    # -- statistics -----------------------------------------------------------

    def level_stats(self, elapsed: float = 0.0) -> dict:
        stats = {
            "l1d": (self.l1d.hits, self.l1d.misses),
            "l2": (self.l2.hits, self.l2.misses),
            "llc": (self.llc.hits, self.llc.misses),
            "dram": self.dram.stats(elapsed),
        }
        for pool in (self.l1d_mshrs, self.l2_mshrs, self.llc_mshrs):
            stats[f"{pool.name}_mshr"] = pool.stats()
        return stats

    def populate_metrics(self, elapsed: float = 0.0) -> None:
        """No-op: the fast model only runs uninstrumented."""

    def reset_stats(self) -> None:
        for cache in (self.l1d, self.l2, self.llc):
            cache.reset_stats()
        for pool in (self.l1d_mshrs, self.l2_mshrs, self.llc_mshrs):
            pool.reset_stats()
        self.dram.reset_stats()
        self.vector_mshr_stall = 0.0
        self.vector_requests = 0
        self.vector_stalled_requests = 0
