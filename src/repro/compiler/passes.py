"""Trace-compiler passes: dead-op elimination and memory-line hoisting.

Both passes are *pre-computation*, not re-timing: the simulated machines
replay every event of the original trace, so cycle accounting stays
byte-identical to the interpreted path (the acceptance oracle for the
whole compiler).  What the passes buy:

* :func:`eliminate_dead_ops` produces the compiled trace's *architectural
  work view* — the trace minus true dead writes, found via
  :meth:`TraceColumns.dead_def_positions` to a fixpoint — together with
  the eliminated sites and an old→new index map.  The view is what the
  static checkers see for a compiled trace; :func:`verify_dce_findings`
  is the gate that elimination never silently contradicts ``repro
  check``: findings on the optimized trace must be exactly the original
  findings minus those anchored at eliminated sites.

* :func:`hoist_memory_lines` precomputes, once per trace, the cache-line
  request list of every memory-touching event.  The interpreted machines
  re-derive these per run from each :class:`MemAccess` pattern
  (``np.unique`` + per-request ``int(np.int64)`` boxing); hoisting turns
  the hot per-event loops into plain-int iteration, which is where most
  of the compiled path's speedup on memory-bound workloads comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.checkers import check_trace
from ..analysis.columns import TraceColumns
from ..errors import CompilerError
from ..isa.instructions import LINE_BYTES, ScalarBlock, VectorInstr
from ..isa.opcodes import Category
from ..isa.trace import Trace

#: Line-request table: event index -> list of line addresses (vector
#: memory ops) or list of per-pattern line lists (scalar blocks).
LinesTable = Dict[int, object]


# -- dead-op elimination ------------------------------------------------------


@dataclass
class DceResult:
    """Outcome of dead-op elimination on one trace."""

    #: The optimized (analysis-view) trace with dead defs removed.
    trace: Trace
    #: Original event indices that were eliminated, ascending.
    eliminated: Tuple[int, ...]
    #: Surviving original event index -> index in :attr:`trace`.
    index_map: Dict[int, int]
    #: Fixpoint rounds taken (0 = nothing was dead).
    rounds: int


def _eliminable(event) -> bool:
    """True for pure compute defs: no memory, control, or cross-element
    side effects, so removing the def removes exactly one write."""
    if not isinstance(event, VectorInstr):
        return False
    category = event.category
    if category.is_memory or category is Category.CTRL:
        return False
    if category is Category.XELEM or event.info.is_reduction:
        return False
    if event.info.writes_scalar:
        return False
    return event.dest >= 0


def _without(trace: Trace, doomed: frozenset) -> Trace:
    pruned = Trace(trace.name)
    pruned.vlmax = trace.vlmax
    pruned.buffers = dict(trace.buffers)
    for index, event in enumerate(trace.events):
        if index not in doomed:
            pruned.append(event)
    return pruned


def eliminate_dead_ops(trace: Trace,
                       columns: Optional[TraceColumns] = None) -> DceResult:
    """Remove true dead writes (never read, later overwritten) to a
    fixpoint.

    Iterating matters: eliminating a dead def can strand its operands'
    producers, whose own defs then show up dead in the next round.
    Stopping early would leave the optimized trace with *new* dead-write
    findings the original never had, violating the findings invariant.
    """
    current = trace
    back: List[int] = list(range(len(trace.events)))
    eliminated: List[int] = []
    cols = columns
    rounds = 0
    while True:
        if cols is None:
            cols = TraceColumns(current)
        dead_events = {int(cols.def_event[pos])
                       for pos in cols.dead_def_positions()}
        doomed = frozenset(index for index in dead_events
                           if _eliminable(current.events[index]))
        cols = None
        if not doomed:
            break
        rounds += 1
        eliminated.extend(back[index] for index in doomed)
        back = [orig for index, orig in enumerate(back)
                if index not in doomed]
        current = _without(current, doomed)
    index_map = {orig: new for new, orig in enumerate(back)}
    return DceResult(trace=current, eliminated=tuple(sorted(eliminated)),
                     index_map=index_map, rounds=rounds)


def verify_dce_findings(original: Trace, dce: DceResult,
                        original_findings: Optional[Sequence] = None,
                        strict: bool = False):
    """Check the satellite invariant: checker findings on the optimized
    trace == original findings minus exactly those at eliminated sites.

    Findings are compared as ``(original index, rule)`` pairs, with the
    optimized trace's anchors mapped back through :attr:`DceResult.index_map`
    (messages may legitimately re-number killer references).  Returns
    ``(ok, missing, unexpected)``; with ``strict=True`` a violation
    raises :class:`CompilerError` carrying both finding lists.
    """
    originals = (list(original_findings) if original_findings is not None
                 else check_trace(original))
    optimized = check_trace(dce.trace)
    eliminated = set(dce.eliminated)
    expected = {(f.index, f.rule) for f in originals
                if f.index not in eliminated}
    reverse = {new: old for old, new in dce.index_map.items()}
    got = {(reverse.get(f.index, -1), f.rule) for f in optimized}
    missing = tuple(sorted(expected - got))
    unexpected = tuple(sorted(got - expected))
    ok = not missing and not unexpected
    if not ok and strict:
        parts = []
        if missing:
            parts.append("lost " + ", ".join(
                f"{rule}@{index}" for index, rule in missing[:4]))
        if unexpected:
            parts.append("introduced " + ", ".join(
                f"{rule}@{index}" for index, rule in unexpected[:4]))
        raise CompilerError(
            f"dead-op elimination on trace {original.name!r} changed the "
            f"static-check verdict beyond the eliminated sites: "
            + "; ".join(parts), findings=list(originals) + list(optimized))
    return ok, missing, unexpected


# -- memory-line hoisting -----------------------------------------------------


def hoist_memory_lines(trace: Trace) -> LinesTable:
    """Precompute every event's cache-line request list.

    Vector memory ops get the exact stream the machines would derive at
    run time: one request per element (at its line address) for strided
    and indexed categories, one per distinct line in first-touch order
    for unit-stride.  Scalar blocks get one line list per access pattern.
    All entries are plain Python ints so the per-request simulation loops
    never touch numpy scalars.
    """
    table: LinesTable = {}
    for index, event in enumerate(trace.events):
        if isinstance(event, ScalarBlock):
            if event.accesses:
                table[index] = [
                    [int(line) for line in pattern.line_addresses()]
                    for pattern in event.accesses]
        elif isinstance(event, VectorInstr) and event.mem is not None:
            per_element = event.category in (Category.MEM_STRIDE,
                                             Category.MEM_INDEX)
            if per_element:
                raw = event.mem.element_addresses() // LINE_BYTES * LINE_BYTES
            else:
                raw = event.mem.line_addresses()
            table[index] = [int(line)
                            for line in np.asarray(raw, dtype=np.int64)]
    return table
