"""Job schema and journal for the simulation service.

A *job* is one remotely submitted experiment — a sweep grid, a compare
column, a fuzz run, or a fault-injection campaign — described by a
schema-versioned :class:`JobSpec` and tracked through its lifecycle by a
:class:`JobRecord` (states ``queued`` → ``running`` → ``done`` /
``failed`` / ``cancelled``).

Durability follows the run store's discipline: the :class:`JobStore`
journal (``.eve-runs/jobs.jsonl``, flock-serialised, append-only) gets a
full record snapshot at every state transition, and the *latest* line
per job id wins on replay.  A crashed service therefore recovers its
queue by re-reading the journal: jobs last seen ``queued`` or
``running`` are requeued (their cells are in the on-disk cell cache, so
a re-run is cheap), terminal jobs are remembered as history.

Cell identity reuses the sweep executor's cache-key discipline: a job's
unique cells are ``(system, workload, params-fingerprint)`` triples
where the fingerprint folds the resolved workload parameters, the input
seed, and the compiler descriptor — exactly the key the on-disk cache
uses, which is what makes cross-job in-flight dedup safe.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

try:  # POSIX advisory locking; other hosts degrade to lockless appends.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None

from ..config import all_system_names
from ..errors import ServiceError
from ..experiments.parallel import params_fingerprint, sweep_config_fingerprint
from ..experiments.report import compare_entry, sweep_result_payload
from ..experiments.runner import canonical_pairs
from ..experiments.systems import canonical_system
from ..obs.runstore import DEFAULT_ROOT
from ..workloads import (DEFAULT_SEED, REGISTRY, canonical_workload,
                         tiny_overrides)

#: Bump when the job layout changes incompatibly.
JOB_SCHEMA_VERSION = 1

#: Every job kind the service runs.
JOB_KINDS = ("sweep", "compare", "fuzz", "faults")

#: Lifecycle states; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
TERMINAL_STATES = ("done", "failed", "cancelled")

#: Priority lanes, highest first — the scheduler always drains a higher
#: lane before looking at a lower one.
PRIORITIES = ("high", "normal", "low")

JOBS_FILENAME = "jobs.jsonl"

#: Hard caps a submission cannot exceed (request validation).
MAX_COUNT = 100_000
MAX_CLIENT_LEN = 64


def _now() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())


# -- the spec ------------------------------------------------------------------

@dataclass
class JobSpec:
    """What a client asked the service to run.

    ``systems`` / ``workloads`` scope sweep grids (empty = the full
    Figure 6 grid); ``compare`` uses ``workloads[0]`` against every
    system; ``count`` is the seed/injection count for ``fuzz`` /
    ``faults`` jobs.  ``tiny`` / ``seed`` / ``compile`` carry the same
    meaning (and fold into the same cache fingerprints) as the CLI
    flags, so a service job and a direct CLI run of the same experiment
    share cache cells and produce identical payloads.
    """

    kind: str
    systems: List[str] = field(default_factory=list)
    workloads: List[str] = field(default_factory=list)
    tiny: bool = False
    seed: int = DEFAULT_SEED
    compile: bool = True
    count: int = 0
    priority: str = "normal"
    client: str = "anonymous"

    def validate(self) -> "JobSpec":
        """Canonicalize names and bounds-check every field in place;
        raises :class:`ServiceError` (HTTP 400) on the first problem."""
        if self.kind not in JOB_KINDS:
            raise ServiceError(f"unknown job kind {self.kind!r} "
                               f"(known: {', '.join(JOB_KINDS)})")
        if self.priority not in PRIORITIES:
            raise ServiceError(f"unknown priority {self.priority!r} "
                               f"(known: {', '.join(PRIORITIES)})")
        if not isinstance(self.client, str) or not self.client.strip():
            raise ServiceError("client must be a non-empty string")
        if len(self.client) > MAX_CLIENT_LEN:
            raise ServiceError(f"client name exceeds {MAX_CLIENT_LEN} chars")
        self.client = self.client.strip()
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ServiceError("seed must be an integer")
        if not isinstance(self.tiny, bool):
            raise ServiceError("tiny must be a boolean")
        if not isinstance(self.compile, bool):
            raise ServiceError("compile must be a boolean")
        known_systems = all_system_names()
        canon_systems = []
        for name in self.systems:
            canon = canonical_system(str(name))
            if canon not in known_systems:
                raise ServiceError(f"unknown system {name!r}")
            canon_systems.append(canon)
        self.systems = canon_systems
        canon_workloads = []
        for name in self.workloads:
            canon = canonical_workload(str(name))
            if canon not in REGISTRY:
                raise ServiceError(f"unknown workload {name!r}")
            canon_workloads.append(canon)
        self.workloads = canon_workloads
        if self.kind == "compare":
            if len(self.workloads) != 1:
                raise ServiceError(
                    "compare jobs take exactly one workload")
        if self.kind in ("fuzz", "faults"):
            if not isinstance(self.count, int) or isinstance(self.count, bool):
                raise ServiceError("count must be an integer")
            if self.count < 1:
                self.count = 50 if self.kind == "fuzz" else 100
            if self.count > MAX_COUNT:
                raise ServiceError(f"count exceeds the service cap "
                                   f"({MAX_COUNT})")
        return self

    # -- cell expansion ---------------------------------------------------------

    def grid(self) -> Tuple[List[str], List[str]]:
        """The (systems, workloads) a cell job runs over, defaults
        resolved exactly as ``repro sweep`` / ``repro compare`` would."""
        if self.kind == "compare":
            return list(all_system_names()), list(self.workloads)
        systems = list(self.systems) or list(all_system_names())
        workloads = list(self.workloads) or sorted(REGISTRY)
        return systems, workloads

    def cells(self) -> List[Tuple[str, str]]:
        """Unique (system, workload) cells in grid order (empty for the
        single-unit ``fuzz`` / ``faults`` kinds)."""
        if self.kind not in ("sweep", "compare"):
            return []
        systems, workloads = self.grid()
        return canonical_pairs(
            (s, w) for w in workloads for s in systems)

    def params_override(self) -> Optional[Dict[str, dict]]:
        return tiny_overrides() if self.tiny else None

    def cell_fingerprint(self, workload: str) -> str:
        """The cache-key params fingerprint of one cell, folding the
        resolved workload parameters, seed, and compiler descriptor —
        the same digest :func:`~repro.experiments.parallel.simulate_cell`
        keys the disk cache on, so in-flight dedup and the disk cache
        agree on cell identity."""
        from ..compiler import compiler_descriptor
        return params_fingerprint(workload, self.params_override(),
                                  seed=self.seed,
                                  compiler=compiler_descriptor(self.compile))

    def fingerprint(self) -> str:
        """Config fingerprint of the whole job: the toolkit/config digest
        plus every cell's params fingerprint (or the count/seed for the
        single-unit kinds)."""
        payload: Dict[str, object] = {
            "kind": self.kind, "config": sweep_config_fingerprint(),
            "seed": self.seed, "tiny": self.tiny, "compile": self.compile,
        }
        if self.kind in ("sweep", "compare"):
            payload["cells"] = [
                [system, workload, self.cell_fingerprint(workload)]
                for system, workload in self.cells()]
        else:
            payload["count"] = self.count
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    # -- (de)serialisation --------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "JobSpec":
        if not isinstance(doc, dict):
            raise ServiceError(
                f"job spec must be an object, got {type(doc).__name__}")
        if "kind" not in doc:
            raise ServiceError("job spec is missing its 'kind' field")
        unknown = set(doc) - set(cls.__dataclass_fields__)
        if unknown:
            raise ServiceError(
                f"job spec carries unknown fields {sorted(unknown)}")
        try:
            spec = cls(**doc)
        except TypeError as exc:
            raise ServiceError(f"malformed job spec: {exc}") from None
        if not isinstance(spec.systems, list):
            raise ServiceError("systems must be a list of names")
        if not isinstance(spec.workloads, list):
            raise ServiceError("workloads must be a list of names")
        return spec


# -- the record ----------------------------------------------------------------

@dataclass
class JobRecord:
    """One job's full lifecycle state, journalled on every transition."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    schema_version: int = JOB_SCHEMA_VERSION
    created: str = ""
    updated: str = ""
    attempts: int = 0
    fingerprint: str = ""
    campaign: str = ""
    error: str = ""
    result_record_id: str = ""
    counters: Dict[str, int] = field(default_factory=dict)

    def touch(self, state: Optional[str] = None) -> "JobRecord":
        if state is not None:
            if state not in JOB_STATES:
                raise ServiceError(f"unknown job state {state!r}", status=500)
            self.state = state
        self.updated = _now()
        return self

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_json_dict(self) -> Dict[str, object]:
        doc = asdict(self)
        doc["spec"] = self.spec.to_json_dict()
        return doc

    @classmethod
    def from_json_dict(cls, doc: Dict[str, object]) -> "JobRecord":
        if not isinstance(doc, dict):
            raise ServiceError(
                f"job record must be an object, got {type(doc).__name__}",
                status=500)
        version = doc.get("schema_version")
        if version != JOB_SCHEMA_VERSION:
            raise ServiceError(
                f"job record schema version {version!r} is not supported "
                f"(this build reads version {JOB_SCHEMA_VERSION})",
                status=500)
        unknown = set(doc) - set(cls.__dataclass_fields__)
        if unknown:
            raise ServiceError(
                f"job record carries unknown fields {sorted(unknown)}",
                status=500)
        fields_ = dict(doc)
        fields_["spec"] = JobSpec.from_json_dict(doc.get("spec") or {})
        if fields_.get("state") not in JOB_STATES:
            raise ServiceError(
                f"job record has unknown state {fields_.get('state')!r}",
                status=500)
        try:
            return cls(**fields_)
        except TypeError as exc:
            raise ServiceError(f"malformed job record: {exc}",
                               status=500) from None


def make_job_record(job_id: str, spec: JobSpec) -> JobRecord:
    now = _now()
    return JobRecord(job_id=job_id, spec=spec, state="queued",
                     created=now, updated=now,
                     fingerprint=spec.fingerprint())


# -- the journal -----------------------------------------------------------------

class JobStore:
    """Append-only, flock-serialised job journal next to the run store.

    Every state transition appends a *complete* record snapshot; replay
    keeps the last snapshot per job id.  Like the run store's
    ``runs.jsonl``, readers tolerate a torn final line (a writer that
    crashed mid-append) but reject interior corruption.
    """

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root

    @property
    def path(self) -> str:
        return os.path.join(self.root, JOBS_FILENAME)

    def append(self, record: JobRecord) -> None:
        self.append_all([record])

    def append_all(self, records: List[JobRecord]) -> int:
        """Journal a batch of snapshots under one lock acquisition —
        the drain checkpoint re-journals every unfinished job this way."""
        if not records:
            return 0
        os.makedirs(self.root, exist_ok=True)
        with open(self.path, "a") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                for record in records:
                    handle.write(json.dumps(record.to_json_dict(),
                                            sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return len(records)

    def load(self) -> Dict[str, JobRecord]:
        """Latest snapshot per job id, in first-seen (submission) order."""
        out: Dict[str, JobRecord] = {}
        if not os.path.exists(self.path):
            return out
        with open(self.path) as handle:
            lines = handle.readlines()
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):  # torn final line: crashed writer
                    break
                raise ServiceError(
                    f"{self.path}:{lineno}: corrupt job record: {exc}",
                    status=500) from exc
            record = JobRecord.from_json_dict(doc)
            out[record.job_id] = record
        return out

    def next_seq(self) -> int:
        """One past the highest journalled job sequence number."""
        top = 0
        for job_id in self.load():
            tail = job_id.rsplit("-", 1)[-1]
            if tail.isdigit():
                top = max(top, int(tail))
        return top + 1


def job_id_for(seq: int) -> str:
    return f"job-{seq:06d}"


# -- result assembly -------------------------------------------------------------

class ResultSet:
    """Minimal runner facade over a dict of simulated cells.

    :func:`~repro.experiments.report.sweep_result_payload` (and the
    compare builder) only need ``run(system, workload)``; the scheduler
    hands them the SimResults its workers produced instead of a live
    runner, so the service assembles result documents through exactly
    the CLI's code path.
    """

    def __init__(self, results: Dict[Tuple[str, str], object]) -> None:
        self._results = dict(results)

    def run(self, system: str, workload: str):
        key = (canonical_system(system), canonical_workload(workload))
        try:
            return self._results[key]
        except KeyError:
            raise ServiceError(f"cell {key[0]}/{key[1]} was not simulated",
                               status=500) from None


def job_result_payload(spec: JobSpec,
                       results: Dict[Tuple[str, str], object]) -> dict:
    """The deterministic result document of a completed cell job —
    byte-identical (through :func:`repro.obs.render.emit_json`) to the
    direct CLI run's JSON minus its wall-clock blocks (``cache`` /
    ``self_profile``)."""
    lookup = ResultSet(results)
    systems, workloads = spec.grid()
    if spec.kind == "sweep":
        return sweep_result_payload(lookup, systems, workloads)
    if spec.kind == "compare":
        workload = workloads[0]
        base = lookup.run("IO", workload)
        per_system = {}
        for system in systems:
            entry, _speedup = compare_entry(lookup.run(system, workload),
                                            base)
            per_system[system] = entry
        return {"workload": workload, "baseline": "IO",
                "systems": per_system}
    raise ServiceError(f"job kind {spec.kind!r} has no cell results",
                       status=500)


def run_job_unit(spec_doc: dict) -> dict:
    """Execute one single-unit job (``fuzz`` / ``faults``) — picklable,
    runs inside a pool worker like :func:`simulate_cell` does for cells.
    Returns the job's JSON-ready result payload."""
    spec = JobSpec.from_json_dict(spec_doc)
    if spec.kind == "fuzz":
        from ..faults.fuzz import fuzz_many
        mismatches = fuzz_many(spec.count, master_seed=spec.seed)
        return {"kind": "fuzz", "seeds": spec.count,
                "master_seed": spec.seed,
                "mismatches": [m.to_json_dict() for m in mismatches]}
    if spec.kind == "faults":
        from ..faults.campaign import run_campaign
        report = run_campaign(spec.count, seed=spec.seed)
        payload = report.to_json_dict()
        payload.pop("outcomes", None)  # compact: counts, not every case
        return {"kind": "faults", **payload}
    raise ServiceError(f"job kind {spec.kind!r} is not a single-unit job",
                       status=500)
