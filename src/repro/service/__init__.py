"""Simulation-as-a-service: a multi-tenant job service over the sweep
engine.

* :mod:`repro.service.jobs` — schema-versioned :class:`JobSpec` /
  :class:`JobRecord` and the flock'd append-only :class:`JobStore`
  journal (``.eve-runs/jobs.jsonl``) that makes the queue crash-safe.
* :mod:`repro.service.scheduler` — the asyncio :class:`Scheduler`:
  priority lanes with per-client round-robin, bounded concurrency into
  the shared :class:`~repro.experiments.parallel.WorkerPool`, and
  in-flight cell dedup so overlapping jobs simulate each unique
  (system, workload, params-fingerprint) cell exactly once.
* :mod:`repro.service.server` — dependency-free HTTP/1.1
  :class:`JobServer` on ``asyncio.start_server``: submit / status /
  result / cancel / NDJSON event streaming, token-bucket rate limiting,
  graceful SIGTERM drain.
* :mod:`repro.service.client` — blocking :class:`ServiceClient` on
  ``http.client`` backing the ``repro serve`` / ``submit`` / ``jobs`` /
  ``cancel`` CLI verbs.
"""

from .client import ServiceClient, default_client_name
from .jobs import (JOB_KINDS, JOB_SCHEMA_VERSION, JOB_STATES, JobRecord,
                   JobSpec, JobStore, PRIORITIES, TERMINAL_STATES,
                   job_result_payload, make_job_record, run_job_unit)
from .scheduler import COUNTER_NAMES, Scheduler
from .server import DEFAULT_BURST, DEFAULT_RATE, JobServer, TokenBucket, serve

__all__ = [
    "JOB_KINDS",
    "JOB_SCHEMA_VERSION",
    "JOB_STATES",
    "TERMINAL_STATES",
    "PRIORITIES",
    "JobSpec",
    "JobRecord",
    "JobStore",
    "make_job_record",
    "job_result_payload",
    "run_job_unit",
    "Scheduler",
    "COUNTER_NAMES",
    "JobServer",
    "TokenBucket",
    "DEFAULT_RATE",
    "DEFAULT_BURST",
    "serve",
    "ServiceClient",
    "default_client_name",
]
