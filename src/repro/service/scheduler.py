"""Asyncio job scheduler: fair multi-tenant queueing over the sweep pool.

The scheduler is the service's core loop.  Jobs arrive via
:meth:`Scheduler.submit`, wait in priority lanes (``high`` > ``normal``
> ``low``) with per-client round-robin *within* each lane (one chatty
client cannot starve another at equal priority), and run as asyncio
tasks that feed individual cells to the shared
:class:`~repro.experiments.parallel.WorkerPool` through
``loop.run_in_executor`` — the event loop never blocks on a
simulation.

**In-flight dedup.**  Every cell is keyed by ``(system, workload,
params-fingerprint)`` — the disk cache's own identity.  The first job
to need a cell becomes its *owner* and registers an
``asyncio.Future``; overlapping jobs await that future instead of
re-simulating, so each unique cell runs **exactly once** no matter how
many concurrent submissions cover it (the ``cells_deduped`` counter is
the proof the CI smoke asserts on).  If an owner abandons a cell
(cancel/drain), it resolves the future with a sentinel and a waiter
takes over ownership, so dedup never loses work to a cancelled
neighbour.

**Durability.**  Every state transition snapshots the full job record
to the :class:`~repro.service.jobs.JobStore` journal; on start the
scheduler replays it and requeues anything last seen ``queued`` or
``running`` (their cells are in the disk cache, so recovery is cheap).
Drain (SIGTERM) stops intake, lets *running* cells finish, marks the
rest of each active job's cells ``cancelled`` (telemetry conservation
holds: one terminal per queued unit), and checkpoints unfinished jobs
back to ``queued`` in one batched journal write.
"""

from __future__ import annotations

import asyncio
import collections
import functools
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..errors import ServiceError
from ..experiments.parallel import (DEFAULT_CACHE_ROOT, WorkerPool,
                                    cache_stats, cell_unit, describe_cell,
                                    simulate_cell, sweep_config_fingerprint,
                                    _observed_call)
from ..obs.events import CampaignTelemetry, EventLog
from ..obs.runstore import DEFAULT_ROOT, RunStore, make_record
from .jobs import (JobRecord, JobSpec, JobStore, PRIORITIES, job_id_for,
                   job_result_payload, make_job_record, run_job_unit)

__all__ = ["Scheduler", "COUNTER_NAMES"]

#: Future result meaning "the owner abandoned this cell without running
#: it" — a waiter seeing it retries and takes over ownership.
_SKIPPED = object()

#: Counter names, fixed so status documents are stable.
COUNTER_NAMES = ("jobs_submitted", "jobs_done", "jobs_failed",
                 "jobs_cancelled", "jobs_recovered",
                 "cells_total", "cells_unique", "cells_deduped",
                 "cells_simulated", "cache_hits", "cache_misses",
                 "cache_corrupt")


class Scheduler:
    """Owns the job queue, the dedup table, and the worker pool feed.

    Single event loop, single scheduler — all mutable state is touched
    only from loop callbacks/tasks, so plain dicts need no locks; the
    only cross-thread traffic is ``run_in_executor`` calls whose
    callables close over immutable specs.
    """

    def __init__(self, pool: WorkerPool, *,
                 store_root: str = DEFAULT_ROOT,
                 cache_root: Optional[str] = DEFAULT_CACHE_ROOT,
                 events_path: Optional[str] = None,
                 max_active_jobs: int = 4,
                 verify: bool = True,
                 cell_func=simulate_cell) -> None:
        self.pool = pool
        self.store_root = store_root
        self.cache_root = cache_root
        self.events_path = events_path or f"{store_root}/events.jsonl"
        self.max_active_jobs = max(1, max_active_jobs)
        self.verify = verify
        #: Injectable cell worker (tests swap in a stub; must stay
        #: picklable because it crosses into pool processes).
        self.cell_func = cell_func

        self.job_store = JobStore(store_root)
        self.run_store = RunStore(store_root)
        self.event_log = EventLog(self.events_path)

        self._jobs: Dict[str, JobRecord] = {}
        #: priority -> (client -> deque of queued job ids); within a
        #: lane, clients are served round-robin (pop from the first
        #: client, then rotate it to the back).
        self._lanes: Dict[str, "collections.OrderedDict[str, collections.deque]"] = {
            lane: collections.OrderedDict() for lane in PRIORITIES}
        self._wakeup = asyncio.Event()
        self._inflight: Dict[Tuple[str, str, str], asyncio.Future] = {}
        #: job id -> why it must stop ("cancel" | "drain" | "fail").
        self._stop_reason: Dict[str, str] = {}
        self._done_events: Dict[str, asyncio.Event] = {}
        self._results: Dict[str, dict] = {}
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self._dispatcher: Optional[asyncio.Task] = None
        self._draining = False
        self._seq = 1
        self._started_at = time.monotonic()
        self.counters: Dict[str, int] = {name: 0 for name in COUNTER_NAMES}

        self._job_sem = asyncio.Semaphore(self.max_active_jobs)
        self._cell_sem = asyncio.Semaphore(self.pool.jobs)
        # Extra headroom over the cell width so short blocking calls
        # (journal appends, run-store writes, telemetry finalize) never
        # queue behind a full complement of in-flight simulations.
        self._executor = ThreadPoolExecutor(
            max_workers=self.pool.jobs + 4,
            thread_name_prefix="eve-service")

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> int:
        """Replay the journal, requeue unfinished jobs, start dispatch.
        Returns how many jobs were recovered."""
        # Fork the pool workers NOW, before the executor spawns its
        # first thread: a lazy fork from an executor thread mid-request
        # can clone held locks into the children and deadlock them.
        self.pool.start()
        recovered = 0
        history = await self._call(self.job_store.load)
        requeue: List[JobRecord] = []
        for record in history.values():
            self._jobs[record.job_id] = record
            if record.state in ("queued", "running"):
                record.touch("queued")
                requeue.append(record)
                recovered += 1
        if requeue:
            await self._call(self.job_store.append_all, requeue)
            for record in requeue:
                self._enqueue(record)
            self.counters["jobs_recovered"] += recovered
        self._seq = max((int(job_id.rsplit("-", 1)[-1])
                         for job_id in self._jobs
                         if job_id.rsplit("-", 1)[-1].isdigit()),
                        default=0) + 1
        self._dispatcher = asyncio.ensure_future(self._dispatch_loop())
        return recovered

    async def drain(self) -> dict:
        """Graceful shutdown: stop intake, let in-flight cells finish,
        checkpoint everything else back to ``queued``."""
        self._draining = True
        for job_id, task in list(self._tasks.items()):
            if not task.done():
                self._stop_reason.setdefault(job_id, "drain")
        self._wakeup.set()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._tasks:
            await asyncio.gather(*self._tasks.values(),
                                 return_exceptions=True)
        # Checkpoint: anything still non-terminal goes back to queued in
        # one batched journal write (consecutive lines, one lock).
        checkpoint = []
        for record in self._jobs.values():
            if not record.terminal:
                record.touch("queued")
                checkpoint.append(record)
        if checkpoint:
            await self._call(self.job_store.append_all, checkpoint)
        await self._call(self.pool.close)
        self._executor.shutdown(wait=True)
        return {"checkpointed": len(checkpoint),
                "counters": dict(self.counters)}

    async def _call(self, func, *args):
        """Run a short blocking call (journal/store/pool I/O) off-loop."""
        loop = asyncio.get_event_loop()
        return await loop.run_in_executor(
            self._executor, functools.partial(func, *args))

    # -- intake ------------------------------------------------------------------

    async def submit(self, spec: JobSpec) -> JobRecord:
        if self._draining:
            raise ServiceError("service is draining; try another replica",
                               status=503)
        spec.validate()
        record = make_job_record(job_id_for(self._seq), spec)
        self._seq += 1
        self._jobs[record.job_id] = record
        self.counters["jobs_submitted"] += 1
        await self._call(self.job_store.append, record)
        self._enqueue(record)
        self._publish(record.job_id, self._state_event(record))
        return record

    def _enqueue(self, record: JobRecord) -> None:
        lane = self._lanes[record.spec.priority]
        lane.setdefault(record.spec.client, collections.deque()).append(
            record.job_id)
        self._done_events.setdefault(record.job_id, asyncio.Event())
        self._wakeup.set()

    def _next_job(self) -> Optional[str]:
        """Highest non-empty lane, round-robin across its clients."""
        for priority in PRIORITIES:
            lane = self._lanes[priority]
            for client in list(lane):
                queue = lane[client]
                if not queue:
                    del lane[client]
                    continue
                job_id = queue.popleft()
                if queue:
                    lane.move_to_end(client)
                else:
                    del lane[client]
                return job_id
        return None

    def queue_depths(self) -> Dict[str, int]:
        return {priority: sum(len(q) for q in lane.values())
                for priority, lane in self._lanes.items()}

    # -- dispatch ----------------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        while True:
            # Acquire the job slot FIRST, then pick the job: picking
            # first would freeze a high-priority arrival behind an
            # already-chosen low-priority one while the lanes back up.
            await self._job_sem.acquire()
            job_id = None
            try:
                while not self._draining:
                    self._wakeup.clear()
                    job_id = self._next_job()
                    if job_id is not None:
                        break
                    await self._wakeup.wait()
            finally:
                if job_id is None:
                    self._job_sem.release()
            if job_id is None:  # draining; queued leftovers get checkpointed
                return
            record = self._jobs[job_id]
            if record.state != "queued" or job_id in self._stop_reason:
                # Cancelled (or drained) while waiting in the lane.
                reason = self._stop_reason.pop(job_id, "cancel")
                if reason == "cancel":
                    await self._finish(record, "cancelled")
                self._job_sem.release()
                continue
            task = asyncio.ensure_future(self._run_job(record))
            self._tasks[job_id] = task
            task.add_done_callback(lambda _t, jid=job_id: (
                self._tasks.pop(jid, None), self._job_sem.release()))

    def _stopped(self, record: JobRecord) -> Optional[str]:
        return self._stop_reason.get(record.job_id)

    # -- running one job ---------------------------------------------------------

    async def _run_job(self, record: JobRecord) -> None:
        record.attempts += 1
        record.campaign = f"{record.job_id}-a{record.attempts}"
        record.touch("running")
        await self._call(self.job_store.append, record)
        self._publish(record.job_id, self._state_event(record))
        loop = asyncio.get_event_loop()
        # The tap fires on the loop thread for unit events but on an
        # executor thread when finalize() (run via _call) emits the
        # campaign footer — route through call_soon_threadsafe so
        # subscriber queues are only ever touched by the loop.
        telemetry = CampaignTelemetry(
            record.spec.kind, log=self.event_log,
            fingerprint=sweep_config_fingerprint(),
            campaign_id=record.campaign,
            tap=lambda event: loop.call_soon_threadsafe(
                self._publish, record.job_id, event.to_json_dict()))
        try:
            if record.spec.kind in ("sweep", "compare"):
                outcome = await self._run_cells_job(record, telemetry, loop)
            else:
                outcome = await self._run_unit_job(record, telemetry, loop)
        except Exception as exc:  # defensive: a job bug must not kill dispatch
            record.error = f"{type(exc).__name__}: {exc}"
            outcome = "failed"
        finally:
            summary = await self._call(telemetry.finalize)
            record.counters["events"] = summary.get("events", 0)
        if outcome == "done":
            await self._archive(record)
        reason = self._stop_reason.pop(record.job_id, None)
        if outcome == "drained" or (reason == "drain"
                                    and outcome not in ("done", "failed")):
            record.touch("queued")  # the drain checkpoint re-journals it
            self._publish(record.job_id, self._state_event(record))
            self._publish(record.job_id, None)
            return
        await self._finish(record, outcome)

    async def _run_cells_job(self, record: JobRecord, telemetry,
                             loop) -> str:
        spec = record.spec
        cells = spec.cells()
        units = [cell_unit(s, w) for s, w in cells]
        telemetry.begin(units)
        self.counters["cells_total"] += len(cells)
        results = await asyncio.gather(*[
            self._run_cell(record, telemetry, loop, system, workload)
            for system, workload in cells])
        by_cell: Dict[Tuple[str, str], object] = {}
        skipped = failed = 0
        for (system, workload), (status, value) in zip(cells, results):
            if status == "ok":
                by_cell[(system, workload)] = value["result"]
            elif status == "skipped":
                skipped += 1
            else:
                failed += 1
                if not record.error:
                    record.error = (f"{cell_unit(system, workload)}: "
                                    f"{type(value).__name__}: {value}")
        record.counters.update(
            {"cells": len(cells), "failed": failed, "skipped": skipped})
        if failed:
            return "failed"
        if skipped:
            reason = self._stop_reason.get(record.job_id, "drain")
            return "drained" if reason == "drain" else "cancelled"
        self._results[record.job_id] = job_result_payload(spec, by_cell)
        return "done"

    async def _run_cell(self, record: JobRecord, telemetry, loop,
                        system: str, workload: str):
        """Simulate (or await) one cell.  Returns ``(status, value)``
        with status ``ok`` / ``skipped`` / ``failed``; never raises."""
        spec = record.spec
        unit = cell_unit(system, workload)
        key = (system, workload, spec.cell_fingerprint(workload))
        while True:
            existing = self._inflight.get(key)
            if existing is not None:
                obs = await existing
                if obs is _SKIPPED:
                    continue  # the owner bailed; try to take over
                self.counters["cells_deduped"] += 1
                return self._land_cell(record, telemetry, unit, obs,
                                       deduped=True)
            if self._stopped(record):
                telemetry.unit_cancelled(
                    unit, detail={"reason": self._stopped(record)})
                return ("skipped", None)
            # Become the owner.  Registration is synchronous — no await
            # between the miss above and this line — so two jobs can
            # never both own one key.
            future: asyncio.Future = loop.create_future()
            self._inflight[key] = future
            obs = _SKIPPED
            try:
                async with self._cell_sem:
                    if not self._stopped(record):
                        cell_spec = (system, workload,
                                     spec.params_override(),
                                     self.cache_root, False, self.verify,
                                     spec.seed, spec.compile)
                        obs = await loop.run_in_executor(
                            self._executor, self.pool.apply,
                            functools.partial(_observed_call,
                                              self.cell_func),
                            cell_spec)
            finally:
                self._inflight.pop(key, None)
                future.set_result(obs)
            if obs is _SKIPPED:
                telemetry.unit_cancelled(
                    unit, detail={"reason": self._stopped(record)})
                return ("skipped", None)
            self.counters["cells_unique"] += 1
            return self._land_cell(record, telemetry, unit, obs,
                                   deduped=False)

    def _land_cell(self, record: JobRecord, telemetry, unit: str, obs,
                   deduped: bool):
        """Fold one observed cell outcome into telemetry + counters."""
        if obs["error"] is not None:
            error = obs["error"]
            telemetry.unit_finished(
                unit, ok=False, t_start=obs["t0"], t_end=obs["t1"],
                worker=str(obs["pid"]),
                detail={"error": f"{type(error).__name__}: {error}"})
            # Fail fast: the job cannot complete, so stop starting cells.
            self._stop_reason.setdefault(record.job_id, "fail")
            return ("failed", error)
        payload = obs["value"]
        cached, extra, detail = describe_cell(payload)
        if deduped:
            detail = dict(detail)
            detail["deduped"] = True
            cached = True  # this job did not simulate; it shared a result
        else:
            self.counters["cache_hits" if cached else "cache_misses"] += 1
            if not cached:  # a miss is the only case a worker simulated
                self.counters["cells_simulated"] += 1
            self.counters["cache_corrupt"] += len(extra)
        telemetry.unit_finished(
            unit, ok=True, cached=cached, t_start=obs["t0"],
            t_end=obs["t1"], worker=str(obs["pid"]), detail=detail,
            events=extra if not deduped else ())
        return ("ok", payload)

    async def _run_unit_job(self, record: JobRecord, telemetry,
                            loop) -> str:
        spec = record.spec
        unit = f"{spec.kind}:{spec.count}"
        telemetry.begin([unit])
        if self._stopped(record):
            telemetry.unit_cancelled(
                unit, detail={"reason": self._stopped(record)})
            reason = self._stop_reason.get(record.job_id, "drain")
            return "drained" if reason == "drain" else "cancelled"
        obs = await loop.run_in_executor(
            self._executor, self.pool.apply,
            functools.partial(_observed_call, run_job_unit),
            spec.to_json_dict())
        if obs["error"] is not None:
            error = obs["error"]
            record.error = f"{type(error).__name__}: {error}"
            telemetry.unit_finished(
                unit, ok=False, t_start=obs["t0"], t_end=obs["t1"],
                worker=str(obs["pid"]), detail={"error": record.error})
            return "failed"
        telemetry.unit_finished(unit, ok=True, t_start=obs["t0"],
                                t_end=obs["t1"], worker=str(obs["pid"]))
        self._results[record.job_id] = obs["value"]
        return "done"

    # -- completion --------------------------------------------------------------

    async def _archive(self, record: JobRecord) -> None:
        """Persist a done job's result as a run-store record.

        Sweep cells land in the record's canonical ``results`` /
        ``speedups`` fields (so ``repro history`` / ``repro diff`` /
        trend tooling treat service runs like CLI runs); a faults
        payload goes under ``extra["campaign"]`` where
        :func:`~repro.obs.runstore.flatten_record` already looks.
        """
        payload = self._results.get(record.job_id, {})
        run = make_record(record.spec.kind,
                          label=f"service:{record.job_id}",
                          tiny=record.spec.tiny,
                          command=f"service submit {record.spec.kind}")
        cells = payload.get("cells")
        if isinstance(cells, dict):
            for workload, by_system in cells.items():
                for system, vals in by_system.items():
                    run.add_result(
                        system, workload, cycles=vals["cycles"],
                        time_ns=vals["time_ns"],
                        instructions=vals.get("instructions", 0))
            run.speedup_baseline = payload.get("baseline") or ""
            run.speedups = dict(payload.get("speedups") or {})
        elif record.spec.kind == "faults":
            run.extra["campaign"] = dict(payload)
        else:
            run.extra[record.spec.kind] = dict(payload)
        run.extra["service"] = {
            "job_id": record.job_id, "client": record.spec.client,
            "priority": record.spec.priority,
            "fingerprint": record.fingerprint,
            "attempts": record.attempts,
        }
        record.result_record_id = await self._call(
            self.run_store.append, run)

    async def _finish(self, record: JobRecord, state: str) -> None:
        record.touch(state)
        self.counters[f"jobs_{state}"] += 1
        await self._call(self.job_store.append, record)
        self._publish(record.job_id, self._state_event(record))
        self._publish(record.job_id, None)
        event = self._done_events.setdefault(record.job_id, asyncio.Event())
        event.set()

    # -- queries -----------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}",
                               status=404) from None

    def jobs(self) -> List[JobRecord]:
        return list(self._jobs.values())

    def result(self, job_id: str) -> dict:
        record = self.get(job_id)
        if record.state != "done":
            raise ServiceError(
                f"job {job_id} is {record.state}, not done", status=409)
        if job_id not in self._results:
            raise ServiceError(
                f"job {job_id} finished in an earlier service run; "
                "resubmit to rebuild its result from the cell cache",
                status=410)
        return self._results[job_id]

    async def wait(self, job_id: str,
                   timeout: Optional[float] = None) -> JobRecord:
        record = self.get(job_id)
        if record.terminal:
            return record
        event = self._done_events.setdefault(job_id, asyncio.Event())
        try:
            await asyncio.wait_for(event.wait(), timeout)
        except asyncio.TimeoutError:
            raise ServiceError(f"timed out waiting for job {job_id}",
                               status=408) from None
        return self.get(job_id)

    async def cancel(self, job_id: str) -> JobRecord:
        record = self.get(job_id)
        if record.terminal:
            raise ServiceError(
                f"job {job_id} is already {record.state}", status=409)
        if record.state == "queued" and job_id not in self._tasks:
            lane = self._lanes[record.spec.priority]
            queue = lane.get(record.spec.client)
            if queue is not None and job_id in queue:
                queue.remove(job_id)
                if not queue:
                    del lane[record.spec.client]
            await self._finish(record, "cancelled")
            return record
        self._stop_reason[job_id] = "cancel"
        return record

    def status(self) -> dict:
        by_state: Dict[str, int] = {}
        for record in self._jobs.values():
            by_state[record.state] = by_state.get(record.state, 0) + 1
        return {
            "draining": self._draining,
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "jobs": by_state,
            "queue": self.queue_depths(),
            "active": len(self._tasks),
            "inflight_cells": len(self._inflight),
            "pool": {"jobs": self.pool.jobs, "started": self.pool.started},
            "counters": dict(self.counters),
            "cache": cache_stats(self.cache_root) if self.cache_root
                     else None,
        }

    # -- event streaming -----------------------------------------------------------

    def subscribe(self, job_id: str) -> asyncio.Queue:
        self.get(job_id)  # 404 on unknown ids
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, []).append(queue)
        return queue

    def unsubscribe(self, job_id: str, queue: asyncio.Queue) -> None:
        listeners = self._subscribers.get(job_id, [])
        if queue in listeners:
            listeners.remove(queue)
        if not listeners:
            self._subscribers.pop(job_id, None)

    def _publish(self, job_id: str, doc: Optional[dict]) -> None:
        """Fan a document (or the ``None`` end-of-stream sentinel) out to
        every live subscriber of a job."""
        for queue in self._subscribers.get(job_id, ()):  # copy-safe: no mutation
            queue.put_nowait(doc)

    def _state_event(self, record: JobRecord) -> dict:
        return {"kind": "job_state", "job": record.job_id,
                "state": record.state, "attempts": record.attempts,
                "error": record.error or None}
