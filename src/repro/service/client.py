"""Blocking stdlib client for the job service.

``http.client`` only — the CLI verbs (``repro submit`` / ``repro jobs``
/ ``repro cancel``) and the test suite both talk to the server through
this one class, so the protocol has exactly two implementations to keep
honest: the asyncio server and this client.

Every request opens a fresh connection (the server is
``Connection: close``) and carries the ``X-Client`` identity header the
server's fair scheduler and rate limiter key on.
"""

from __future__ import annotations

import getpass
import http.client
import json
import time
from typing import Dict, Iterator, List, Optional

from ..errors import ServiceError


def default_client_name() -> str:
    try:
        return getpass.getuser()
    except (KeyError, OSError):  # pragma: no cover - no passwd entry
        return "anonymous"


class ServiceClient:
    """Thin synchronous wrapper over the ``/v1`` HTTP API."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8321, *,
                 client: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.client = client or default_client_name()
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def _connect(self, timeout: Optional[float] = None
                 ) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port,
            timeout=self.timeout if timeout is None else timeout)

    def _request(self, method: str, path: str,
                 body: Optional[dict] = None,
                 timeout: Optional[float] = None) -> dict:
        conn = self._connect(timeout)
        try:
            payload = (json.dumps(body).encode()
                       if body is not None else None)
            headers = {"X-Client": self.client}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, OSError, http.client.HTTPException) \
                    as exc:
                raise ServiceError(
                    f"cannot reach the service at "
                    f"{self.host}:{self.port}: {exc}", status=503) from exc
            try:
                doc = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"service returned invalid JSON: {exc}",
                    status=502) from exc
            if response.status >= 400:
                message = (doc.get("error")
                           if isinstance(doc, dict) else None)
                raise ServiceError(message or f"HTTP {response.status}",
                                   status=response.status)
            return doc
        finally:
            conn.close()

    # -- the API -----------------------------------------------------------------

    def status(self) -> dict:
        return self._request("GET", "/v1/status")

    def submit(self, spec_doc: dict) -> dict:
        """Submit a job-spec document; returns the queued job record."""
        return self._request("POST", "/v1/jobs", body=spec_doc)

    def jobs(self) -> List[dict]:
        return self._request("GET", "/v1/jobs").get("jobs", [])

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str,
               timeout: Optional[float] = None) -> dict:
        """A done job's result payload; with ``timeout`` the server
        blocks until the job finishes (or 408s)."""
        path = f"/v1/jobs/{job_id}/result"
        if timeout is not None:
            path += f"?timeout={timeout:g}"
            return self._request("GET", path, timeout=timeout + 10.0)
        return self._request("GET", path)

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_seconds: float = 0.25) -> dict:
        """Poll until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.get("state") in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out after {timeout:g}s waiting for {job_id} "
                    f"(last state: {record.get('state')})", status=408)
            time.sleep(poll_seconds)

    def events(self, job_id: str,
               timeout: Optional[float] = None) -> Iterator[dict]:
        """Stream a job's NDJSON event feed until it terminates."""
        conn = self._connect(timeout)
        try:
            headers: Dict[str, str] = {"X-Client": self.client}
            try:
                conn.request("GET", f"/v1/jobs/{job_id}/events",
                             headers=headers)
                response = conn.getresponse()
            except (ConnectionError, OSError,
                    http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach the service at "
                    f"{self.host}:{self.port}: {exc}", status=503) from exc
            if response.status >= 400:
                raw = response.read()
                try:
                    doc = json.loads(raw) if raw else {}
                except json.JSONDecodeError:
                    doc = {}
                raise ServiceError(doc.get("error")
                                   or f"HTTP {response.status}",
                                   status=response.status)
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ServiceError(
                        f"service streamed invalid NDJSON: {exc}",
                        status=502) from exc
        finally:
            conn.close()
