"""Dependency-free HTTP/1.1 front end for the job scheduler.

Built directly on ``asyncio.start_server`` — no web framework, no
third-party packages — because the service's protocol surface is tiny
and the repo's no-new-dependencies rule is absolute.  One request per
connection (every response carries ``Connection: close``), bodies are
JSON, progress streams are NDJSON.

Routes (all under ``/v1``)::

    GET  /v1/status            service + scheduler + cache health
    GET  /v1/jobs              every known job, submission order
    POST /v1/jobs              submit a JobSpec document
    GET  /v1/jobs/<id>         one job's record
    GET  /v1/jobs/<id>/result  result payload (?timeout=S waits)
    GET  /v1/jobs/<id>/events  NDJSON: state changes + telemetry live
    POST /v1/jobs/<id>/cancel  cancel queued or running

Abuse guards: a per-client token bucket (clients identify via the
``X-Client`` header, falling back to the peer address) rejects bursts
with 429; request bodies over :data:`MAX_BODY_BYTES` get 413; a
draining server answers every request 503 so load balancers fail over.
Graceful shutdown is the scheduler's drain: SIGTERM/SIGINT stop
intake, in-flight cells finish, the queue checkpoints, and the process
exits 0.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..errors import ServiceError
from .jobs import JobSpec
from .scheduler import Scheduler

MAX_BODY_BYTES = 64 * 1024
MAX_HEADER_LINES = 64
MAX_LINE_BYTES = 8 * 1024

#: Token-bucket defaults: sustained requests/second and burst size.
DEFAULT_RATE = 20.0
DEFAULT_BURST = 40


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second up to ``burst``."""

    def __init__(self, rate: float = DEFAULT_RATE,
                 burst: int = DEFAULT_BURST,
                 clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self.clock = clock
        self.tokens = self.burst
        self.stamp = clock()

    def allow(self) -> bool:
        now = self.clock()
        self.tokens = min(self.burst,
                          self.tokens + (now - self.stamp) * self.rate)
        self.stamp = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class JobServer:
    """The asyncio socket front end; owns nothing but connections.

    All experiment state lives in the :class:`Scheduler`; the server
    only parses requests, enforces the abuse guards, and renders
    responses, so it can be exercised end-to-end with a plain socket in
    tests.
    """

    def __init__(self, scheduler: Scheduler, *, host: str = "127.0.0.1",
                 port: int = 8321, max_clients: int = 64,
                 rate: float = DEFAULT_RATE,
                 burst: int = DEFAULT_BURST) -> None:
        self.scheduler = scheduler
        self.host = host
        self.port = port
        self.max_clients = max_clients
        self.rate = rate
        self.burst = burst
        self._buckets: Dict[str, TokenBucket] = {}
        self._connections = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self.requests = 0
        self.rejected = 0

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]  # resolve port 0 for tests

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        self._connections += 1
        try:
            if self._connections > self.max_clients:
                self.rejected += 1
                await self._respond(writer, 503,
                                    {"error": "too many connections"})
                return
            try:
                method, path, query, headers, body = \
                    await self._read_request(reader)
            except ServiceError as exc:
                self.rejected += 1
                await self._respond(writer, exc.status, {"error": str(exc)})
                return
            except (asyncio.IncompleteReadError, ConnectionError,
                    asyncio.TimeoutError):
                return
            client = headers.get("x-client") or self._peer(writer)
            bucket = self._buckets.setdefault(
                client, TokenBucket(self.rate, self.burst))
            if not bucket.allow():
                self.rejected += 1
                await self._respond(writer, 429,
                                    {"error": "rate limit exceeded; slow "
                                              f"down, {client}"})
                return
            self.requests += 1
            try:
                await self._route(writer, method, path, query, client, body)
            except ServiceError as exc:
                await self._respond(writer, exc.status, {"error": str(exc)})
            except Exception as exc:  # a handler bug must not kill the loop
                await self._respond(
                    writer, 500,
                    {"error": f"{type(exc).__name__}: {exc}"})
        finally:
            self._connections -= 1
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    @staticmethod
    def _peer(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if isinstance(peer, tuple) else "unknown"

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Tuple[str, str, dict, Dict[str, str],
                                       Optional[dict]]:
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=10.0)
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        try:
            method, target, _version = \
                request_line.decode("latin-1").split()
        except ValueError:
            raise ServiceError("malformed request line", status=400) \
                from None
        parts = urlsplit(target)
        query = parse_qs(parts.query)
        headers: Dict[str, str] = {}
        for _ in range(MAX_HEADER_LINES):
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n", b""):
                break
            if len(line) > MAX_LINE_BYTES:
                raise ServiceError("header line too long", status=431)
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ServiceError("too many headers", status=431)
        body = None
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body exceeds {MAX_BODY_BYTES} bytes", status=413)
        if length:
            raw = await asyncio.wait_for(
                reader.readexactly(length), timeout=30.0)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServiceError(f"request body is not JSON: {exc}",
                                   status=400) from None
        return method.upper(), parts.path, query, headers, body

    # -- routing -----------------------------------------------------------------

    async def _route(self, writer, method: str, path: str, query: dict,
                     client: str, body: Optional[dict]) -> None:
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            raise ServiceError(f"unknown path {path!r}", status=404)
        parts = parts[1:]
        if parts == ["status"] and method == "GET":
            doc = self.scheduler.status()
            doc["server"] = {"requests": self.requests,
                             "rejected": self.rejected,
                             "connections": self._connections,
                             "max_clients": self.max_clients}
            await self._respond(writer, 200, doc)
            return
        if parts == ["jobs"] and method == "GET":
            await self._respond(writer, 200, {
                "jobs": [r.to_json_dict() for r in self.scheduler.jobs()]})
            return
        if parts == ["jobs"] and method == "POST":
            if body is None:
                raise ServiceError("submit needs a JSON job spec body")
            spec = JobSpec.from_json_dict(dict(body, client=client))
            record = await self.scheduler.submit(spec)
            await self._respond(writer, 202, record.to_json_dict())
            return
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            tail = parts[2:]
            if not tail and method == "GET":
                record = self.scheduler.get(job_id)
                await self._respond(writer, 200, record.to_json_dict())
                return
            if tail == ["result"] and method == "GET":
                timeout = query.get("timeout", [None])[0]
                if timeout is not None:
                    try:
                        seconds = float(timeout)
                    except ValueError:
                        raise ServiceError("timeout must be a number") \
                            from None
                    await self.scheduler.wait(job_id,
                                              timeout=max(0.0, seconds))
                await self._respond(writer, 200,
                                    self.scheduler.result(job_id))
                return
            if tail == ["cancel"] and method == "POST":
                record = await self.scheduler.cancel(job_id)
                await self._respond(writer, 202, record.to_json_dict())
                return
            if tail == ["events"] and method == "GET":
                await self._stream_events(writer, job_id)
                return
        raise ServiceError(f"no route for {method} {path}", status=404)

    # -- responses ---------------------------------------------------------------

    async def _respond(self, writer, status: int, doc: dict) -> None:
        body = (json.dumps(doc, indent=2, sort_keys=False) + "\n").encode()
        writer.write(self._head(status, "application/json", len(body)))
        writer.write(body)
        await writer.drain()

    async def _stream_events(self, writer, job_id: str) -> None:
        """NDJSON live stream: current state first, then every telemetry
        event and state change as it happens, until the job ends."""
        record = self.scheduler.get(job_id)  # 404s before headers go out
        queue = self.scheduler.subscribe(job_id)
        try:
            writer.write(self._head(200, "application/x-ndjson"))
            writer.write(self._ndjson(
                {"kind": "job_state", "job": record.job_id,
                 "state": record.state, "attempts": record.attempts,
                 "error": record.error or None}))
            await writer.drain()
            if record.terminal:
                return
            while True:
                doc = await queue.get()
                if doc is None:  # the job reached a terminal state
                    return
                writer.write(self._ndjson(doc))
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # subscriber went away; drop them silently
        finally:
            self.scheduler.unsubscribe(job_id, queue)

    @staticmethod
    def _ndjson(doc: dict) -> bytes:
        return (json.dumps(doc, sort_keys=True) + "\n").encode()

    @staticmethod
    def _head(status: int, content_type: str,
              length: Optional[int] = None) -> bytes:
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 408: "Request Timeout",
                  409: "Conflict", 410: "Gone", 413: "Payload Too Large",
                  429: "Too Many Requests", 431: "Headers Too Large",
                  500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Type: {content_type}",
                 "Connection: close"]
        if length is not None:
            lines.append(f"Content-Length: {length}")
        return ("\r\n".join(lines) + "\r\n\r\n").encode()


async def serve(host: str, port: int, *, jobs: Optional[int] = None,
                max_clients: int = 64, store_root: Optional[str] = None,
                cache_root: Optional[str] = None,
                max_active_jobs: int = 4,
                rate: float = DEFAULT_RATE, burst: int = DEFAULT_BURST,
                verify: bool = True, announce=print) -> dict:
    """Run the service until SIGTERM/SIGINT, then drain gracefully.

    Wires the full stack — :class:`WorkerPool` →
    :class:`~repro.service.scheduler.Scheduler` → :class:`JobServer` —
    recovers the job journal, and installs signal handlers that stop
    intake, let running cells finish, and checkpoint the queue before
    returning the drain summary.
    """
    from ..experiments.parallel import DEFAULT_CACHE_ROOT, WorkerPool
    from ..obs.runstore import DEFAULT_ROOT
    pool = WorkerPool(jobs=jobs)
    scheduler = Scheduler(pool, store_root=store_root or DEFAULT_ROOT,
                          cache_root=(cache_root if cache_root is not None
                                      else DEFAULT_CACHE_ROOT),
                          max_active_jobs=max_active_jobs, verify=verify)
    recovered = await scheduler.start()
    server = JobServer(scheduler, host=host, port=port,
                       max_clients=max_clients, rate=rate, burst=burst)
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_event_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, stop.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread / platforms without signal support
    announce(f"eve-service listening on http://{server.host}:{server.port} "
             f"(pool={pool.jobs}, recovered={recovered} jobs); "
             "SIGTERM drains gracefully")
    await stop.wait()
    announce("eve-service draining: intake closed, finishing running "
             "cells...")
    await server.stop()
    summary = await scheduler.drain()
    announce(f"eve-service drained: {summary['checkpointed']} jobs "
             "checkpointed back to the queue")
    return summary
