"""System configurations from Table III of the EVE paper.

Each simulated system (IO, O3, O3+IV, O3+DV, O3+EVE-n) is described by a
:class:`SystemConfig` aggregating cache, core, and vector-engine parameters.
The values here are the paper's Table III values; experiments construct
machines from these configs via :mod:`repro.experiments.systems`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .errors import ConfigError

CACHE_LINE_BYTES = 64
ELEMENT_BITS = 32
ELEMENT_BYTES = ELEMENT_BITS // 8

#: Cycle time of the vanilla 28nm SRAM measured in Section VI (nanoseconds).
BASE_CYCLE_TIME_NS = 1.025

#: Cycle-time penalty factors for bit-hybrid parallelization factors
#: (Section VI-B): n <= 8 has no penalty, n = 16 costs ~15%, n = 32 ~51%.
CYCLE_TIME_NS_BY_FACTOR = {
    1: 1.025,
    2: 1.025,
    4: 1.025,
    8: 1.025,
    16: 1.175,
    32: 1.550,
}

#: Parallelization factors evaluated in the paper.
EVE_FACTORS = (1, 2, 4, 8, 16, 32)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    name: str
    size_bytes: int
    ways: int
    hit_latency: int
    mshrs: int
    banks: int = 1
    line_bytes: int = CACHE_LINE_BYTES

    def __post_init__(self) -> None:
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )
        if self.sets & (self.sets - 1):
            raise ConfigError(f"{self.name}: set count {self.sets} not a power of two")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True)
class DramConfig:
    """Single-channel DDR4-2400-like main memory model parameters.

    Latency and bandwidth are expressed in *core cycles* of a nominal
    1.025ns clock; EVE systems with a slowed clock rescale them so DRAM
    stays fixed in wall-clock terms.
    """

    access_latency: float = 80.0
    bytes_per_cycle: float = 19.2
    channels: int = 1


@dataclass(frozen=True)
class ScalarCoreConfig:
    """Parameters of the scalar control processor models."""

    kind: str  # "io" or "o3"
    issue_width: int
    #: Fraction of a cache-miss penalty the core can hide by overlapping
    #: independent work (0 for the blocking in-order core).
    miss_overlap: float
    base_cpi: float

    def __post_init__(self) -> None:
        if self.kind not in ("io", "o3"):
            raise ConfigError(f"unknown scalar core kind {self.kind!r}")
        if not 0.0 <= self.miss_overlap < 1.0:
            raise ConfigError("miss_overlap must be in [0, 1)")


@dataclass(frozen=True)
class VectorEngineConfig:
    """Parameters shared by the IV / DV / EVE vector-engine models."""

    kind: str  # "iv", "dv", or "eve"
    hardware_vl: int
    exec_pipes: int
    in_order: bool
    #: EVE only: the parallelization factor n of the bit-hybrid circuits.
    factor: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ("iv", "dv", "eve"):
            raise ConfigError(f"unknown vector engine kind {self.kind!r}")
        if self.kind == "eve" and self.factor not in EVE_FACTORS:
            raise ConfigError(f"EVE factor must be one of {EVE_FACTORS}")
        if self.hardware_vl <= 0:
            raise ConfigError("hardware_vl must be positive")


@dataclass(frozen=True)
class EveSramConfig:
    """Geometry of the EVE SRAM pool carved out of the private L2."""

    #: One EVE SRAM = two banked 256x128 sub-arrays (Section VI-B).
    rows: int = 256
    cols: int = 256
    num_vregs: int = 32
    #: Number of EVE SRAMs in the partitioned half of a 512KB L2
    #: (256 KB / 8 KB per EVE SRAM = 32).
    num_arrays: int = 32
    #: Read/write port width of one EVE SRAM in bits.
    port_bits: int = 256
    #: Data transpose units shared by the engine (Section VII-B).
    num_dtus: int = 8

    def __post_init__(self) -> None:
        for name in ("rows", "cols", "num_vregs", "num_arrays", "port_bits"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ConfigError(f"EveSramConfig.{name} must be a power of two, got {value}")


@dataclass(frozen=True)
class SystemConfig:
    """A complete simulated system (one column of Table III)."""

    name: str
    core: ScalarCoreConfig
    l1i: CacheConfig
    l1d: CacheConfig
    l2: CacheConfig
    llc: CacheConfig
    dram: DramConfig
    vector: VectorEngineConfig | None = None
    eve_sram: EveSramConfig | None = None
    cycle_time_ns: float = BASE_CYCLE_TIME_NS

    def __post_init__(self) -> None:
        if self.vector is not None and self.vector.kind == "eve" and self.eve_sram is None:
            raise ConfigError("EVE systems require an EveSramConfig")

    @property
    def has_vector(self) -> bool:
        return self.vector is not None


def _default_l1i() -> CacheConfig:
    return CacheConfig("L1I", 32 * 1024, ways=4, hit_latency=1, mshrs=16)


def _default_l1d() -> CacheConfig:
    return CacheConfig("L1D", 32 * 1024, ways=4, hit_latency=2, mshrs=16)


def _default_l2() -> CacheConfig:
    return CacheConfig("L2", 512 * 1024, ways=8, hit_latency=8, mshrs=32, banks=8)


def _eve_mode_l2() -> CacheConfig:
    # In vector mode, half the ways are carved out: 4-way 256KB (Table III).
    return CacheConfig("L2", 256 * 1024, ways=4, hit_latency=8, mshrs=32, banks=8)


def _default_llc() -> CacheConfig:
    return CacheConfig("LLC", 2 * 1024 * 1024, ways=16, hit_latency=12, mshrs=32)


IO_CORE = ScalarCoreConfig(kind="io", issue_width=1, miss_overlap=0.0, base_cpi=1.0)
O3_CORE = ScalarCoreConfig(kind="o3", issue_width=8, miss_overlap=0.45, base_cpi=0.5)


def eve_hardware_vl(factor: int, sram: EveSramConfig | None = None) -> int:
    """Hardware vector length of an EVE-``factor`` engine (Table III).

    Derived from the register layout: with 32 vregs of 32-bit elements in a
    256x256 array, EVE-{1,2,4} hold 64 elements per array, EVE-8 holds 32,
    EVE-16 holds 16, and EVE-32 holds 8; times 32 arrays this yields vector
    lengths of 2048 / 2048 / 2048 / 1024 / 512 / 256.
    """
    from .sram.layout import RegisterLayout  # local import to avoid a cycle

    sram = sram or EveSramConfig()
    layout = RegisterLayout(
        rows=sram.rows,
        cols=sram.cols,
        element_bits=ELEMENT_BITS,
        factor=factor,
        num_vregs=sram.num_vregs,
    )
    return layout.elements_per_array * sram.num_arrays


def make_system(name: str) -> SystemConfig:
    """Build a Table III system config by name.

    Accepted names: ``IO``, ``O3``, ``O3+IV``, ``O3+DV``, and ``O3+EVE-n``
    for n in {1, 2, 4, 8, 16, 32}.
    """
    if name == "IO":
        return SystemConfig(
            name=name, core=IO_CORE, l1i=_default_l1i(), l1d=_default_l1d(),
            l2=_default_l2(), llc=_default_llc(), dram=DramConfig(),
        )
    if name == "O3":
        return SystemConfig(
            name=name, core=O3_CORE, l1i=_default_l1i(), l1d=_default_l1d(),
            l2=_default_l2(), llc=_default_llc(), dram=DramConfig(),
        )
    if name == "O3+IV":
        return SystemConfig(
            name=name, core=O3_CORE, l1i=_default_l1i(), l1d=_default_l1d(),
            l2=_default_l2(), llc=_default_llc(), dram=DramConfig(),
            vector=VectorEngineConfig(kind="iv", hardware_vl=4, exec_pipes=3, in_order=False),
        )
    if name == "O3+DV":
        return SystemConfig(
            name=name, core=O3_CORE, l1i=_default_l1i(), l1d=_default_l1d(),
            l2=_default_l2(), llc=_default_llc(), dram=DramConfig(),
            vector=VectorEngineConfig(kind="dv", hardware_vl=64, exec_pipes=4, in_order=True),
        )
    if name.startswith("O3+EVE-"):
        try:
            factor = int(name.split("-")[-1])
        except ValueError as exc:
            raise ConfigError(f"bad EVE system name {name!r}") from exc
        if factor not in EVE_FACTORS:
            raise ConfigError(f"EVE factor must be one of {EVE_FACTORS}, got {factor}")
        sram = EveSramConfig()
        # DRAM timing is fixed in wall-clock terms; systems with a slowed
        # clock (EVE-16/32) see proportionally fewer DRAM *cycles*.
        clock_ratio = CYCLE_TIME_NS_BY_FACTOR[factor] / BASE_CYCLE_TIME_NS
        dram = DramConfig(
            access_latency=DramConfig.access_latency / clock_ratio,
            bytes_per_cycle=DramConfig.bytes_per_cycle * clock_ratio,
        )
        return SystemConfig(
            name=name, core=O3_CORE, l1i=_default_l1i(), l1d=_default_l1d(),
            l2=_eve_mode_l2(), llc=_default_llc(), dram=dram,
            vector=VectorEngineConfig(
                kind="eve", hardware_vl=eve_hardware_vl(factor, sram),
                exec_pipes=1, in_order=True, factor=factor,
            ),
            eve_sram=sram,
            cycle_time_ns=CYCLE_TIME_NS_BY_FACTOR[factor],
        )
    raise ConfigError(f"unknown system {name!r}")


def all_system_names() -> list[str]:
    """Names of every system evaluated in the paper (Figure 6 x-axis)."""
    return ["IO", "O3", "O3+IV", "O3+DV"] + [f"O3+EVE-{n}" for n in EVE_FACTORS]


def with_dram(config: SystemConfig, dram: DramConfig) -> SystemConfig:
    """Return a copy of ``config`` with a different DRAM model."""
    return replace(config, dram=dram)
