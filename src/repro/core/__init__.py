"""EVE: the ephemeral vector engine (Sections IV & V).

* :mod:`repro.core.units` — timing models of the vector memory unit
  (VMU), vector reduction unit (VRU), and the data-transpose-unit pool.
* :mod:`repro.core.engine` — the composed machine: VCU dispatch, VSU
  micro-program timing from the real ROM, memory/compute overlap, and the
  Figure 7 stall attribution.
* :mod:`repro.core.functional` — a bit-exact engine that executes whole
  vector traces through the micro-programs on the bit-level SRAM model
  (the correctness oracle for the timing engine's function/timing split).
"""

from .units import DtuPool, VmuModel, VruModel
from .engine import EveMachine
from .functional import EveFunctionalEngine

__all__ = ["DtuPool", "VmuModel", "VruModel", "EveMachine", "EveFunctionalEngine"]
