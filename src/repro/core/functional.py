"""A bit-exact EVE engine: whole kernels through real micro-programs.

:class:`EveFunctionalEngine` duck-types the workload-facing API of
:class:`~repro.isa.intrinsics.VectorContext`, but every arithmetic result
is produced by executing the ROM's micro-programs on the bit-level
:class:`~repro.sram.EveSram` — no numpy arithmetic on the data path.  Any
kernel written against the intrinsics API therefore runs unchanged on
either context, and comparing their outputs validates the paper's
function/timing split end to end.

Modelling notes:

* The engine uses one wide SRAM (arrays side by side); column groups are
  local, so this is equivalent to broadcasting the μop stream to the
  array pool.
* Register allocation is compiler-style: handles own architectural
  registers; when the 31-register pool wraps onto a live value it is
  *spilled* (read out through the memory path) and transparently reloaded
  at its next use.  ``spills`` counts these events.
* The DTU's transpose and the VRU's fold are performed functionally
  (host-side bit reshuffling), exactly the role those hardware blocks play.
* ``vx`` operand forms splat the scalar through the data-in port first,
  as the VCU would.
* Known proxies (documented in DESIGN.md): ``vmulh``/``vmulhu`` and
  signed division with negative operands are not bit-exact and raise.
"""

from __future__ import annotations

import weakref
from typing import Optional, Tuple, Union

import numpy as np

from ..errors import SimulationError
from ..faults.inject import NULL_FAULTS
from ..isa.intrinsics import wrap32
from ..isa.memory import Buffer, VirtualMemory
from ..sram.eve_sram import EveSram
from ..sram.layout import RegisterLayout
from ..uops.executor import Binding, MicroEngine
from ..uops.rom import MacroOpRom

_I32 = np.int32


class EveVec:
    """Handle to a vector value resident in the EVE SRAM.

    When the register allocator wraps onto a live value it spills it to
    memory (as compiled code would); ``spilled`` holds the value until the
    handle's next use reloads it into a fresh register.
    """

    __slots__ = ("reg", "spilled", "__weakref__")

    def __init__(self, reg: int = -1) -> None:
        self.reg = reg
        self.spilled: Optional[np.ndarray] = None


class EveMask(EveVec):
    """Handle to a 0/1 mask value resident in the EVE SRAM."""


Operand = Union[EveVec, int, np.integer]


class _BitDatapath:
    """Macro-block execution on the bit-exact EVE SRAM.

    The default backend: each macro in a block resolves to its ROM
    micro-program and runs on the :class:`MicroEngine`
    (:meth:`~repro.uops.executor.MicroEngine.run_block`).
    """

    def __init__(self, rom: MacroOpRom, engine: MicroEngine, sram: EveSram,
                 layout: RegisterLayout) -> None:
        self.rom = rom
        self.engine = engine
        self.sram = sram
        self.layout = layout

    def execute(self, block) -> int:
        return self.engine.run_block(
            [(self.rom.program(macro, **params),
              Binding(layout=self.layout, regs=regs, scalar=scalar))
             for macro, regs, scalar, params in block],
            self.sram)

    def read_vreg(self, reg: int) -> np.ndarray:
        return self.sram.read_vreg(self.layout, reg)

    def write_vreg(self, reg: int, values: np.ndarray) -> None:
        self.sram.write_vreg(self.layout, reg, values)


class EveFunctionalEngine:
    """Bit-exact vector execution on the EVE SRAM pool.

    With ``batched=True`` the per-μop bit datapath is swapped for the
    compiler's :class:`~repro.compiler.batched.WordDatapath`: macro blocks
    evaluate as vectorised word arithmetic with cycles charged from the
    ROM's (data-independent) timing runs.  Register allocation, spilling,
    and macro emission are identical either way, so cycle counts, spill
    counts, and every observable value match the bit path exactly —
    ``tests/test_compiler.py`` holds the two modes bit-for-bit together
    over the fuzz corpus.  Fault injection hooks into the μop stream, so
    the batched mode refuses an enabled fault plan.
    """

    def __init__(self, factor: int, capacity: int = 64,
                 num_vregs: int = 32, element_bits: int = 32,
                 faults=None, batched: bool = False) -> None:
        segments = element_bits // factor
        rows = max(256, num_vregs * segments)
        cols = capacity * factor
        self.layout = RegisterLayout(rows=rows, cols=cols,
                                     element_bits=element_bits,
                                     factor=factor, num_vregs=num_vregs)
        if self.layout.elements_per_array != capacity:
            raise SimulationError("functional engine layout mismatch")
        self.faults = faults if faults is not None else NULL_FAULTS
        self.sram = EveSram(rows, cols, factor)
        self.sram.faults = self.faults
        self.rom = MacroOpRom(factor, element_bits, strict=True)
        self.engine = MicroEngine(faults=self.faults)
        self.vm = VirtualMemory()
        self.capacity = capacity
        self.batched = batched
        if batched:
            if self.faults.enabled:
                raise SimulationError(
                    "batched evaluation cannot model μop-level fault "
                    "injection; use the bit datapath for fault campaigns")
            from ..compiler.batched import WordDatapath
            self._dp = WordDatapath(self.rom, capacity)
        else:
            self._dp = _BitDatapath(self.rom, self.engine, self.sram,
                                    self.layout)
        self._pending: list = []     # macro ops awaiting block execution
        self.vl = 0
        self.cycles = 0
        self.spills = 0
        self._next_reg = 1
        self._num_vregs = num_vregs
        self._bound: dict = {}       # reg -> weakref to the owning handle
        self._pinned: set = set()    # regs an in-flight op depends on

    # -- register allocation (with compiler-style spilling) -----------------

    def _alloc(self, owner: Optional[EveVec] = None) -> int:
        """Claim the next non-pinned register, spilling any live value."""
        for _ in range(self._num_vregs):
            reg = self._next_reg
            self._next_reg += 1
            if self._next_reg >= self._num_vregs:
                self._next_reg = 1
            if reg in self._pinned:
                continue
            holder = self._bound.get(reg)
            handle = holder() if holder is not None else None
            if handle is not None and handle.reg == reg and handle.spilled is None:
                handle.spilled = self._dp_read(reg)
                handle.reg = -1
                self.spills += 1
            if owner is not None:
                self._bound[reg] = weakref.ref(owner)
            else:
                self._bound.pop(reg, None)
            return reg
        raise SimulationError("register pool exhausted (all pinned)")

    def _new_handle(self, cls=EveVec) -> EveVec:
        handle = cls()
        handle.reg = self._alloc(owner=handle)
        return handle

    def _ensure(self, handle: EveVec) -> int:
        """Make a handle's value register-resident; reload if spilled."""
        if handle.reg >= 0:
            holder = self._bound.get(handle.reg)
            if holder is not None and holder() is handle:
                return handle.reg
        if handle.spilled is None:
            raise SimulationError(
                "stale register handle (overwritten without a spill)")
        reg = self._alloc(owner=handle)
        self._dp_write(reg, handle.spilled)
        handle.reg = reg
        handle.spilled = None
        return reg

    def _pin_source(self, value: EveVec) -> int:
        reg = self._ensure(value)
        self._pinned.add(reg)
        return reg

    def _pin_operand(self, value: Operand) -> Tuple[int, Optional[EveVec]]:
        """Pin a Vec operand, or splat a scalar into a pinned temp."""
        if isinstance(value, EveVec):
            return self._pin_source(value), None
        temp = self._new_handle()
        self._pinned.add(temp.reg)
        self._run("splat", {"vd": temp.reg}, scalar=int(value))
        return temp.reg, temp

    def _run(self, macro: str, regs: dict, scalar: int = 0, **params) -> None:
        """Queue one macro-operation for block execution.

        Emission order is execution order: any datapath read or write
        (spill, reload, host observation) flushes the pending block first,
        so the macro stream the datapath sees is byte-for-byte the
        sequence the per-macro interpreter executed.
        """
        if self.faults.enabled:
            self.faults.on_macro(macro)
        self._pending.append((macro, regs, int(scalar), params))

    def _flush(self) -> None:
        """Execute the pending macro block on the active datapath."""
        if self._pending:
            block, self._pending = self._pending, []
            self.cycles += self._dp.execute(block)

    def _dp_read(self, reg: int) -> np.ndarray:
        self._flush()
        return self._dp.read_vreg(reg)

    def _dp_write(self, reg: int, values: np.ndarray) -> None:
        self._flush()
        self._dp.write_vreg(reg, values)

    def _read(self, handle_or_reg) -> np.ndarray:
        reg = (self._ensure(handle_or_reg)
               if isinstance(handle_or_reg, EveVec) else handle_or_reg)
        return self._dp_read(reg)[: self.vl]

    def peek(self, handle: EveVec) -> np.ndarray:
        """Host-side read of a handle's current value (``vl`` elements).

        Public observation port for the differential fuzzer: reloads the
        handle if it was spilled, exactly as its next use would.
        """
        return self._read(handle).copy()

    def _write_new(self, values: np.ndarray, cls=EveVec) -> EveVec:
        handle = self._new_handle(cls)
        full = np.zeros(self.capacity, dtype=np.int64)
        full[: len(values)] = np.asarray(values, dtype=np.int64)
        self._dp_write(handle.reg, full)
        return handle

    # -- control ----------------------------------------------------------------

    def setvl(self, avl: int) -> int:
        self.vl = min(int(avl), self.capacity)
        return self.vl

    def vmfence(self) -> None:
        """No-op functionally: memory effects are immediate here."""

    def scalar(self, n_instr: int, accesses=()) -> None:
        """Scalar bookkeeping has no data-path effect in the oracle."""

    # -- memory (the DTU performs the transpose functionally) ----------------------

    def vle32(self, buf: Buffer, offset: int = 0) -> EveVec:
        return self._write_new(buf.data[offset:offset + self.vl])

    def vse32(self, vec: EveVec, buf: Buffer, offset: int = 0,
              mask: Optional[EveMask] = None) -> None:
        values = self._read(vec).astype(_I32)
        target = buf.data[offset:offset + self.vl]
        if mask is None:
            target[:] = values
        else:
            np.copyto(target, values, where=self._read(mask) != 0)

    def vlse32(self, buf: Buffer, offset: int, stride_elems: int) -> EveVec:
        last = offset + stride_elems * (self.vl - 1)
        return self._write_new(buf.data[offset:last + 1:stride_elems])

    def vsse32(self, vec: EveVec, buf: Buffer, offset: int,
               stride_elems: int) -> None:
        last = offset + stride_elems * (self.vl - 1)
        buf.data[offset:last + 1:stride_elems] = self._read(vec).astype(_I32)

    def vluxei32(self, buf: Buffer, index: EveVec) -> EveVec:
        idx = self._read(index)
        return self._write_new(buf.data[idx])

    def vsuxei32(self, vec: EveVec, buf: Buffer, index: EveVec) -> None:
        idx = self._read(index)
        buf.data[idx] = self._read(vec).astype(_I32)

    # -- binary ops through the ROM ---------------------------------------------------

    #: Macros that complement one source in place (Figure 4a): the VCU
    #: must break a vs1/vs2 alias with a register copy first, or the
    #: complement corrupts the other operand (found by the differential
    #: fuzzer: ``vsub(a, a)`` returned ``-2a - 1``).
    _ALIAS_UNSAFE = frozenset({"sub", "rsub"})

    def _unalias(self, src_reg: int) -> int:
        """Copy ``src_reg`` into a pinned temporary; returns the copy."""
        temp = self._new_handle()
        self._pinned.add(temp.reg)
        self._run("move", {"vs1": src_reg, "vd": temp.reg})
        return temp.reg

    def _binary(self, macro: str, a: EveVec, b: Operand, cls=EveVec,
                **params) -> EveVec:
        self._pinned.clear()
        try:
            a_reg = self._pin_source(a)
            b_reg, _temp = self._pin_operand(b)
            if macro in self._ALIAS_UNSAFE and b_reg == a_reg:
                b_reg = self._unalias(b_reg)
            vd = self._new_handle(cls)
            self._run(macro, {"vs1": a_reg, "vs2": b_reg, "vd": vd.reg},
                      **params)
        finally:
            self._flush()
            self._pinned.clear()
        return vd

    def _masked_binary(self, macro: str, a: EveVec, b: Operand,
                       mask: EveMask, old: Optional[EveVec]) -> EveVec:
        self._pinned.clear()
        try:
            a_reg = self._pin_source(a)
            b_reg, _temp = self._pin_operand(b)
            if macro in self._ALIAS_UNSAFE and b_reg == a_reg:
                b_reg = self._unalias(b_reg)
            m_reg = self._pin_source(mask)
            vd = self._new_handle()
            self._pinned.add(vd.reg)
            # Seed the destination with `old` (or zeros): masked-off
            # groups keep it, the masked program writes the rest.
            if old is not None:
                self._run("move", {"vs1": self._pin_source(old), "vd": vd.reg})
            else:
                self._run("splat", {"vd": vd.reg}, scalar=0)
            self._run(macro, {"vs1": a_reg, "vs2": b_reg, "vd": vd.reg,
                              "vm": m_reg}, masked=True)
        finally:
            self._flush()
            self._pinned.clear()
        return vd

    def vadd(self, a: EveVec, b: Operand, mask=None, old=None) -> EveVec:
        if mask is not None:
            return self._masked_binary("add", a, b, mask, old)
        return self._binary("add", a, b)

    def vsub(self, a: EveVec, b: Operand, mask=None, old=None) -> EveVec:
        if mask is not None:
            return self._masked_binary("sub", a, b, mask, old)
        return self._binary("sub", a, b)

    def vrsub(self, a: EveVec, b: Operand) -> EveVec:
        return self._binary("rsub", a, b)

    def vand(self, a, b):
        return self._binary("logic", a, b, op="and")

    def vor(self, a, b):
        return self._binary("logic", a, b, op="or")

    def vxor(self, a, b):
        return self._binary("logic", a, b, op="xor")

    def vnot(self, a):
        return self._binary("logic", a, 0, op="not")

    def vmin(self, a, b):
        return self._binary("minmax", a, b, op="min", signed=True)

    def vmax(self, a, b):
        return self._binary("minmax", a, b, op="max", signed=True)

    def vminu(self, a, b):
        return self._binary("minmax", a, b, op="min", signed=False)

    def vmaxu(self, a, b):
        return self._binary("minmax", a, b, op="max", signed=False)

    def vmul(self, a, b):
        return self._binary("mul", a, b)

    # -- saturating ops: executed exactly as the VCU decomposes them ---------------

    def vsadd(self, a: EveVec, b: Operand) -> EveVec:
        total = self.vadd(a, b)
        t1 = self.vxor(a, total)
        t4 = self.vand(t1, self.vnot(self.vxor(a, b)))
        overflow = self.vmslt(t4, 0)
        saturated = self.vxor(self.vsra(a, 31), 2 ** 31 - 1)
        return self.vmerge(overflow, saturated, total)

    def vssub(self, a: EveVec, b: Operand) -> EveVec:
        diff = self.vsub(a, b)
        t1 = self.vxor(a, diff)
        t4 = self.vand(t1, self.vxor(a, b))
        overflow = self.vmslt(t4, 0)
        saturated = self.vxor(self.vsra(a, 31), 2 ** 31 - 1)
        return self.vmerge(overflow, saturated, diff)

    def vsaddu(self, a: EveVec, b: Operand) -> EveVec:
        total = self.vadd(a, b)
        overflow = self._binary("compare", total, a, cls=EveMask,
                                op="lt", signed=False)
        return self.vmerge(overflow, self.vmv(-1), total)

    def vssubu(self, a: EveVec, b: Operand) -> EveVec:
        diff = self.vsub(a, b)
        underflow = self._binary("compare", a, b, cls=EveMask,
                                 op="lt", signed=False)
        return self.vmerge(underflow, self.vmv(0), diff)

    def vmulh(self, a, b):
        raise SimulationError(
            "vmulh is a timing proxy only; the bit-exact oracle does not "
            "implement the high half (see DESIGN.md)")

    vmulhu = vmulh

    # -- division (spills one register to lend the micro-program scratch) --------------

    def _div_like(self, op: str, a: EveVec, b: Operand) -> EveVec:
        if op in ("div", "rem"):
            negative = (self._read(a) < 0).any()
            if isinstance(b, EveVec):
                negative = negative or (self._read(b) < 0).any()
            else:
                negative = negative or int(b) < 0
            if negative:
                raise SimulationError(
                    "signed division with negative operands is a timing "
                    "proxy only (see DESIGN.md)")
        self._pinned.clear()
        try:
            a_reg = self._pin_source(a)
            b_reg, _temp = self._pin_operand(b)
            vd = self._new_handle()
            self._pinned.add(vd.reg)
            scratch = self._alloc()  # the VCU's spilled register
            self._pinned.add(scratch)
            self._run("div", {"vs1": a_reg, "vs2": b_reg, "vd": vd.reg,
                              "vm": scratch}, op=op)
        finally:
            self._flush()
            self._pinned.clear()
        return vd

    def vdiv(self, a, b):
        return self._div_like("div", a, b)

    def vrem(self, a, b):
        return self._div_like("rem", a, b)

    def vdivu(self, a, b):
        return self._div_like("divu", a, b)

    def vremu(self, a, b):
        return self._div_like("remu", a, b)

    # -- shifts -------------------------------------------------------------------------

    def _shift(self, op: str, a: EveVec, b: Operand) -> EveVec:
        self._pinned.clear()
        try:
            a_reg = self._pin_source(a)
            if isinstance(b, EveVec):
                b_reg = self._pin_source(b)
                vd = self._new_handle()
                self._run("shift_variable",
                          {"vs1": a_reg, "vs2": b_reg, "vd": vd.reg}, op=op)
            else:
                vd = self._new_handle()
                amount = int(b) & 31
                self._run("shift_scalar", {"vs1": a_reg, "vd": vd.reg},
                          scalar=amount, op=op, amount=amount)
        finally:
            self._flush()
            self._pinned.clear()
        return vd

    def vsll(self, a, b):
        return self._shift("sll", a, b)

    def vsrl(self, a, b):
        return self._shift("srl", a, b)

    def vsra(self, a, b):
        return self._shift("sra", a, b)

    # -- compares, select ----------------------------------------------------------------

    def _compare(self, op: str, a: EveVec, b: Operand) -> EveMask:
        return self._binary("compare", a, b, cls=EveMask, op=op, signed=True)

    def vmseq(self, a, b):
        return self._compare("eq", a, b)

    def vmsne(self, a, b):
        return self._compare("ne", a, b)

    def vmslt(self, a, b):
        return self._compare("lt", a, b)

    def vmsle(self, a, b):
        return self._compare("le", a, b)

    def vmsgt(self, a, b):
        return self._compare("gt", a, b)

    def vmsge(self, a, b):
        return self._compare("ge", a, b)

    def vmerge(self, mask: EveMask, a: EveVec, b: Operand) -> EveVec:
        self._pinned.clear()
        try:
            a_reg = self._pin_source(a)
            b_reg, _temp = self._pin_operand(b)
            m_reg = self._pin_source(mask)
            vd = self._new_handle()
            self._run("merge", {"vs1": a_reg, "vs2": b_reg, "vd": vd.reg,
                                "vm": m_reg})
        finally:
            self._flush()
            self._pinned.clear()
        return vd

    # -- moves -------------------------------------------------------------------------

    def vmv(self, value: Operand) -> EveVec:
        self._pinned.clear()
        try:
            if isinstance(value, EveVec):
                src = self._pin_source(value)
                vd = self._new_handle()
                self._run("move", {"vs1": src, "vd": vd.reg})
            else:
                vd = self._new_handle()
                self._run("splat", {"vd": vd.reg}, scalar=int(value))
        finally:
            self._flush()
            self._pinned.clear()
        return vd

    def viota(self, start: int = 0, step: int = 1) -> EveVec:
        # Index generation is a VRU/DTU service (like a load of a ramp).
        return self._write_new(
            wrap32(np.arange(self.vl, dtype=np.int64) * step + start))

    # -- reductions / cross-element (the VRU, functionally) --------------------------------

    def _reduce(self, fold, init: int, a: EveVec, mask=None) -> int:
        values = self._read(a).astype(np.int64)
        if mask is not None:
            values = values[self._read(mask) != 0]
        return int(wrap32(np.array([fold(values, init)]))[0])

    def vredsum(self, a, init: int = 0, mask=None) -> int:
        return self._reduce(lambda v, i: v.sum() + i, init, a, mask)

    def vredmax(self, a, init: int = -(2 ** 31)) -> int:
        return self._reduce(lambda v, i: max(v.max(initial=i), i), init, a)

    def vredmin(self, a, init: int = 2 ** 31 - 1) -> int:
        return self._reduce(lambda v, i: min(v.min(initial=i), i), init, a)

    def vrgather(self, a: EveVec, index: EveVec) -> EveVec:
        values = self._read(a)
        idx = self._read(index)
        in_range = (idx >= 0) & (idx < self.vl)
        return self._write_new(
            np.where(in_range, values[np.clip(idx, 0, self.vl - 1)], 0))

    def vslidedown(self, a: EveVec, offset: int) -> EveVec:
        values = self._read(a)
        result = np.zeros(self.vl, dtype=np.int64)
        if offset < self.vl:
            result[: self.vl - offset] = values[offset:]
        return self._write_new(result)

    def vslideup(self, a: EveVec, offset: int, old=None) -> EveVec:
        values = self._read(a)
        result = (self._read(old).astype(np.int64).copy() if old is not None
                  else np.zeros(self.vl, dtype=np.int64))
        if offset < self.vl:
            result[offset:] = values[: self.vl - offset]
        return self._write_new(result)

    def vmv_x_s(self, a: EveVec) -> int:
        return int(self._read(a)[0])

    def vmv_s_x(self, value: int) -> EveVec:
        result = np.zeros(self.vl, dtype=np.int64)
        result[0] = int(wrap32(np.array([int(value)]))[0])
        return self._write_new(result)
