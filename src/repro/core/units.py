"""Timing models of EVE's helper units (Section V).

* :class:`VmuModel` — generates cache-line requests on the LLC port (one
  per cycle, cache-line aligned, a TLB translation folded into the
  request-generation cycle) and tracks the Figure 8 stall metric.
* :class:`DtuPool` — eight data-transpose units; a line costs one cycle
  per segment to (de)transpose, and bit-parallel EVE-32 data needs no
  transpose at all (Section VII-B).
* :class:`VruModel` — streams one segment row per cycle into E detranspose
  ports, runs the dot-operation pipeline, then a linear reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..isa.instructions import MemAccess
from ..mem.hierarchy import MemorySystem
from ..obs.attribution import NULL_ATTRIBUTION
from ..obs.tracer import NULL_TRACER, SpanTracer


@dataclass
class StreamResult:
    """Outcome of one VMU line stream."""

    issue_end: float   # when the VMU finished generating requests
    first_done: float  # first line's data available
    last_done: float   # all lines' data available
    mshr_stall: float  # total time blocked on LLC MSHRs (Figure 8)
    n_lines: int


class VmuModel:
    """The vector memory unit: request generation + LLC port."""

    #: Request generation + TLB translation per line (Section VII-A).
    CYCLES_PER_REQUEST = 1.0

    def __init__(self, mem: MemorySystem) -> None:
        self.mem = mem
        self.tracer = mem.tracer
        self.attr = mem.attr
        self.free_at = 0.0
        self.busy_cycles = 0.0
        self.stall_cycles = 0.0
        self.streams = 0

    def reset(self) -> None:
        self.free_at = 0.0
        self.busy_cycles = 0.0
        self.stall_cycles = 0.0
        self.streams = 0

    def stream(self, start: float, pattern: MemAccess,
               per_element: bool, lines=None) -> StreamResult:
        """Issue all line requests of one memory macro-operation.

        ``lines`` is the compiled path's hoisted request list (plain
        ints, precomputed by the trace compiler); when ``None`` the
        stream is derived from the pattern exactly as the compiler
        would have.
        """
        if lines is None:
            import numpy as np
            if per_element:
                raw = pattern.element_addresses() // 64 * 64
            else:
                raw = pattern.line_addresses()
            lines = [int(line) for line in np.asarray(raw, dtype=np.int64)]
        t = start
        first_done = start
        last_done = start
        stall_total = 0.0
        is_store = pattern.is_store
        access = self.mem.access
        for i, line in enumerate(lines):
            completion = access(t, line, is_store, port="llc")
            if i == 0:
                first_done = completion.done
            last_done = max(last_done, completion.done)
            stall_total += completion.mshr_stall
            t = max(t + self.CYCLES_PER_REQUEST,
                    completion.grant + self.CYCLES_PER_REQUEST)
        self.free_at = t
        self.busy_cycles += t - start
        self.stall_cycles += stall_total
        self.streams += 1
        if self.attr.enabled:
            self.attr.charge("vmu", "busy", t - start)
            self.attr.charge("vmu", "mshr_stall", stall_total)
        if self.tracer.enabled:
            self.tracer.span(
                "VMU", f"stream:{'st' if pattern.is_store else 'ld'}",
                start, t, n_lines=len(lines), mshr_stall=stall_total,
                last_done=last_done)
        return StreamResult(issue_end=t, first_done=first_done,
                            last_done=last_done, mshr_stall=stall_total,
                            n_lines=len(lines))


class DtuPool:
    """Eight transpose units shared by loads and stores."""

    def __init__(self, num_dtus: int, segments: int, bit_parallel: bool,
                 tracer: Optional[SpanTracer] = None,
                 attribution=None) -> None:
        self.num_dtus = num_dtus
        #: Transposing one cache line touches every segment row once.
        self.cycles_per_line = 0.0 if bit_parallel else float(segments)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.attr = attribution if attribution is not None else NULL_ATTRIBUTION
        self.free_at = 0.0
        self.busy_cycles = 0.0
        self.lines_processed = 0

    def reset(self) -> None:
        self.free_at = 0.0
        self.busy_cycles = 0.0
        self.lines_processed = 0

    def process(self, data_ready: float, n_lines: int) -> float:
        """Run ``n_lines`` through the pool; returns completion time."""
        if self.cycles_per_line == 0.0 or n_lines == 0:
            return data_ready
        start = max(data_ready, self.free_at)
        duration = n_lines * self.cycles_per_line / self.num_dtus
        self.free_at = start + duration
        self.busy_cycles += duration
        if self.attr.enabled:
            self.attr.charge("dtu", "busy", duration)
        self.lines_processed += n_lines
        if self.tracer.enabled:
            self.tracer.span("DTU", "transpose", start, start + duration,
                             n_lines=n_lines)
        return start + duration + self.cycles_per_line  # last line's latency


class VruModel:
    """The vector reduction / cross-element unit (Section V-D)."""

    #: Pipeline latency of the dot-operation tree.
    DOT_LATENCY = 4.0

    def __init__(self, segments: int, ports: int,
                 tracer: Optional[SpanTracer] = None,
                 attribution=None) -> None:
        self.segments = segments
        self.ports = ports  # E = port bits / n
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.attr = attribution if attribution is not None else NULL_ATTRIBUTION
        self.free_at = 0.0
        self.busy_cycles = 0.0
        self.operations = 0

    def reset(self) -> None:
        self.free_at = 0.0
        self.busy_cycles = 0.0
        self.operations = 0

    def reduce(self, start: float, active_arrays: int) -> float:
        """One reduction: stream every array's register, then fold.

        Streaming reads one segment row per cycle per array; the final
        linear reduction folds the E accumulated elements.
        """
        begin = max(start, self.free_at)
        stream = active_arrays * self.segments
        duration = stream + self.DOT_LATENCY + self.ports
        self.free_at = begin + duration
        self.busy_cycles += duration
        if self.attr.enabled:
            self.attr.charge("vru", "busy", duration)
        self.operations += 1
        if self.tracer.enabled:
            self.tracer.span("VRU", "reduce", begin, begin + duration,
                             arrays=active_arrays)
        return begin + duration

    def cross_element(self, start: float, active_arrays: int) -> float:
        """vrgather / slides: read stream + permuted write-back stream."""
        begin = max(start, self.free_at)
        duration = 2 * active_arrays * self.segments + self.DOT_LATENCY
        self.free_at = begin + duration
        self.busy_cycles += duration
        if self.attr.enabled:
            self.attr.charge("vru", "busy", duration)
        self.operations += 1
        if self.tracer.enabled:
            self.tracer.span("VRU", "cross_element", begin, begin + duration,
                             arrays=active_arrays)
        return begin + duration
