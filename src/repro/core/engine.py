"""The EVE machine model (Section V, Figure 3a).

Timing follows the paper's function/timing split: vector values were
already computed functionally when the trace was built; here every
instruction is timed from its real micro-program (via the ROM) and from
the VMU / DTU / VRU unit models, against the live memory hierarchy.

The engine is in-order with a single execution pipe (Table III), but the
VSU is released as soon as a memory macro-operation is handed to the VMU,
so outstanding loads and stores overlap with compute — the overlap the
paper credits for hiding most transpose traffic.  Every idle VSU cycle is
attributed to one Figure 7 bucket.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..config import SystemConfig
from ..errors import SimulationError
from ..faults.inject import NULL_FAULTS
from ..isa.instructions import ScalarBlock, VectorInstr
from ..isa.opcodes import Category
from ..isa.trace import Trace
from ..mem.hierarchy import MemorySystem
from ..mem.reconfig import spawn_cost
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import SpanTracer
from ..sram.layout import RegisterLayout
from ..uops.rom import MacroOpRom
from ..cores.result import SimResult, StallBreakdown
from ..cores.vector_base import VectorMachineBase
from .units import DtuPool, VmuModel, VruModel


def _NO_LINES(index):
    """Interpreted path: no hoisted line list for any event."""
    return None


@dataclass
class _RegInfo:
    """Scoreboard entry: when a register is ready and who produced it."""

    ready: float = 0.0
    kind: str = "compute"      # 'compute' | 'ld' | 'vru'
    dt_limited: bool = False   # for loads: transpose was the bottleneck
    node: int = -1             # trace-event index of the producer


class EveMachine(VectorMachineBase):
    """O3+EVE-n: the ephemeral vector engine carved out of the L2."""

    #: Core commit -> EVE receive latency (the Section V-A queue).
    COMMIT_LATENCY = 4.0
    #: Back-to-back vector commits per cycle out of the core.
    COMMIT_INTERVAL = 0.5
    #: VSU cycles to decode + hand a macro-op to the VMU / VRU.
    VSU_DISPATCH = 2.0

    def __init__(self, config: SystemConfig,
                 tracer: Optional[SpanTracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 faults=None, attribution=None) -> None:
        if config.vector is None or config.vector.kind != "eve":
            raise SimulationError("EveMachine needs an 'eve' config")
        super().__init__(config, tracer=tracer, metrics=metrics,
                         attribution=attribution)
        self.faults = faults if faults is not None else NULL_FAULTS
        self.metrics.reserve("eve", "EveMachine")
        sram = config.eve_sram
        self.factor = config.vector.factor
        self.layout = RegisterLayout(
            rows=sram.rows, cols=sram.cols, element_bits=32,
            factor=self.factor, num_vregs=sram.num_vregs)
        self.rom = MacroOpRom(self.factor, strict=True)
        self.segments = 32 // self.factor
        self.num_arrays = sram.num_arrays
        self.num_dtus = sram.num_dtus
        self.vru_ports = sram.port_bits // self.factor

    # -- helpers ------------------------------------------------------------

    def _active_arrays(self, vl: int) -> int:
        return max(1, math.ceil(vl / self.layout.elements_per_array))

    def _attribute(self, breakdown: StallBreakdown, t_before: float,
                   causes: Dict[str, float], node: int = -1) -> float:
        """Charge the idle gap before an instruction to its largest cause.

        Returns the start time (the max cause, at least ``t_before``).
        """
        start = max(t_before, max(causes.values(), default=t_before))
        gap = start - t_before
        if gap > 0:
            bucket = max(causes, key=lambda b: causes[b])
            breakdown.add(bucket, gap)
            if self.attr.enabled:
                self.attr.charge("vsu", bucket, gap, node=node)
        return start

    def _dep_causes(self, instr: VectorInstr) -> Dict[str, float]:
        """Map each source register's wait to its Figure 7 bucket."""
        causes: Dict[str, float] = {}
        for reg in instr.sources:
            info = self._regs.get(reg)
            if info is None:
                continue
            if info.kind == "ld":
                bucket = "ld_dt_stall" if info.dt_limited else "ld_mem_stall"
            else:
                bucket = "dep_stall"
            causes[bucket] = max(causes.get(bucket, 0.0), info.ready)
        return causes

    # -- main loop -----------------------------------------------------------------

    def run(self, trace: Trace, compiled=None) -> SimResult:
        tracer = self.tracer
        attr = self.attr
        compiled = self._prepare_compiled(compiled)  # installs fast mem
        if compiled is None:
            self.mem = MemorySystem(self.config, tracer=tracer,
                                    metrics=self.metrics, attribution=attr)
        self.vmu = VmuModel(self.mem)
        self.dtu = DtuPool(self.num_dtus, self.segments,
                           bit_parallel=(self.factor == 32), tracer=tracer,
                           attribution=attr)
        self.vru = VruModel(self.segments, self.vru_ports, tracer=tracer,
                            attribution=attr)
        self._regs: Dict[int, _RegInfo] = {}
        self._core_busy = 0.0
        self._core_stall = 0.0
        self._drain_node = -1      # producer of the latest outstanding store
        breakdown = StallBreakdown()
        uprog_hist = self.metrics.histogram("eve.uprog.cycles")
        # Fix the track set up front: an idle unit (e.g. the VRU on a
        # workload with no reductions) still gets its named track.
        tracer.declare("Machine", "VSU", "VMU", "DTU", "VRU", "DRAM")

        # Ephemeral spawn: walk the carved-out ways (free on a cold L2).
        setup = spawn_cost(self.mem.l2)
        if tracer.enabled:
            if setup.is_free:
                tracer.instant("Reconfig", "spawn", 0.0,
                               lines_walked=setup.lines_walked)
            else:
                tracer.span("Reconfig", "spawn", 0.0, float(setup.cycles),
                            lines_walked=setup.lines_walked,
                            dirty_lines=setup.dirty_lines)
        t = float(setup.cycles)        # VSU timeline
        core_time = 0.0                # control-processor timeline
        last_commit = 0.0
        store_drain = 0.0              # latest outstanding store completion
        vmu_last_was_store = False
        busy = 0.0
        instructions = 0
        finish = t
        if attr.enabled:
            attr.meta["spawn_cycles"] = float(setup.cycles)

        if compiled is None:
            events = enumerate(trace)
            lines_for = _NO_LINES
        else:
            # Block-at-a-time replay: the scheduler's packs drive the
            # event stream (program order, so cycle accounting matches
            # the interpreted loop byte for byte) and each memory event
            # uses its hoisted line list instead of re-deriving it.
            events = compiled.iter_events()
            lines_for = compiled.lines_for
        for idx, event in events:
            if attr.enabled:
                attr.set_node(idx)
            if isinstance(event, ScalarBlock):
                core_time = self.run_scalar_block(core_time, event,
                                                  lines_for(idx))
                continue
            instr: VectorInstr = event
            instructions += 1
            if self.faults.enabled:
                # Same context hook as the functional engine: lets an
                # injector attribute a fault to the macro-op in flight.
                self.faults.on_macro(instr.op)
            arrival = max(core_time + self.COMMIT_LATENCY,
                          last_commit + self.COMMIT_INTERVAL)
            last_commit = arrival

            if instr.op == "vsetvl":
                continue
            if instr.op == "vmfence":
                # Drain pending vector stores before scalar memory proceeds.
                core_time = max(core_time, store_drain)
                if tracer.enabled:
                    tracer.instant("VSU", "vmfence", core_time)
                continue

            causes = {"empty_stall": arrival}
            causes.update(self._dep_causes(instr))
            category = instr.category

            if category.is_memory:
                # Memory macro-ops are handed to the VMU, which runs
                # decoupled from the VSU — outstanding fetches overlap with
                # compute (Section VII-B); only the brief dispatch
                # handshake occupies the VSU.
                dispatch = max(t, arrival)
                if dispatch > t:
                    breakdown.add("empty_stall", dispatch - t)
                    if attr.enabled:
                        attr.charge("vsu", "empty_stall", dispatch - t,
                                    node=idx)
                t = dispatch + self.VSU_DISPATCH
                vmu_ready = max(t, self.vmu.free_at,
                                max(causes.values(), default=0.0))
                if instr.info.is_load:
                    done = self._load(vmu_ready, instr, lines_for(idx))
                    self._regs[instr.vd] = _RegInfo(
                        ready=done, kind="ld",
                        dt_limited=self._last_dt_limited, node=idx)
                    vmu_last_was_store = False
                else:
                    done = self._store(vmu_ready, instr, lines_for(idx))
                    if done >= store_drain:
                        self._drain_node = idx
                    store_drain = max(store_drain, done)
                    vmu_last_was_store = True
                busy += self.VSU_DISPATCH
                if attr.enabled:
                    attr.charge("vsu", "busy", self.VSU_DISPATCH, node=idx)
                    attr.span(dispatch, done, node=idx)
                finish = max(finish, done)
                if tracer.enabled:
                    tracer.span("VSU", f"dispatch:{instr.op}", dispatch, t,
                                vl=instr.vl, done=done)
            elif category is Category.XELEM or instr.info.is_reduction:
                causes["vru_stall"] = max(causes.get("vru_stall", 0.0),
                                          self.vru.free_at)
                start = self._attribute(breakdown, t, causes, node=idx)
                t, done = self._vru_instr(start, instr)
                busy += t - start
                if attr.enabled:
                    attr.charge("vsu", "busy", t - start, node=idx)
                    attr.span(start, done, node=idx)
                if tracer.enabled:
                    tracer.span("VSU", instr.op, start, t, vl=instr.vl,
                                done=done)
                if instr.dest >= 0:
                    self._regs[instr.dest] = _RegInfo(ready=done, kind="vru",
                                                      node=idx)
                if instr.info.writes_scalar or instr.info.is_reduction:
                    # Scalar results (vmv.x.s, reduction sums) stall the
                    # core's commit for the round trip (Section V-A/V-D).
                    core_time = max(core_time, done + self.COMMIT_LATENCY)
                finish = max(finish, done)
            else:
                start = self._attribute(breakdown, t, causes, node=idx)
                cycles = float(self.rom.cycles_for(instr))
                t = start + cycles
                busy += cycles
                if attr.enabled:
                    attr.charge("vsu", "busy", cycles, node=idx)
                    attr.span(start, t, node=idx)
                uprog_hist.observe(cycles)
                if tracer.enabled:
                    # The macro-op's micro-program occupies the single
                    # execution pipe for its full ROM cycle count.
                    tracer.span("VSU", f"uprog:{instr.op}", start, t,
                                vl=instr.vl, rom_cycles=cycles)
                if instr.dest >= 0:
                    self._regs[instr.dest] = _RegInfo(ready=t, kind="compute",
                                                      node=idx)
                finish = max(finish, t)

        total = max(t, finish, store_drain, core_time)
        breakdown.busy = busy
        # The tail beyond the last VSU activity is memory drain.
        assigned = breakdown.total()
        residual = total - assigned
        if residual > 0:
            if store_drain >= total - 1e-9:
                bucket, culprit = "st_mem_stall", self._drain_node
            else:
                late_ld = next((i for i in self._regs.values()
                                if i.kind == "ld"
                                and i.ready >= total - 1e-9), None)
                if late_ld is not None:
                    bucket, culprit = "ld_mem_stall", late_ld.node
                else:
                    bucket, culprit = "empty_stall", -1
            breakdown.add(bucket, residual)
            if attr.enabled:
                attr.charge("vsu", bucket, residual, node=culprit)

        if tracer.enabled:
            tracer.span("Machine", f"execute:{trace.name}", 0.0, total,
                        system=self.config.name, instructions=instructions)
        result = SimResult(
            system=self.config.name, workload=trace.name, cycles=total,
            cycle_time_ns=self.config.cycle_time_ns, instructions=instructions,
            breakdown=breakdown, mem_stats=self.mem.level_stats(total),
            vmu_llc_stall_frac=(self.mem.vector_mshr_stall / total
                                if total > 0 else 0.0),
        )
        if self.metrics.enabled:
            self._populate_metrics(result)
            result.metrics = self.metrics.snapshot()
        if attr.enabled:
            # Hand the collector the machine-reported totals it must
            # conserve against.  The VSU breakdown is the strict target:
            # it is accumulated independently of the charge ledger and
            # forced to equal the achieved cycle count above.
            mem = self.mem
            expected = {
                "vsu": breakdown.as_dict(),
                "vmu": {"busy": self.vmu.busy_cycles,
                        "mshr_stall": self.vmu.stall_cycles},
                "dtu": {"busy": self.dtu.busy_cycles},
                "vru": {"busy": self.vru.busy_cycles},
                "dram": {"busy": mem.dram.busy_cycles},
                "mshr": {pool.name: pool.stall_cycles
                         for pool in (mem.l1d_mshrs, mem.l2_mshrs,
                                      mem.llc_mshrs)},
                "core": {"busy": self._core_busy,
                         "mem_stall": self._core_stall},
            }
            attr.finish(total, expected, timeline_units=("vsu",))
            result.unit_cycles = {unit: dict(buckets)
                                  for unit, buckets in expected.items()}
        return result

    def _populate_metrics(self, result: SimResult) -> None:
        """Publish aggregate unit / breakdown stats into the registry."""
        metrics = self.metrics
        metrics.gauge("sim.cycles").set(result.cycles)
        metrics.counter("sim.instructions").inc(result.instructions)
        metrics.counter("eve.vsu.busy_cycles").inc(result.breakdown.busy)
        metrics.counter("eve.vmu.busy_cycles").inc(self.vmu.busy_cycles)
        metrics.counter("eve.vmu.stall_cycles").inc(self.vmu.stall_cycles)
        metrics.counter("eve.vmu.streams").inc(self.vmu.streams)
        metrics.counter("eve.dtu.busy_cycles").inc(self.dtu.busy_cycles)
        metrics.counter("eve.dtu.lines").inc(self.dtu.lines_processed)
        metrics.counter("eve.vru.busy_cycles").inc(self.vru.busy_cycles)
        metrics.counter("eve.vru.operations").inc(self.vru.operations)
        for bucket, value in result.breakdown.as_dict().items():
            metrics.counter(f"breakdown.{bucket}").inc(value)
        self.mem.populate_metrics(result.cycles)

    # -- per-class timing ----------------------------------------------------------

    def _load(self, start: float, instr: VectorInstr,
              lines=None) -> float:
        """VMU fetch -> DTU transpose -> rows written."""
        per_element = instr.category in (Category.MEM_STRIDE, Category.MEM_INDEX)
        stream = self.vmu.stream(start, instr.mem, per_element, lines=lines)
        dt_done = self.dtu.process(stream.first_done, stream.n_lines)
        done = max(stream.last_done, dt_done)
        self._last_dt_limited = dt_done > stream.last_done
        return done

    def _store(self, start: float, instr: VectorInstr,
               lines=None) -> float:
        """Rows read -> DTU detranspose -> VMU write stream."""
        per_element = instr.category in (Category.MEM_STRIDE, Category.MEM_INDEX)
        if lines is not None:
            # The hoisted list is one entry per request in both modes.
            n_lines = len(lines)
        else:
            n_lines = (instr.mem.num_accesses if per_element
                       else len(instr.mem.line_addresses()))
        dt_done = self.dtu.process(start, n_lines)
        # The VMU starts writing once the first line is detransposed.
        first_data = start + self.dtu.cycles_per_line
        stream = self.vmu.stream(max(first_data, start), instr.mem,
                                 per_element, lines=lines)
        return max(stream.last_done, dt_done)

    def _vru_instr(self, start: float, instr: VectorInstr) -> Tuple[float, float]:
        arrays = self._active_arrays(instr.vl)
        if instr.info.is_reduction:
            done = self.vru.reduce(start, arrays)
            vsu_busy = arrays * self.segments
        elif instr.op in ("vmv.x.s", "vmv.s.x"):
            done = start + self.segments + self.COMMIT_LATENCY
            vsu_busy = self.segments
        else:  # vrgather / slides
            done = self.vru.cross_element(start, arrays)
            vsu_busy = 2 * arrays * self.segments
        return start + vsu_busy, done
