"""Benchmark workloads (Table IV).

Each workload is written once against the vector-intrinsics API and runs
on any context — the trace-building :class:`~repro.isa.intrinsics.VectorContext`
(functional numpy + trace emission) or the bit-exact
:class:`~repro.core.functional.EveFunctionalEngine` — plus a scalar-trace
variant for the IO/O3 baselines.  Every vector build self-checks against a
pure-numpy reference before returning its trace.

Paper inputs are scaled down (documented per workload and in DESIGN.md);
the instruction mixes, stride patterns, and memory-boundedness crossovers
are preserved.
"""

from .base import (DEFAULT_SEED, REGISTRY, Workload, canonical_workload,
                   get_workload, tiny_overrides, workload_names)
from . import vvadd, mmult, kmeans, pathfinder, jacobi2d, backprop, sw  # noqa: F401  (registration)

__all__ = ["DEFAULT_SEED", "REGISTRY", "Workload", "canonical_workload",
           "get_workload", "tiny_overrides", "workload_names"]
