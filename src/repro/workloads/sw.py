"""sw — Smith-Waterman local alignment, anti-diagonal vectorised.

Paper input: 2070-character sequences; ours: 384 x 384 over a 4-letter
alphabet.  Diagonals are stored in guard-padded buffers aligned so that
cell (i, j) of diagonal d always sits at position i+1 — the three
recurrence inputs then come from plain unit-stride loads of the two
previous diagonal buffers, the substitution score is an indexed gather
into the scoring matrix (Table IV's idx traffic), and the running best
score is a vector max-reduction per diagonal.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.trace import Trace
from .base import Workload, register

GAP = 2
#: 4x4 substitution matrix (match bonus on the diagonal).
SUBST = np.array([[3, -1, -1, -1],
                  [-1, 3, -1, -1],
                  [-1, -1, 3, -1],
                  [-1, -1, -1, 3]], dtype=np.int32)

SCALAR_INSTRS_PER_CELL = 14
STRIP_OVERHEAD_INSTRS = 10


class SmithWatermanWorkload(Workload):
    name = "sw"
    suite = "genomics"
    params = {"n": 384}
    tiny_params = {"n": 24}

    def make_inputs(self, params, seed: int = 1234) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n = params["n"]
        return {
            "a": rng.integers(0, 4, n).astype(np.int32),
            "b": rng.integers(0, 4, n).astype(np.int32),
        }

    def reference(self, inputs, params) -> Dict[str, np.ndarray]:
        n = params["n"]
        a, b = inputs["a"], inputs["b"]
        h = np.zeros((n + 1, n + 1), dtype=np.int64)
        best = 0
        for i in range(1, n + 1):
            for j in range(1, n + 1):
                s = int(SUBST[a[i - 1], b[j - 1]])
                h[i, j] = max(0, h[i - 1, j - 1] + s,
                              h[i - 1, j] - GAP, h[i, j - 1] - GAP)
                best = max(best, int(h[i, j]))
        return {"score": np.array([best])}

    def kernel(self, ctx, inputs, params) -> Dict[str, np.ndarray]:
        n = params["n"]
        a = ctx.vm.alloc_i32("a", inputs["a"])
        b_rev = ctx.vm.alloc_i32("b_rev", inputs["b"][::-1].copy())
        subst = ctx.vm.alloc_i32("subst", SUBST.reshape(-1))
        # Diagonal buffers: position i+1 holds H(i, d-i); guards are 0.
        bufs = [ctx.vm.alloc_i32(f"diag{t}", n + 2) for t in range(3)]
        zeros = ctx.vm.alloc_i32("diag_zero", n + 2)
        # Per-position running maximum (reduced once at the end) — keeps
        # the wavefront free of scalar round trips.
        best_buf = ctx.vm.alloc_i32("best", n + 2)
        ctx.scalar(12)
        for d in range(2 * n - 1):
            prev2 = bufs[(d - 2) % 3] if d >= 2 else zeros
            prev = bufs[(d - 1) % 3] if d >= 1 else zeros
            cur = bufs[d % 3]
            i0 = max(0, d - n + 1)
            i1 = min(d, n - 1)
            offset = i0
            while offset <= i1:
                vl = ctx.setvl(i1 - offset + 1)
                ca = ctx.vle32(a, offset)
                cb = ctx.vle32(b_rev, n - 1 - d + offset)
                idx = ctx.vadd(ctx.vsll(ca, 2), cb)
                s = ctx.vluxei32(subst, idx)
                diag = ctx.vadd(ctx.vle32(prev2, offset), s)
                up = ctx.vadd(ctx.vle32(prev, offset), -GAP)
                left = ctx.vadd(ctx.vle32(prev, offset + 1), -GAP)
                h = ctx.vmax(ctx.vmax(diag, up), ctx.vmax(left, 0))
                ctx.vse32(h, cur, offset + 1)
                running = ctx.vmax(ctx.vle32(best_buf, offset + 1), h)
                ctx.vse32(running, best_buf, offset + 1)
                ctx.scalar(STRIP_OVERHEAD_INSTRS)
                offset += vl
            # The control processor zeroes the guard above the diagonal.
            cur.data[i1 + 2:i1 + 3] = 0
            ctx.scalar(2)
        best = 0
        p = 1
        while p <= n:
            vl = ctx.setvl(n - p + 1)
            best = max(best, ctx.vredmax(ctx.vle32(best_buf, p), init=0))
            p += vl
        return {"score": np.array([best])}

    def scalar_trace(self, params: Optional[dict] = None) -> Trace:
        params = self.resolve(params)
        n = params["n"]
        inputs = self.make_inputs(params)
        ctx = self._scalar_ctx()
        a = ctx.vm.alloc_i32("a", inputs["a"])
        b = ctx.vm.alloc_i32("b", inputs["b"])
        h_prev = ctx.vm.alloc_i32("h_prev", n + 1)
        h_cur = ctx.vm.alloc_i32("h_cur", n + 1)
        for i in range(n):
            ctx.block(n * SCALAR_INSTRS_PER_CELL, [
                ctx.load_pattern(a, i, 1),
                ctx.load_pattern(b, 0, n),
                ctx.load_pattern(h_prev, 0, n + 1),
                ctx.load_pattern(h_cur, 0, n),
                ctx.store_pattern(h_cur, 0, n + 1),
            ])
        return ctx.trace


register(SmithWatermanWorkload())
