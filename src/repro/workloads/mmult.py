"""mmult — dense integer matrix multiplication (compute-bound).

Paper input: 1024x1024 square.  Ours: C = A(12x4096) x B(4096x12) with B
pre-transposed — the long-dot-product formulation.  The reduction length
(4096) matches the paper's row length in spirit: vector machines run at
their full hardware vector length, multiplication latency dominates, and
the characterisation mix (vsetvl / two unit-stride loads / vmul /
vredsum accumulate) mirrors Table IV's ctrl+us+imul+xe split.  This is the
kernel where bit-serial EVE-1 *loses* to the integrated unit while EVE-8
wins (Table IV: 0.93x vs 5.34x).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.intrinsics import wrap32
from ..isa.trace import Trace
from .base import Workload, register

#: Scalar MAC loop: 2 loads, mul, add, index/branch bookkeeping.
SCALAR_INSTRS_PER_MAC = 8
STRIP_OVERHEAD_INSTRS = 6


class MmultWorkload(Workload):
    name = "mmult"
    suite = "kernel"
    #: k must stay divisible by every machine's VLMAX so the accumulator
    #: register keeps one vector length across strips.
    params = {"m": 12, "k": 4096, "p": 12}
    tiny_params = {"m": 3, "k": 128, "p": 3}

    def make_inputs(self, params, seed: int = 1234) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        m, k, p = params["m"], params["k"], params["p"]
        return {
            "A": rng.integers(-1000, 1000, m * k).astype(np.int32),
            "Bt": rng.integers(-1000, 1000, p * k).astype(np.int32),
        }

    def reference(self, inputs, params) -> Dict[str, np.ndarray]:
        m, k, p = params["m"], params["k"], params["p"]
        a = inputs["A"].reshape(m, k).astype(np.int64)
        bt = inputs["Bt"].reshape(p, k).astype(np.int64)
        return {"C": wrap32((a @ bt.T).reshape(-1))}

    def kernel(self, ctx, inputs, params) -> Dict[str, np.ndarray]:
        m, k, p = params["m"], params["k"], params["p"]
        a = ctx.vm.alloc_i32("A", inputs["A"])
        bt = ctx.vm.alloc_i32("Bt", inputs["Bt"])
        c = ctx.vm.alloc_i32("C", m * p)
        c_host = np.zeros(m * p, dtype=np.int64)
        for i in range(m):
            for j in range(p):
                # Accumulate in a vector register; one reduction per dot.
                vl = ctx.setvl(k)
                acc = ctx.vmv(0)
                kk = 0
                while kk < k:
                    vl = ctx.setvl(k - kk)
                    va = ctx.vle32(a, i * k + kk)
                    vb = ctx.vle32(bt, j * k + kk)
                    prod = ctx.vmul(va, vb)
                    acc = ctx.vadd(acc, prod)
                    ctx.scalar(STRIP_OVERHEAD_INSTRS)
                    kk += vl
                c_host[i * p + j] = ctx.vredsum(acc)
        c.data[:] = wrap32(c_host)
        # The scalar stores of the accumulated dot products.
        ctx.scalar(m * p * 2)
        return {"C": c.data.copy()}

    def scalar_trace(self, params: Optional[dict] = None) -> Trace:
        params = self.resolve(params)
        m, k, p = params["m"], params["k"], params["p"]
        inputs = self.make_inputs(params)
        ctx = self._scalar_ctx()
        a = ctx.vm.alloc_i32("A", inputs["A"])
        bt = ctx.vm.alloc_i32("Bt", inputs["Bt"])
        ctx.vm.alloc_i32("C", m * p)
        chunk = 1024
        for i in range(m):
            for j in range(p):
                for kk in range(0, k, chunk):
                    count = min(chunk, k - kk)
                    ctx.block(count * SCALAR_INSTRS_PER_MAC, [
                        ctx.load_pattern(a, i * k + kk, count),
                        ctx.load_pattern(bt, j * k + kk, count),
                    ])
        return ctx.trace


register(MmultWorkload())
