"""jacobi-2d — RiVEC's 5-point stencil (EVE's best case).

Paper input: 2K grid x 10 iterations; ours: 512 x 512 x 2 (the
double-buffered grid exceeds the LLC, as the paper's does).  The interior
is processed as one long flattened vector (rows ``1..n-2`` in a single
strip-mined sweep), with a precomputed 0/1 column mask predicating the
stores so row-edge columns stay untouched.  Long application vectors plus
an arithmetic-rich body (weighted centre via multiply, shift-divide) are
exactly the regime where EVE's bit-hybrid designs shine (Table IV: EVE-8
at 13.5x the integrated unit).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.trace import Trace
from .base import Workload, register

#: next = (4*centre + up + down + left + right) >> 3 (integer Jacobi).
CENTER_WEIGHT = 4
SHIFT = 3

SCALAR_INSTRS_PER_CELL = 12
STRIP_OVERHEAD_INSTRS = 8


class Jacobi2dWorkload(Workload):
    name = "jacobi-2d"
    suite = "rivec"
    #: Two 512x512 int32 buffers (2MB) exceed the LLC, so the five stencil
    #: streams miss like the paper's 2K grid does.
    params = {"n": 512, "iters": 2}
    tiny_params = {"n": 12, "iters": 3}

    def make_inputs(self, params, seed: int = 1234) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n = params["n"]
        return {"grid": rng.integers(0, 1 << 20, n * n).astype(np.int32)}

    def reference(self, inputs, params) -> Dict[str, np.ndarray]:
        n, iters = params["n"], params["iters"]
        cur = inputs["grid"].reshape(n, n).astype(np.int64)
        for _ in range(iters):
            nxt = cur.copy()
            nxt[1:-1, 1:-1] = (CENTER_WEIGHT * cur[1:-1, 1:-1]
                               + cur[:-2, 1:-1] + cur[2:, 1:-1]
                               + cur[1:-1, :-2] + cur[1:-1, 2:]) >> SHIFT
            cur = nxt
        return {"grid": cur.reshape(-1)}

    def kernel(self, ctx, inputs, params) -> Dict[str, np.ndarray]:
        n, iters = params["n"], params["iters"]
        a = ctx.vm.alloc_i32("gridA", inputs["grid"])
        b = ctx.vm.alloc_i32("gridB", inputs["grid"].copy())
        # 0/1 interior-column mask over flattened indices (built once by
        # the control processor; predicates the store).
        col_mask_host = np.ones(n * n, dtype=np.int32)
        col_mask_host[0::n] = 0
        col_mask_host[n - 1::n] = 0
        col_mask = ctx.vm.alloc_i32("col_mask", col_mask_host)
        ctx.scalar(n * 2)
        bufs = [a, b]
        start, end = n, n * n - n  # all middle rows, flattened
        for it in range(iters):
            src, dst = bufs[it % 2], bufs[(it + 1) % 2]
            p = start
            while p < end:
                vl = ctx.setvl(end - p)
                center = ctx.vle32(src, p)
                up = ctx.vle32(src, p - n)
                down = ctx.vle32(src, p + n)
                left = ctx.vle32(src, p - 1)
                right = ctx.vle32(src, p + 1)
                cross = ctx.vadd(ctx.vadd(up, down), ctx.vadd(left, right))
                weighted = ctx.vmul(center, CENTER_WEIGHT)
                total = ctx.vadd(weighted, cross)
                result = ctx.vsra(total, SHIFT)
                mvec = ctx.vle32(col_mask, p)
                interior = ctx.vmsne(mvec, 0)
                ctx.vse32(result, dst, p, mask=interior)
                ctx.scalar(STRIP_OVERHEAD_INSTRS)
                p += vl
        final = bufs[iters % 2]
        return {"grid": final.data.copy().astype(np.int64)}

    def scalar_trace(self, params: Optional[dict] = None) -> Trace:
        params = self.resolve(params)
        n, iters = params["n"], params["iters"]
        inputs = self.make_inputs(params)
        ctx = self._scalar_ctx()
        a = ctx.vm.alloc_i32("gridA", inputs["grid"])
        b = ctx.vm.alloc_i32("gridB", n * n)
        for it in range(iters):
            src, dst = (a, b) if it % 2 == 0 else (b, a)
            for r in range(1, n - 1):
                ctx.block((n - 2) * SCALAR_INSTRS_PER_CELL, [
                    ctx.load_pattern(src, (r - 1) * n, 3 * n),
                    ctx.store_pattern(dst, r * n + 1, n - 2),
                ])
        return ctx.trace


register(Jacobi2dWorkload())
