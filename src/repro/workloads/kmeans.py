"""k-means — Rodinia's clustering kernel (integer features).

Paper input: 10K points x 34 features; ours: 2048 x 34, 5 clusters, one
assignment iteration plus the RMSE-style error pass.  The mix mirrors
Table IV: feature columns are constant-stride loads (point-major layout),
distances need multiplies, the best-cluster tracking is compare+merge
(predication), membership is a unit-stride store, and the error pass
gathers each point's assigned centre with indexed loads.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.trace import Trace
from .base import Workload, register

INT_MAX = 2**31 - 1

#: Scalar per point/cluster/feature: load, sub, mul, add + loop share.
SCALAR_INSTRS_PER_TERM = 6
STRIP_OVERHEAD_INSTRS = 12


class KmeansWorkload(Workload):
    name = "k-means"
    suite = "rodinia"
    #: Figure 8's MSHR study re-runs this workload with n=8192 so the
    #: point set thrashes the LLC (see benchmarks/test_fig8_vmu_stalls.py).
    params = {"n": 2048, "f": 34, "k": 5}
    tiny_params = {"n": 48, "f": 6, "k": 3}

    def make_inputs(self, params, seed: int = 1234) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n, f, k = params["n"], params["f"], params["k"]
        return {
            "points": rng.integers(0, 256, n * f).astype(np.int32),
            "centers": rng.integers(0, 256, k * f).astype(np.int32),
        }

    def reference(self, inputs, params) -> Dict[str, np.ndarray]:
        n, f, k = params["n"], params["f"], params["k"]
        pts = inputs["points"].reshape(n, f).astype(np.int64)
        ctr = inputs["centers"].reshape(k, f).astype(np.int64)
        dists = ((pts[:, None, :] - ctr[None, :, :]) ** 2).sum(axis=2)
        membership = dists.argmin(axis=1).astype(np.int64)
        err = int(dists[np.arange(n), membership].sum() & 0xFFFFFFFF)
        err = err - 0x1_0000_0000 if err >= 0x8000_0000 else err
        return {"membership": membership, "error": np.array([err])}

    def kernel(self, ctx, inputs, params) -> Dict[str, np.ndarray]:
        n, f, k = params["n"], params["f"], params["k"]
        points = ctx.vm.alloc_i32("points", inputs["points"])
        centers = ctx.vm.alloc_i32("centers", inputs["centers"])
        membership = ctx.vm.alloc_i32("membership", n)
        centers_host = inputs["centers"].reshape(k, f)
        error = 0
        i = 0
        while i < n:
            vl = ctx.setvl(n - i)
            best_d = ctx.vmv(INT_MAX)
            best_i = ctx.vmv(0)
            for c in range(k):
                acc = ctx.vmv(0)
                for j in range(f):
                    x = ctx.vlse32(points, i * f + j, f)
                    d = ctx.vsub(x, int(centers_host[c, j]))
                    acc = ctx.vadd(acc, ctx.vmul(d, d))
                    ctx.scalar(2)
                closer = ctx.vmslt(acc, best_d)
                if c < k - 1:
                    # The last cluster's best-distance update is dead: only
                    # best_i survives the loop, so skip the merge (the
                    # static analyzer flags it as a dead write otherwise).
                    best_d = ctx.vmerge(closer, acc, best_d)
                best_i = ctx.vmerge(closer, ctx.vmv(c), best_i)
            ctx.vse32(best_i, membership, i)
            # Error pass: gather the assigned centre, feature by feature,
            # accumulating in a vector register (one reduction per strip).
            base = ctx.vmul(best_i, f)
            err_acc = ctx.vmv(0)
            for j in range(f):
                idx = ctx.vadd(base, j)
                cval = ctx.vluxei32(centers, idx)
                x = ctx.vlse32(points, i * f + j, f)
                d = ctx.vsub(x, cval)
                err_acc = ctx.vadd(err_acc, ctx.vmul(d, d))
            error = ctx.vredsum(err_acc, init=error)
            ctx.scalar(STRIP_OVERHEAD_INSTRS)
            i += vl
        return {"membership": membership.data.copy().astype(np.int64),
                "error": np.array([error])}

    def scalar_trace(self, params: Optional[dict] = None) -> Trace:
        params = self.resolve(params)
        n, f, k = params["n"], params["f"], params["k"]
        inputs = self.make_inputs(params)
        ctx = self._scalar_ctx()
        points = ctx.vm.alloc_i32("points", inputs["points"])
        centers = ctx.vm.alloc_i32("centers", inputs["centers"])
        membership = ctx.vm.alloc_i32("membership", n)
        chunk = 64  # points per modelled block
        for i in range(0, n, chunk):
            count = min(chunk, n - i)
            terms = count * k * f
            ctx.block(terms * SCALAR_INSTRS_PER_TERM + count * 8, [
                ctx.load_pattern(points, i * f, count * f),
                ctx.load_pattern(centers, 0, k * f),
                ctx.store_pattern(membership, i, count),
            ])
            # Error pass over the assigned centres.
            ctx.block(count * f * SCALAR_INSTRS_PER_TERM, [
                ctx.load_pattern(points, i * f, count * f),
                ctx.load_pattern(centers, 0, f),
            ])
        return ctx.trace


register(KmeansWorkload())
