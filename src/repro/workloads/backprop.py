"""backprop — Rodinia's neural-network layer (the MSHR-starved kernel).

Paper input: 524K input units; ours: 32768 inputs x 16 hidden units.  The
weight matrix is stored input-major, so reading one hidden unit's column
is a constant-stride load with a 64-byte stride — every element lands in
its own cache line, which is precisely the paper's "no two elements in
the same cacheline" pathology: the VMU pins an MSHR per element and
spends >90% of its time stalled on the LLC (Figure 8).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.intrinsics import wrap32
from ..isa.trace import Trace
from .base import Workload, register

SCALAR_INSTRS_PER_MAC = 7
STRIP_OVERHEAD_INSTRS = 6


class BackpropWorkload(Workload):
    name = "backprop"
    suite = "rodinia"
    #: n_in must stay divisible by every machine's VLMAX (the dot products
    #: accumulate in a fixed-length vector register).  The weight matrix
    #: (32768 x 16 x 4B = 2MB) intentionally exceeds the LLC so the
    #: stride-64B pathology stays DRAM/MSHR-bound as in the paper.
    params = {"n_in": 32768, "n_hidden": 16}
    tiny_params = {"n_in": 128, "n_hidden": 4}

    def make_inputs(self, params, seed: int = 1234) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n_in, n_hidden = params["n_in"], params["n_hidden"]
        return {
            "x": rng.integers(-128, 128, n_in).astype(np.int32),
            "w": rng.integers(-64, 64, n_in * n_hidden).astype(np.int32),
        }

    def reference(self, inputs, params) -> Dict[str, np.ndarray]:
        n_in, n_hidden = params["n_in"], params["n_hidden"]
        w = inputs["w"].reshape(n_in, n_hidden).astype(np.int64)
        x = inputs["x"].astype(np.int64)
        hidden = wrap32(x @ w)
        # Integer "squash": scale down, as the fixed-point port would.
        return {"hidden": hidden.astype(np.int64) >> 8}

    def kernel(self, ctx, inputs, params) -> Dict[str, np.ndarray]:
        n_in, n_hidden = params["n_in"], params["n_hidden"]
        x = ctx.vm.alloc_i32("x", inputs["x"])
        w = ctx.vm.alloc_i32("w", inputs["w"])
        hidden = np.zeros(n_hidden, dtype=np.int64)
        for h in range(n_hidden):
            ctx.setvl(n_in)
            acc = ctx.vmv(0)
            i = 0
            while i < n_in:
                vl = ctx.setvl(n_in - i)
                # Column h of the input-major weight matrix: stride 64B.
                wv = ctx.vlse32(w, i * n_hidden + h, n_hidden)
                xv = ctx.vle32(x, i)
                prod = ctx.vmul(wv, xv)
                acc = ctx.vadd(acc, prod)
                ctx.scalar(STRIP_OVERHEAD_INSTRS)
                i += vl
            hidden[h] = ctx.vredsum(acc) >> 8  # scalar squash on the core
            ctx.scalar(6)
        return {"hidden": hidden}

    def scalar_trace(self, params: Optional[dict] = None) -> Trace:
        params = self.resolve(params)
        n_in, n_hidden = params["n_in"], params["n_hidden"]
        inputs = self.make_inputs(params)
        ctx = self._scalar_ctx()
        x = ctx.vm.alloc_i32("x", inputs["x"])
        w = ctx.vm.alloc_i32("w", inputs["w"])
        chunk = 512
        for h in range(n_hidden):
            for i in range(0, n_in, chunk):
                count = min(chunk, n_in - i)
                ctx.block(count * SCALAR_INSTRS_PER_MAC, [
                    ctx.load_pattern(w, i * n_hidden + h, count, n_hidden),
                    ctx.load_pattern(x, i, count),
                ])
        return ctx.trace


register(BackpropWorkload())
