"""Workload protocol and registry."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import WorkloadError
from ..isa.intrinsics import ScalarContext, VectorContext
from ..isa.trace import Trace

#: Input-generation seed used everywhere a caller does not pass one.
#: ``repro run/compare/sweep --seed N`` overrides it per invocation; the
#: seed is folded into cache keys and record fingerprints, so runs with
#: different seeds never share cached traces or results.
DEFAULT_SEED = 1234


class Workload:
    """One benchmark kernel (Table IV row).

    Subclasses define:

    * ``name`` / ``suite`` — identity (suite in {kernel, rodinia, rivec,
      genomics});
    * ``params`` — the scaled-down default problem size; ``tiny_params`` —
      an oracle-sized problem for bit-exact runs;
    * :meth:`make_inputs` — deterministic input generation;
    * :meth:`reference` — the pure-numpy gold model;
    * :meth:`kernel` — the vectorised kernel against the intrinsics API,
      returning the output arrays (read back from context buffers);
    * :meth:`scalar_trace` — the scalar version as block events.
    """

    name: str = ""
    suite: str = ""
    params: Dict[str, int] = {}
    tiny_params: Dict[str, int] = {}

    # -- to implement -----------------------------------------------------

    def make_inputs(self, params: Dict[str, int],
                    seed: int = DEFAULT_SEED) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def reference(self, inputs: Dict[str, np.ndarray],
                  params: Dict[str, int]) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def kernel(self, ctx, inputs: Dict[str, np.ndarray],
               params: Dict[str, int]) -> Dict[str, np.ndarray]:
        raise NotImplementedError

    def scalar_trace(self, params: Optional[Dict[str, int]] = None) -> Trace:
        raise NotImplementedError

    # -- provided ------------------------------------------------------------

    def resolve(self, params: Optional[Dict[str, int]]) -> Dict[str, int]:
        merged = dict(self.params)
        if params:
            merged.update(params)
        return merged

    def vector_trace(self, vlmax: int,
                     params: Optional[Dict[str, int]] = None,
                     verify: bool = True, seed: int = DEFAULT_SEED) -> Trace:
        """Build the vector trace for a machine with ``vlmax`` and verify
        the kernel's outputs against the numpy reference."""
        params = self.resolve(params)
        inputs = self.make_inputs(params, seed)
        ctx = VectorContext(vlmax, name=self.name)
        outputs = self.kernel(ctx, inputs, params)
        if verify:
            expected = self.reference(self.make_inputs(params, seed), params)
            for key, want in expected.items():
                got = outputs.get(key)
                if got is None or not np.array_equal(
                        np.asarray(got, dtype=np.int64),
                        np.asarray(want, dtype=np.int64)):
                    raise WorkloadError(
                        f"{self.name}: vector kernel output {key!r} does not "
                        "match the reference model")
        return ctx.finalize_trace()

    def run_bit_exact(self, engine, params: Optional[Dict[str, int]] = None,
                      seed: int = DEFAULT_SEED) -> Dict[str, np.ndarray]:
        """Run the kernel on a bit-exact engine (oracle-sized by default)."""
        params = dict(self.tiny_params) if params is None else params
        inputs = self.make_inputs(params, seed)
        return self.kernel(engine, inputs, params)

    # -- scalar-trace helper ------------------------------------------------------

    def _scalar_ctx(self) -> ScalarContext:
        return ScalarContext(name=self.name)


REGISTRY: Dict[str, Workload] = {}

#: Lowercase -> canonical workload-name map; rebuilt (rarely) when the
#: registry has grown since the map was last derived, so it is built once
#: after import-time registration rather than per lookup.
_CANONICAL: Dict[str, str] = {}


def canonical_workload(name: str) -> str:
    """Case-insensitive workload-name lookup (``K-Means`` → ``k-means``).

    Unknown names pass through unchanged so :func:`get_workload` can
    report the caller's spelling.
    """
    if len(_CANONICAL) != len(REGISTRY):
        _CANONICAL.clear()
        _CANONICAL.update({known.lower(): known for known in REGISTRY})
    return _CANONICAL.get(name.lower(), name)


def register(workload: Workload) -> Workload:
    if workload.name in REGISTRY:
        raise WorkloadError(f"duplicate workload {workload.name!r}")
    REGISTRY[workload.name] = workload
    return workload


def get_workload(name: str) -> Workload:
    try:
        return REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {sorted(REGISTRY)}") from None


def workload_names() -> list:
    return sorted(REGISTRY)


def tiny_overrides() -> Dict[str, Dict[str, int]]:
    """Per-workload test-sized parameter overrides — the ``--tiny``
    mapping the CLI, the job service, and the test suite all share."""
    return {name: dict(wl.tiny_params) for name, wl in REGISTRY.items()}
