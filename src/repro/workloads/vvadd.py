"""vvadd — element-wise vector addition (the paper's memory-bound kernel).

Paper input: 8.388M elements; ours: 65 536 (the kernel is purely
streaming, so scaling preserves its DRAM-bandwidth-bound behaviour once
the footprint exceeds the LLC — 3 x 256KB here against a 2MB LLC warmed
cold, so every line misses on first touch).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.intrinsics import wrap32
from ..isa.trace import Trace
from .base import Workload, register

#: Scalar instructions per element: 2 loads, 1 add, 1 store, index/branch.
SCALAR_INSTRS_PER_ELEM = 9
#: Scalar loop-maintenance instructions per vector strip.
STRIP_OVERHEAD_INSTRS = 8


class VvaddWorkload(Workload):
    name = "vvadd"
    suite = "kernel"
    params = {"n": 65536}
    tiny_params = {"n": 192}

    def make_inputs(self, params, seed: int = 1234) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        n = params["n"]
        return {
            "a": rng.integers(-2**30, 2**30, n).astype(np.int32),
            "b": rng.integers(-2**30, 2**30, n).astype(np.int32),
        }

    def reference(self, inputs, params) -> Dict[str, np.ndarray]:
        return {"c": wrap32(inputs["a"].astype(np.int64)
                            + inputs["b"].astype(np.int64))}

    def kernel(self, ctx, inputs, params) -> Dict[str, np.ndarray]:
        n = params["n"]
        a = ctx.vm.alloc_i32("a", inputs["a"])
        b = ctx.vm.alloc_i32("b", inputs["b"])
        c = ctx.vm.alloc_i32("c", n)
        i = 0
        while i < n:
            vl = ctx.setvl(n - i)
            va = ctx.vle32(a, i)
            vb = ctx.vle32(b, i)
            vc = ctx.vadd(va, vb)
            ctx.vse32(vc, c, i)
            ctx.scalar(STRIP_OVERHEAD_INSTRS)
            i += vl
        return {"c": c.data.copy()}

    def scalar_trace(self, params: Optional[dict] = None) -> Trace:
        params = self.resolve(params)
        n = params["n"]
        inputs = self.make_inputs(params)
        ctx = self._scalar_ctx()
        a = ctx.vm.alloc_i32("a", inputs["a"])
        b = ctx.vm.alloc_i32("b", inputs["b"])
        c = ctx.vm.alloc_i32("c", n)
        chunk = 1024  # block granularity of the model, not of the code
        for i in range(0, n, chunk):
            count = min(chunk, n - i)
            ctx.block(count * SCALAR_INSTRS_PER_ELEM, [
                ctx.load_pattern(a, i, count),
                ctx.load_pattern(b, i, count),
                ctx.store_pattern(c, i, count),
            ])
        return ctx.trace


register(VvaddWorkload())
