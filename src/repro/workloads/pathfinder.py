"""pathfinder — Rodinia's grid dynamic program (memory-bound).

Paper input: 5M x 10 grid; ours: 32 768 x 10.  Each row computes
``dst[j] = wall[r][j] + min(src[j-1], src[j], src[j+1])``; the row buffers
carry sentinel guard cells so the three neighbour reads are plain
unit-stride loads, and the three-way minimum is done with compare+merge
(predication), matching Table IV's ~25% predicated instructions.  Four
streams per strip against two ALU ops makes the kernel transpose/memory
bound on EVE, as in Figure 7.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..isa.trace import Trace
from .base import Workload, register

SENTINEL = 2**30  # guard value that never wins the min

SCALAR_INSTRS_PER_CELL = 11
STRIP_OVERHEAD_INSTRS = 8


class PathfinderWorkload(Workload):
    name = "pathfinder"
    suite = "rodinia"
    params = {"cols": 32768, "rows": 10}
    tiny_params = {"cols": 96, "rows": 4}

    def make_inputs(self, params, seed: int = 1234) -> Dict[str, np.ndarray]:
        rng = np.random.default_rng(seed)
        cols, rows = params["cols"], params["rows"]
        return {"wall": rng.integers(0, 10, rows * cols).astype(np.int32)}

    def reference(self, inputs, params) -> Dict[str, np.ndarray]:
        cols, rows = params["cols"], params["rows"]
        wall = inputs["wall"].reshape(rows, cols).astype(np.int64)
        cur = wall[0].copy()
        for r in range(1, rows):
            left = np.concatenate(([SENTINEL], cur[:-1]))
            right = np.concatenate((cur[1:], [SENTINEL]))
            cur = wall[r] + np.minimum(np.minimum(left, cur), right)
        return {"result": cur}

    def kernel(self, ctx, inputs, params) -> Dict[str, np.ndarray]:
        cols, rows = params["cols"], params["rows"]
        wall = ctx.vm.alloc_i32("wall", inputs["wall"])
        # Row buffers with one guard cell on each side.
        src_init = np.full(cols + 2, SENTINEL, dtype=np.int32)
        src_init[1:cols + 1] = inputs["wall"][:cols]
        src = ctx.vm.alloc_i32("src", src_init)
        dst_init = np.full(cols + 2, SENTINEL, dtype=np.int32)
        dst = ctx.vm.alloc_i32("dst", dst_init)
        bufs = [src, dst]
        for r in range(1, rows):
            src_b, dst_b = bufs[(r - 1) % 2], bufs[r % 2]
            j = 0
            while j < cols:
                vl = ctx.setvl(cols - j)
                left = ctx.vle32(src_b, j)
                center = ctx.vle32(src_b, j + 1)
                right = ctx.vle32(src_b, j + 2)
                le = ctx.vmslt(left, center)
                best = ctx.vmerge(le, left, center)
                re = ctx.vmslt(right, best)
                best = ctx.vmerge(re, right, best)
                w = ctx.vle32(wall, r * cols + j)
                out = ctx.vadd(best, w)
                ctx.vse32(out, dst_b, j + 1)
                ctx.scalar(STRIP_OVERHEAD_INSTRS)
                j += vl
        final = bufs[(rows - 1) % 2]
        return {"result": final.data[1:cols + 1].copy().astype(np.int64)}

    def scalar_trace(self, params: Optional[dict] = None) -> Trace:
        params = self.resolve(params)
        cols, rows = params["cols"], params["rows"]
        inputs = self.make_inputs(params)
        ctx = self._scalar_ctx()
        wall = ctx.vm.alloc_i32("wall", inputs["wall"])
        src = ctx.vm.alloc_i32("src", cols)
        dst = ctx.vm.alloc_i32("dst", cols)
        chunk = 1024
        for r in range(1, rows):
            for j in range(0, cols, chunk):
                count = min(chunk, cols - j)
                ctx.block(count * SCALAR_INSTRS_PER_CELL, [
                    ctx.load_pattern(src, j, count),
                    ctx.load_pattern(wall, r * cols + j, count),
                    ctx.store_pattern(dst, j, count),
                ])
        return ctx.trace


register(PathfinderWorkload())
