"""RISC-V-vector-style ISA subset, trace IR, and vector intrinsics.

This package defines the 32-bit integer vector ISA that every machine model
in the reproduction consumes:

* :mod:`repro.isa.opcodes` — the opcode table with Table IV categories.
* :mod:`repro.isa.instructions` — trace events (vector instructions and
  scalar blocks).
* :mod:`repro.isa.trace` — the trace container and its characterisation
  statistics.
* :mod:`repro.isa.memory` — a virtual address space for workload buffers.
* :mod:`repro.isa.intrinsics` — the vector-intrinsics context workloads are
  written against; it computes numerically-correct results with numpy while
  emitting the instruction trace.
"""

from .opcodes import Category, OPCODES, OpInfo
from .instructions import MemAccess, ScalarBlock, VectorInstr
from .trace import Trace, TraceStats
from .memory import Buffer, VirtualMemory
from .intrinsics import ScalarContext, VectorContext, Vec, Mask

__all__ = [
    "Category",
    "OPCODES",
    "OpInfo",
    "MemAccess",
    "ScalarBlock",
    "VectorInstr",
    "Trace",
    "TraceStats",
    "Buffer",
    "VirtualMemory",
    "ScalarContext",
    "VectorContext",
    "Vec",
    "Mask",
]
