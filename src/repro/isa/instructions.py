"""Trace events: vector instructions, scalar blocks, and memory patterns.

A workload trace is a sequence of :class:`VectorInstr` and
:class:`ScalarBlock` events. Memory-touching events carry a compact
:class:`MemAccess` pattern (base + stride + count, or an explicit address
vector for gathers/scatters) that machine models expand to cache-line
requests; this keeps traces small while driving a real cache simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..errors import IsaError
from .opcodes import Category, OpInfo, opinfo

LINE_BYTES = 64


@dataclass(frozen=True)
class MemAccess:
    """A compact description of the addresses one instruction touches.

    Either a (base, stride, count) arithmetic pattern, or an explicit
    ``addresses`` vector for indexed accesses. ``elem_bytes`` is the access
    granularity (always 4 for the 32-bit integer ISA).
    """

    base: int = 0
    stride: int = 0
    count: int = 0
    elem_bytes: int = 4
    is_store: bool = False
    addresses: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.addresses is None and self.count > 0 and self.stride == 0 and self.count > 1:
            raise IsaError("strided pattern with zero stride and count > 1")
        if self.addresses is not None:
            addrs = np.asarray(self.addresses)
            if not np.issubdtype(addrs.dtype, np.integer):
                raise IsaError(
                    f"gather/scatter addresses must be integers "
                    f"(got dtype {addrs.dtype})")
            if addrs.size and int(addrs.min()) < 0:
                raise IsaError("gather/scatter addresses must be non-negative")

    @property
    def num_accesses(self) -> int:
        if self.addresses is not None:
            return int(len(self.addresses))
        return self.count

    def element_addresses(self) -> np.ndarray:
        """Byte address of every element access."""
        if self.addresses is not None:
            return np.asarray(self.addresses, dtype=np.int64)
        return self.base + self.stride * np.arange(self.count, dtype=np.int64)

    def line_addresses(self) -> np.ndarray:
        """Unique cache-line addresses, in first-touch order."""
        lines = self.element_addresses() // LINE_BYTES
        # np.unique sorts; preserve first-touch order for realistic streams.
        _, first = np.unique(lines, return_index=True)
        return lines[np.sort(first)] * LINE_BYTES

    def total_bytes(self) -> int:
        return self.num_accesses * self.elem_bytes


@dataclass(frozen=True)
class VectorInstr:
    """One dynamic vector instruction in a trace."""

    op: str
    vl: int
    vd: int = -1
    vs1: int = -1
    vs2: int = -1
    #: Scalar operand (shift amounts, vx forms, slide offsets).
    scalar: int = 0
    masked: bool = False
    mem: Optional[MemAccess] = None
    #: Index-register source for indexed memory ops (for dependency tracking).
    vidx: int = -1
    #: Merge-old register for masked ops / vslideup: lanes the instruction
    #: does not produce are taken from this register.  Deliberately NOT
    #: part of :attr:`sources` — the timing models treat the merge as part
    #: of the writeback, so dependence chains (and cycle counts) ignore it;
    #: the static analyzer reads it via :attr:`reads`.
    vold: int = -1

    def __post_init__(self) -> None:
        info = self.info  # validates the opcode
        if info.category.is_memory and self.mem is None:
            raise IsaError(f"memory instruction {self.op} missing MemAccess")
        if self.vl < 0:
            raise IsaError("vector length must be non-negative")

    @property
    def info(self) -> OpInfo:
        return opinfo(self.op)

    @property
    def category(self) -> Category:
        return self.info.category

    @property
    def sources(self) -> Tuple[int, ...]:
        regs = [r for r in (self.vs1, self.vs2, self.vidx) if r >= 0]
        if self.info.is_store and self.vd >= 0:
            regs.append(self.vd)  # stores read their "destination" register
        return tuple(regs)

    @property
    def dest(self) -> int:
        if self.info.is_store or self.info.writes_scalar:
            return -1
        return self.vd

    @property
    def reads(self) -> Tuple[int, ...]:
        """Every register whose *value* this instruction consumes.

        Superset of :attr:`sources`: adds the merge-old register and, for
        masked instructions, the v0 predicate.  The static analyzer uses
        this; the timing scoreboards keep using :attr:`sources` so cycle
        accounting is unchanged.
        """
        regs = list(self.sources)
        if self.vold >= 0:
            regs.append(self.vold)
        if self.masked:
            regs.append(0)
        return tuple(regs)


@dataclass(frozen=True)
class ScalarBlock:
    """A block of scalar instructions between vector instructions.

    ``n_instr`` counts all scalar instructions in the block; ``accesses``
    describes its memory traffic as patterns that machine models expand to
    cache-line requests.
    """

    n_instr: int
    accesses: Tuple[MemAccess, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.n_instr < 0:
            raise IsaError("scalar block size must be non-negative")

    @property
    def n_mem(self) -> int:
        return sum(a.num_accesses for a in self.accesses)


TraceEvent = object  # VectorInstr | ScalarBlock (kept loose for typing on 3.9)


def iter_vector(events: Sequence[TraceEvent]) -> Iterator[VectorInstr]:
    for event in events:
        if isinstance(event, VectorInstr):
            yield event


def iter_scalar(events: Sequence[TraceEvent]) -> Iterator[ScalarBlock]:
    for event in events:
        if isinstance(event, ScalarBlock):
            yield event
