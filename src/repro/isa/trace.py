"""Trace container and Table IV characterisation statistics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .instructions import ScalarBlock, VectorInstr
from .opcodes import Category

Event = Union[VectorInstr, ScalarBlock]


@dataclass
class TraceStats:
    """Characterisation of one trace (the columns of Table IV).

    Percentages of the vector-instruction mix are expressed in [0, 100].
    """

    dynamic_instrs: int = 0
    vector_instrs: int = 0
    scalar_instrs: int = 0
    total_ops: int = 0       # scalar instrs + sum of vector active lengths
    vector_ops: int = 0      # sum of vector active lengths
    predicated: int = 0
    by_category: dict = field(default_factory=dict)
    math_ops: int = 0        # vector arithmetic element operations
    mem_ops: int = 0         # vector memory element operations

    @property
    def vi_pct(self) -> float:
        """Percent of dynamic instructions that are vector (VI%)."""
        return 100.0 * self.vector_instrs / max(1, self.dynamic_instrs)

    @property
    def vo_pct(self) -> float:
        """Percent of operations performed by the vector unit (VO%)."""
        return 100.0 * self.vector_ops / max(1, self.total_ops)

    @property
    def vpar(self) -> float:
        """Logical parallelism: total ops / dynamic instructions (VPar)."""
        return self.total_ops / max(1, self.dynamic_instrs)

    @property
    def arith_intensity(self) -> float:
        """Vector arithmetic ops per vector memory op (ArInt)."""
        return self.math_ops / max(1, self.mem_ops)

    def mix_pct(self, category: Category) -> float:
        """Percent of vector instructions in ``category``."""
        return 100.0 * self.by_category.get(category, 0) / max(1, self.vector_instrs)

    @property
    def prd_pct(self) -> float:
        return 100.0 * self.predicated / max(1, self.vector_instrs)


class Trace:
    """An ordered sequence of vector instructions and scalar blocks."""

    def __init__(self, name: str = "trace") -> None:
        self.name = name
        self.events: List[Event] = []
        #: Hardware vlmax the trace was built for; stamped by
        #: :meth:`VectorContext.finalize_trace`, ``None`` for hand-built or
        #: scalar traces.  The static analyzer uses it to check vsetvl use.
        self.vlmax: Optional[int] = None
        #: Buffer layout: name -> (base byte address, size in bytes).
        #: Stamped alongside :attr:`vlmax`; the analyzer checks every
        #: memory footprint against these declared extents.
        self.buffers: Dict[str, Tuple[int, int]] = {}

    def append(self, event: Event) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def vector_instrs(self) -> Iterator[VectorInstr]:
        for event in self.events:
            if isinstance(event, VectorInstr):
                yield event

    def scalar_blocks(self) -> Iterator[ScalarBlock]:
        for event in self.events:
            if isinstance(event, ScalarBlock):
                yield event

    def stats(self) -> TraceStats:
        """Compute the Table IV characterisation columns for this trace."""
        stats = TraceStats()
        for event in self.events:
            if isinstance(event, ScalarBlock):
                stats.scalar_instrs += event.n_instr
                stats.dynamic_instrs += event.n_instr
                stats.total_ops += event.n_instr
                continue
            instr: VectorInstr = event
            stats.vector_instrs += 1
            stats.dynamic_instrs += 1
            category = instr.category
            stats.by_category[category] = stats.by_category.get(category, 0) + 1
            if instr.masked:
                stats.predicated += 1
            active = instr.vl
            stats.vector_ops += active
            stats.total_ops += active
            if category.is_memory:
                stats.mem_ops += active
            elif category is not Category.CTRL:
                stats.math_ops += active
        return stats

    def memory_footprint_bytes(self) -> int:
        """Total bytes touched by all memory patterns (with duplicates)."""
        total = 0
        for event in self.events:
            if isinstance(event, VectorInstr) and event.mem is not None:
                total += event.mem.total_bytes()
            elif isinstance(event, ScalarBlock):
                total += sum(a.total_bytes() for a in event.accesses)
        return total
