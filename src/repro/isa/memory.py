"""A virtual address space for workload buffers.

Workloads allocate numpy-backed buffers through :class:`VirtualMemory`;
each buffer receives a cache-line-aligned virtual base address so that the
traces they emit contain realistic, non-overlapping address streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import MemoryModelError
from .instructions import LINE_BYTES

#: Buffers start above the zero page to keep address zero invalid.
BASE_ADDRESS = 0x1_0000


@dataclass
class Buffer:
    """A named, contiguous, line-aligned region backed by a numpy array."""

    name: str
    base: int
    data: np.ndarray

    @property
    def elem_bytes(self) -> int:
        return int(self.data.dtype.itemsize)

    @property
    def size_bytes(self) -> int:
        return int(self.data.size) * self.elem_bytes

    @property
    def end(self) -> int:
        return self.base + self.size_bytes

    def addr_of(self, index: int) -> int:
        """Byte address of flat element ``index``."""
        if not 0 <= index < self.data.size:
            raise MemoryModelError(
                f"buffer {self.name!r}: element {index} out of range 0..{self.data.size - 1}"
            )
        return self.base + index * self.elem_bytes


class VirtualMemory:
    """Allocates line-aligned buffers in a flat virtual address space."""

    def __init__(self) -> None:
        self._next = BASE_ADDRESS
        self._buffers: Dict[str, Buffer] = {}

    def alloc(self, name: str, data: np.ndarray) -> Buffer:
        """Register ``data`` as a buffer; a copy is *not* made."""
        if name in self._buffers:
            raise MemoryModelError(f"buffer {name!r} already allocated")
        if data.ndim != 1:
            raise MemoryModelError(f"buffer {name!r} must be 1-D (got {data.ndim}-D)")
        buf = Buffer(name=name, base=self._next, data=data)
        self._buffers[name] = buf
        size = buf.size_bytes
        # Round the next base up to a line boundary and keep a guard line
        # between buffers so neighbouring arrays never share a cache line.
        self._next += ((size + LINE_BYTES - 1) // LINE_BYTES + 1) * LINE_BYTES
        return buf

    def alloc_i32(self, name: str, size_or_values) -> Buffer:
        """Allocate an int32 buffer from a length or an array-like."""
        if isinstance(size_or_values, (int, np.integer)):
            data = np.zeros(int(size_or_values), dtype=np.int32)
        else:
            data = np.ascontiguousarray(size_or_values, dtype=np.int32)
        return self.alloc(name, data)

    def __getitem__(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise MemoryModelError(f"no buffer named {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    @property
    def buffers(self) -> Dict[str, Buffer]:
        return dict(self._buffers)

    def footprint_bytes(self) -> int:
        return sum(b.size_bytes for b in self._buffers.values())
