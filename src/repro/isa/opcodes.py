"""Opcode table for the 32-bit integer RVV subset EVE supports.

Each opcode carries the Table IV characterisation category it is counted
under (``ctrl``, ``ialu``, ``imul``, ``xe``, ``us``, ``st``, ``idx``) and the
macro-operation family the EVE ROM implements it with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import IsaError


class Category(enum.Enum):
    """Instruction categories used by Table IV's characterisation columns."""

    CTRL = "ctrl"          # vector control (vsetvl, vmfence)
    IALU = "ialu"          # integer ALU (add/sub/logic/shift/compare/min/max)
    IMUL = "imul"          # integer multiply / divide / remainder
    XELEM = "xe"           # cross-element and reductions (vrgather, vred*)
    MEM_UNIT = "us"        # unit-stride memory
    MEM_STRIDE = "st"      # constant-stride memory
    MEM_INDEX = "idx"      # indexed (gather/scatter) memory

    @property
    def is_memory(self) -> bool:
        return self in (Category.MEM_UNIT, Category.MEM_STRIDE, Category.MEM_INDEX)


@dataclass(frozen=True)
class OpInfo:
    """Static properties of one vector opcode."""

    name: str
    category: Category
    #: Macro-op family used to look up the micro-program in the EVE ROM.
    macro: str
    is_load: bool = False
    is_store: bool = False
    is_reduction: bool = False
    writes_scalar: bool = False


def _op(name: str, category: Category, macro: str, **kwargs: bool) -> tuple[str, OpInfo]:
    return name, OpInfo(name=name, category=category, macro=macro, **kwargs)


OPCODES: dict[str, OpInfo] = dict(
    [
        # --- control ---------------------------------------------------
        _op("vsetvl", Category.CTRL, "nop"),
        _op("vmfence", Category.CTRL, "nop"),
        # --- integer ALU -----------------------------------------------
        _op("vadd", Category.IALU, "add"),
        _op("vsub", Category.IALU, "add"),
        _op("vrsub", Category.IALU, "add"),
        _op("vand", Category.IALU, "logic"),
        _op("vor", Category.IALU, "logic"),
        _op("vxor", Category.IALU, "logic"),
        _op("vnot", Category.IALU, "logic"),
        _op("vsll", Category.IALU, "shift"),
        _op("vsrl", Category.IALU, "shift"),
        _op("vsra", Category.IALU, "shift"),
        _op("vmin", Category.IALU, "minmax"),
        _op("vmax", Category.IALU, "minmax"),
        _op("vminu", Category.IALU, "minmax"),
        _op("vmaxu", Category.IALU, "minmax"),
        _op("vmseq", Category.IALU, "compare"),
        _op("vmsne", Category.IALU, "compare"),
        _op("vmslt", Category.IALU, "compare"),
        _op("vmsle", Category.IALU, "compare"),
        _op("vmsgt", Category.IALU, "compare"),
        _op("vmsge", Category.IALU, "compare"),
        _op("vmerge", Category.IALU, "merge"),
        _op("vmv", Category.IALU, "move"),
        # Index ramp (RVV vid.v with an optional scale): result lane i is
        # vs1[i] + i*scalar.  Costed as one "add" macro so the historical
        # vmv+vadd modelling of viota keeps its cycle count.
        _op("vid", Category.IALU, "add"),
        # Fixed-point saturating ops (RVV vsadd family); the VCU decomposes
        # them into sequences of the base macro-operations.
        _op("vsadd", Category.IALU, "sadd"),
        _op("vssub", Category.IALU, "ssub"),
        _op("vsaddu", Category.IALU, "saddu"),
        _op("vssubu", Category.IALU, "ssubu"),
        # --- integer multiply / divide -----------------------------------
        _op("vmul", Category.IMUL, "mul"),
        _op("vmulh", Category.IMUL, "mul"),
        _op("vmulhu", Category.IMUL, "mul"),
        _op("vdiv", Category.IMUL, "div"),
        _op("vdivu", Category.IMUL, "div"),
        _op("vrem", Category.IMUL, "div"),
        _op("vremu", Category.IMUL, "div"),
        # --- cross-element / reductions ----------------------------------
        _op("vredsum", Category.XELEM, "reduce", is_reduction=True),
        _op("vredmax", Category.XELEM, "reduce", is_reduction=True),
        _op("vredmin", Category.XELEM, "reduce", is_reduction=True),
        _op("vredand", Category.XELEM, "reduce", is_reduction=True),
        _op("vredor", Category.XELEM, "reduce", is_reduction=True),
        _op("vredxor", Category.XELEM, "reduce", is_reduction=True),
        _op("vrgather", Category.XELEM, "gather_elem"),
        _op("vslideup", Category.XELEM, "slide"),
        _op("vslidedown", Category.XELEM, "slide"),
        _op("vmv.x.s", Category.XELEM, "move", writes_scalar=True),
        _op("vmv.s.x", Category.XELEM, "move"),
        # --- memory -------------------------------------------------------
        _op("vle32", Category.MEM_UNIT, "load", is_load=True),
        _op("vse32", Category.MEM_UNIT, "store", is_store=True),
        _op("vlse32", Category.MEM_STRIDE, "load", is_load=True),
        _op("vsse32", Category.MEM_STRIDE, "store", is_store=True),
        _op("vluxei32", Category.MEM_INDEX, "load", is_load=True),
        _op("vsuxei32", Category.MEM_INDEX, "store", is_store=True),
    ]
)


def opinfo(name: str) -> OpInfo:
    """Look up an opcode, raising :class:`IsaError` for unknown names."""
    try:
        return OPCODES[name]
    except KeyError:
        raise IsaError(f"unknown vector opcode {name!r}") from None
