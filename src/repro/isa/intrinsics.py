"""Vector intrinsics: functional execution + trace emission in one pass.

Workloads are written once against :class:`VectorContext`. Every intrinsic

* computes the numerically-correct result with numpy (full 32-bit two's
  complement wrap-around semantics), and
* appends the corresponding :class:`~repro.isa.instructions.VectorInstr`
  to the context's trace.

This mirrors the paper's methodology of separating function from timing:
machine models replay the emitted trace for cycles while correctness is
checked against the functional results.

The elementwise opcode semantics live in module-level tables
(:data:`BINARY_SEMANTICS`, :data:`COMPARE_SEMANTICS`) shared with the
static analyzer's trace replayer (``repro.analysis.replay``), so the two
executors can never drift.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import IsaError
from .instructions import MemAccess, ScalarBlock, VectorInstr
from .memory import Buffer, VirtualMemory
from .trace import Trace

_I32 = np.int32
_MASK32 = 0xFFFFFFFF

I32_MIN, I32_MAX = -(2 ** 31), 2 ** 31 - 1


def wrap32(values: np.ndarray) -> np.ndarray:
    """Wrap an integer array to signed 32-bit two's complement."""
    as64 = np.asarray(values, dtype=np.int64) & _MASK32
    return (((as64 + 0x8000_0000) % 0x1_0000_0000) - 0x8000_0000).astype(_I32)


def _signed_div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    # RVV semantics: x / 0 = -1; truncation toward zero.
    quotient = np.where(y == 0, -1, np.sign(x) * np.sign(np.where(y == 0, 1, y))
                        * (np.abs(x) // np.abs(np.where(y == 0, 1, y))))
    return quotient


def _signed_rem(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    # RVV semantics: x % 0 = x; sign of the remainder follows the dividend.
    safe = np.where(y == 0, 1, y)
    rem = np.sign(x) * (np.abs(x) % np.abs(safe))
    return np.where(y == 0, x, rem)


#: Elementwise semantics per binary opcode.  Operands arrive as int64 (so
#: products and shifted values never overflow before :func:`wrap32`); the
#: result is wrapped to int32 by the caller.
BINARY_SEMANTICS = {
    "vadd": lambda x, y: x + y,
    "vsub": lambda x, y: x - y,
    "vrsub": lambda x, y: y - x,
    "vand": lambda x, y: x & y,
    "vor": lambda x, y: x | y,
    "vxor": lambda x, y: x ^ y,
    "vnot": lambda x, y: ~x,
    "vsll": lambda x, y: x << (y & 31),
    "vsrl": lambda x, y: (x & _MASK32) >> (y & 31),
    "vsra": lambda x, y: x >> (y & 31),
    "vmin": np.minimum,
    "vmax": np.maximum,
    "vminu": lambda x, y: np.minimum(x & _MASK32, y & _MASK32),
    "vmaxu": lambda x, y: np.maximum(x & _MASK32, y & _MASK32),
    "vsadd": lambda x, y: np.clip(x + y, I32_MIN, I32_MAX),
    "vssub": lambda x, y: np.clip(x - y, I32_MIN, I32_MAX),
    "vsaddu": lambda x, y: np.minimum((x & _MASK32) + (y & _MASK32), _MASK32),
    "vssubu": lambda x, y: np.maximum((x & _MASK32) - (y & _MASK32), 0),
    "vmul": lambda x, y: x * y,
    "vmulh": lambda x, y: (x * y) >> 32,
    "vmulhu": lambda x, y: ((x & _MASK32) * (y & _MASK32)) >> 32,
    "vdiv": _signed_div,
    "vrem": _signed_rem,
    "vdivu": lambda x, y: np.where(y == 0, _MASK32,
                                   (x & _MASK32) // np.where(y == 0, 1, y & _MASK32)),
    "vremu": lambda x, y: np.where(y == 0, x & _MASK32,
                                   (x & _MASK32) % np.where(y == 0, 1, y & _MASK32)),
}

#: Elementwise semantics per compare opcode (result is a boolean mask).
COMPARE_SEMANTICS = {
    "vmseq": lambda x, y: x == y,
    "vmsne": lambda x, y: x != y,
    "vmslt": lambda x, y: x < y,
    "vmsle": lambda x, y: x <= y,
    "vmsgt": lambda x, y: x > y,
    "vmsge": lambda x, y: x >= y,
}

#: (initial value, fold) per reduction opcode; the fold consumes an int64
#: array plus the scalar accumulator.  These are the *default* inits — a
#: kernel-supplied ``init`` is a scalar-core input the trace does not
#: record, which is why the analyzer treats reduction results as opaque
#: scalars rather than replaying accumulator chains.
REDUCE_SEMANTICS = {
    "vredsum": (0, lambda v, i: v.sum() + i),
    "vredmax": (I32_MIN, lambda v, i: max(v.max(initial=i), i)),
    "vredmin": (I32_MAX, lambda v, i: min(v.min(initial=i), i)),
    "vredand": (-1, lambda v, i: int(np.bitwise_and.reduce(v, initial=i))),
    "vredor": (0, lambda v, i: int(np.bitwise_or.reduce(v, initial=i))),
    "vredxor": (0, lambda v, i: int(np.bitwise_xor.reduce(v, initial=i))),
}


class Vec:
    """A vector value: an int32 numpy array bound to a register id.

    When a :class:`VectorContext` allocates the register, it installs an
    ``_on_free`` callback so the register returns to the free pool when
    the value is garbage-collected — i.e. strictly after its last use in
    the kernel, which keeps trace register ids faithful to dataflow.
    """

    __slots__ = ("reg", "values", "_on_free")

    def __init__(self, reg: int, values: np.ndarray) -> None:
        self.reg = reg
        self.values = np.ascontiguousarray(values, dtype=_I32)
        self._on_free = None

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Vec(v{self.reg}, len={len(self.values)})"

    def __del__(self) -> None:
        callback = self._on_free
        if callback is not None:
            callback(self.reg)


class Mask:
    """A predicate value: a boolean numpy array (lives in v0, as in RVV)."""

    __slots__ = ("values",)

    reg = 0

    def __init__(self, values: np.ndarray) -> None:
        self.values = np.ascontiguousarray(values, dtype=bool)

    def __len__(self) -> int:
        return len(self.values)

    def count(self) -> int:
        return int(self.values.sum())


Operand = Union[Vec, int, np.integer]


class VectorContext:
    """Functional + trace-emitting execution context for one kernel.

    ``vlmax`` is the hardware maximum vector length granted by ``setvl``;
    running the same kernel with different ``vlmax`` values reproduces the
    strip-mining behaviour of RVV binaries on machines with different
    hardware vector lengths.
    """

    #: v0 is the mask register; values live in v1 upward.
    _FIRST_REG = 1
    #: Architectural register count; kernels keeping more than 31 values
    #: live spill into virtual ids above this (machine models only consume
    #: dependence structure, so ids > 31 stay harmless).
    _LAST_REG = 31

    # Kept as class attributes for callers that reach them via the class.
    I32_MIN, I32_MAX = I32_MIN, I32_MAX

    def __init__(self, vlmax: int, name: str = "kernel") -> None:
        if vlmax <= 0:
            raise IsaError("vlmax must be positive")
        self.vlmax = int(vlmax)
        self.vm = VirtualMemory()
        self.trace = Trace(name)
        self.vl = 0
        self._next_reg = self._FIRST_REG
        self._free_regs: List[int] = []

    # -- bookkeeping ----------------------------------------------------

    def _alloc_reg(self) -> int:
        """Lowest released register, or a fresh one.

        Registers return to the pool only when the owning :class:`Vec` is
        garbage-collected (strictly after its last use), so a live value's
        register is never recycled out from under it.  The old round-robin
        allocator could do exactly that when a kernel kept a value live
        across more than 31 allocations (k-means' best-distance tracking),
        silently corrupting the trace's dataflow.
        """
        if self._free_regs:
            return heapq.heappop(self._free_regs)
        reg = self._next_reg
        self._next_reg += 1
        return reg

    def _release_reg(self, reg: int) -> None:
        heapq.heappush(self._free_regs, reg)

    def _new_vec(self, values: np.ndarray) -> Vec:
        vec = Vec(self._alloc_reg(), values)
        vec._on_free = self._release_reg
        return vec

    def _emit(self, instr: VectorInstr) -> None:
        self.trace.append(instr)

    def finalize_trace(self) -> Trace:
        """Stamp the trace with its analysis metadata and return it.

        Attaches the hardware ``vlmax`` and the buffer layout (name ->
        (base, size_bytes)) so the static analyzer can check vsetvl use
        and memory footprints without re-running the kernel.
        """
        self.trace.vlmax = self.vlmax
        self.trace.buffers = {name: (buf.base, buf.size_bytes)
                              for name, buf in self.vm.buffers.items()}
        return self.trace

    def _check_vl(self, *vecs: Union[Vec, Mask]) -> int:
        if self.vl <= 0:
            raise IsaError("setvl must be called before vector operations")
        for vec in vecs:
            if len(vec) != self.vl:
                raise IsaError(
                    f"operand length {len(vec)} does not match vl {self.vl}"
                )
        return self.vl

    @staticmethod
    def _operand(value: Operand, vl: int) -> Tuple[np.ndarray, int, int]:
        """Return (values, source register, scalar immediate) for an operand."""
        if isinstance(value, Vec):
            return value.values, value.reg, 0
        scalar = int(value)
        return np.full(vl, wrap32(np.array([scalar]))[0], dtype=_I32), -1, scalar

    def peek(self, value: Union[Vec, Mask]) -> np.ndarray:
        """Current value of a vector or mask as a fresh integer array.

        Observation port shared with
        :meth:`repro.core.EveFunctionalEngine.peek`, so the differential
        fuzzer reads both execution contexts through one protocol.
        """
        return np.asarray(value.values, dtype=np.int64).copy()

    # -- control ----------------------------------------------------------

    def setvl(self, avl: int) -> int:
        """Request an application vector length; returns the granted vl."""
        if avl < 0:
            raise IsaError("avl must be non-negative")
        self.vl = min(int(avl), self.vlmax)
        self._emit(VectorInstr(op="vsetvl", vl=self.vl, scalar=int(avl)))
        return self.vl

    def vmfence(self) -> None:
        """Scalar/vector memory fence (Section V-A)."""
        self._emit(VectorInstr(op="vmfence", vl=0))

    def scalar(self, n_instr: int, accesses: Sequence[MemAccess] = ()) -> None:
        """Record a block of scalar bookkeeping instructions."""
        self.trace.append(ScalarBlock(n_instr=int(n_instr), accesses=tuple(accesses)))

    # -- memory -----------------------------------------------------------

    def vle32(self, buf: Buffer, offset: int = 0) -> Vec:
        """Unit-stride load of ``vl`` elements starting at ``offset``."""
        vl = self._check_vl()
        values = buf.data[offset:offset + vl]
        if len(values) != vl:
            raise IsaError(f"unit-stride load of {vl} elements overruns {buf.name!r}")
        vec = self._new_vec(values.copy())
        self._emit(VectorInstr(
            op="vle32", vl=vl, vd=vec.reg,
            mem=MemAccess(base=buf.addr_of(offset), stride=4, count=vl),
        ))
        return vec

    def vse32(self, vec: Vec, buf: Buffer, offset: int = 0,
              mask: Optional[Mask] = None) -> None:
        """Unit-stride store of ``vec`` starting at ``offset``."""
        vl = self._check_vl(vec, *( (mask,) if mask else () ))
        target = buf.data[offset:offset + vl]
        if len(target) != vl:
            raise IsaError(f"unit-stride store of {vl} elements overruns {buf.name!r}")
        if mask is None:
            target[:] = vec.values
        else:
            np.copyto(target, vec.values, where=mask.values)
        self._emit(VectorInstr(
            op="vse32", vl=vl, vd=vec.reg, masked=mask is not None,
            mem=MemAccess(base=buf.addr_of(offset), stride=4, count=vl, is_store=True),
        ))

    def vlse32(self, buf: Buffer, offset: int, stride_elems: int) -> Vec:
        """Constant-stride load (stride given in elements)."""
        vl = self._check_vl()
        if stride_elems <= 0:
            raise IsaError("stride must be positive")
        last = offset + stride_elems * (vl - 1)
        if last >= buf.data.size:
            raise IsaError(f"strided load overruns {buf.name!r}")
        values = buf.data[offset:last + 1:stride_elems].copy()
        vec = self._new_vec(values)
        self._emit(VectorInstr(
            op="vlse32", vl=vl, vd=vec.reg,
            mem=MemAccess(base=buf.addr_of(offset), stride=4 * stride_elems, count=vl),
        ))
        return vec

    def vsse32(self, vec: Vec, buf: Buffer, offset: int, stride_elems: int) -> None:
        """Constant-stride store (stride given in elements)."""
        vl = self._check_vl(vec)
        if stride_elems <= 0:
            raise IsaError("stride must be positive")
        last = offset + stride_elems * (vl - 1)
        if last >= buf.data.size:
            raise IsaError(f"strided store overruns {buf.name!r}")
        buf.data[offset:last + 1:stride_elems] = vec.values
        self._emit(VectorInstr(
            op="vsse32", vl=vl, vd=vec.reg,
            mem=MemAccess(base=buf.addr_of(offset), stride=4 * stride_elems,
                          count=vl, is_store=True),
        ))

    def vluxei32(self, buf: Buffer, index: Vec) -> Vec:
        """Indexed gather: loads ``buf[index[i]]`` (indices in elements)."""
        vl = self._check_vl(index)
        idx = index.values.astype(np.int64)
        if idx.min(initial=0) < 0 or (vl and idx.max() >= buf.data.size):
            raise IsaError(f"gather index out of range for {buf.name!r}")
        values = buf.data[idx]
        vec = self._new_vec(values)
        self._emit(VectorInstr(
            op="vluxei32", vl=vl, vd=vec.reg, vidx=index.reg,
            mem=MemAccess(addresses=buf.base + idx * 4, count=vl),
        ))
        return vec

    def vsuxei32(self, vec: Vec, buf: Buffer, index: Vec) -> None:
        """Indexed scatter: stores ``vec[i]`` to ``buf[index[i]]``."""
        vl = self._check_vl(vec, index)
        idx = index.values.astype(np.int64)
        if idx.min(initial=0) < 0 or (vl and idx.max() >= buf.data.size):
            raise IsaError(f"scatter index out of range for {buf.name!r}")
        buf.data[idx] = vec.values
        self._emit(VectorInstr(
            op="vsuxei32", vl=vl, vd=vec.reg, vidx=index.reg,
            mem=MemAccess(addresses=buf.base + idx * 4, count=vl, is_store=True),
        ))

    # -- arithmetic helpers -------------------------------------------------

    def _binary(self, op: str, a: Vec, b: Operand,
                mask: Optional[Mask] = None, old: Optional[Vec] = None) -> Vec:
        vl = self._check_vl(a, *( (mask,) if mask else () ))
        b_vals, b_reg, scalar = self._operand(b, vl)
        raw = BINARY_SEMANTICS[op](a.values.astype(np.int64),
                                   b_vals.astype(np.int64))
        result = wrap32(raw)
        vold = -1
        if mask is not None:
            keep = old.values if old is not None else np.zeros(vl, dtype=_I32)
            result = np.where(mask.values, result, keep)
            if old is not None:
                vold = old.reg
        vec = self._new_vec(result)
        self._emit(VectorInstr(op=op, vl=vl, vd=vec.reg, vs1=a.reg, vs2=b_reg,
                               scalar=scalar, masked=mask is not None,
                               vold=vold))
        return vec

    # -- integer ALU ---------------------------------------------------------

    def vadd(self, a: Vec, b: Operand, mask: Optional[Mask] = None,
             old: Optional[Vec] = None) -> Vec:
        return self._binary("vadd", a, b, mask, old)

    def vsub(self, a: Vec, b: Operand, mask: Optional[Mask] = None,
             old: Optional[Vec] = None) -> Vec:
        return self._binary("vsub", a, b, mask, old)

    def vrsub(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vrsub", a, b)

    def vand(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vand", a, b)

    def vor(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vor", a, b)

    def vxor(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vxor", a, b)

    def vnot(self, a: Vec) -> Vec:
        return self._binary("vnot", a, -1)

    def vsll(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vsll", a, b)

    def vsrl(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vsrl", a, b)

    def vsra(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vsra", a, b)

    def vmin(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmin", a, b)

    def vmax(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmax", a, b)

    def vminu(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vminu", a, b)

    def vmaxu(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmaxu", a, b)

    # -- fixed-point saturating arithmetic -------------------------------------

    def vsadd(self, a: Vec, b: Operand) -> Vec:
        """Signed saturating add (clamps instead of wrapping)."""
        return self._binary("vsadd", a, b)

    def vssub(self, a: Vec, b: Operand) -> Vec:
        """Signed saturating subtract."""
        return self._binary("vssub", a, b)

    def vsaddu(self, a: Vec, b: Operand) -> Vec:
        """Unsigned saturating add (clamps at 2^32 - 1)."""
        return self._binary("vsaddu", a, b)

    def vssubu(self, a: Vec, b: Operand) -> Vec:
        """Unsigned saturating subtract (clamps at zero)."""
        return self._binary("vssubu", a, b)

    # -- multiply / divide ---------------------------------------------------

    def vmul(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmul", a, b)

    def vmulh(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmulh", a, b)

    def vmulhu(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmulhu", a, b)

    def vdiv(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vdiv", a, b)

    def vrem(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vrem", a, b)

    def vdivu(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vdivu", a, b)

    def vremu(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vremu", a, b)

    # -- comparisons and select ------------------------------------------------

    def _compare(self, op: str, a: Vec, b: Operand) -> Mask:
        vl = self._check_vl(a)
        b_vals, b_reg, scalar = self._operand(b, vl)
        result = COMPARE_SEMANTICS[op](a.values.astype(np.int64),
                                       b_vals.astype(np.int64))
        self._emit(VectorInstr(op=op, vl=vl, vd=0, vs1=a.reg, vs2=b_reg,
                               scalar=scalar))
        return Mask(result)

    def vmseq(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmseq", a, b)

    def vmsne(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmsne", a, b)

    def vmslt(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmslt", a, b)

    def vmsle(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmsle", a, b)

    def vmsgt(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmsgt", a, b)

    def vmsge(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmsge", a, b)

    def vmerge(self, mask: Mask, a: Vec, b: Operand) -> Vec:
        """Element select: ``a`` where mask is set, else ``b``."""
        vl = self._check_vl(a, mask)
        b_vals, b_reg, scalar = self._operand(b, vl)
        result = np.where(mask.values, a.values, b_vals.astype(_I32))
        vec = self._new_vec(result)
        self._emit(VectorInstr(op="vmerge", vl=vl, vd=vec.reg, vs1=a.reg,
                               vs2=b_reg, scalar=scalar, masked=True))
        return vec

    # -- moves, splats ------------------------------------------------------

    def vmv(self, value: Operand) -> Vec:
        """Splat a scalar, or copy a vector register."""
        vl = self._check_vl() if not isinstance(value, Vec) else self._check_vl(value)
        vals, src_reg, scalar = self._operand(value, vl)
        vec = self._new_vec(vals.astype(_I32))
        self._emit(VectorInstr(op="vmv", vl=vl, vd=vec.reg, vs1=src_reg,
                               scalar=scalar))
        return vec

    def viota(self, start: int = 0, step: int = 1) -> Vec:
        """Index vector [start, start+step, ...]; modelled as a vmv+vid pair."""
        vl = self._check_vl()
        base = self.vmv(start)
        # A real RVV kernel materialises indices with vid.v; we model the
        # cost as one extra ALU instruction over the splat.  The dedicated
        # "vid" opcode (lane i = vs1[i] + i*scalar) keeps the trace
        # replayable; its ROM macro is "add", so cycles are unchanged.
        ramp = wrap32(np.arange(vl, dtype=np.int64) * step + start)
        vec = self._new_vec(ramp)
        self._emit(VectorInstr(op="vid", vl=vl, vd=vec.reg, vs1=base.reg,
                               scalar=step))
        return vec

    # -- reductions and cross-element ------------------------------------------

    def _reduce(self, op: str, a: Vec, init: int,
                mask: Optional[Mask] = None) -> int:
        vl = self._check_vl(a, *( (mask,) if mask else () ))
        values = a.values.astype(np.int64)
        if mask is not None:
            values = values[mask.values]
        total = REDUCE_SEMANTICS[op][1](values, init)
        self._emit(VectorInstr(op=op, vl=vl, vs1=a.reg, masked=mask is not None))
        return int(wrap32(np.array([total]))[0])

    def vredsum(self, a: Vec, init: int = 0, mask: Optional[Mask] = None) -> int:
        return self._reduce("vredsum", a, init, mask)

    def vredmax(self, a: Vec, init: int = I32_MIN) -> int:
        return self._reduce("vredmax", a, init)

    def vredmin(self, a: Vec, init: int = I32_MAX) -> int:
        return self._reduce("vredmin", a, init)

    def vredand(self, a: Vec, init: int = -1) -> int:
        return self._reduce("vredand", a, init)

    def vredor(self, a: Vec, init: int = 0) -> int:
        return self._reduce("vredor", a, init)

    def vredxor(self, a: Vec, init: int = 0) -> int:
        return self._reduce("vredxor", a, init)

    def vrgather(self, a: Vec, index: Vec) -> Vec:
        """Register gather: result[i] = a[index[i]] (0 when out of range)."""
        vl = self._check_vl(a, index)
        idx = index.values.astype(np.int64)
        in_range = (idx >= 0) & (idx < vl)
        result = np.where(in_range, a.values[np.clip(idx, 0, vl - 1)], 0)
        vec = self._new_vec(result)
        self._emit(VectorInstr(op="vrgather", vl=vl, vd=vec.reg, vs1=a.reg,
                               vs2=index.reg))
        return vec

    def vslidedown(self, a: Vec, offset: int) -> Vec:
        vl = self._check_vl(a)
        result = np.zeros(vl, dtype=_I32)
        if offset < vl:
            result[:vl - offset] = a.values[offset:]
        vec = self._new_vec(result)
        self._emit(VectorInstr(op="vslidedown", vl=vl, vd=vec.reg, vs1=a.reg,
                               scalar=int(offset)))
        return vec

    def vslideup(self, a: Vec, offset: int, old: Optional[Vec] = None) -> Vec:
        vl = self._check_vl(a)
        result = (old.values.copy() if old is not None
                  else np.zeros(vl, dtype=_I32))
        if offset < vl:
            result[offset:] = a.values[:vl - offset]
        vec = self._new_vec(result)
        self._emit(VectorInstr(op="vslideup", vl=vl, vd=vec.reg, vs1=a.reg,
                               scalar=int(offset),
                               vold=old.reg if old is not None else -1))
        return vec

    def vmv_x_s(self, a: Vec) -> int:
        """Move element 0 to a scalar register (stalls commit, Section V-A)."""
        self._check_vl(a)
        self._emit(VectorInstr(op="vmv.x.s", vl=1, vs1=a.reg))
        return int(a.values[0])

    def vmv_s_x(self, value: int) -> Vec:
        vl = self._check_vl()
        result = np.zeros(vl, dtype=_I32)
        result[0] = wrap32(np.array([int(value)]))[0]
        vec = self._new_vec(result)
        self._emit(VectorInstr(op="vmv.s.x", vl=1, vd=vec.reg,
                               scalar=int(value)))
        return vec


class ScalarContext:
    """Trace builder for the scalar versions of the workloads.

    The scalar baselines are modelled at block granularity: each block is a
    number of instructions plus the memory-access patterns it performs.
    """

    def __init__(self, name: str = "scalar") -> None:
        self.vm = VirtualMemory()
        self.trace = Trace(name)

    def block(self, n_instr: int, accesses: Sequence[MemAccess] = ()) -> None:
        self.trace.append(ScalarBlock(n_instr=int(n_instr), accesses=tuple(accesses)))

    def load_pattern(self, buf: Buffer, offset: int, count: int,
                     stride_elems: int = 1) -> MemAccess:
        return MemAccess(base=buf.addr_of(offset), stride=4 * stride_elems,
                         count=count)

    def store_pattern(self, buf: Buffer, offset: int, count: int,
                      stride_elems: int = 1) -> MemAccess:
        return MemAccess(base=buf.addr_of(offset), stride=4 * stride_elems,
                         count=count, is_store=True)
