"""Vector intrinsics: functional execution + trace emission in one pass.

Workloads are written once against :class:`VectorContext`. Every intrinsic

* computes the numerically-correct result with numpy (full 32-bit two's
  complement wrap-around semantics), and
* appends the corresponding :class:`~repro.isa.instructions.VectorInstr`
  to the context's trace.

This mirrors the paper's methodology of separating function from timing:
machine models replay the emitted trace for cycles while correctness is
checked against the functional results.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import IsaError
from .instructions import MemAccess, ScalarBlock, VectorInstr
from .memory import Buffer, VirtualMemory
from .trace import Trace

_I32 = np.int32
_MASK32 = 0xFFFFFFFF


def wrap32(values: np.ndarray) -> np.ndarray:
    """Wrap an integer array to signed 32-bit two's complement."""
    as64 = np.asarray(values, dtype=np.int64) & _MASK32
    return (((as64 + 0x8000_0000) % 0x1_0000_0000) - 0x8000_0000).astype(_I32)


class Vec:
    """A vector value: an int32 numpy array bound to a register id."""

    __slots__ = ("reg", "values")

    def __init__(self, reg: int, values: np.ndarray) -> None:
        self.reg = reg
        self.values = np.ascontiguousarray(values, dtype=_I32)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Vec(v{self.reg}, len={len(self.values)})"


class Mask:
    """A predicate value: a boolean numpy array (lives in v0, as in RVV)."""

    __slots__ = ("values",)

    reg = 0

    def __init__(self, values: np.ndarray) -> None:
        self.values = np.ascontiguousarray(values, dtype=bool)

    def __len__(self) -> int:
        return len(self.values)

    def count(self) -> int:
        return int(self.values.sum())


Operand = Union[Vec, int, np.integer]


class VectorContext:
    """Functional + trace-emitting execution context for one kernel.

    ``vlmax`` is the hardware maximum vector length granted by ``setvl``;
    running the same kernel with different ``vlmax`` values reproduces the
    strip-mining behaviour of RVV binaries on machines with different
    hardware vector lengths.
    """

    #: v0 is the mask register; v1..v31 are allocated round-robin.
    _FIRST_REG = 1
    _LAST_REG = 31

    def __init__(self, vlmax: int, name: str = "kernel") -> None:
        if vlmax <= 0:
            raise IsaError("vlmax must be positive")
        self.vlmax = int(vlmax)
        self.vm = VirtualMemory()
        self.trace = Trace(name)
        self.vl = 0
        self._next_reg = self._FIRST_REG

    # -- bookkeeping ----------------------------------------------------

    def _alloc_reg(self) -> int:
        reg = self._next_reg
        self._next_reg += 1
        if self._next_reg > self._LAST_REG:
            self._next_reg = self._FIRST_REG
        return reg

    def _emit(self, instr: VectorInstr) -> None:
        self.trace.append(instr)

    def _check_vl(self, *vecs: Union[Vec, Mask]) -> int:
        if self.vl <= 0:
            raise IsaError("setvl must be called before vector operations")
        for vec in vecs:
            if len(vec) != self.vl:
                raise IsaError(
                    f"operand length {len(vec)} does not match vl {self.vl}"
                )
        return self.vl

    @staticmethod
    def _operand(value: Operand, vl: int) -> Tuple[np.ndarray, int, int]:
        """Return (values, source register, scalar immediate) for an operand."""
        if isinstance(value, Vec):
            return value.values, value.reg, 0
        scalar = int(value)
        return np.full(vl, wrap32(np.array([scalar]))[0], dtype=_I32), -1, scalar

    def peek(self, value: Union[Vec, Mask]) -> np.ndarray:
        """Current value of a vector or mask as a fresh integer array.

        Observation port shared with
        :meth:`repro.core.EveFunctionalEngine.peek`, so the differential
        fuzzer reads both execution contexts through one protocol.
        """
        return np.asarray(value.values, dtype=np.int64).copy()

    # -- control ----------------------------------------------------------

    def setvl(self, avl: int) -> int:
        """Request an application vector length; returns the granted vl."""
        if avl < 0:
            raise IsaError("avl must be non-negative")
        self.vl = min(int(avl), self.vlmax)
        self._emit(VectorInstr(op="vsetvl", vl=self.vl, scalar=int(avl)))
        return self.vl

    def vmfence(self) -> None:
        """Scalar/vector memory fence (Section V-A)."""
        self._emit(VectorInstr(op="vmfence", vl=0))

    def scalar(self, n_instr: int, accesses: Sequence[MemAccess] = ()) -> None:
        """Record a block of scalar bookkeeping instructions."""
        self.trace.append(ScalarBlock(n_instr=int(n_instr), accesses=tuple(accesses)))

    # -- memory -----------------------------------------------------------

    def vle32(self, buf: Buffer, offset: int = 0) -> Vec:
        """Unit-stride load of ``vl`` elements starting at ``offset``."""
        vl = self._check_vl()
        values = buf.data[offset:offset + vl]
        if len(values) != vl:
            raise IsaError(f"unit-stride load of {vl} elements overruns {buf.name!r}")
        reg = self._alloc_reg()
        self._emit(VectorInstr(
            op="vle32", vl=vl, vd=reg,
            mem=MemAccess(base=buf.addr_of(offset), stride=4, count=vl),
        ))
        return Vec(reg, values.copy())

    def vse32(self, vec: Vec, buf: Buffer, offset: int = 0,
              mask: Optional[Mask] = None) -> None:
        """Unit-stride store of ``vec`` starting at ``offset``."""
        vl = self._check_vl(vec, *( (mask,) if mask else () ))
        target = buf.data[offset:offset + vl]
        if len(target) != vl:
            raise IsaError(f"unit-stride store of {vl} elements overruns {buf.name!r}")
        if mask is None:
            target[:] = vec.values
        else:
            np.copyto(target, vec.values, where=mask.values)
        self._emit(VectorInstr(
            op="vse32", vl=vl, vd=vec.reg, masked=mask is not None,
            mem=MemAccess(base=buf.addr_of(offset), stride=4, count=vl, is_store=True),
        ))

    def vlse32(self, buf: Buffer, offset: int, stride_elems: int) -> Vec:
        """Constant-stride load (stride given in elements)."""
        vl = self._check_vl()
        if stride_elems <= 0:
            raise IsaError("stride must be positive")
        last = offset + stride_elems * (vl - 1)
        if last >= buf.data.size:
            raise IsaError(f"strided load overruns {buf.name!r}")
        values = buf.data[offset:last + 1:stride_elems].copy()
        reg = self._alloc_reg()
        self._emit(VectorInstr(
            op="vlse32", vl=vl, vd=reg,
            mem=MemAccess(base=buf.addr_of(offset), stride=4 * stride_elems, count=vl),
        ))
        return Vec(reg, values)

    def vsse32(self, vec: Vec, buf: Buffer, offset: int, stride_elems: int) -> None:
        """Constant-stride store (stride given in elements)."""
        vl = self._check_vl(vec)
        if stride_elems <= 0:
            raise IsaError("stride must be positive")
        last = offset + stride_elems * (vl - 1)
        if last >= buf.data.size:
            raise IsaError(f"strided store overruns {buf.name!r}")
        buf.data[offset:last + 1:stride_elems] = vec.values
        self._emit(VectorInstr(
            op="vsse32", vl=vl, vd=vec.reg,
            mem=MemAccess(base=buf.addr_of(offset), stride=4 * stride_elems,
                          count=vl, is_store=True),
        ))

    def vluxei32(self, buf: Buffer, index: Vec) -> Vec:
        """Indexed gather: loads ``buf[index[i]]`` (indices in elements)."""
        vl = self._check_vl(index)
        idx = index.values.astype(np.int64)
        if idx.min(initial=0) < 0 or (vl and idx.max() >= buf.data.size):
            raise IsaError(f"gather index out of range for {buf.name!r}")
        values = buf.data[idx]
        reg = self._alloc_reg()
        self._emit(VectorInstr(
            op="vluxei32", vl=vl, vd=reg, vidx=index.reg,
            mem=MemAccess(addresses=buf.base + idx * 4, count=vl),
        ))
        return Vec(reg, values)

    def vsuxei32(self, vec: Vec, buf: Buffer, index: Vec) -> None:
        """Indexed scatter: stores ``vec[i]`` to ``buf[index[i]]``."""
        vl = self._check_vl(vec, index)
        idx = index.values.astype(np.int64)
        if idx.min(initial=0) < 0 or (vl and idx.max() >= buf.data.size):
            raise IsaError(f"scatter index out of range for {buf.name!r}")
        buf.data[idx] = vec.values
        self._emit(VectorInstr(
            op="vsuxei32", vl=vl, vd=vec.reg, vidx=index.reg,
            mem=MemAccess(addresses=buf.base + idx * 4, count=vl, is_store=True),
        ))

    # -- arithmetic helpers -------------------------------------------------

    def _binary(self, op: str, a: Vec, b: Operand, func,
                mask: Optional[Mask] = None, old: Optional[Vec] = None) -> Vec:
        vl = self._check_vl(a, *( (mask,) if mask else () ))
        b_vals, b_reg, scalar = self._operand(b, vl)
        raw = func(a.values.astype(np.int64), b_vals.astype(np.int64))
        result = wrap32(raw)
        if mask is not None:
            keep = old.values if old is not None else np.zeros(vl, dtype=_I32)
            result = np.where(mask.values, result, keep)
        reg = self._alloc_reg()
        self._emit(VectorInstr(op=op, vl=vl, vd=reg, vs1=a.reg, vs2=b_reg,
                               scalar=scalar, masked=mask is not None))
        return Vec(reg, result)

    # -- integer ALU ---------------------------------------------------------

    def vadd(self, a: Vec, b: Operand, mask: Optional[Mask] = None,
             old: Optional[Vec] = None) -> Vec:
        return self._binary("vadd", a, b, lambda x, y: x + y, mask, old)

    def vsub(self, a: Vec, b: Operand, mask: Optional[Mask] = None,
             old: Optional[Vec] = None) -> Vec:
        return self._binary("vsub", a, b, lambda x, y: x - y, mask, old)

    def vrsub(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vrsub", a, b, lambda x, y: y - x)

    def vand(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vand", a, b, lambda x, y: x & y)

    def vor(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vor", a, b, lambda x, y: x | y)

    def vxor(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vxor", a, b, lambda x, y: x ^ y)

    def vnot(self, a: Vec) -> Vec:
        return self._binary("vnot", a, -1, lambda x, y: ~x)

    def vsll(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vsll", a, b, lambda x, y: x << (y & 31))

    def vsrl(self, a: Vec, b: Operand) -> Vec:
        return self._binary(
            "vsrl", a, b, lambda x, y: (x & _MASK32) >> (y & 31))

    def vsra(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vsra", a, b, lambda x, y: x >> (y & 31))

    def vmin(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmin", a, b, np.minimum)

    def vmax(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmax", a, b, np.maximum)

    def vminu(self, a: Vec, b: Operand) -> Vec:
        return self._binary(
            "vminu", a, b, lambda x, y: np.minimum(x & _MASK32, y & _MASK32))

    def vmaxu(self, a: Vec, b: Operand) -> Vec:
        return self._binary(
            "vmaxu", a, b, lambda x, y: np.maximum(x & _MASK32, y & _MASK32))

    # -- fixed-point saturating arithmetic -------------------------------------

    I32_MIN, I32_MAX = -(2 ** 31), 2 ** 31 - 1

    def vsadd(self, a: Vec, b: Operand) -> Vec:
        """Signed saturating add (clamps instead of wrapping)."""
        return self._binary(
            "vsadd", a, b,
            lambda x, y: np.clip(x + y, self.I32_MIN, self.I32_MAX))

    def vssub(self, a: Vec, b: Operand) -> Vec:
        """Signed saturating subtract."""
        return self._binary(
            "vssub", a, b,
            lambda x, y: np.clip(x - y, self.I32_MIN, self.I32_MAX))

    def vsaddu(self, a: Vec, b: Operand) -> Vec:
        """Unsigned saturating add (clamps at 2^32 - 1)."""
        return self._binary(
            "vsaddu", a, b,
            lambda x, y: np.minimum((x & _MASK32) + (y & _MASK32), _MASK32))

    def vssubu(self, a: Vec, b: Operand) -> Vec:
        """Unsigned saturating subtract (clamps at zero)."""
        return self._binary(
            "vssubu", a, b,
            lambda x, y: np.maximum((x & _MASK32) - (y & _MASK32), 0))

    # -- multiply / divide ---------------------------------------------------

    def vmul(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmul", a, b, lambda x, y: x * y)

    def vmulh(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vmulh", a, b, lambda x, y: (x * y) >> 32)

    def vmulhu(self, a: Vec, b: Operand) -> Vec:
        return self._binary(
            "vmulhu", a, b, lambda x, y: ((x & _MASK32) * (y & _MASK32)) >> 32)

    @staticmethod
    def _signed_div(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # RVV semantics: x / 0 = -1; truncation toward zero.
        quotient = np.where(y == 0, -1, np.sign(x) * np.sign(np.where(y == 0, 1, y))
                            * (np.abs(x) // np.abs(np.where(y == 0, 1, y))))
        return quotient

    @staticmethod
    def _signed_rem(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        # RVV semantics: x % 0 = x; sign of the remainder follows the dividend.
        safe = np.where(y == 0, 1, y)
        rem = np.sign(x) * (np.abs(x) % np.abs(safe))
        return np.where(y == 0, x, rem)

    def vdiv(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vdiv", a, b, self._signed_div)

    def vrem(self, a: Vec, b: Operand) -> Vec:
        return self._binary("vrem", a, b, self._signed_rem)

    def vdivu(self, a: Vec, b: Operand) -> Vec:
        return self._binary(
            "vdivu", a, b,
            lambda x, y: np.where(y == 0, _MASK32,
                                  (x & _MASK32) // np.where(y == 0, 1, y & _MASK32)))

    def vremu(self, a: Vec, b: Operand) -> Vec:
        return self._binary(
            "vremu", a, b,
            lambda x, y: np.where(y == 0, x & _MASK32,
                                  (x & _MASK32) % np.where(y == 0, 1, y & _MASK32)))

    # -- comparisons and select ------------------------------------------------

    def _compare(self, op: str, a: Vec, b: Operand, func) -> Mask:
        vl = self._check_vl(a)
        b_vals, b_reg, scalar = self._operand(b, vl)
        result = func(a.values.astype(np.int64), b_vals.astype(np.int64))
        self._emit(VectorInstr(op=op, vl=vl, vd=0, vs1=a.reg, vs2=b_reg,
                               scalar=scalar))
        return Mask(result)

    def vmseq(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmseq", a, b, lambda x, y: x == y)

    def vmsne(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmsne", a, b, lambda x, y: x != y)

    def vmslt(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmslt", a, b, lambda x, y: x < y)

    def vmsle(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmsle", a, b, lambda x, y: x <= y)

    def vmsgt(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmsgt", a, b, lambda x, y: x > y)

    def vmsge(self, a: Vec, b: Operand) -> Mask:
        return self._compare("vmsge", a, b, lambda x, y: x >= y)

    def vmerge(self, mask: Mask, a: Vec, b: Operand) -> Vec:
        """Element select: ``a`` where mask is set, else ``b``."""
        vl = self._check_vl(a, mask)
        b_vals, b_reg, scalar = self._operand(b, vl)
        result = np.where(mask.values, a.values, b_vals.astype(_I32))
        reg = self._alloc_reg()
        self._emit(VectorInstr(op="vmerge", vl=vl, vd=reg, vs1=a.reg,
                               vs2=b_reg, scalar=scalar, masked=True))
        return Vec(reg, result)

    # -- moves, splats ------------------------------------------------------

    def vmv(self, value: Operand) -> Vec:
        """Splat a scalar, or copy a vector register."""
        vl = self._check_vl() if not isinstance(value, Vec) else self._check_vl(value)
        vals, src_reg, scalar = self._operand(value, vl)
        reg = self._alloc_reg()
        self._emit(VectorInstr(op="vmv", vl=vl, vd=reg, vs1=src_reg, scalar=scalar))
        return Vec(reg, vals.astype(_I32))

    def viota(self, start: int = 0, step: int = 1) -> Vec:
        """Index vector [start, start+step, ...]; modelled as a vmv+vadd pair."""
        vl = self._check_vl()
        base = self.vmv(start)
        # A real RVV kernel materialises indices with vid.v; we model the
        # cost as one extra ALU instruction over the splat.
        ramp = wrap32(np.arange(vl, dtype=np.int64) * step + start)
        reg = self._alloc_reg()
        self._emit(VectorInstr(op="vadd", vl=vl, vd=reg, vs1=base.reg, scalar=step))
        return Vec(reg, ramp)

    # -- reductions and cross-element ------------------------------------------

    def _reduce(self, op: str, a: Vec, func, init: int,
                mask: Optional[Mask] = None) -> int:
        vl = self._check_vl(a, *( (mask,) if mask else () ))
        values = a.values.astype(np.int64)
        if mask is not None:
            values = values[mask.values]
        total = func(values, init)
        self._emit(VectorInstr(op=op, vl=vl, vs1=a.reg, masked=mask is not None))
        return int(wrap32(np.array([total]))[0])

    def vredsum(self, a: Vec, init: int = 0, mask: Optional[Mask] = None) -> int:
        return self._reduce("vredsum", a, lambda v, i: v.sum() + i, init, mask)

    def vredmax(self, a: Vec, init: int = -(2 ** 31)) -> int:
        return self._reduce("vredmax", a, lambda v, i: max(v.max(initial=i), i), init)

    def vredmin(self, a: Vec, init: int = 2 ** 31 - 1) -> int:
        return self._reduce("vredmin", a, lambda v, i: min(v.min(initial=i), i), init)

    def vredand(self, a: Vec, init: int = -1) -> int:
        return self._reduce("vredand", a,
                            lambda v, i: int(np.bitwise_and.reduce(v, initial=i)), init)

    def vredor(self, a: Vec, init: int = 0) -> int:
        return self._reduce("vredor", a,
                            lambda v, i: int(np.bitwise_or.reduce(v, initial=i)), init)

    def vredxor(self, a: Vec, init: int = 0) -> int:
        return self._reduce("vredxor", a,
                            lambda v, i: int(np.bitwise_xor.reduce(v, initial=i)), init)

    def vrgather(self, a: Vec, index: Vec) -> Vec:
        """Register gather: result[i] = a[index[i]] (0 when out of range)."""
        vl = self._check_vl(a, index)
        idx = index.values.astype(np.int64)
        in_range = (idx >= 0) & (idx < vl)
        result = np.where(in_range, a.values[np.clip(idx, 0, vl - 1)], 0)
        reg = self._alloc_reg()
        self._emit(VectorInstr(op="vrgather", vl=vl, vd=reg, vs1=a.reg,
                               vs2=index.reg))
        return Vec(reg, result)

    def vslidedown(self, a: Vec, offset: int) -> Vec:
        vl = self._check_vl(a)
        result = np.zeros(vl, dtype=_I32)
        if offset < vl:
            result[:vl - offset] = a.values[offset:]
        reg = self._alloc_reg()
        self._emit(VectorInstr(op="vslidedown", vl=vl, vd=reg, vs1=a.reg,
                               scalar=int(offset)))
        return Vec(reg, result)

    def vslideup(self, a: Vec, offset: int, old: Optional[Vec] = None) -> Vec:
        vl = self._check_vl(a)
        result = (old.values.copy() if old is not None
                  else np.zeros(vl, dtype=_I32))
        if offset < vl:
            result[offset:] = a.values[:vl - offset]
        reg = self._alloc_reg()
        self._emit(VectorInstr(op="vslideup", vl=vl, vd=reg, vs1=a.reg,
                               scalar=int(offset)))
        return Vec(reg, result)

    def vmv_x_s(self, a: Vec) -> int:
        """Move element 0 to a scalar register (stalls commit, Section V-A)."""
        self._check_vl(a)
        self._emit(VectorInstr(op="vmv.x.s", vl=1, vs1=a.reg))
        return int(a.values[0])

    def vmv_s_x(self, value: int) -> Vec:
        vl = self._check_vl()
        result = np.zeros(vl, dtype=_I32)
        result[0] = wrap32(np.array([int(value)]))[0]
        reg = self._alloc_reg()
        self._emit(VectorInstr(op="vmv.s.x", vl=1, vd=reg, scalar=int(value)))
        return Vec(reg, result)


class ScalarContext:
    """Trace builder for the scalar versions of the workloads.

    The scalar baselines are modelled at block granularity: each block is a
    number of instructions plus the memory-access patterns it performs.
    """

    def __init__(self, name: str = "scalar") -> None:
        self.vm = VirtualMemory()
        self.trace = Trace(name)

    def block(self, n_instr: int, accesses: Sequence[MemAccess] = ()) -> None:
        self.trace.append(ScalarBlock(n_instr=int(n_instr), accesses=tuple(accesses)))

    def load_pattern(self, buf: Buffer, offset: int, count: int,
                     stride_elems: int = 1) -> MemAccess:
        return MemAccess(base=buf.addr_of(offset), stride=4 * stride_elems,
                         count=count)

    def store_pattern(self, buf: Buffer, offset: int, count: int,
                      stride_elems: int = 1) -> MemAccess:
        return MemAccess(base=buf.addr_of(offset), stride=4 * stride_elems,
                         count=count, is_store=True)
