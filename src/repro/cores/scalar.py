"""Trace-driven scalar core models (the IO and O3 baselines).

Scalar work is modelled at block granularity: a block of ``n`` instructions
costs ``n * CPI`` issue cycles, and each cache-line request runs through
the real memory hierarchy.  The in-order core blocks on every miss; the
out-of-order core hides a calibrated fraction of each miss penalty and
overlaps multiple misses (memory-level parallelism bounded by its L1
MSHRs, which the hierarchy's token pools enforce).
"""

from __future__ import annotations

from typing import Optional

from ..config import SystemConfig
from ..errors import SimulationError
from ..isa.instructions import ScalarBlock
from ..isa.trace import Trace
from ..mem.hierarchy import MemorySystem
from ..obs.attribution import NULL_ATTRIBUTION
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.tracer import NULL_TRACER, SpanTracer
from .result import SimResult


class ScalarCore:
    """The IO / O3 scalar baselines (selected by ``config.core.kind``)."""

    def __init__(self, config: SystemConfig,
                 tracer: Optional[SpanTracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 attribution=None) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.attr = (attribution if attribution is not None
                     else NULL_ATTRIBUTION)
        self.metrics.reserve("sim", "ScalarCore")
        self.mem = MemorySystem(config, tracer=self.tracer,
                                metrics=self.metrics, attribution=self.attr)

    def run(self, trace: Trace, compiled=None) -> SimResult:
        core = self.config.core
        tracer = self.tracer
        attr = self.attr
        if compiled is not None and (tracer.enabled or self.metrics.enabled
                                     or attr.enabled):
            # Instrumented runs take the reference interpreter path.
            compiled = None
        if compiled is None:
            events = enumerate(trace)
            lines_for = None
        else:
            from ..compiler.memengine import FastMemorySystem
            self.mem = FastMemorySystem(self.config)
            events = compiled.iter_events()
            lines_for = compiled.lines_for
        now = 0.0
        instructions = 0
        core_busy = 0.0
        core_stall = 0.0
        for idx, event in events:
            if not isinstance(event, ScalarBlock):
                raise SimulationError(
                    f"scalar core {self.config.name} fed a vector trace; "
                    "run the workload's scalar_trace instead")
            if attr.enabled:
                attr.set_node(idx)
            instructions += event.n_instr
            issue_cycles = event.n_instr * core.base_cpi
            block_start = now
            lines = lines_for(idx) if lines_for is not None else None
            if core.kind == "io":
                now = self._run_block_blocking(now, event, issue_cycles,
                                               lines)
            else:
                now = self._run_block_overlapped(now, event, issue_cycles,
                                                 lines)
            if attr.enabled:
                stall = max(0.0, (now - block_start) - issue_cycles)
                attr.charge("core", "busy", issue_cycles, node=idx)
                core_busy += issue_cycles
                attr.charge("core", "mem_stall", stall, node=idx)
                core_stall += stall
                attr.span(block_start, now, node=idx)
            if tracer.enabled and now > block_start:
                tracer.span("Core", "scalar_block", block_start, now,
                            n_instr=event.n_instr)
        if tracer.enabled:
            tracer.span("Machine", f"execute:{trace.name}", 0.0, now,
                        system=self.config.name, instructions=instructions)
        result = SimResult(
            system=self.config.name, workload=trace.name, cycles=now,
            cycle_time_ns=self.config.cycle_time_ns, instructions=instructions,
            mem_stats=self.mem.level_stats(now),
        )
        if self.metrics.enabled:
            self.metrics.gauge("sim.cycles").set(result.cycles)
            self.metrics.counter("sim.instructions").inc(result.instructions)
            self.mem.populate_metrics(result.cycles)
            result.metrics = self.metrics.snapshot()
        if attr.enabled:
            mem = self.mem
            expected = {
                "core": {"busy": core_busy, "mem_stall": core_stall},
                "dram": {"busy": mem.dram.busy_cycles},
                "mshr": {pool.name: pool.stall_cycles
                         for pool in (mem.l1d_mshrs, mem.l2_mshrs,
                                      mem.llc_mshrs)},
            }
            attr.finish(now, expected, timeline_units=("core",))
            result.unit_cycles = {unit: dict(buckets)
                                  for unit, buckets in expected.items()}
        return result

    def _run_block_blocking(self, now: float, block: ScalarBlock,
                            issue_cycles: float, lines=None) -> float:
        """In-order: every miss stalls the pipeline for its full latency."""
        l1_hit = self.config.l1d.hit_latency
        now += issue_cycles
        if lines is None:
            lines = [[int(line) for line in pattern.line_addresses()]
                     for pattern in block.accesses]
        access = self.mem.access
        for pattern, pattern_lines in zip(block.accesses, lines):
            is_store = pattern.is_store
            for line in pattern_lines:
                completion = access(now, line, is_store)
                if completion.done - l1_hit > now:
                    now = completion.done - l1_hit
        return now

    def _run_block_overlapped(self, now: float, block: ScalarBlock,
                              issue_cycles: float, lines=None) -> float:
        """Out-of-order: misses overlap with issue and with each other.

        Each request is launched along the issue timeline; the block
        retires when issue finishes and the unhidden fraction of the
        longest-latency miss has been absorbed.
        """
        core = self.config.core
        l1_hit = self.config.l1d.hit_latency
        end_issue = now + issue_cycles
        if lines is None:
            lines = [[int(line) for line in pattern.line_addresses()]
                     for pattern in block.accesses]
        n_lines = sum(len(pattern_lines) for pattern_lines in lines) or 1
        spacing = issue_cycles / n_lines
        exposed_end = now
        t_issue = now
        access = self.mem.access
        for pattern, pattern_lines in zip(block.accesses, lines):
            is_store = pattern.is_store
            for line in pattern_lines:
                completion = access(t_issue, line, is_store)
                latency = completion.done - t_issue
                exposed = (latency - l1_hit) * (1.0 - core.miss_overlap)
                exposed_end = max(exposed_end, t_issue + l1_hit + max(0.0, exposed))
                t_issue += spacing
        return max(end_issue, exposed_end)
