"""Shared machinery for the vector machine models (IV / DV / EVE).

Vector traces interleave scalar bookkeeping blocks with vector
instructions.  All three vector machines run their scalar blocks on the
same embedded out-of-order control-processor model and track per-register
ready times for dependencies; they differ in how vector instructions are
timed.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..isa.instructions import MemAccess, ScalarBlock, VectorInstr
from ..mem.hierarchy import MemorySystem
from ..obs.attribution import NULL_ATTRIBUTION
from ..obs.metrics import NULL_METRICS, MetricsRegistry
from ..obs.tracer import NULL_TRACER, SpanTracer


class VectorMachineBase:
    """Common state: memory system, register scoreboard, scalar blocks."""

    def __init__(self, config: SystemConfig,
                 tracer: Optional[SpanTracer] = None,
                 metrics: Optional[MetricsRegistry] = None,
                 attribution=None) -> None:
        self.config = config
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.attr = (attribution if attribution is not None
                     else NULL_ATTRIBUTION)
        # Claim the machine-level metric namespaces up front so another
        # unit sharing this registry cannot silently collide with them.
        owner = type(self).__name__
        self.metrics.reserve("sim", owner)
        self.metrics.reserve("breakdown", owner)
        self.mem = MemorySystem(config, tracer=self.tracer,
                                metrics=self.metrics, attribution=self.attr)
        #: vector register -> time its value is ready
        self.reg_ready: Dict[int, float] = {}
        #: Control-processor attribution totals ("core" unit); reset per
        #: run by the subclasses, accumulated in run_scalar_block.
        self._core_busy = 0.0
        self._core_stall = 0.0

    # -- compiled-trace support ------------------------------------------

    def _prepare_compiled(self, compiled):
        """Gate a compiled trace on instrumentation and install the fast
        memory model.

        Instrumented runs (tracer, metrics, attribution, fault
        injection) always take the reference interpreter path — the
        observability stack hooks the layered hierarchy, and equivalence
        there is guaranteed by running identical code, not by argument.
        Returns the compiled trace to use, or ``None``.
        """
        if compiled is None:
            return None
        faults = getattr(self, "faults", None)
        if (self.tracer.enabled or self.metrics.enabled
                or self.attr.enabled
                or (faults is not None and faults.enabled)):
            return None
        from ..compiler.memengine import FastMemorySystem
        self.mem = FastMemorySystem(self.config)
        return compiled

    # -- scoreboard ------------------------------------------------------

    def deps_ready(self, instr: VectorInstr) -> float:
        return max((self.reg_ready.get(r, 0.0) for r in instr.sources),
                   default=0.0)

    def set_ready(self, reg: int, at: float) -> None:
        if reg >= 0:
            self.reg_ready[reg] = at

    def reset(self) -> None:
        self.reg_ready.clear()

    # -- scalar control blocks -----------------------------------------------

    def run_scalar_block(self, now: float, block: ScalarBlock,
                         lines=None) -> float:
        """Out-of-order control processor running bookkeeping code.

        ``lines`` is the compiled path's hoisted per-pattern line lists;
        ``None`` derives them from the patterns as usual.
        """
        core = self.config.core
        issue_cycles = block.n_instr * core.base_cpi
        end = now + issue_cycles
        t = now
        if lines is None:
            lines = [[int(line) for line in pattern.line_addresses()]
                     for pattern in block.accesses]
        for pattern, pattern_lines in zip(block.accesses, lines):
            is_store = pattern.is_store
            for line in pattern_lines:
                completion = self.mem.access(t, line, is_store)
                exposed = (completion.done - t) * (1.0 - core.miss_overlap)
                end = max(end, t + exposed)
                t += 1.0
        if self.attr.enabled:
            # Charge the block's issue slots as busy and any exposed miss
            # latency beyond them as memory stall, to the current trace
            # event (the machine loop set the context to this block).
            stall = max(0.0, (end - now) - issue_cycles)
            self.attr.charge("core", "busy", issue_cycles)
            self._core_busy += issue_cycles
            self.attr.charge("core", "mem_stall", stall)
            self._core_stall += stall
            self.attr.span(now, end)
        if self.tracer.enabled and end > now:
            self.tracer.span("Core", "scalar_block", now, end,
                             n_instr=block.n_instr)
        return end

    # -- memory streams ---------------------------------------------------------

    def stream_lines(self, start: float, pattern: MemAccess, port: str,
                     per_element: bool, issue_interval: float = 1.0,
                     lines=None) -> Tuple[float, float, float]:
        """Issue a memory pattern as a pipelined request stream.

        ``per_element`` issues one request per element (strided / indexed
        decomposition); otherwise one request per distinct cache line.
        ``lines`` is the compiled path's hoisted request list; ``None``
        derives it from the pattern.  Returns
        ``(first_done, last_done, mshr_stall_total)``.
        """
        if lines is None:
            if per_element:
                # One request per element, at the line its address falls
                # in (duplicates intentionally kept: each element is a
                # request).
                raw = pattern.element_addresses() // 64 * 64
            else:
                raw = pattern.line_addresses()
            lines = [int(line) for line in np.asarray(raw, dtype=np.int64)]
        if len(lines) == 0:
            return start, start, 0.0
        t = start
        first_done = None
        last_done = start
        stall_total = 0.0
        is_store = pattern.is_store
        access = self.mem.access
        for line in lines:
            completion = access(t, line, is_store, port=port)
            if first_done is None:
                first_done = completion.done
            last_done = max(last_done, completion.done)
            stall_total += completion.mshr_stall
            # The next request leaves once this one was accepted.
            t = max(t + issue_interval, completion.grant + issue_interval)
        if self.tracer.enabled:
            self.tracer.span(
                "VMU", f"stream:{'st' if pattern.is_store else 'ld'}",
                start, t, n_requests=len(lines), mshr_stall=stall_total)
        return float(first_done), float(last_done), stall_total
